"""Cost-prophet tests: model laws, DY6xx conviction, DY65x drift, plans.

The static cost model is deliberately linear so its laws are provable —
and therefore fuzzable.  The seeded property tests here pin them down:

1. **Monotonicity** — more bytes (or more operations, or more
   contention) on the same device is never cheaper.
2. **Serial additivity** — splitting one batch into serial chains costs
   exactly the sum of the parts.
3. **Critical-path bound** — the node-weighted critical path is a lower
   bound on *any* legal schedule's predicted makespan, for random DAGs
   and random legal orders, and for the race detector's reorder-witness
   orders (real legal schedules of a real workflow).

Around them: the perf-hazards ground truth is convicted by every DY60x
rule pre-run, every other bundled workload stays DY60x-clean, the DY65x
drift rules fire exactly when the prediction is stale, the columnar
``diff_run`` path is byte-identical to the row path, and solved plans
round-trip and beat the naive placement when executed.
"""

import json

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.configs import cluster_spec
from repro.lint import LintConfig, lint_workflow
from repro.lint.cost import (
    build_cost_context,
    build_cost_drift_context,
    critical_path,
    schedule_makespan,
)
from repro.lint.engine import cost_findings, run_costdrift_rules
from repro.storage.devices import DEVICE_CATALOG, predicted_cost
from repro.workloads.registry import WORKLOADS, build_workload

SPEC = cluster_spec("gpu", 2)
COST = LintConfig(enable=("DY6*",))

_devices = st.sampled_from(sorted(DEVICE_CATALOG))
_ops = st.integers(0, 1 << 12)
_bytes = st.integers(0, 1 << 28)


# ----------------------------------------------------------------------
# Law 1: monotonicity
# ----------------------------------------------------------------------
@given(_devices, _ops, _bytes, _bytes, st.integers(1, 64))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_cost_monotone_in_bytes(dev, ops, b1, extra, conc):
    d = DEVICE_CATALOG[dev]
    lo = predicted_cost(d, read_ops=ops, read_bytes=b1, concurrency=conc)
    hi = predicted_cost(d, read_ops=ops, read_bytes=b1 + extra,
                        concurrency=conc)
    assert hi >= lo


@given(_devices, _ops, st.integers(0, 1 << 10), _bytes)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_cost_monotone_in_ops_and_concurrency(dev, ops, extra, nbytes):
    d = DEVICE_CATALOG[dev]
    assert (predicted_cost(d, write_ops=ops + extra, write_bytes=nbytes)
            >= predicted_cost(d, write_ops=ops, write_bytes=nbytes))
    assert (predicted_cost(d, write_ops=ops, write_bytes=nbytes,
                           concurrency=5)
            >= predicted_cost(d, write_ops=ops, write_bytes=nbytes,
                              concurrency=1))


# ----------------------------------------------------------------------
# Law 2: serial-chain additivity
# ----------------------------------------------------------------------
@given(_devices, _ops, _ops, _bytes, _bytes)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_cost_serial_additivity(dev, o1, o2, b1, b2):
    d = DEVICE_CATALOG[dev]
    whole = predicted_cost(d, read_ops=o1 + o2, read_bytes=b1 + b2)
    parts = (predicted_cost(d, read_ops=o1, read_bytes=b1)
             + predicted_cost(d, read_ops=o2, read_bytes=b2))
    assert whole == pytest.approx(parts, rel=1e-9, abs=1e-12)


def test_cost_rejects_bad_arguments():
    d = DEVICE_CATALOG["nvme"]
    with pytest.raises(ValueError):
        predicted_cost(d, read_ops=-1)
    with pytest.raises(ValueError):
        predicted_cost(d, read_bytes=-5)
    with pytest.raises(ValueError):
        predicted_cost(d, read_ops=1, concurrency=0)


# ----------------------------------------------------------------------
# Law 3: critical path lower-bounds any legal schedule
# ----------------------------------------------------------------------
def _legal_order(g, priority):
    """A topological order of ``g`` following a priority permutation."""
    pos = {n: i for i, n in enumerate(priority)}
    indeg = {n: g.in_degree(n) for n in g}
    ready = sorted((n for n in g if indeg[n] == 0), key=pos.get)
    order = []
    while ready:
        n = ready.pop(0)
        order.append(n)
        for m in g.successors(n):
            indeg[m] -= 1
            if indeg[m] == 0:
                ready.append(m)
        ready.sort(key=pos.get)
    return order


@st.composite
def _dag_cases(draw):
    n = draw(st.integers(1, 8))
    names = [f"t{i}" for i in range(n)]
    g = nx.DiGraph()
    g.add_nodes_from(names)
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                g.add_edge(names[i], names[j])
    weights = {name: draw(st.floats(0, 10, allow_nan=False))
               for name in names}
    priority = draw(st.permutations(names))
    slots = draw(st.integers(1, n + 1))
    return g, weights, list(priority), slots


@given(_dag_cases())
@settings(max_examples=80, deadline=None, derandomize=True)
def test_critical_path_lower_bounds_schedules(case):
    g, weights, priority, slots = case
    cp_tasks, cp_seconds = critical_path(g, weights)
    assert cp_seconds == pytest.approx(
        sum(weights[t] for t in cp_tasks))
    order = _legal_order(g, priority)
    makespan = schedule_makespan(g, weights, order, slots=slots)
    assert makespan >= cp_seconds - 1e-9
    # One worker serializes everything: the other extreme bound.
    assert (schedule_makespan(g, weights, order, slots=1)
            == pytest.approx(sum(weights.values())))


def test_schedule_makespan_rejects_illegal_orders():
    g = nx.DiGraph([("a", "b")])
    with pytest.raises(ValueError):
        schedule_makespan(g, {"a": 1.0, "b": 1.0}, ["b", "a"])


def test_witness_orders_respect_critical_path():
    """The DY5xx reorder witnesses are *real* legal schedules of a real
    workflow — every one of them must still be bounded below by the
    predicted critical path."""
    workflow, _ = build_workload("racy-pipeline", 0.25)
    cctx = build_cost_context(workflow, SPEC)
    dag = cctx.static.ordering.dag
    weights = {t: c.total_seconds for t, c in cctx.report.tasks.items()}
    _, cp_seconds = critical_path(dag, weights)
    report = lint_workflow(workflow, LintConfig(enable=("DY5*",)))
    orders = [f.evidence["witness"]["order"] for f in report.findings
              if isinstance(f.evidence, dict)
              and f.evidence.get("witness")]
    assert orders, "racy-pipeline should ship reorder witnesses"
    for order in orders:
        assert set(order) == set(weights)
        for slots in (1, 2, 4):
            assert (schedule_makespan(dag, weights, order, slots=slots)
                    >= cp_seconds - 1e-9)


# ----------------------------------------------------------------------
# DY60x: seeded conviction, everything else clean
# ----------------------------------------------------------------------
def test_perf_hazards_convicted_entirely_pre_run():
    workflow, _ = build_workload("perf-hazards", 1.0)
    report = lint_workflow(workflow, COST, spec=SPEC)
    codes = {f.code for f in report.findings}
    assert {"DY601", "DY602", "DY603", "DY604", "DY605"} <= codes
    assert any(f.code == "DY601" for f in report.errors)


def test_perf_hazards_cost_report_shape():
    workflow, _ = build_workload("perf-hazards", 1.0)
    cctx = build_cost_context(workflow, SPEC)
    r = cctx.report
    assert r.critical_path[0] == "seed_grid"
    assert r.critical_path[-1] == "summarize"
    assert r.critical_path_seconds <= r.makespan_seconds + 1e-9
    assert r.makespan_seconds > 0
    doc = json.loads(r.to_json())
    assert doc["schema"] == "dayu-cost/v1"
    assert doc["tasks"]["journal"]["write_ops"] >= 2048


@pytest.mark.parametrize(
    "name", [n for n in WORKLOADS if n != "perf-hazards"])
def test_bundled_workloads_dy60x_clean(name):
    workflow, _ = build_workload(name, 1.0)
    cctx = build_cost_context(workflow, SPEC)
    perf = [f for f in cost_findings(cctx, COST)
            if f.code.startswith("DY60")]
    assert perf == []


def test_dy6xx_rules_are_opt_in():
    workflow, _ = build_workload("perf-hazards", 1.0)
    report = lint_workflow(workflow, LintConfig(), spec=SPEC)
    assert not any(f.code.startswith("DY6") for f in report.findings)


# ----------------------------------------------------------------------
# DY65x drift + columnar byte-identity
# ----------------------------------------------------------------------
def _traced_run(scale=0.05):
    from repro.experiments.common import fresh_env

    workflow, prepare = build_workload("perf-hazards", scale)
    env = fresh_env(n_nodes=2)
    if prepare is not None:
        prepare(env.cluster)
    env.runner.run(workflow)
    return sorted(env.mapper.profiles.values(),
                  key=lambda p: p.span.start)


@pytest.fixture(scope="module")
def perf_profiles():
    return _traced_run()


def test_matching_prediction_has_no_drift(perf_profiles):
    workflow, _ = build_workload("perf-hazards", 0.05)
    cctx = build_cost_context(workflow, SPEC)
    dctx = build_cost_drift_context(cctx.report, perf_profiles)
    assert run_costdrift_rules(dctx, COST) == []


def test_stale_prediction_convicted_by_drift(perf_profiles):
    workflow, _ = build_workload("perf-hazards", 1.0)  # 20x the traces
    cctx = build_cost_context(workflow, SPEC)
    findings = cost_findings(cctx, COST, perf_profiles)
    codes = {f.code for f in findings}
    assert {"DY651", "DY652", "DY653"} <= codes


def test_diff_run_byte_identical_to_row_path(tmp_path, perf_profiles):
    from repro.analyzer import ParallelAnalyzer
    from repro.lint import diff_profiles, extract_workflow_contracts
    from repro.lint.findings import Finding
    from repro.mapper.columnar import encode_run

    (tmp_path / "run.dayuc").write_bytes(encode_run(perf_profiles))
    workflow, _ = build_workload("perf-hazards", 0.05)
    wc = extract_workflow_contracts(workflow)
    cctx = build_cost_context(workflow, SPEC, contracts=wc)
    config = LintConfig(enable=("DY6*",))

    row = diff_profiles(perf_profiles, wc.effective(), config)
    row.findings = sorted(
        row.findings + cost_findings(cctx, config, perf_profiles),
        key=Finding.sort_key)

    analyzer = ParallelAnalyzer(max_workers=1)
    stats = {}
    col = analyzer.diff_run(str(tmp_path), wc.effective(), config,
                            stats_out=stats, cost=cctx)
    assert col.to_json() == row.to_json()
    assert stats["n_groups"] == len(perf_profiles)
    # The traces match the prediction, so the exact footer predicates
    # must have cleared both DY65x rules without decoding columns.
    assert stats["rules_skipped"] == 2


def test_diff_run_keeps_drift_when_prediction_stale(tmp_path,
                                                    perf_profiles):
    from repro.analyzer import ParallelAnalyzer
    from repro.lint import extract_workflow_contracts
    from repro.mapper.columnar import encode_run

    (tmp_path / "run.dayuc").write_bytes(encode_run(perf_profiles))
    workflow, _ = build_workload("perf-hazards", 1.0)
    wc = extract_workflow_contracts(workflow)
    cctx = build_cost_context(workflow, SPEC, contracts=wc)
    stats = {}
    col = ParallelAnalyzer(max_workers=1).diff_run(
        str(tmp_path), wc.effective(), LintConfig(enable=("DY6*",)),
        stats_out=stats, cost=cctx)
    assert stats["rules_skipped"] == 0
    assert {"DY651", "DY652", "DY653"} <= {f.code for f in col.findings}


# ----------------------------------------------------------------------
# Plans: round-trip, improvement, executed beats naive
# ----------------------------------------------------------------------
def test_solver_improves_and_plan_round_trips(tmp_path):
    from repro.optimizer import solve_placement
    from repro.workflow.plan import PlacementPlan

    workflow, _ = build_workload("perf-hazards", 1.0)
    plan = solve_placement(workflow, SPEC, workload="perf-hazards",
                           scale=1.0)
    pred = plan.predicted
    assert (pred["planned_makespan_seconds"]
            < pred["baseline_makespan_seconds"])
    assert plan.files and plan.tasks
    path = tmp_path / "plan.json"
    plan.save(str(path))
    loaded = PlacementPlan.load(str(path))
    assert loaded.to_json_dict() == plan.to_json_dict()


def test_plan_rejects_wrong_schema(tmp_path):
    from repro.workflow.plan import PlacementPlan

    with pytest.raises(ValueError):
        PlacementPlan.from_json_dict({"schema": "dayu-plan/v999"})


def test_executed_plan_beats_naive_placement():
    from repro.experiments.static_cost import _naive_run, _planned_run

    naive = _naive_run("perf-hazards", 0.05, 2)
    planned, staged, plan = _planned_run("perf-hazards", 0.05, 2)
    assert planned + staged < naive
    assert plan.predicted["planned_makespan_seconds"] > 0


# ----------------------------------------------------------------------
# CLI behavior
# ----------------------------------------------------------------------
def _exits(main, argv):
    with pytest.raises(SystemExit) as exc:
        main(argv)
    return exc.value.code


def test_jobs_validation_exits_2_everywhere():
    from repro.cli import analyze_main
    from repro.lint.cli import lint_main

    assert _exits(lint_main, ["traces", "--jobs", "0"]) == 2
    assert _exits(lint_main, ["traces", "--jobs", "-3"]) == 2
    assert _exits(lint_main, ["traces", "--jobs", "two"]) == 2
    assert _exits(analyze_main, ["traces", "--jobs", "0"]) == 2
    assert _exits(analyze_main, ["traces", "--jobs", "-1"]) == 2


def test_nodes_validation_exits_2():
    from repro.cli import plan_main, run_main
    from repro.lint.cli import lint_main

    assert _exits(run_main, ["perf-hazards", "--nodes", "0"]) == 2
    assert _exits(plan_main, ["perf-hazards", "--nodes", "-2"]) == 2
    assert _exits(lint_main, ["--static", "perf-hazards", "--cost",
                              "--nodes", "0"]) == 2


def test_cost_flag_usage_errors():
    from repro.lint.cli import lint_main

    # --cost needs a workflow's contracts.
    assert _exits(lint_main, ["traces", "--cost"]) == 2
    # --cost-out without --cost.
    assert _exits(lint_main, ["--static", "perf-hazards",
                              "--cost-out", "x.json"]) == 2
    # --pushdown still refuses --static (but composes with --diff).
    assert _exits(lint_main, ["--static", "perf-hazards",
                              "--pushdown"]) == 2


def test_lint_cli_static_cost_convicts(tmp_path, capsys):
    from repro.lint.cli import lint_main

    out = tmp_path / "cost.json"
    rc = lint_main(["--static", "perf-hazards", "--cost",
                    "--cost-out", str(out)])
    assert rc == 1  # DY601 is an error
    text = capsys.readouterr().out
    assert "DY601" in text and "DY604" in text
    doc = json.loads(out.read_text())
    assert doc["schema"] == "dayu-cost/v1"
    assert doc["workflow"] == "perf_hazards"


def test_list_rules_shows_defaults(capsys):
    from repro.lint.cli import lint_main

    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "DY601" in out and "default=off" in out and "default=on" in out


def test_run_main_rejects_mismatched_plan(tmp_path, capsys):
    from repro.cli import plan_main, run_main

    plan = tmp_path / "plan.json"
    assert plan_main(["perf-hazards", "--scale", "0.05",
                      "--out", str(plan)]) == 0
    rc = run_main(["pyflextrkr", "--scale", "0.05", "--plan", str(plan),
                   "--out", str(tmp_path / "tr")])
    assert rc == 2
    assert "solved for" in capsys.readouterr().err


def test_readme_rule_table_in_sync():
    import subprocess
    import sys
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    proc = subprocess.run(
        [sys.executable, str(root / "scripts" / "gen_rule_table.py"),
         "--check"],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
