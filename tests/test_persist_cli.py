"""Tests for trace persistence (JSON round-trip) and the CLI toolset."""

import json

import numpy as np
import pytest

from repro.analyzer import build_ftg, build_sdg
from repro.cli import analyze_main, run_main
from repro.diagnostics import diagnose
from repro.mapper import (
    DaYuConfig,
    DataSemanticMapper,
    load_profile,
    load_profiles_from_dir,
    load_profiles_from_host_dir,
    profile_from_json_dict,
)
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


@pytest.fixture()
def recorded():
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
    mapper = DataSemanticMapper(clock, DaYuConfig())
    with mapper.task("producer") as ctx:
        f = ctx.open(fs, "/d.h5", "w")
        d = f.create_dataset("x", shape=(64,), dtype="f8",
                             layout="chunked", chunks=(16,),
                             data=np.arange(64.0))
        d.attrs["unit"] = "K"
        f.close()
    with mapper.task("consumer") as ctx:
        f = ctx.open(fs, "/d.h5", "r")
        f["x"].read()
        f.close()
    return fs, mapper


class TestProfileRoundTrip:
    def test_full_round_trip_preserves_analysis_inputs(self, recorded):
        fs, mapper = recorded
        original = mapper.profiles["producer"]
        restored = profile_from_json_dict(
            json.loads(original.serialize()))
        assert restored.task == original.task
        assert restored.span.start == original.span.start
        assert restored.files == original.files
        assert len(restored.io_records) == len(original.io_records)
        assert len(restored.object_profiles) == len(original.object_profiles)
        assert len(restored.dataset_stats) == len(original.dataset_stats)
        # Spot-check the joined stats reconstruct exactly.
        orig = {s.data_object: s for s in original.dataset_stats}
        rest = {s.data_object: s for s in restored.dataset_stats}
        assert set(orig) == set(rest)
        for key in orig:
            assert rest[key].writes == orig[key].writes
            assert rest[key].metadata_ops == orig[key].metadata_ops
            assert rest[key].regions == orig[key].regions
            assert rest[key].first_raw_op == orig[key].first_raw_op

    def test_restored_profiles_build_identical_graphs(self, recorded):
        fs, mapper = recorded
        originals = list(mapper.profiles.values())
        restored = [load_profile(p.serialize()) for p in originals]
        g1 = build_ftg(originals)
        g2 = build_ftg(restored)
        assert set(g1.nodes) == set(g2.nodes)
        assert set(g1.edges) == set(g2.edges)
        for u, v in g1.edges:
            assert g1.edges[u, v]["volume"] == g2.edges[u, v]["volume"]
        s1 = build_sdg(originals, with_regions=True, region_bytes=65536)
        s2 = build_sdg(restored, with_regions=True, region_bytes=65536)
        assert set(s1.nodes) == set(s2.nodes)

    def test_restored_profiles_diagnose_identically(self, recorded):
        fs, mapper = recorded
        originals = list(mapper.profiles.values())
        restored = [load_profile(p.serialize()) for p in originals]
        k1 = sorted(i.kind.value for i in diagnose(originals).insights)
        k2 = sorted(i.kind.value for i in diagnose(restored).insights)
        assert k1 == k2

    def test_load_from_simfs_dir(self, recorded):
        fs, mapper = recorded
        mapper.save(fs)
        profiles = load_profiles_from_dir(fs, "/dayu")
        assert [p.task for p in profiles] == ["producer", "consumer"]

    def test_load_from_host_dir(self, recorded, tmp_path):
        fs, mapper = recorded
        mapper.save_to_host_dir(str(tmp_path))
        profiles = load_profiles_from_host_dir(str(tmp_path))
        assert [p.task for p in profiles] == ["producer", "consumer"]

    def test_round_trip_vfd_record_enum(self, recorded):
        fs, mapper = recorded
        restored = load_profile(mapper.profiles["producer"].serialize())
        from repro.vfd.base import IoClass
        kinds = {r.access_type for r in restored.io_records}
        assert IoClass.METADATA in kinds and IoClass.RAW in kinds


class TestCli:
    def test_run_then_analyze_pipeline(self, tmp_path, capsys):
        traces = tmp_path / "traces"
        graphs = tmp_path / "graphs"
        assert run_main(["ddmd", "--out", str(traces), "--scale", "0.25",
                         "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert list(traces.glob("*.json"))

        assert analyze_main([str(traces), "--out", str(graphs),
                             "--regions"]) == 0
        out = capsys.readouterr().out
        assert "FTG:" in out
        assert (graphs / "ftg.html").exists()
        assert (graphs / "sdg.html").exists()
        assert (graphs / "sdg.dot").exists()
        insights = json.loads((graphs / "insights.json").read_text())
        assert isinstance(insights, list)

    @pytest.mark.parametrize("workload", ["arldm", "h5bench", "corner"])
    def test_run_other_workloads(self, workload, tmp_path):
        assert run_main([workload, "--out", str(tmp_path / "t"),
                         "--scale", "0.2"]) == 0
        assert list((tmp_path / "t").glob("*.json"))

    def test_run_pyflextrkr(self, tmp_path):
        assert run_main(["pyflextrkr", "--out", str(tmp_path / "t"),
                         "--scale", "0.25"]) == 0

    def test_analyze_with_infer_order_and_advisor(self, tmp_path, capsys):
        traces = tmp_path / "traces"
        assert run_main(["ddmd", "--out", str(traces), "--scale", "0.2"]) == 0
        capsys.readouterr()
        assert analyze_main([str(traces), "--out", str(tmp_path / "g"),
                             "--infer-order", "--advisor"]) == 0
        out = capsys.readouterr().out
        assert "Inferred task order:" in out
        assert "DaYu I/O Advisor" in out
        # Aggregate precedes training in the recovered order.
        order_line = next(l for l in out.splitlines()
                          if l.startswith("Inferred task order"))
        assert order_line.index("aggregate") < order_line.index("training")

    def test_analyze_empty_dir_exits_2(self, tmp_path, capsys):
        # Usage error, same one-line diagnosis + status as dayu-lint and
        # dayu-compact (the documented exit-code table).
        assert analyze_main([str(tmp_path)]) == 2
        assert "no saved profiles" in capsys.readouterr().err

    def test_analyze_missing_dir_exits_2(self, tmp_path, capsys):
        assert analyze_main([str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_analyze_truncated_trace_exits_2(self, tmp_path, capsys):
        (tmp_path / "t.dayu").write_bytes(b"DY")
        assert analyze_main([str(tmp_path)]) == 2
        assert "too short" in capsys.readouterr().err

    def test_unknown_workload_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            run_main(["fortran_dreams", "--out", str(tmp_path)])
