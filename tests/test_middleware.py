"""Unit tests for the I/O middleware: staging, tiered cache, consolidation,
and layout conversion."""

import numpy as np
import pytest

from repro.hdf5 import H5File
from repro.hdf5.errors import H5LayoutError, H5NameError
from repro.middleware import (
    BufferTier,
    TieredCache,
    consolidate_datasets,
    convert_layout,
    read_consolidated,
    rolling_stage_in,
    stage_in,
    stage_out,
)
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


@pytest.fixture()
def fs():
    clock = SimClock()
    return SimFS(
        clock,
        mounts=[
            Mount("/pfs", make_device("beegfs")),
            Mount("/ram", make_device("ram"), node="n0"),
            Mount("/ssd", make_device("nvme"), node="n0"),
            Mount("/hdd", make_device("hdd"), node="n0"),
        ],
    )


def make_file(fs, path, nbytes=1000):
    fd = fs.open(path, "w")
    fs.write(fd, bytes(range(256)) * (nbytes // 256 + 1))
    fs.truncate(fd, nbytes)
    fs.close(fd)


class TestStaging:
    def test_stage_in_copies_bytes(self, fs):
        make_file(fs, "/pfs/in.dat", 5000)
        dst = stage_in(fs, "/pfs/in.dat", "/ssd/in.dat")
        assert dst == "/ssd/in.dat"
        assert fs.stat("/ssd/in.dat").size == 5000
        a = fs.open("/pfs/in.dat", "r")
        b = fs.open("/ssd/in.dat", "r")
        assert fs.read(a, 5000) == fs.read(b, 5000)
        fs.close(a)
        fs.close(b)

    def test_stage_out_removes_source(self, fs):
        make_file(fs, "/ssd/out.dat")
        stage_out(fs, "/ssd/out.dat", "/hdd/out.dat")
        assert not fs.exists("/ssd/out.dat")
        assert fs.exists("/hdd/out.dat")

    def test_stage_out_keep_source(self, fs):
        make_file(fs, "/ssd/out.dat")
        stage_out(fs, "/ssd/out.dat", "/hdd/out.dat", remove_src=False)
        assert fs.exists("/ssd/out.dat")

    def test_rolling_stage_in_yields_in_order(self, fs):
        srcs = []
        for i in range(3):
            path = f"/pfs/s{i}.dat"
            make_file(fs, path, 100)
            srcs.append(path)
        staged = list(rolling_stage_in(fs, srcs, "/ssd/stage"))
        assert staged == ["/ssd/stage/s0.dat", "/ssd/stage/s1.dat",
                          "/ssd/stage/s2.dat"]
        assert all(fs.exists(p) for p in staged)

    def test_staging_pays_both_devices(self, fs):
        make_file(fs, "/pfs/in.dat", 1 << 20)
        before = fs.clock.now
        stage_in(fs, "/pfs/in.dat", "/ssd/in.dat")
        elapsed = fs.clock.now - before
        assert elapsed > 0
        devices = {r.device for r in fs.op_log if r.start >= before}
        assert devices == {"beegfs", "nvme"}

    def test_stage_in_to_faster_tier_speeds_reads(self, fs):
        make_file(fs, "/pfs/in.dat", 1 << 20)
        stage_in(fs, "/pfs/in.dat", "/ssd/in.dat")

        def read_all(path):
            start = fs.clock.now
            fd = fs.open(path, "r")
            fs.read(fd, 1 << 20)
            fs.close(fd)
            return fs.clock.now - start

        assert read_all("/ssd/in.dat") < read_all("/pfs/in.dat")


class TestTieredCache:
    def _cache(self, fs, ram=10_000, ssd=100_000):
        return TieredCache(fs, [
            BufferTier("ram", "/ram", ram),
            BufferTier("ssd", "/ssd", ssd),
        ])

    def test_place_into_fastest_tier(self, fs):
        make_file(fs, "/pfs/hot.dat", 1000)
        cache = self._cache(fs)
        replica = cache.place("/pfs/hot.dat")
        assert replica.startswith("/ram/")
        assert cache.resolve("/pfs/hot.dat") == replica
        assert cache.is_cached("/pfs/hot.dat")

    def test_overflow_falls_to_next_tier(self, fs):
        make_file(fs, "/pfs/big.dat", 50_000)
        cache = self._cache(fs, ram=10_000)
        replica = cache.place("/pfs/big.dat")
        assert replica.startswith("/ssd/")

    def test_too_big_everywhere_returns_original(self, fs):
        make_file(fs, "/pfs/huge.dat", 1_000_000)
        cache = self._cache(fs, ram=10, ssd=10)
        assert cache.place("/pfs/huge.dat") == "/pfs/huge.dat"
        assert not cache.is_cached("/pfs/huge.dat")

    def test_place_idempotent(self, fs):
        make_file(fs, "/pfs/a.dat", 100)
        cache = self._cache(fs)
        r1 = cache.place("/pfs/a.dat")
        ops_before = fs.op_count()
        r2 = cache.place("/pfs/a.dat")
        assert r1 == r2
        assert fs.op_count() == ops_before  # no second copy

    def test_named_tier_placement(self, fs):
        make_file(fs, "/pfs/a.dat", 100)
        cache = self._cache(fs)
        replica = cache.place("/pfs/a.dat", tier_name="ssd")
        assert replica.startswith("/ssd/")

    def test_named_tier_eviction_demotes(self, fs):
        cache = self._cache(fs, ram=1000)
        make_file(fs, "/pfs/a.dat", 800)
        make_file(fs, "/pfs/b.dat", 800)
        cache.place("/pfs/a.dat", tier_name="ram")
        cache.place("/pfs/b.dat", tier_name="ram")
        # a was demoted to ssd, b lives in ram.
        assert cache.resolve("/pfs/a.dat").startswith("/ssd/")
        assert cache.resolve("/pfs/b.dat").startswith("/ram/")

    def test_unknown_tier_rejected(self, fs):
        make_file(fs, "/pfs/a.dat", 10)
        with pytest.raises(KeyError):
            self._cache(fs).place("/pfs/a.dat", tier_name="tape")

    def test_evict(self, fs):
        make_file(fs, "/pfs/a.dat", 100)
        cache = self._cache(fs)
        replica = cache.place("/pfs/a.dat")
        cache.evict("/pfs/a.dat")
        assert not fs.exists(replica)
        assert cache.resolve("/pfs/a.dat") == "/pfs/a.dat"
        assert cache.utilization()["ram"] == 0.0

    def test_resolve_uncached_passthrough(self, fs):
        assert self._cache(fs).resolve("/pfs/na.dat") == "/pfs/na.dat"

    def test_validation(self, fs):
        with pytest.raises(ValueError):
            TieredCache(fs, [])
        with pytest.raises(ValueError):
            TieredCache(fs, [BufferTier("x", "/ram", 1), BufferTier("x", "/ssd", 1)])


class TestConsolidation:
    def _scatter_file(self, fs, path="/pfs/scatter.h5", n=16, elems=25):
        with H5File(fs, path, "w") as f:
            for i in range(n):
                f.create_dataset(
                    f"s{i:02d}", shape=(elems,), dtype="i4",
                    data=np.arange(elems, dtype=np.int32) + i,
                )
        return path

    def test_roundtrip_members(self, fs):
        src = self._scatter_file(fs)
        index = consolidate_datasets(fs, src, "/pfs/merged.h5")
        assert len(index) == 16
        with H5File(fs, "/pfs/merged.h5", "r") as f:
            big = f["consolidated"]
            got = read_consolidated(big, "s03")
            np.testing.assert_array_equal(got, np.arange(25, dtype=np.int32) + 3)

    def test_missing_member_rejected(self, fs):
        src = self._scatter_file(fs, n=2)
        consolidate_datasets(fs, src, "/pfs/m.h5")
        with H5File(fs, "/pfs/m.h5", "r") as f:
            with pytest.raises(H5NameError):
                read_consolidated(f["consolidated"], "nope")

    def test_vlen_rejected(self, fs):
        with H5File(fs, "/pfs/v.h5", "w") as f:
            f.create_dataset("v", shape=(2,), dtype="vlen-bytes",
                             data=[b"a", b"bb"])
        with pytest.raises(H5LayoutError):
            consolidate_datasets(fs, "/pfs/v.h5", "/pfs/out.h5")

    def test_multidim_member_shape_preserved(self, fs):
        with H5File(fs, "/pfs/md.h5", "w") as f:
            f.create_dataset("m", shape=(3, 4), dtype="f8",
                             data=np.arange(12.0).reshape(3, 4))
        consolidate_datasets(fs, "/pfs/md.h5", "/pfs/md_out.h5")
        with H5File(fs, "/pfs/md_out.h5", "r") as f:
            got = read_consolidated(f["consolidated"], "m")
            assert got.shape == (3, 4)
            np.testing.assert_array_equal(got, np.arange(12.0).reshape(3, 4))

    def test_consolidated_reads_cost_fewer_ops(self, fs):
        """The point of the optimization: reading every member from the
        consolidated file takes fewer POSIX ops than the scattered file."""
        src = self._scatter_file(fs, n=32, elems=8)
        consolidate_datasets(fs, src, "/pfs/merged.h5")

        fs.clear_log()
        with H5File(fs, src, "r") as f:
            for d in f.root.datasets():
                d.read()
        scattered_ops = fs.op_count(op="read")

        fs.clear_log()
        with H5File(fs, "/pfs/merged.h5", "r") as f:
            big = f["consolidated"]
            for i in range(32):
                read_consolidated(big, f"s{i:02d}")
        consolidated_ops = fs.op_count(op="read")
        assert consolidated_ops < scattered_ops


class TestLayoutConvert:
    def _chunked_file(self, fs, path="/pfs/c.h5"):
        with H5File(fs, path, "w") as f:
            f.create_dataset("a", shape=(200,), dtype="f8",
                             layout="chunked", chunks=(16,),
                             data=np.arange(200.0))
            d = f.create_dataset("g/b", shape=(50,), dtype="i4",
                                 layout="chunked", chunks=(8,),
                                 data=np.arange(50, dtype=np.int32))
            d.attrs["unit"] = "counts"
        return path

    def test_convert_to_contiguous(self, fs):
        src = self._chunked_file(fs)
        n = convert_layout(fs, src, "/pfs/contig.h5", layout="contiguous")
        assert n == 2
        with H5File(fs, "/pfs/contig.h5", "r") as f:
            assert f["a"].layout_name == "contiguous"
            assert f["g/b"].layout_name == "contiguous"
            np.testing.assert_array_equal(f["a"].read(), np.arange(200.0))
            assert f["g/b"].attrs["unit"] == "counts"

    def test_convert_to_chunked(self, fs):
        with H5File(fs, "/pfs/flat.h5", "w") as f:
            f.create_dataset("x", shape=(100,), dtype="f8",
                             data=np.arange(100.0))
        convert_layout(fs, "/pfs/flat.h5", "/pfs/ch.h5", layout="chunked",
                       default_chunk_elements=25)
        with H5File(fs, "/pfs/ch.h5", "r") as f:
            assert f["x"].layout_name == "chunked"
            assert f["x"].chunks == (25,)
            np.testing.assert_array_equal(f["x"].read(), np.arange(100.0))

    def test_explicit_chunks_for(self, fs):
        with H5File(fs, "/pfs/flat.h5", "w") as f:
            f.create_dataset("x", shape=(100,), dtype="f8", data=np.zeros(100))
        convert_layout(fs, "/pfs/flat.h5", "/pfs/ch.h5", layout="chunked",
                       chunks_for={"/x": (10,)})
        with H5File(fs, "/pfs/ch.h5", "r") as f:
            assert f["x"].chunks == (10,)

    def test_auto_small_becomes_contiguous(self, fs):
        src = self._chunked_file(fs)
        convert_layout(fs, src, "/pfs/auto.h5", layout="auto")
        with H5File(fs, "/pfs/auto.h5", "r") as f:
            assert f["a"].layout_name == "contiguous"  # small fixed data

    def test_auto_vlen_becomes_chunked(self, fs):
        with H5File(fs, "/pfs/v.h5", "w") as f:
            f.create_dataset("v", shape=(20,), dtype="vlen-bytes",
                             data=[b"z" * (i + 1) for i in range(20)])
        convert_layout(fs, "/pfs/v.h5", "/pfs/v2.h5", layout="auto")
        with H5File(fs, "/pfs/v2.h5", "r") as f:
            assert f["v"].layout_name == "chunked"
            assert f["v"].read() == [b"z" * (i + 1) for i in range(20)]

    def test_bad_layout_rejected(self, fs):
        with pytest.raises(H5LayoutError):
            convert_layout(fs, "/x", "/y", layout="diagonal")

    def test_contiguous_conversion_reduces_ops_for_small_data(self, fs):
        """The DDMD Figure 13b effect: contiguous rewrites of small chunked
        datasets need fewer read ops."""
        src = self._chunked_file(fs)
        convert_layout(fs, src, "/pfs/contig.h5", layout="contiguous")

        def read_ops(path):
            fs.clear_log()
            with H5File(fs, path, "r") as f:
                f["a"].read()
                f["g/b"].read()
            return fs.op_count(op="read")

        assert read_ops("/pfs/contig.h5") < read_ops(src)
