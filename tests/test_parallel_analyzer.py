"""Incremental/parallel graph construction: the span helpers, the
commutative edge-stat merge, largest-remainder region apportionment,
GraphBuilder, and ParallelAnalyzer equivalence with the serial builders
on real workloads."""

import pytest

from repro.analyzer import (
    GraphBuilder,
    ParallelAnalyzer,
    RunSummary,
    build_ftg,
    build_sdg,
    compare_runs,
    graph_to_json,
    merge_edge_stats,
    merge_graph_inplace,
    opt_max,
    opt_min,
    summarize_run,
)
from repro.analyzer.graphs import _apportion
from repro.mapper.mapper import TaskProfile
from repro.mapper.stats import DatasetIoStats
from repro.simclock import TimeSpan
from tests.test_workloads import run_workload


def make_stats(task, file="/pfs/f.h5", obj="/d", **kw):
    s = DatasetIoStats(task=task, file=file, data_object=obj)
    for name, value in kw.items():
        setattr(s, name, value)
    return s


def make_profile(task, t, stats):
    return TaskProfile(task=task, span=TimeSpan(float(t), float(t) + 1.0),
                       files=sorted({s.file for s in stats}),
                       object_profiles=[], file_sessions=[], io_records=[],
                       dataset_stats=stats)


class TestSpanHelpers:
    def test_none_is_identity(self):
        assert opt_min(None, 3.0) == 3.0
        assert opt_min(3.0, None) == 3.0
        assert opt_max(None, -1) == -1
        assert opt_max(-1, None) == -1
        assert opt_min(None, None) is None
        assert opt_max(None, None) is None

    def test_plain_min_max(self):
        assert opt_min(2.0, 5.0) == 2.0
        assert opt_max(2.0, 5.0) == 5.0
        # zero is a real observation, not a missing one
        assert opt_min(0.0, 5.0) == 0.0
        assert opt_max(0.0, -5.0) == 0.0


class TestMergeEdgeStats:
    def delta(self, **kw):
        d = {"count": 0, "volume": 0, "data_ops": 0, "data_bytes": 0,
             "metadata_ops": 0, "metadata_bytes": 0, "start": None,
             "end": None, "_io_times": []}
        d.update(kw)
        return d

    def test_commutative(self):
        a = self.delta(count=2, volume=100, start=1.0, end=2.0,
                       _io_times=[0.1])
        b = self.delta(count=3, volume=50, start=0.5, end=5.0,
                       _io_times=[0.2, 0.3])
        ab = merge_edge_stats(merge_edge_stats({}, dict(a)), dict(b))
        ba = merge_edge_stats(merge_edge_stats({}, dict(b)), dict(a))
        ab["_io_times"] = sorted(ab["_io_times"])
        ba["_io_times"] = sorted(ba["_io_times"])
        assert ab == ba
        assert ab["count"] == 5 and ab["volume"] == 150
        assert ab["start"] == 0.5 and ab["end"] == 5.0

    def test_none_spans_do_not_shadow(self):
        a = self.delta(start=None, end=None)
        b = self.delta(start=2.0, end=3.0)
        merged = merge_edge_stats(merge_edge_stats({}, a), b)
        assert merged["start"] == 2.0 and merged["end"] == 3.0


class TestApportionment:
    def test_conserves_total(self):
        for total in (0, 1, 7, 100, 12345):
            for weights in ([1], [1, 1, 1], [5, 3, 1], [1, 0, 2],
                            [97, 1, 1, 1]):
                shares = _apportion(total, weights)
                assert sum(shares) == total, (total, weights)
                assert all(x >= 0 for x in shares)

    def test_proportionality(self):
        assert _apportion(100, [3, 1]) == [75, 25]
        assert _apportion(10, [1, 1, 1]) in ([4, 3, 3], [3, 4, 3])
        # a zero weight never receives anything
        assert _apportion(9, [0, 3])[0] == 0

    def test_region_edges_conserve_stats(self):
        # One dataset spread over three far-apart regions with uneven
        # page-op counts: per-region slices must sum back exactly.
        s = make_stats("t0", reads=7, writes=5, bytes_read=7001,
                       bytes_written=4999, data_ops=9, data_bytes=12000,
                       metadata_ops=3, metadata_bytes=300, io_time=0.25,
                       first_start=0.0, last_end=1.0)
        s.regions = {0: 4, 1: 1, 64: 2, 129: 1}  # regions 0, 4, 8 @16 ppr
        p = make_profile("t0", 0, [s])
        g = build_sdg([p], with_regions=True, region_bytes=65536,
                      page_size=4096)
        d = "dataset:/pfs/f.h5:/d"
        region_out = [g.edges[d, v] for v in g.successors(d)
                      if g.nodes[v]["kind"] == "region"]
        region_in = [g.edges[u, d] for u in g.predecessors(d)
                     if g.nodes[u]["kind"] == "region"]
        assert len(region_out) == 3
        assert sum(e["count"] for e in region_out) == s.writes
        assert sum(e["volume"] for e in region_out) == s.bytes_written
        assert sum(e["count"] for e in region_in) == s.reads
        assert sum(e["volume"] for e in region_in) == s.bytes_read
        assert sum(e["metadata_ops"] for e in region_in) == s.metadata_ops
        assert sum(e["io_time"] for e in region_in) == pytest.approx(s.io_time)


class TestGraphBuilder:
    def profiles(self):
        out = []
        for t in range(6):
            stats = [
                make_stats(f"t{t}", file=f"/pfs/f{(t + j) % 3}.h5",
                           obj=f"/d{j}", reads=2 + j, bytes_read=100 * (j + 1),
                           writes=t % 2, bytes_written=50 * (t % 2),
                           data_ops=2, data_bytes=80, io_time=0.01,
                           first_start=float(t), last_end=float(t) + 0.5)
                for j in range(3)
            ]
            out.append(make_profile(f"t{t}", t, stats))
        return out

    def test_incremental_equals_batch(self):
        profiles = self.profiles()
        builder = GraphBuilder("sdg", with_regions=False)
        for p in profiles:
            builder.add_profile(p)
        assert graph_to_json(builder.build()) == \
               graph_to_json(build_sdg(profiles))

    def test_build_then_keep_adding(self):
        profiles = self.profiles()
        builder = GraphBuilder("ftg")
        builder.add_profiles(profiles[:3])
        early = builder.build()  # copy semantics: builder stays usable
        assert graph_to_json(early) == graph_to_json(build_ftg(profiles[:3]))
        builder.add_profiles(profiles[3:])
        assert graph_to_json(builder.build()) == \
               graph_to_json(build_ftg(profiles))

    def test_shard_merge_equals_serial(self):
        profiles = self.profiles()
        serial = build_sdg(profiles, with_regions=True, region_bytes=65536)
        shards = [profiles[:2], profiles[2:4], profiles[4:]]
        built = []
        base = 0
        for shard in shards:
            b = GraphBuilder("sdg", with_regions=True, region_bytes=65536,
                             seq_base=base)
            b.add_profiles(shard)
            built.append(b.graph)
            base += len(shard)
        merged = built[0]
        for g in built[1:]:
            merge_graph_inplace(merged, g)
        from repro.analyzer import finalize_graph

        finalize_graph(merged, with_regions=True)
        assert graph_to_json(merged) == graph_to_json(serial)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            GraphBuilder("dag")


@pytest.fixture(scope="module")
def pyflextrkr_profiles():
    from repro.workloads import (PyflextrkrParams, build_pyflextrkr,
                                 prepare_pyflextrkr_inputs)

    params = PyflextrkrParams(n_files=4, grid=512, n_parallel=2,
                              small_datasets=16, speed_reads=3)
    _, mapper, _ = run_workload(build_pyflextrkr, params,
                                prepare=prepare_pyflextrkr_inputs)
    return list(mapper.profiles.values())


@pytest.fixture(scope="module")
def ddmd_profiles():
    from repro.workloads import DdmdParams, build_ddmd

    params = DdmdParams(n_sim_tasks=4, frames=32, epochs=6)
    _, mapper, _ = run_workload(build_ddmd, params)
    return list(mapper.profiles.values())


class TestParallelAnalyzer:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_pyflextrkr_graphs_identical(self, pyflextrkr_profiles, workers,
                                         tmp_path):
        self._check(pyflextrkr_profiles, workers, tmp_path)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_ddmd_graphs_identical(self, ddmd_profiles, workers, tmp_path):
        self._check(ddmd_profiles, workers, tmp_path)

    def _check(self, profiles, workers, tmp_path):
        from repro.mapper import codec

        for p in profiles:
            (tmp_path / f"{p.task}{codec.BINARY_TRACE_SUFFIX}").write_bytes(
                codec.encode_profile(p))
        ordered = sorted(profiles, key=lambda p: p.span.start)
        serial_ftg = graph_to_json(build_ftg(ordered))
        serial_sdg = graph_to_json(build_sdg(ordered, with_regions=True,
                                             region_bytes=65536))
        analyzer = ParallelAnalyzer(max_workers=workers, shard_size=3)
        result = analyzer.analyze(str(tmp_path), with_regions=True,
                                  region_bytes=65536)
        assert [p.task for p in result.profiles] == [p.task for p in ordered]
        assert graph_to_json(result.ftg) == serial_ftg
        assert graph_to_json(result.sdg) == serial_sdg

    def test_load_skips_records_by_default(self, pyflextrkr_profiles,
                                           tmp_path):
        from repro.mapper import codec

        for p in pyflextrkr_profiles:
            (tmp_path / f"{p.task}{codec.BINARY_TRACE_SUFFIX}").write_bytes(
                codec.encode_profile(p))
        loaded = ParallelAnalyzer(max_workers=1).load(str(tmp_path))
        assert all(p.io_records == [] for p in loaded)
        assert any(p.dataset_stats for p in loaded)
        full = ParallelAnalyzer(max_workers=1,
                                with_io_records=True).load(str(tmp_path))
        assert sum(len(p.io_records) for p in full) == \
               sum(len(p.io_records) for p in pyflextrkr_profiles)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ParallelAnalyzer(max_workers=0)
        with pytest.raises(ValueError):
            ParallelAnalyzer(shard_size=0)


class TestRunSummary:
    def test_summary_equivalent_to_profiles(self, ddmd_profiles):
        baseline = summarize_run(ddmd_profiles)
        assert isinstance(baseline, RunSummary)
        via_summary = compare_runs(baseline, ddmd_profiles)
        via_profiles = compare_runs(ddmd_profiles, ddmd_profiles)
        assert via_summary.task_rows == via_profiles.task_rows
        assert via_summary.file_rows == via_profiles.file_rows
        assert via_summary.total_io_time_delta == 0.0


class TestStatsIndex:
    def test_stats_for_matches_linear_scan(self, pyflextrkr_profiles):
        for p in pyflextrkr_profiles:
            objects = {s.data_object for s in p.dataset_stats}
            for obj in objects:
                want = [s for s in p.dataset_stats if s.data_object == obj]
                assert p.stats_for(obj) == want
            assert p.stats_for("/definitely/not/there") == []
