"""Tests for ``repro.service`` — the streaming ingest + query plane.

Covers the atomic-write helpers (:mod:`repro.ioutil`), the durable
multi-tenant :class:`RunStore`, the deterministic :class:`RunState`
fold, the HTTP surface end to end (via a real server on an ephemeral
port), and the acceptance property: seeded interleavings of N
concurrent uploading clients produce FTG/SDG/findings byte-identical
to the offline ``dayu-compact`` + ``dayu-analyze`` pipeline — including
after a simulated ``kill -9`` and restart.
"""

import asyncio
import json
import random
import threading
from pathlib import Path

import numpy as np
import pytest

from repro import ioutil
from repro.cli import analyze_main, run_main
from repro.mapper import DaYuConfig, DataSemanticMapper
from repro.mapper.compact import compact_main
from repro.mapper.persist import load_profiles_from_host_dir
from repro.posix import SimFS
from repro.service import DayuService, RunState, RunStore, ServiceConfig, TenantQuota
from repro.service.client import ServiceClient, ServiceClientError, client_main
from repro.service.errors import BadName, QuotaExceeded, UnknownRun
from repro.service.loadgen import percentile, run_load
from repro.simclock import SimClock
from repro.storage import Mount, make_device


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ddmd(tmp_path_factory):
    """A small ddmd run plus its offline reference artifacts:
    ``dayu-compact`` over the traces, then ``dayu-analyze
    --graph-json --lint`` over the compacted run."""
    base = tmp_path_factory.mktemp("ddmd")
    traces = base / "traces"
    assert run_main(["ddmd", "--out", str(traces), "--scale", "0.25",
                     "--nodes", "2"]) == 0
    compacted = base / "compacted"
    compacted.mkdir()
    assert compact_main([str(traces), "--out",
                         str(compacted / "run.dayuc")]) == 0
    ref = base / "ref"
    assert analyze_main([str(compacted), "--out", str(ref),
                         "--graph-json", "--lint"]) == 0
    return {
        "traces": traces,
        "ftg": (ref / "ftg.json").read_bytes(),
        "sdg": (ref / "sdg.json").read_bytes(),
        "lint": (ref / "lint.json").read_bytes(),
    }


@pytest.fixture()
def small_profiles():
    """Three tiny profiles with distinct spans (producer/consumer/reader)."""
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
    mapper = DataSemanticMapper(clock, DaYuConfig())
    with mapper.task("producer") as ctx:
        f = ctx.open(fs, "/d.h5", "w")
        f.create_dataset("x", shape=(64,), dtype="f8", layout="chunked",
                         chunks=(16,), data=np.arange(64.0))
        f.close()
    with mapper.task("consumer") as ctx:
        f = ctx.open(fs, "/d.h5", "r")
        f["x"].read()
        f.close()
    with mapper.task("reader") as ctx:
        f = ctx.open(fs, "/d.h5", "r")
        f["x"].read()
        f.close()
    return list(mapper.profiles.values())


class ServiceThread:
    """Run a :class:`DayuService` event loop in a background thread so
    synchronous test code (and the async load generator, on its own
    loop) can talk to a real listening socket."""

    def __init__(self, config: ServiceConfig) -> None:
        self.service = DayuService(config)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.host = self.port = None

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self.host, self.port = self._loop.run_until_complete(
            self.service.start())
        self._ready.set()
        self._loop.run_forever()
        self._loop.close()

    def start(self) -> "ServiceThread":
        self._thread.start()
        assert self._ready.wait(10), "service failed to start"
        return self

    def stop(self, compact: bool = False) -> None:
        """Graceful stop; ``compact=False`` leaves the store exactly as
        acknowledged — the closest a test gets to ``kill -9``."""
        fut = asyncio.run_coroutine_threadsafe(
            self.service.stop(compact=compact), self._loop)
        fut.result(10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10)

    def client(self, token=None) -> ServiceClient:
        return ServiceClient(self.host, self.port, token=token)


@pytest.fixture()
def server(tmp_path):
    st = ServiceThread(ServiceConfig(root=str(tmp_path / "store"),
                                     compact_after=0)).start()
    yield st
    st.stop()


# ----------------------------------------------------------------------
# ioutil: atomic writers
# ----------------------------------------------------------------------
class TestAtomicWriters:
    def test_text_bytes_json_round_trip(self, tmp_path):
        ioutil.atomic_write_text(tmp_path / "a.txt", "hi\n")
        assert (tmp_path / "a.txt").read_text() == "hi\n"
        ioutil.atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"
        ioutil.atomic_write_json(tmp_path / "c.json", {"b": 1, "a": 2},
                                 sort_keys=True)
        text = (tmp_path / "c.json").read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 2, "b": 1}

    def test_no_tmp_droppings_after_success(self, tmp_path):
        ioutil.atomic_write_text(tmp_path / "a.txt", "x")
        names = [p.name for p in tmp_path.iterdir()]
        assert names == ["a.txt"]

    def test_unserializable_json_leaves_no_file(self, tmp_path):
        target = tmp_path / "bad.json"
        with pytest.raises(TypeError):
            ioutil.atomic_write_json(target, {"x": {1, 2}})
        assert not target.exists()
        assert not any(ioutil.is_tmp_dropping(p.name)
                       for p in tmp_path.iterdir())

    def test_replace_is_atomic_over_existing(self, tmp_path):
        target = tmp_path / "a.txt"
        ioutil.atomic_write_text(target, "old")
        ioutil.atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_is_tmp_dropping(self):
        assert ioutil.is_tmp_dropping(".tmp-abc123")
        assert not ioutil.is_tmp_dropping("run.dayuc")


# ----------------------------------------------------------------------
# RunStore
# ----------------------------------------------------------------------
class TestRunStore:
    def test_append_sequences_and_accounting(self, tmp_path, small_profiles):
        store = RunStore(tmp_path / "s")
        p = small_profiles[0]
        r1 = store.append("t", "r", p.serialize(), "json")
        r2 = store.append("t", "r", p.serialize_binary(), "binary")
        assert (r1.seq, r2.seq) == (1, 2)
        assert r1.path.endswith("000001.json")
        assert r2.path.endswith("000002.dayu")
        assert store.bytes_used("t") == r1.nbytes + r2.nbytes

    def test_byte_quota_rejects_before_disk(self, tmp_path, small_profiles):
        store = RunStore(tmp_path / "s",
                         default_quota=TenantQuota(max_bytes=10))
        payload = small_profiles[0].serialize()
        with pytest.raises(QuotaExceeded) as exc:
            store.append("t", "r", payload, "json")
        assert exc.value.details["max_bytes"] == 10
        assert store.bytes_used("t") == 0
        assert not store.run_exists("t", "r")

    def test_run_quota(self, tmp_path, small_profiles):
        store = RunStore(tmp_path / "s",
                         default_quota=TenantQuota(max_runs=1))
        payload = small_profiles[0].serialize()
        store.append("t", "r1", payload, "json")
        with pytest.raises(QuotaExceeded):
            store.append("t", "r2", payload, "json")
        store.append("t", "r1", payload, "json")  # existing run still OK

    def test_bad_names_rejected(self, tmp_path):
        store = RunStore(tmp_path / "s")
        with pytest.raises(BadName):
            store.append("t", "../escape", b"DYU1", "binary")
        with pytest.raises(BadName):
            store.append("bad/tenant", "r", b"DYU1", "binary")

    def test_scan_gc_and_seq_resume(self, tmp_path, small_profiles):
        root = tmp_path / "s"
        store = RunStore(root)
        payload = small_profiles[0].serialize()
        store.append("t", "r", payload, "json")
        store.append("t", "r", small_profiles[1].serialize(),
                     "json")
        # A writer died mid-upload: only its tmp dropping remains.
        dropping = store.incoming_dir("t", "r") / ".tmp-deadbeef"
        dropping.write_bytes(b"partial")
        reopened = RunStore(root)
        assert not dropping.exists()
        receipt = reopened.append("t", "r",
                                  small_profiles[2].serialize(),
                                  "json")
        assert receipt.seq == 3
        assert reopened.bytes_used("t") == store.bytes_used("t") \
            + receipt.nbytes

    def test_duplicate_task_dedup(self, tmp_path, small_profiles):
        store = RunStore(tmp_path / "s")
        payload = small_profiles[0].serialize()
        store.append("t", "r", payload, "json")
        store.append("t", "r", payload, "json")
        profiles = store.load_profiles("t", "r")
        assert [p.task for p in profiles] == [small_profiles[0].task]

    def test_compact_preserves_profiles_and_shrinks(self, tmp_path,
                                                    small_profiles):
        store = RunStore(tmp_path / "s")
        for p in small_profiles:
            store.append("t", "r", p.serialize(), "json")
        before = {p.task for p in store.load_profiles("t", "r")}
        used_before = store.bytes_used("t")
        nbytes = store.compact("t", "r")
        assert nbytes > 0
        assert store.incoming("t", "r") == []
        assert store.run_file("t", "r").exists()
        assert {p.task for p in store.load_profiles("t", "r")} == before
        assert store.bytes_used("t") == nbytes < used_before
        assert store.compact("t", "r") == 0  # nothing new

    def test_crash_between_compact_and_cleanup(self, tmp_path,
                                               small_profiles):
        """run.dayuc written but incoming not yet deleted: every task
        still counts exactly once (run file wins)."""
        store = RunStore(tmp_path / "s")
        payload = small_profiles[0].serialize()
        store.append("t", "r", payload, "json")
        store.compact("t", "r")
        # Re-materialize the absorbed incoming file, as if the crash
        # happened between the rename and the unlink.
        leftover = store.incoming_dir("t", "r") / "000001.json"
        leftover.write_bytes(payload)
        reopened = RunStore(tmp_path / "s")
        profiles = reopened.load_profiles("t", "r")
        assert [p.task for p in profiles] == [small_profiles[0].task]

    def test_delete_run_frees_quota(self, tmp_path, small_profiles):
        store = RunStore(tmp_path / "s")
        store.append("t", "r", small_profiles[0].serialize(),
                     "json")
        freed = store.delete_run("t", "r")
        assert freed > 0
        assert store.bytes_used("t") == 0
        with pytest.raises(UnknownRun):
            store.load_profiles("t", "r")

    def test_baseline_round_trip_and_version(self, tmp_path):
        store = RunStore(tmp_path / "s")
        assert store.baseline("t") == set()
        assert store.baseline_version("t") == 0
        n = store.set_baseline("t", "abc123  # DY103 foo\n")
        assert n == 1
        assert store.baseline("t") == {"abc123"}
        assert store.baseline_version("t") == 1


# ----------------------------------------------------------------------
# RunState determinism
# ----------------------------------------------------------------------
class TestRunState:
    def test_any_arrival_order_same_bytes(self, ddmd):
        profiles = load_profiles_from_host_dir(str(ddmd["traces"]),
                                               with_io_records=False)
        reference = RunState(sorted(profiles,
                                    key=lambda p: (p.span.start, p.task)))
        ref_ftg = reference.graph_json("ftg")
        ref_sdg = reference.graph_json("sdg")
        ref_findings = reference.findings_json()
        for seed in range(5):
            shuffled = list(profiles)
            random.Random(seed).shuffle(shuffled)
            state = RunState()
            # Deliver in uneven chunks, like interleaved uploads.
            rng = random.Random(seed + 100)
            i = 0
            while i < len(shuffled):
                n = rng.randint(1, 3)
                state.add_profiles(shuffled[i:i + n])
                i += n
            assert state.graph_json("ftg") == ref_ftg, f"seed {seed}"
            assert state.graph_json("sdg") == ref_sdg, f"seed {seed}"
            assert state.findings_json() == ref_findings, f"seed {seed}"

    def test_duplicate_tasks_ignored(self, small_profiles):
        state = RunState(small_profiles)
        v = state.version
        assert state.add_profiles(small_profiles) == 0
        assert state.version == v

    def test_incremental_matches_refold(self, small_profiles):
        ordered = sorted(small_profiles,
                         key=lambda p: (p.span.start, p.task))
        # In-order: pure incremental fold, no rebuild.
        inc = RunState()
        for p in ordered:
            inc.add_profiles([p])
        # Reverse order: every add lands before the folded prefix.
        rev = RunState()
        for p in reversed(ordered):
            rev.add_profiles([p])
        assert inc.graph_json("ftg") == rev.graph_json("ftg")
        assert inc.graph_json("sdg") == rev.graph_json("sdg")


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
class TestServiceHttp:
    def test_healthz_and_unknown_endpoint(self, server):
        with server.client() as c:
            assert c.healthz() == {"status": "ok"}
            with pytest.raises(ServiceClientError) as exc:
                c._json("GET", "/nope")
            assert exc.value.status == 404
            assert exc.value.code == "not-found"

    def test_upload_all_three_formats(self, server, small_profiles):
        with server.client() as c:
            p1, p2, p3 = small_profiles
            r = c.upload("r", p1.serialize())
            assert (r["format"], r["added"]) == ("json", 1)
            r = c.upload("r", p2.serialize_binary())
            assert (r["format"], r["added"]) == ("binary", 1)
            r = c.upload("r", p3.serialize_columnar())
            assert (r["format"], r["added"]) == ("columnar", 1)
            info = c.run_info("r")
            assert info["profiles"] == 3
            assert info["tasks"] == sorted(p.task for p in small_profiles)

    def test_truncated_upload_typed_error(self, server):
        with server.client() as c:
            for payload in (b"", b"DY"):
                with pytest.raises(ServiceClientError) as exc:
                    c.upload("r", payload)
                assert exc.value.status == 400
                assert exc.value.code == "unknown-trace-format"
                assert exc.value.details["size"] == len(payload)
            # Nothing was stored for the rejected uploads.
            assert c.runs()["runs"] == []

    def test_malformed_upload_typed_error(self, server):
        with server.client() as c:
            with pytest.raises(ServiceClientError) as exc:
                c.upload("r", b"DYU1garbage-after-magic")
            assert exc.value.code == "malformed-trace"
            assert exc.value.details["format"] == "binary"
            assert c.runs()["bytes_used"] == 0

    def test_chunked_upload_equivalent(self, server, small_profiles):
        with server.client() as c:
            payload = small_profiles[0].serialize()
            r = c.upload("r", payload, chunked=True)
            assert r["added"] == 1 and r["bytes"] == len(payload)
            # Same trace re-uploaded plainly: stored, but folds to 0 new.
            assert c.upload("r", payload)["added"] == 0

    def test_unknown_run_and_bad_name(self, server):
        with server.client() as c:
            with pytest.raises(ServiceClientError) as exc:
                c.graph("ghost", "ftg")
            assert exc.value.code == "unknown-run"
            with pytest.raises(ServiceClientError) as exc:
                c.upload("..", b"DYU1")
            assert exc.value.code == "bad-name"

    def test_method_not_allowed(self, server):
        with server.client() as c:
            with pytest.raises(ServiceClientError) as exc:
                c._json("DELETE", "/runs")
            assert exc.value.status == 405

    def test_metrics_exposition(self, server, small_profiles):
        with server.client() as c:
            c.upload("r", small_profiles[0].serialize())
            c.graph("r", "ftg")
            text = c.metrics()
        samples = {}
        for line in text.splitlines():
            assert line.startswith(("#", "dayu_")), line
            if not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value)
        assert samples['dayu_service_ingest_traces_total{tenant="public"}'] \
            == 1.0
        assert any(k.startswith("dayu_service_requests_total")
                   for k in samples)
        assert any(k.startswith("dayu_service_request_seconds_bucket")
                   for k in samples)

    def test_delete_run(self, server, small_profiles):
        with server.client() as c:
            c.upload("r", small_profiles[0].serialize())
            assert c.delete("r")["freed_bytes"] > 0
            with pytest.raises(ServiceClientError) as exc:
                c.run_info("r")
            assert exc.value.code == "unknown-run"


class TestTenancy:
    @pytest.fixture()
    def multi(self, tmp_path):
        config = ServiceConfig(
            root=str(tmp_path / "store"),
            tokens={"tok-a": "alice", "tok-b": "bob"},
            quotas={"bob": TenantQuota(max_bytes=100)},
            compact_after=0)
        st = ServiceThread(config).start()
        yield st
        st.stop()

    def test_auth_required_and_unknown_token(self, multi):
        with multi.client() as c:
            with pytest.raises(ServiceClientError) as exc:
                c.runs()
            assert exc.value.status == 401
        with multi.client(token="wrong") as c:
            with pytest.raises(ServiceClientError) as exc:
                c.runs()
            assert exc.value.code == "unauthorized"

    def test_tenants_are_isolated(self, multi, small_profiles):
        with multi.client(token="tok-a") as alice:
            alice.upload("r", small_profiles[0].serialize())
            assert [r["run"] for r in alice.runs()["runs"]] == ["r"]
        with multi.client(token="tok-b") as bob:
            assert bob.runs()["runs"] == []
            with pytest.raises(ServiceClientError) as exc:
                bob.graph("r", "ftg")
            assert exc.value.code == "unknown-run"

    def test_per_tenant_quota(self, multi, small_profiles):
        payload = small_profiles[0].serialize()
        with multi.client(token="tok-b") as bob:
            with pytest.raises(ServiceClientError) as exc:
                bob.upload("r", payload)
            assert exc.value.status == 413
            assert exc.value.code == "quota-exceeded"
        # Alice's default quota is unlimited.
        with multi.client(token="tok-a") as alice:
            assert alice.upload("r", payload)["added"] == 1

    def test_per_tenant_baseline_suppression(self, multi, ddmd):
        with multi.client(token="tok-a") as alice:
            for path in sorted(ddmd["traces"].iterdir()):
                alice.upload("ddmd", path.read_bytes())
            report = json.loads(alice.findings("ddmd"))
            assert report["findings"], "expected lint findings"
            fingerprint = report["findings"][0]["fingerprint"]
            alice.set_baseline(f"{fingerprint}  # accepted\n")
            after = json.loads(alice.findings("ddmd"))
            assert fingerprint in after["suppressed"]
            assert fingerprint not in {f["fingerprint"]
                                       for f in after["findings"]}
            assert alice.baseline().startswith(fingerprint)
        # Bob's view of the same fingerprints is unaffected (his quota
        # blocks uploads, so just check his baseline is independent).
        with multi.client(token="tok-b") as bob:
            assert bob.baseline() == ""


# ----------------------------------------------------------------------
# Acceptance: concurrent ingest determinism + recovery
# ----------------------------------------------------------------------
class TestByteIdentity:
    def _assert_identical(self, client, run, ddmd):
        assert client.graph(run, "ftg").encode() == ddmd["ftg"]
        assert client.graph(run, "sdg").encode() == ddmd["sdg"]
        assert client.findings(run).encode() == ddmd["lint"]

    def test_concurrent_clients_match_offline(self, server, ddmd):
        payloads = [p.read_bytes()
                    for p in sorted(ddmd["traces"].iterdir())]
        for seed, clients in ((0, 2), (1, 4), (2, 6)):
            run = f"run-seed{seed}"
            jobs = [(run, payload) for payload in payloads]
            random.Random(seed).shuffle(jobs)
            result = run_load(server.host, server.port, jobs,
                              clients=clients)
            assert result.errors == 0
            assert result.uploads == len(payloads)
            assert result.queries == 3 * len(payloads)
            with server.client() as c:
                self._assert_identical(c, run, ddmd)

    def test_kill_and_restart_recovers_every_run(self, tmp_path, ddmd):
        root = str(tmp_path / "store")
        payloads = [p.read_bytes()
                    for p in sorted(ddmd["traces"].iterdir())]
        first = ServiceThread(ServiceConfig(root=root,
                                            compact_after=0)).start()
        with first.client() as c:
            for payload in payloads:
                c.upload("full", payload)
            for payload in payloads:
                c.upload("compacted", payload)
            c.compact("compacted")
        # No graceful compaction pass: the store holds exactly what was
        # acknowledged, as after kill -9.
        first.stop(compact=False)

        second = ServiceThread(ServiceConfig(root=root,
                                             compact_after=0)).start()
        try:
            with second.client() as c:
                names = [r["run"] for r in c.runs()["runs"]]
                assert names == ["compacted", "full"]
                self._assert_identical(c, "full", ddmd)
                self._assert_identical(c, "compacted", ddmd)
        finally:
            second.stop()

    def test_auto_compaction_preserves_identity(self, tmp_path, ddmd):
        st = ServiceThread(ServiceConfig(root=str(tmp_path / "store"),
                                         compact_after=3)).start()
        try:
            with st.client() as c:
                for p in sorted(ddmd["traces"].iterdir()):
                    c.upload("r", p.read_bytes())
                # 6 uploads with compact_after=3: incoming was folded.
                assert len(st.service.store.incoming("public", "r")) < 6
                self._assert_identical(c, "r", ddmd)
        finally:
            st.stop()


# ----------------------------------------------------------------------
# CLIs
# ----------------------------------------------------------------------
class TestClientCli:
    def test_upload_get_round_trip(self, server, ddmd, tmp_path, capsys):
        url = f"http://{server.host}:{server.port}"
        assert client_main([url, "upload", "r",
                            str(ddmd["traces"])]) == 0
        out = capsys.readouterr().out
        assert "done: 6 trace(s)" in out
        out_file = tmp_path / "ftg.json"
        assert client_main([url, "get", "r", "ftg",
                            "--out", str(out_file)]) == 0
        assert out_file.read_bytes() == ddmd["ftg"]
        assert client_main([url, "runs"]) == 0
        assert '"r"' in capsys.readouterr().out
        assert client_main([url, "metrics"]) == 0
        assert "dayu_service_ingest_bytes_total" in capsys.readouterr().out
        assert client_main([url, "compact", "r"]) == 0

    def test_missing_trace_path_exits_2(self, server, tmp_path, capsys):
        url = f"http://{server.host}:{server.port}"
        assert client_main([url, "upload", "r",
                            str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_server_rejection_exits_1(self, server, tmp_path, capsys):
        url = f"http://{server.host}:{server.port}"
        bad = tmp_path / "bad.dayu"
        bad.write_bytes(b"DY")
        assert client_main([url, "upload", "r", str(bad)]) == 1
        assert "unknown-trace-format" in capsys.readouterr().err

    def test_unreachable_server_exits_2(self, capsys):
        assert client_main(["http://127.0.0.1:1", "runs"]) == 2
        assert "cannot reach" in capsys.readouterr().err


class TestServeCli:
    def test_daemon_lifecycle(self, tmp_path, ddmd):
        import os
        import signal
        import subprocess
        import sys
        import time

        port_file = tmp_path / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.cli",
             str(tmp_path / "store"), "--port-file", str(port_file)],
            cwd=str(Path(__file__).resolve().parents[1]),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        try:
            deadline = time.time() + 30
            while not port_file.exists():
                assert proc.poll() is None, proc.stdout.read().decode()
                assert time.time() < deadline, "server never wrote port"
                time.sleep(0.05)
            port = int(port_file.read_text())
            with ServiceClient("127.0.0.1", port) as c:
                assert c.healthz() == {"status": "ok"}
                trace = next(iter(sorted(ddmd["traces"].iterdir())))
                assert c.upload("r", trace.read_bytes())["added"] == 1
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            # Graceful shutdown compacted the run.
            store = RunStore(tmp_path / "store")
            assert store.run_file("public", "r").exists()
            assert store.incoming("public", "r") == []
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_bad_token_file_exits_with_diagnosis(self, tmp_path):
        from repro.service.cli import serve_main

        with pytest.raises(SystemExit) as exc:
            serve_main([str(tmp_path / "store"), "--tokens",
                        str(tmp_path / "missing.json")])
        assert "cannot read token map" in str(exc.value)


class TestLoadgenHelpers:
    def test_percentile_nearest_rank(self):
        assert percentile([], 99) == 0.0
        samples = list(range(1, 101))
        assert percentile(samples, 50) == 50
        assert percentile(samples, 99) == 99
        assert percentile(samples, 100) == 100
