"""Tests for the advisor reports, run comparison, and the netCDF climate
workload."""

import numpy as np
import pytest

from repro.analyzer import compare_runs
from repro.diagnostics import (
    AdvisorReport,
    InsightKind,
    Severity,
    advise,
    diagnose,
)
from repro.diagnostics.insights import Insight
from repro.experiments.common import fresh_env
from repro.mapper import DaYuConfig, DataSemanticMapper
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device
from repro.workloads import ClimateParams, build_climate


def insight(kind, subject="/f.h5", tasks=("t",), **evidence):
    return Insight(kind=kind, subject=subject, tasks=list(tasks),
                   evidence=dict(evidence), description=f"about {subject}")


class TestAdvisorTriage:
    def test_massive_scattering_is_critical(self):
        report = advise([insight(InsightKind.DATA_SCATTERING,
                                 datasets=64, avg_bytes=100)])
        assert report.findings[0].severity is Severity.CRITICAL

    def test_mild_scattering_is_warning(self):
        report = advise([insight(InsightKind.DATA_SCATTERING,
                                 datasets=10, avg_bytes=100)])
        assert report.findings[0].severity is Severity.WARNING

    def test_heavy_metadata_is_critical(self):
        report = advise([insight(InsightKind.METADATA_OVERHEAD,
                                 metadata_fraction=0.7)])
        assert report.findings[0].severity is Severity.CRITICAL

    def test_light_reuse_is_info(self):
        report = advise([insight(InsightKind.DATA_REUSE, consumers=2)])
        assert report.findings[0].severity is Severity.INFO

    def test_wide_reuse_is_warning(self):
        report = advise([insight(InsightKind.DATA_REUSE, consumers=6)])
        assert report.findings[0].severity is Severity.WARNING

    def test_sorted_most_severe_first(self):
        report = advise([
            insight(InsightKind.DATA_REUSE, consumers=2),
            insight(InsightKind.DATA_SCATTERING, datasets=64),
            insight(InsightKind.VLEN_LAYOUT),
        ])
        severities = [f.severity for f in report.findings]
        assert severities == sorted(severities, reverse=True)

    def test_counts_and_filtering(self):
        report = advise([
            insight(InsightKind.DATA_SCATTERING, datasets=64),
            insight(InsightKind.VLEN_LAYOUT),
            insight(InsightKind.DATA_REUSE, consumers=2),
        ])
        counts = report.counts()
        assert counts == {"CRITICAL": 1, "WARNING": 1, "INFO": 1}
        assert len(report.at_least(Severity.WARNING)) == 2

    def test_render_contains_sections_and_actions(self):
        report = advise([
            insight(InsightKind.DATA_SCATTERING, subject="/pfs/s.h5",
                    datasets=64),
            insight(InsightKind.DATA_REUSE, subject="/pfs/hot.h5",
                    consumers=2),
        ])
        text = report.render()
        assert "DaYu I/O Advisor" in text
        assert "CRITICAL" in text and "INFO" in text
        assert "consolidate_datasets: /pfs/s.h5" in text
        assert "cache_in_fast_tier: /pfs/hot.h5" in text

    def test_empty_report_renders(self):
        assert "0 critical" in advise([]).render()

    def test_every_kind_triages(self):
        for kind in InsightKind:
            report = advise([insight(kind)])
            assert isinstance(report.findings[0].severity, Severity)


class TestRunComparison:
    def _run(self, device):
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device(device))])
        mapper = DataSemanticMapper(clock, DaYuConfig())
        with mapper.task("reader") as ctx:
            from repro.hdf5 import H5File
            with H5File(fs, "/d.h5", "w") as f:
                f.create_dataset("x", shape=(50_000,), dtype="f8",
                                 data=np.zeros(50_000))
            f = ctx.open(fs, "/d.h5", "r")
            f["x"].read()
            f.close()
        return list(mapper.profiles.values())

    def test_faster_device_shows_negative_io_delta(self):
        slow = self._run("nfs")
        fast = self._run("nvme")
        cmp = compare_runs(slow, fast)
        assert cmp.total_io_time_delta < 0
        assert cmp.total_ops_delta == pytest.approx(0.0)  # same op counts
        assert "/d.h5" in cmp.improved_files("io_time")
        assert cmp.regressed_files("io_time") == []

    def test_missing_task_appears_as_new(self):
        base = self._run("nvme")
        cmp = compare_runs([], base)
        [row] = cmp.task_rows
        assert row["ops_before"] == 0
        assert row["ops_delta"] == float("inf")

    def test_markdown_rendering(self):
        base = self._run("nfs")
        opt = self._run("nvme")
        md = compare_runs(base, opt).to_markdown()
        assert "Run comparison" in md
        assert "reader" in md
        assert "%" in md


class TestClimateWorkload:
    @pytest.fixture(scope="class")
    def run(self):
        env = fresh_env(n_nodes=2)
        params = ClimateParams(data_dir="/beegfs/climate", n_models=3,
                               timesteps=5, cells=64)
        result = env.runner.run(build_climate(params))
        return env, params, result

    def test_three_stages_execute(self, run):
        env, params, result = run
        assert [s.name for s in result.stage_results] == [
            "simulate", "regrid", "statistics"]
        assert result.wall_time > 0

    def test_netcdf_files_readable(self, run):
        env, params, result = run
        from repro.netcdf import NcFile
        with NcFile(env.cluster.fs, params.member_file(0), "r") as f:
            assert f.numrecs == params.timesteps
            assert set(f.variables()) == {"temperature", "pressure"}
            assert f.get_att("member") == 0
        with NcFile(env.cluster.fs, params.stats_file, "r") as f:
            summary = f.variable("summary").read()
            assert summary[0] <= summary[1] <= summary[2]  # min<=mean<=max

    def test_profiles_capture_record_io(self, run):
        env, params, result = run
        model0 = env.mapper.profiles["model_000"]
        [temp] = [s for s in model0.dataset_stats
                  if s.data_object == "/temperature"]
        assert temp.writes == params.timesteps  # one op per record
        [obj] = [p for p in model0.object_profiles
                 if p.object_name == "/temperature"]
        assert obj.layout == "record"

    def test_regrid_reads_interleaved_records(self, run):
        env, params, result = run
        regrid = env.mapper.profiles["regrid"]
        temp_rows = [s for s in regrid.dataset_stats
                     if s.data_object == "/temperature"]
        assert len(temp_rows) == params.n_models
        # Reading a whole record variable costs one op per record.
        assert all(s.reads == params.timesteps for s in temp_rows)

    def test_diagnostics_work_on_netcdf_profiles(self, run):
        env, params, result = run
        report = diagnose(env.mapper.profiles.values())
        raw = report.by_kind(InsightKind.READ_AFTER_WRITE)
        assert any("merged.nc" in i.subject for i in raw)

    def test_advisor_end_to_end(self, run):
        env, params, result = run
        advisor = advise(diagnose(env.mapper.profiles.values()).insights)
        assert isinstance(advisor, AdvisorReport)
        assert advisor.findings
        assert "DaYu I/O Advisor" in advisor.render()
