"""Unit tests for the simulated clock."""

import pytest
from hypothesis import given, strategies as st

from repro.simclock import SimClock, TimeSpan


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(3.0) == 3.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_nan_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(float("nan"))

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_account_charging(self):
        clock = SimClock()
        clock.advance(1.0, account="io")
        clock.advance(2.0, account="io")
        clock.advance(4.0, account="compute")
        assert clock.account("io") == 3.0
        assert clock.account("compute") == 4.0
        assert clock.account("missing") == 0.0

    def test_accounts_returns_copy(self):
        clock = SimClock()
        clock.advance(1.0, account="io")
        accounts = clock.accounts()
        accounts["io"] = 99.0
        assert clock.account("io") == 1.0

    def test_charge_without_advancing(self):
        clock = SimClock()
        clock.charge("overlapped", 2.5)
        assert clock.now == 0.0
        assert clock.account("overlapped") == 2.5

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge("x", -1.0)

    def test_span_captures_interval(self):
        clock = SimClock()
        with clock.span() as rec:
            clock.advance(2.0)
        assert rec == [0.0, 2.0]

    def test_span_charges_account(self):
        clock = SimClock()
        with clock.span(account="phase"):
            clock.advance(1.25)
        assert clock.account("phase") == 1.25

    def test_marks(self):
        clock = SimClock()
        clock.mark("start")
        clock.advance(1.0)
        clock.mark("end")
        assert clock.marks == [("start", 0.0), ("end", 1.0)]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
    def test_monotonic_under_any_advances(self, steps):
        clock = SimClock()
        prev = clock.now
        for s in steps:
            clock.advance(s)
            assert clock.now >= prev
            prev = clock.now
        assert clock.now == pytest.approx(sum(steps), rel=1e-9, abs=1e-9)


class TestTimeSpan:
    def test_duration(self):
        assert TimeSpan(1.0, 3.5).duration == 2.5

    def test_overlap_true(self):
        assert TimeSpan(0.0, 2.0).overlaps(TimeSpan(1.0, 3.0))
        assert TimeSpan(1.0, 3.0).overlaps(TimeSpan(0.0, 2.0))

    def test_overlap_false_disjoint(self):
        assert not TimeSpan(0.0, 1.0).overlaps(TimeSpan(2.0, 3.0))

    def test_touching_spans_do_not_overlap(self):
        assert not TimeSpan(0.0, 1.0).overlaps(TimeSpan(1.0, 2.0))
