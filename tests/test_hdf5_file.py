"""Integration tests for the HDF5-like container: files, groups, datasets,
attributes, layouts, persistence across sessions, and I/O-shape properties
(the behaviours DaYu exists to observe)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hdf5 import H5File, Selection
from repro.hdf5.errors import H5LayoutError, H5NameError, H5StateError, H5TypeError
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


def make_fs():
    return SimFS(SimClock(), mounts=[Mount("/", make_device("ram"))])


@pytest.fixture()
def fs():
    return make_fs()


class TestFileLifecycle:
    def test_create_and_reopen_empty(self, fs):
        f = H5File(fs, "/a.h5", "w")
        f.close()
        f2 = H5File(fs, "/a.h5", "r")
        assert f2.keys() == []
        f2.close()

    def test_mode_validation(self, fs):
        with pytest.raises(ValueError):
            H5File(fs, "/a.h5", "rw")

    def test_context_manager(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(4,), data=np.arange(4.0))
        assert f.closed

    def test_double_close(self, fs):
        f = H5File(fs, "/a.h5", "w")
        f.close()
        f.close()

    def test_closed_file_rejects_access(self, fs):
        f = H5File(fs, "/a.h5", "w")
        f.close()
        with pytest.raises(H5StateError):
            f.root

    def test_read_only_rejects_create(self, fs):
        H5File(fs, "/a.h5", "w").close()
        f = H5File(fs, "/a.h5", "r")
        with pytest.raises(H5StateError):
            f.create_dataset("d", shape=(1,))
        f.close()

    def test_read_only_rejects_write(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(4,), data=np.zeros(4))
        f = H5File(fs, "/a.h5", "r")
        with pytest.raises(H5StateError):
            f["d"].write(np.ones(4))
        f.close()

    def test_exclusive_create(self, fs):
        H5File(fs, "/a.h5", "x").close()
        with pytest.raises(Exception):
            H5File(fs, "/a.h5", "x")


class TestGroups:
    def test_nested_creation_and_lookup(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            g = f.create_group("one")
            g.create_group("two")
            assert f["one/two"].name == "/one/two"
            assert "one" in f
            assert "one/two" in f
            assert "one/three" not in f

    def test_duplicate_name_rejected(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_group("g")
            with pytest.raises(H5NameError):
                f.create_group("g")

    def test_require_group(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            g1 = f.require_group("g")
            g2 = f.require_group("g")
            assert g1.name == g2.name == "/g"

    def test_require_group_on_dataset_fails(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(1,))
            with pytest.raises(H5NameError):
                f.require_group("d")

    def test_missing_lookup_raises(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            with pytest.raises(H5NameError):
                f["nope"]
            assert f.root.get("nope") is None

    def test_intermediate_groups_auto_created(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("x/y/z", shape=(2,), data=[1.0, 2.0])
            assert f["x/y/z"].shape == (2,)

    def test_keys_order(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            for name in ("c", "a", "b"):
                f.create_group(name)
            assert f.keys() == ["c", "a", "b"]

    def test_visit(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("g/d1", shape=(1,))
            f.create_dataset("g/d2", shape=(1,))
            seen = []
            f.root.visit(lambda path, obj: seen.append(path))
            assert seen == ["/g", "/g/d1", "/g/d2"]

    def test_group_persistence(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("g/sub/d", shape=(3,), data=[1, 2, 3], dtype="i4")
        with H5File(fs, "/a.h5", "r") as f:
            assert f["g"].keys() == ["sub"]
            np.testing.assert_array_equal(f["g/sub/d"].read(), [1, 2, 3])

    def test_many_links_force_header_relocation(self, fs):
        """A root group with dozens of children outgrows its header block —
        the relocation path must keep everything reachable."""
        with H5File(fs, "/a.h5", "w") as f:
            for i in range(50):
                f.create_dataset(f"dset_{i:03d}", shape=(2,), data=[i, i], dtype="i8")
        with H5File(fs, "/a.h5", "r") as f:
            assert len(f.keys()) == 50
            np.testing.assert_array_equal(f["dset_049"].read(), [49, 49])


class TestFixedDatasets:
    @pytest.mark.parametrize("layout,chunks", [
        ("contiguous", None),
        ("chunked", (16,)),
        ("compact", None),
    ])
    def test_roundtrip_1d(self, fs, layout, chunks):
        data = np.arange(100, dtype=np.float64)
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(100,), dtype="f8",
                             layout=layout, chunks=chunks, data=data)
        with H5File(fs, "/a.h5", "r") as f:
            np.testing.assert_array_equal(f["d"].read(), data)
            assert f["d"].layout_name == layout

    @pytest.mark.parametrize("layout,chunks", [
        ("contiguous", None),
        ("chunked", (4, 8)),
    ])
    def test_roundtrip_2d(self, fs, layout, chunks):
        data = np.arange(15 * 20, dtype=np.int32).reshape(15, 20)
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(15, 20), dtype="i4",
                             layout=layout, chunks=chunks, data=data)
        with H5File(fs, "/a.h5", "r") as f:
            np.testing.assert_array_equal(f["d"].read(), data)

    def test_partial_write_then_full_read(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(10,), dtype="i8", data=np.zeros(10, dtype=np.int64))
            d.write(np.array([7, 8, 9]), Selection.hyperslab(((3, 3),)))
            out = d.read()
            np.testing.assert_array_equal(out, [0, 0, 0, 7, 8, 9, 0, 0, 0, 0])

    def test_partial_read(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(10,), dtype="f8", data=np.arange(10.0))
            out = d.read(Selection.hyperslab(((2, 4),)))
            np.testing.assert_array_equal(out, [2, 3, 4, 5])

    def test_chunked_partial_rmw(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(20,), dtype="i8",
                                 layout="chunked", chunks=(8,),
                                 data=np.arange(20, dtype=np.int64))
            d.write(np.array([-1, -2]), Selection.hyperslab(((7, 2),)))
            expect = np.arange(20)
            expect[7:9] = [-1, -2]
            np.testing.assert_array_equal(d.read(), expect)

    def test_chunked_edge_chunks(self, fs):
        # 10 elements, chunk 4 -> chunks of 4,4,2: edge chunk must clip.
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(10,), dtype="f8",
                                 layout="chunked", chunks=(4,),
                                 data=np.arange(10.0))
            np.testing.assert_array_equal(d.read(), np.arange(10.0))

    def test_unwritten_contiguous_reads_zeros(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(5,), dtype="f8")
            np.testing.assert_array_equal(d.read(), np.zeros(5))

    def test_unwritten_chunks_read_zeros(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(10,), dtype="i4",
                                 layout="chunked", chunks=(4,))
            d.write(np.array([5, 6], dtype=np.int32), Selection.hyperslab(((0, 2),)))
            out = d.read()
            np.testing.assert_array_equal(out[:2], [5, 6])
            np.testing.assert_array_equal(out[2:], np.zeros(8))

    def test_fixed_string_dtype(self, fs):
        values = np.array([b"alpha", b"beta", b"gamma"], dtype="S8")
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("s", shape=(3,), dtype="S8", data=values)
        with H5File(fs, "/a.h5", "r") as f:
            np.testing.assert_array_equal(f["s"].read(), values)

    def test_ellipsis_indexing(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(4,), dtype="f8")
            d[...] = np.arange(4.0)
            np.testing.assert_array_equal(d[...], np.arange(4.0))

    def test_non_ellipsis_indexing_rejected(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(4,), dtype="f8")
            with pytest.raises(TypeError):
                d[0]

    def test_size_mismatch_rejected(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(4,), dtype="f8")
            with pytest.raises(H5TypeError):
                d.write(np.arange(5.0))

    def test_chunked_requires_chunks(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            with pytest.raises(H5LayoutError):
                f.create_dataset("d", shape=(4,), layout="chunked")

    def test_chunk_rank_mismatch(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            with pytest.raises(H5LayoutError):
                f.create_dataset("d", shape=(4, 4), layout="chunked", chunks=(2,))

    def test_scalar_broadcast_write(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(6,), dtype="f8")
            d.write(3.14)
            np.testing.assert_allclose(d.read(), 3.14)


class TestVlenDatasets:
    def test_contiguous_vlen_roundtrip(self, fs):
        items = [b"a", b"bb" * 10, b"", b"cccc" * 100]
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("v", shape=(4,), dtype="vlen-bytes", data=items)
        with H5File(fs, "/a.h5", "r") as f:
            assert f["v"].read() == items

    def test_chunked_vlen_roundtrip(self, fs):
        items = [f"string-{i}" * (i % 7 + 1) for i in range(25)]
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("v", shape=(25,), dtype="vlen-str",
                             layout="chunked", chunks=(8,), data=items)
        with H5File(fs, "/a.h5", "r") as f:
            assert f["v"].read() == items

    def test_vlen_partial_read(self, fs):
        items = [b"x" * (i + 1) for i in range(10)]
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("v", shape=(10,), dtype="vlen-bytes", data=items)
            assert d.read(Selection.hyperslab(((3, 4),))) == items[3:7]

    def test_vlen_must_be_1d(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("v", shape=(2, 2), dtype="vlen-bytes")
            with pytest.raises(H5LayoutError):
                d.write([b"a", b"b", b"c", b"d"])

    def test_vlen_compact_rejected(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            with pytest.raises(H5LayoutError):
                f.create_dataset("v", shape=(2,), dtype="vlen-bytes", layout="compact")

    def test_vlen_count_mismatch(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("v", shape=(3,), dtype="vlen-bytes")
            with pytest.raises(H5TypeError):
                d.write([b"only", b"two"])

    def test_large_vlen_element_dedicated_collection(self, fs):
        big = b"Z" * 100_000
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("v", shape=(2,), dtype="vlen-bytes", data=[b"s", big])
        with H5File(fs, "/a.h5", "r") as f:
            assert f["v"].read() == [b"s", big]


class TestAttributes:
    def test_scalar_attrs_roundtrip(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(1,))
            d.attrs["count"] = 42
            d.attrs["scale"] = 2.5
            d.attrs["unit"] = "kelvin"
            d.attrs["blob"] = b"\x01\x02"
        with H5File(fs, "/a.h5", "r") as f:
            attrs = f["d"].attrs
            assert attrs["count"] == 42
            assert attrs["scale"] == 2.5
            assert attrs["unit"] == "kelvin"
            assert attrs["blob"] == b"\x01\x02"

    def test_array_attr(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            g = f.create_group("g")
            g.attrs["offsets"] = np.array([1, 2, 3], dtype=np.int64)
        with H5File(fs, "/a.h5", "r") as f:
            np.testing.assert_array_equal(f["g"].attrs["offsets"], [1, 2, 3])

    def test_overwrite_attr(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(1,))
            d.attrs["v"] = 1
            d.attrs["v"] = 2
            assert d.attrs["v"] == 2
            assert len(d.attrs) == 1

    def test_delete_attr(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(1,))
            d.attrs["v"] = 1
            del d.attrs["v"]
            assert "v" not in d.attrs
            with pytest.raises(H5NameError):
                d.attrs["v"]

    def test_missing_attr(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(1,))
            assert d.attrs.get("nope", "dflt") == "dflt"
            with pytest.raises(H5NameError):
                del d.attrs["nope"]

    def test_attr_iteration(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(1,))
            d.attrs["a"] = 1
            d.attrs["b"] = 2
            assert sorted(d.attrs) == ["a", "b"]
            assert dict(d.attrs.items()) == {"a": 1, "b": 2}


class TestIoShape:
    """The behaviours the paper is about: op-count consequences of layout."""

    def test_contiguous_full_read_is_single_raw_op(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(10_000,), dtype="f8",
                             data=np.zeros(10_000))
        fs.clear_log()
        with H5File(fs, "/a.h5", "r") as f:
            f["d"].read()
        raw_reads = [r for r in fs.op_log
                     if r.op == "read" and r.nbytes == 80_000]
        assert len(raw_reads) == 1

    def test_chunked_read_touches_per_chunk(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(1000,), dtype="f8",
                             layout="chunked", chunks=(100,),
                             data=np.zeros(1000))
        fs.clear_log()
        with H5File(fs, "/a.h5", "r") as f:
            f["d"].read()
        chunk_reads = [r for r in fs.op_log
                       if r.op == "read" and r.nbytes == 800]
        assert len(chunk_reads) == 10

    def test_chunked_partial_access_reads_fewer_chunks(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(1000,), dtype="f8",
                             layout="chunked", chunks=(100,),
                             data=np.zeros(1000))
        fs.clear_log()
        with H5File(fs, "/a.h5", "r") as f:
            f["d"].read(Selection.hyperslab(((250, 100),)))
        chunk_reads = [r for r in fs.op_log
                       if r.op == "read" and r.nbytes == 800]
        assert len(chunk_reads) == 2  # chunks 2 and 3 only

    def test_contiguous_partial_access_reads_subset_bytes(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(1000,), dtype="f8", data=np.zeros(1000))
        fs.clear_log()
        with H5File(fs, "/a.h5", "r") as f:
            f["d"].read(Selection.hyperslab(((0, 10),)))
        raw = [r for r in fs.op_log if r.op == "read" and r.nbytes == 80]
        assert len(raw) == 1

    def test_vlen_chunked_fewer_writes_than_contiguous(self):
        """The paper's ARLDM finding: chunked VL layout roughly halves the
        POSIX write count versus contiguous VL."""
        def count_writes(layout, chunks):
            fs = make_fs()
            items = [b"v" * 200 for _ in range(64)]
            with H5File(fs, "/a.h5", "w") as f:
                f.create_dataset("v", shape=(64,), dtype="vlen-bytes",
                                 layout=layout, chunks=chunks, data=items)
            return fs.op_count(op="write")

        contiguous = count_writes("contiguous", None)
        chunked = count_writes("chunked", (16,))
        assert chunked < contiguous / 2

    def test_compact_dataset_does_no_raw_io(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(8,), dtype="f8",
                             layout="compact", data=np.arange(8.0))
        # All ops for the tiny compact dataset go through header metadata.
        # The data never got its own raw extent:
        store = fs.store_of("/a.h5")
        assert store.size < 2048

    def test_metadata_cache_absorbs_repeat_reads(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(100,), dtype="f8", data=np.zeros(100))
        with H5File(fs, "/a.h5", "r") as f:
            d = f["d"]
            fs.clear_log()
            d.read()
            first = fs.op_count(op="read")
            fs.clear_log()
            d.read()
            second = fs.op_count(op="read")
        assert second <= first


class TestPropertyRoundtrips:
    @settings(max_examples=30, deadline=None)
    @given(
        layout=st.sampled_from(["contiguous", "chunked"]),
        n=st.integers(1, 200),
        chunk=st.integers(1, 64),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_fixed_1d_any_layout(self, layout, n, chunk, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-(2**40), 2**40, size=n).astype(np.int64)
        fs = make_fs()
        kwargs = {"chunks": (chunk,)} if layout == "chunked" else {}
        with H5File(fs, "/p.h5", "w") as f:
            f.create_dataset("d", shape=(n,), dtype="i8", layout=layout,
                             data=data, **kwargs)
        with H5File(fs, "/p.h5", "r") as f:
            np.testing.assert_array_equal(f["d"].read(), data)

    @settings(max_examples=20, deadline=None)
    @given(
        items=st.lists(st.binary(max_size=300), min_size=1, max_size=40),
        layout=st.sampled_from(["contiguous", "chunked"]),
        chunk=st.integers(1, 16),
    )
    def test_vlen_any_layout(self, items, layout, chunk):
        fs = make_fs()
        kwargs = {"chunks": (chunk,)} if layout == "chunked" else {}
        with H5File(fs, "/p.h5", "w") as f:
            f.create_dataset("v", shape=(len(items),), dtype="vlen-bytes",
                             layout=layout, data=items, **kwargs)
        with H5File(fs, "/p.h5", "r") as f:
            assert f["v"].read() == items

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(1, 20),
        cols=st.integers(1, 20),
        crow=st.integers(1, 8),
        ccol=st.integers(1, 8),
        data=st.data(),
    )
    def test_chunked_2d_partial_writes(self, rows, cols, crow, ccol, data):
        """Property: a sequence of hyperslab writes to a chunked 2-D dataset
        matches the same writes applied to a plain numpy reference array."""
        fs = make_fs()
        ref = np.zeros((rows, cols), dtype=np.int32)
        with H5File(fs, "/p.h5", "w") as f:
            d = f.create_dataset("d", shape=(rows, cols), dtype="i4",
                                 layout="chunked", chunks=(crow, ccol),
                                 data=ref)
            for _ in range(data.draw(st.integers(0, 4))):
                r0 = data.draw(st.integers(0, rows - 1))
                rc = data.draw(st.integers(1, rows - r0))
                c0 = data.draw(st.integers(0, cols - 1))
                cc = data.draw(st.integers(1, cols - c0))
                val = data.draw(st.integers(-1000, 1000))
                block = np.full((rc, cc), val, dtype=np.int32)
                d.write(block, Selection.hyperslab(((r0, rc), (c0, cc))))
                ref[r0:r0 + rc, c0:c0 + cc] = block
            np.testing.assert_array_equal(d.read(), ref)
