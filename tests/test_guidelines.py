"""Unit tests for the optimization guidelines: layout advisor and the
recommendation engine."""

import pytest

from repro.diagnostics.insights import Insight, InsightKind
from repro.guidelines import (
    AccessPattern,
    Action,
    advise_layout,
    recommend,
)
from repro.guidelines.layout import SMALL_DATA_BYTES


class TestLayoutAdvisor:
    def test_small_fixed_is_contiguous(self):
        advice = advise_layout("f8", 100)
        assert advice.layout == "contiguous"
        assert advice.chunk_elements is None
        assert "single I/O" in advice.rationale

    def test_large_fixed_sequential_is_contiguous(self):
        n = SMALL_DATA_BYTES  # * 8 bytes each = way past the threshold
        advice = advise_layout("f8", n, AccessPattern.SEQUENTIAL)
        assert advice.layout == "contiguous"

    def test_large_fixed_random_is_chunked(self):
        n = SMALL_DATA_BYTES
        advice = advise_layout("f8", n, AccessPattern.RANDOM)
        assert advice.layout == "chunked"
        assert advice.chunk_elements == n // 10

    def test_large_fixed_parallel_is_chunked(self):
        advice = advise_layout("f8", SMALL_DATA_BYTES, AccessPattern.PARALLEL)
        assert advice.layout == "chunked"

    def test_vlen_always_chunked(self):
        for n in (10, 10_000_000):
            advice = advise_layout("vlen-bytes", n)
            assert advice.layout == "chunked"
            assert "variable-length" in advice.rationale

    def test_boundary_exactly_small(self):
        # 1 MiB of u1 is exactly the small threshold -> contiguous.
        advice = advise_layout("u1", SMALL_DATA_BYTES, AccessPattern.RANDOM)
        assert advice.layout == "contiguous"

    def test_target_chunks(self):
        advice = advise_layout("f8", SMALL_DATA_BYTES, AccessPattern.RANDOM,
                               target_chunks=4)
        assert advice.chunk_elements == SMALL_DATA_BYTES // 4

    def test_negative_elements_rejected(self):
        with pytest.raises(ValueError):
            advise_layout("f8", -1)


def make_insight(kind, subject="/f.h5", tasks=("t1",), desc="d"):
    return Insight(kind=kind, subject=subject, tasks=list(tasks), description=desc)


class TestRecommendationEngine:
    @pytest.mark.parametrize("kind,action", [
        (InsightKind.DATA_REUSE, Action.CACHE_IN_FAST_TIER),
        (InsightKind.TIME_DEPENDENT_INPUT, Action.PREFETCH_BEFORE_USE),
        (InsightKind.DISPOSABLE_DATA, Action.STAGE_OUT),
        (InsightKind.DATA_SCATTERING, Action.CONSOLIDATE_DATASETS),
        (InsightKind.PARTIAL_FILE_ACCESS, Action.SKIP_UNUSED_DATA),
        (InsightKind.METADATA_OVERHEAD, Action.CONVERT_TO_CONTIGUOUS),
        (InsightKind.READONLY_SEQUENTIAL, Action.ROLLING_STAGE_IN),
        (InsightKind.TASK_INDEPENDENCE, Action.PARALLELIZE),
        (InsightKind.VLEN_LAYOUT, Action.CONVERT_TO_CHUNKED),
    ])
    def test_insight_to_action_mapping(self, kind, action):
        [rec] = recommend([make_insight(kind)])
        assert rec.action == action
        assert rec.target == "/f.h5"
        assert rec.insight_kind == kind

    def test_every_insight_kind_has_an_action(self):
        for kind in InsightKind:
            assert recommend([make_insight(kind)])

    def test_dedup_merges_tasks(self):
        recs = recommend([
            make_insight(InsightKind.DATA_REUSE, tasks=("a",)),
            make_insight(InsightKind.DATA_REUSE, tasks=("b",)),
        ])
        assert len(recs) == 1
        assert recs[0].tasks == ["a", "b"]

    def test_ordering_by_support(self):
        recs = recommend([
            make_insight(InsightKind.DATA_SCATTERING, subject="/rare.h5"),
            make_insight(InsightKind.DATA_REUSE, subject="/hot.h5"),
            make_insight(InsightKind.DATA_REUSE, subject="/hot.h5"),
            make_insight(InsightKind.DATA_REUSE, subject="/hot.h5"),
        ])
        assert recs[0].target == "/hot.h5"

    def test_json_and_str(self):
        [rec] = recommend([make_insight(InsightKind.VLEN_LAYOUT)])
        assert rec.to_json_dict()["action"] == "convert_to_chunked"
        assert "convert_to_chunked" in str(rec)

    def test_empty(self):
        assert recommend([]) == []
