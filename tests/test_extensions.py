"""Tests for the extension features: graph JSON serialization, h5bench
read patterns, and the VOL-level delete/resize wrappers."""

import numpy as np
import pytest

from repro.analyzer import (
    build_ftg,
    build_sdg,
    graph_from_json,
    graph_to_json,
)
from repro.experiments.common import fresh_env
from repro.mapper import DaYuConfig, DataSemanticMapper
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device
from repro.workloads import H5benchParams, build_h5bench_read, build_h5bench_write


def profiled_run():
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
    mapper = DataSemanticMapper(clock, DaYuConfig())
    with mapper.task("t") as ctx:
        f = ctx.open(fs, "/x.h5", "w")
        f.create_dataset("d", shape=(32,), dtype="f8", data=np.zeros(32))
        f.close()
    return fs, mapper


class TestGraphJson:
    def test_ftg_round_trip(self):
        fs, mapper = profiled_run()
        g = build_ftg(mapper.profiles.values())
        restored = graph_from_json(graph_to_json(g))
        assert set(restored.nodes) == set(g.nodes)
        assert set(restored.edges) == set(g.edges)
        for n in g.nodes:
            assert restored.nodes[n]["kind"] == g.nodes[n]["kind"]
            assert restored.nodes[n]["volume"] == g.nodes[n]["volume"]
        for u, v in g.edges:
            assert restored.edges[u, v]["volume"] == g.edges[u, v]["volume"]
            assert restored.edges[u, v]["operation"] == g.edges[u, v]["operation"]

    def test_sdg_with_regions_round_trip(self):
        fs, mapper = profiled_run()
        g = build_sdg(mapper.profiles.values(), with_regions=True,
                      region_bytes=65536)
        restored = graph_from_json(graph_to_json(g, indent=1))
        assert restored.graph.get("graph_type") == "SDG"
        assert set(restored.nodes) == set(g.nodes)

    def test_empty_graph(self):
        import networkx as nx
        restored = graph_from_json(graph_to_json(nx.DiGraph()))
        assert len(restored) == 0


class TestH5benchPatterns:
    def _run_pattern(self, pattern, **kwargs):
        env = fresh_env(n_nodes=1)
        params = H5benchParams(data_dir="/beegfs/hb", n_procs=1,
                               bytes_per_proc=1 << 16, ops_per_proc=2,
                               read_pattern=pattern, **kwargs)
        env.runner.run(build_h5bench_write(params))
        env.cluster.fs.clear_log()
        env.runner.run(build_h5bench_read(params))
        reads = [r for r in env.cluster.fs.op_log if r.op == "read"]
        return params, reads

    def test_full_pattern_reads_everything(self):
        params, reads = self._run_pattern("full")
        raw = [r for r in reads if r.nbytes == params.elems_per_op * 4]
        assert len(raw) == params.ops_per_proc

    def test_partial_pattern_reads_fraction(self):
        params, reads = self._run_pattern("partial", partial_fraction=0.25)
        quarter = params.elems_per_op * 4 // 4
        raw = [r for r in reads if r.nbytes == quarter]
        assert len(raw) == params.ops_per_proc

    def test_strided_pattern_scatters_reads(self):
        params, reads = self._run_pattern("strided", stride_blocks=4)
        n = params.elems_per_op
        block_bytes = max(n // 8, 1) * 4  # blocks = n // (stride_blocks*2)
        raw = [r for r in reads if r.nbytes == block_bytes]
        # 4 blocks per dataset x 2 datasets.
        assert len(raw) == 8
        offsets = sorted(r.offset for r in raw[:4])
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        # Strided: gaps exceed the block size (holes between blocks).
        assert all(g > block_bytes for g in gaps)

    def test_shared_file_mode(self):
        env = fresh_env(n_nodes=2)
        params = H5benchParams(data_dir="/beegfs/hb", n_procs=3,
                               bytes_per_proc=1 << 14, ops_per_proc=2,
                               shared_file=True)
        env.runner.run(build_h5bench_write(params))
        fs = env.cluster.fs
        # One shared file only.
        assert fs.listdir("/beegfs/hb") == ["/beegfs/hb/h5bench_shared.h5"]
        env.runner.run(build_h5bench_read(params))
        # Every writer/reader profile touched the same file.
        for name, profile in env.mapper.profiles.items():
            if "setup" not in name:
                assert profile.files == ["/beegfs/hb/h5bench_shared.h5"]
        # The shared datasets hold every process's slab.
        from repro.hdf5 import H5File
        with H5File(fs, params.shared_path, "r") as f:
            assert f["step_00000"].shape == (params.elems_per_op * 3,)
            arr = f["step_00000"].read()
            assert arr.shape[0] == params.elems_per_op * 3

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            H5benchParams(read_pattern="backwards")
        with pytest.raises(ValueError):
            H5benchParams(partial_fraction=0.0)
        with pytest.raises(ValueError):
            H5benchParams(stride_blocks=0)


class TestVolDeleteResize:
    def test_vol_resize(self):
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
        mapper = DataSemanticMapper(clock, DaYuConfig())
        with mapper.task("t") as ctx:
            f = ctx.open(fs, "/r.h5", "w")
            d = f.create_dataset("d", shape=(8,), dtype="i4",
                                 layout="chunked", chunks=(4,),
                                 data=np.arange(8, dtype=np.int32))
            d.resize((12,))
            assert d.shape == (12,)
            out = d.read()
            np.testing.assert_array_equal(out[:8], np.arange(8))
            f.close()

    def test_vol_delete_records_release(self):
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
        mapper = DataSemanticMapper(clock, DaYuConfig())
        with mapper.task("t") as ctx:
            f = ctx.open(fs, "/del.h5", "w")
            f.create_dataset("gone", shape=(4,), data=[1.0, 2, 3, 4])
            f.create_dataset("kept", shape=(4,), data=[5.0, 6, 7, 8])
            del f.root["gone"]
            assert f.keys() == ["kept"]
            f.close()
        profile = mapper.profiles["t"]
        [gone] = [p for p in profile.object_profiles
                  if p.object_name == "/gone"]
        assert gone.released is not None
