"""Unit tests for the Workflow Analyzer: FTG/SDG construction, reuse
marking, resolution adjustment, and the HTML/DOT exporters."""

import json

import numpy as np
import pytest

from repro.analyzer import (
    NodeKind,
    aggregate_by,
    build_ftg,
    build_sdg,
    condense_regions,
    dataset_node,
    file_node,
    region_node,
    task_node,
    to_dot,
    to_html,
)
from repro.analyzer.resolution import group_by_time_bucket, group_tasks_by_prefix
from repro.mapper import DaYuConfig, DataSemanticMapper
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


@pytest.fixture()
def pipeline_profiles():
    """A two-task producer→consumer pipeline plus a fan-out reader."""
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
    mapper = DataSemanticMapper(clock, DaYuConfig())
    with mapper.task("producer") as ctx:
        f = ctx.open(fs, "/data.h5", "w")
        f.create_dataset("a", shape=(100,), dtype="f8", data=np.zeros(100))
        f.create_dataset("b", shape=(50,), dtype="f8", data=np.ones(50))
        f.close()
    with mapper.task("consumer1") as ctx:
        f = ctx.open(fs, "/data.h5", "r")
        f["a"].read()
        f.close()
        out = ctx.open(fs, "/result.h5", "w")
        out.create_dataset("r", shape=(10,), dtype="f8", data=np.zeros(10))
        out.close()
    with mapper.task("consumer2") as ctx:
        f = ctx.open(fs, "/data.h5", "r")
        f["b"].read()
        f.close()
    return list(mapper.profiles.values())


class TestFtg:
    def test_nodes_and_kinds(self, pipeline_profiles):
        g = build_ftg(pipeline_profiles)
        kinds = {n: a["kind"] for n, a in g.nodes(data=True)}
        assert kinds[task_node("producer")] == NodeKind.TASK.value
        assert kinds[file_node("/data.h5")] == NodeKind.FILE.value
        assert len([k for k in kinds.values() if k == NodeKind.TASK.value]) == 3

    def test_edge_directions(self, pipeline_profiles):
        g = build_ftg(pipeline_profiles)
        assert g.has_edge(task_node("producer"), file_node("/data.h5"))  # write
        assert g.has_edge(file_node("/data.h5"), task_node("consumer1"))  # read
        assert not g.has_edge(task_node("consumer1"), file_node("/data.h5"))

    def test_edge_statistics(self, pipeline_profiles):
        g = build_ftg(pipeline_profiles)
        e = g.edges[task_node("producer"), file_node("/data.h5")]
        assert e["operation"] == "write"
        assert e["volume"] > 100 * 8  # dataset a + b + metadata
        assert e["count"] > 0
        assert e["bandwidth"] > 0
        assert e["metadata_ops"] > 0  # headers/superblock

    def test_task_order_attribute(self, pipeline_profiles):
        g = build_ftg(pipeline_profiles)
        assert g.nodes[task_node("producer")]["order"] == 0
        assert g.nodes[task_node("consumer2")]["order"] == 2

    def test_explicit_task_order(self, pipeline_profiles):
        order = ["consumer2", "consumer1", "producer"]
        g = build_ftg(pipeline_profiles, task_order=order)
        assert g.nodes[task_node("consumer2")]["order"] == 0

    def test_task_order_validation(self, pipeline_profiles):
        with pytest.raises(ValueError, match="missing tasks"):
            build_ftg(pipeline_profiles, task_order=["producer"])

    def test_data_reuse_marked(self, pipeline_profiles):
        g = build_ftg(pipeline_profiles)
        # /data.h5 is read by consumer1 and consumer2 -> 2 outgoing edges.
        assert g.nodes[file_node("/data.h5")]["reused"] is True
        assert g.nodes[file_node("/result.h5")].get("reused") is False
        assert g.edges[file_node("/data.h5"), task_node("consumer1")]["reuse"]

    def test_task_span_recorded(self, pipeline_profiles):
        g = build_ftg(pipeline_profiles)
        n = g.nodes[task_node("producer")]
        assert n["end"] > n["start"]


class TestSdg:
    def test_dataset_layer_present(self, pipeline_profiles):
        g = build_sdg(pipeline_profiles)
        d = dataset_node("/data.h5", "/a")
        assert d in g
        assert g.nodes[d]["kind"] == NodeKind.DATASET.value
        # write flow: task -> dataset -> file
        assert g.has_edge(task_node("producer"), d)
        assert g.has_edge(d, file_node("/data.h5"))
        # read flow: file -> dataset -> task
        assert g.has_edge(file_node("/data.h5"), d)
        assert g.has_edge(d, task_node("consumer1"))

    def test_file_metadata_pseudo_dataset(self, pipeline_profiles):
        g = build_sdg(pipeline_profiles)
        meta = dataset_node("/data.h5", "File-Metadata")
        assert meta in g
        assert g.nodes[meta]["label"] == "File-Metadata"

    def test_with_regions_inserts_addr_nodes(self, pipeline_profiles):
        g = build_sdg(pipeline_profiles, with_regions=True, region_bytes=65536)
        regions = [n for n, a in g.nodes(data=True) if a["kind"] == NodeKind.REGION.value]
        assert regions
        r = regions[0]
        assert g.nodes[r]["label"].startswith("addr[")
        # Region nodes sit between datasets and files: no direct edges left.
        for u, v in g.edges:
            ku, kv = g.nodes[u]["kind"], g.nodes[v]["kind"]
            assert {ku, kv} != {NodeKind.DATASET.value, NodeKind.FILE.value}

    def test_region_bytes_must_be_page_multiple(self, pipeline_profiles):
        with pytest.raises(ValueError):
            build_sdg(pipeline_profiles, with_regions=True, region_bytes=5000)

    def test_fragmented_dataset_spans_multiple_regions(self):
        """A dataset whose content lands in far-apart file regions must fan
        out to multiple addr nodes (the paper's Figure 8 observation)."""
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
        mapper = DataSemanticMapper(clock, DaYuConfig(page_size=4096))
        with mapper.task("writer") as ctx:
            f = ctx.open(fs, "/big.h5", "w")
            # Interleave two dataset writes so extents alternate.
            d1 = f.create_dataset("d1", shape=(40960,), dtype="f8")
            d2 = f.create_dataset("d2", shape=(40960,), dtype="f8")
            from repro.hdf5 import Selection
            half = 20480
            d1.write(np.zeros(half), Selection.hyperslab(((0, half),)))
            d2.write(np.zeros(half), Selection.hyperslab(((0, half),)))
            d1.write(np.zeros(half), Selection.hyperslab(((half, half),)))
            d2.write(np.zeros(half), Selection.hyperslab(((half, half),)))
            f.close()
        g = build_sdg(mapper.profiles.values(), with_regions=True,
                      region_bytes=65536)
        d1_node = dataset_node("/big.h5", "/d1")
        out_regions = [v for v in g.successors(d1_node)
                       if g.nodes[v]["kind"] == NodeKind.REGION.value]
        assert len(out_regions) >= 2


class TestResolution:
    def test_group_parallel_tasks(self):
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
        mapper = DataSemanticMapper(clock, DaYuConfig())
        for i in range(4):
            with mapper.task(f"sim_{i:02d}") as ctx:
                f = ctx.open(fs, f"/out{i}.h5", "w")
                f.create_dataset("d", shape=(10,), data=np.zeros(10))
                f.close()
        g = build_ftg(mapper.profiles.values())
        condensed = aggregate_by(g, group_tasks_by_prefix())
        task_nodes = [n for n, a in condensed.nodes(data=True)
                      if a["kind"] == NodeKind.TASK.value]
        assert task_nodes == ["task:sim"]
        assert condensed.nodes["task:sim"]["members"] == 4

    def test_aggregation_sums_edge_stats(self, pipeline_profiles):
        g = build_ftg(pipeline_profiles)
        # Merge both consumers into one group.
        def grouper(node, attrs):
            if attrs["kind"] == NodeKind.TASK.value and "consumer" in attrs["label"]:
                return "task:consumers"
            return node
        condensed = aggregate_by(g, grouper)
        e = condensed.edges[file_node("/data.h5"), "task:consumers"]
        orig1 = g.edges[file_node("/data.h5"), task_node("consumer1")]
        orig2 = g.edges[file_node("/data.h5"), task_node("consumer2")]
        assert e["volume"] == orig1["volume"] + orig2["volume"]

    def test_self_loops_dropped(self, pipeline_profiles):
        g = build_ftg(pipeline_profiles)
        condensed = aggregate_by(g, lambda n, a: "everything")
        assert condensed.number_of_edges() == 0
        assert condensed.number_of_nodes() == 1

    def test_condense_regions(self, pipeline_profiles):
        g = build_sdg(pipeline_profiles, with_regions=True, region_bytes=4096)
        condensed = condense_regions(g)
        region_nodes = [n for n, a in condensed.nodes(data=True)
                        if a["kind"] == NodeKind.REGION.value]
        files_with_regions = {a["label"].split(":", 1)[1]
                              for n, a in condensed.nodes(data=True)
                              if n.startswith("regions:")}
        assert len(region_nodes) == len(files_with_regions)

    def test_time_bucket_grouper_validation(self):
        with pytest.raises(ValueError):
            group_by_time_bucket(0)

    def test_time_bucket_grouping(self, pipeline_profiles):
        g = build_ftg(pipeline_profiles)
        condensed = aggregate_by(g, group_by_time_bucket(1e9))
        # All tasks fall in bucket 0 and merge.
        task_nodes = [n for n, a in condensed.nodes(data=True)
                      if a["kind"] in (NodeKind.TASK.value, "mixed") and n == "t[0]"]
        assert task_nodes == ["t[0]"]


class TestExports:
    def test_dot_contains_all_nodes(self, pipeline_profiles):
        g = build_ftg(pipeline_profiles)
        dot = to_dot(g, title="test")
        assert dot.startswith('digraph "test"')
        for _, attrs in g.nodes(data=True):
            assert attrs["label"] in dot

    def test_dot_edge_stats_in_tooltips(self, pipeline_profiles):
        dot = to_dot(build_ftg(pipeline_profiles))
        assert "bandwidth=" in dot
        assert "metadata_ops=" in dot

    def test_html_is_standalone_and_complete(self, pipeline_profiles):
        g = build_sdg(pipeline_profiles, with_regions=True, region_bytes=65536)
        page = to_html(g, title="SDG test")
        assert page.startswith("<!DOCTYPE html>")
        assert "<script>" in page and "</html>" in page
        assert "http://" not in page.replace("http://www.w3.org", "")  # no CDNs
        assert "SDG test" in page
        # Every node label appears.
        for _, attrs in g.nodes(data=True):
            label = str(attrs["label"])
            shown = label if len(label) <= 24 else "…" + label[-23:]
            assert shown.replace("&", "&amp;") in page or shown in page

    def test_html_edge_popup_payloads_are_json(self, pipeline_profiles):
        page = to_html(build_ftg(pipeline_profiles))
        # Extract a data-info attribute and parse it.
        marker = "data-info='"
        start = page.index(marker) + len(marker)
        end = page.index("'", start)
        info = json.loads(page[start:end].replace("&quot;", '"'))
        assert "Access Volume" in info
        assert "Bandwidth" in info
        assert "Operation" in info

    def test_html_empty_graph(self):
        import networkx as nx
        page = to_html(nx.DiGraph())
        assert "<svg" in page

    def test_write_after_read_cycle_renders(self):
        """A task that reads then writes the same file creates a 2-cycle;
        both exports must handle it."""
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
        mapper = DataSemanticMapper(clock, DaYuConfig())
        with mapper.task("seed") as ctx:
            f = ctx.open(fs, "/x.h5", "w")
            f.create_dataset("d", shape=(10,), data=np.zeros(10))
            f.close()
        with mapper.task("war_task") as ctx:
            f = ctx.open(fs, "/x.h5", "r+")
            data = f["d"].read()
            f["d"].write(data * 2)
            f.close()
        g = build_ftg(mapper.profiles.values())
        assert g.has_edge(file_node("/x.h5"), task_node("war_task"))
        assert g.has_edge(task_node("war_task"), file_node("/x.h5"))
        assert to_html(g)
        assert to_dot(g)
