"""The ``repro.monitor`` subsystem: bus semantics, live-vs-post-hoc
equivalence, streaming lint, metrics exposition, and overhead isolation.

The two load-bearing invariants (ISSUE 4 acceptance criteria):

1. On every bundled workload the end-of-run live FTG/SDG snapshot
   serializes byte-identical to the post-hoc serial ``GraphBuilder``
   result, under every backpressure policy — including forced tiny
   capacities that drop most droppable events.
2. Finalized streaming-lint findings are a subset of batch ``dayu-lint``
   findings with matching fingerprints, and ``corner-hazards`` raises its
   DY2xx alert *during* the run (before workflow completion).
"""

import json
import re

import pytest

from repro.analyzer.graphs import build_ftg, build_sdg
from repro.analyzer.serialize import graph_to_json
from repro.experiments.common import fresh_env
from repro.lint.engine import lint_profiles
from repro.mapper.overhead import overhead_report
from repro.monitor import (
    MONITOR_ACCOUNT,
    Backpressure,
    DynamicsWindows,
    EventBus,
    MetricsRegistry,
    MonitorConfig,
    TaskStarted,
    VfdOp,
)
from repro.simclock import SimClock
from repro.vfd.base import IoClass
from repro.workloads.registry import WORKLOADS, build_workload

#: Fast per-workload scales for monitored end-to-end runs.
SCALES = {
    "pyflextrkr": 0.1, "ddmd": 0.2, "arldm": 0.2, "h5bench": 0.25,
    "h5bench-shared": 0.25, "climate": 0.5, "corner": 0.05,
    "corner-hazards": 0.05, "chaos": 0.5, "racy-pipeline": 0.25,
    "perf-hazards": 0.05,
}


def vfd_event(i, task="t", file="/f", op="write", nbytes=8):
    return VfdOp(time=float(i), task=task, file=file, op=op, offset=i * 64,
                 nbytes=nbytes, start=float(i), duration=0.01,
                 io_class=IoClass.RAW, data_object="/d")


def run_monitored(name, **monitor_kwargs):
    alerts = []
    env = fresh_env(
        monitor_config=MonitorConfig(**monitor_kwargs),
        on_alert=lambda a: alerts.append((a, len(env.mapper.profiles))),
    )
    workflow, prepare = build_workload(name, SCALES[name])
    if prepare is not None:
        prepare(env.cluster)
    total_tasks = len(workflow.all_tasks())
    env.runner.run(workflow)
    env.monitor.finish()
    return env, alerts, total_tasks


class TestEventBus:
    def test_block_policy_loses_nothing(self):
        clock = SimClock()
        bus = EventBus(clock)
        seen = []
        sub = bus.subscribe("s", seen.append, policy=Backpressure.BLOCK,
                            capacity=4)
        for i in range(100):
            bus.publish(vfd_event(i))
        bus.flush()
        assert len(seen) == 100
        assert sub.dropped == 0 and sub.sampled_out == 0
        assert sub.blocked_flushes > 0  # capacity 4 forced inline drains
        assert bus.reconciles()

    def test_drop_policy_counts_every_loss(self):
        bus = EventBus(SimClock())
        seen = []
        sub = bus.subscribe("s", seen.append, policy=Backpressure.DROP,
                            capacity=8)
        for i in range(100):
            bus.publish(vfd_event(i))
        bus.flush()
        assert sub.dropped == 92 and len(seen) == 8
        assert sub.offered == sub.delivered + sub.dropped
        assert bus.reconciles()

    def test_sample_policy_admits_one_in_n(self):
        bus = EventBus(SimClock())
        seen = []
        sub = bus.subscribe("s", seen.append, policy=Backpressure.SAMPLE,
                            capacity=1000, sample_every=10)
        for i in range(100):
            bus.publish(vfd_event(i))
        bus.flush()
        assert len(seen) == 10 and sub.sampled_out == 90
        assert bus.reconciles()

    def test_critical_events_survive_every_policy(self):
        for policy in Backpressure:
            bus = EventBus(SimClock())
            seen = []
            bus.subscribe("s", seen.append, policy=policy, capacity=2,
                          sample_every=50)
            for i in range(50):
                bus.publish(vfd_event(i))
            bus.publish(TaskStarted(time=50.0, task="t"))
            bus.flush()
            kinds = [e.kind for e in seen]
            assert "task_started" in kinds, policy
            assert bus.reconciles()

    def test_subscriber_cost_charged_off_critical_path(self):
        clock = SimClock()
        bus = EventBus(clock, cost_per_event=1e-6)
        bus.subscribe("s", lambda e: None)
        t0 = clock.now
        for i in range(10):
            bus.publish(vfd_event(i))
        bus.flush()
        assert clock.now == t0  # charge() attributes without advancing
        assert clock.account(MONITOR_ACCOUNT) == pytest.approx(1e-5)

    def test_duplicate_subscriber_name_rejected(self):
        bus = EventBus(SimClock())
        bus.subscribe("s", lambda e: None)
        with pytest.raises(ValueError):
            bus.subscribe("s", lambda e: None)


class TestDynamicsWindows:
    def test_series_buckets_by_interval(self):
        w = DynamicsWindows(window_seconds=1.0)
        for i in range(10):
            w.observe(vfd_event(i))
        series = w.series_for("t", "/f", "/d")
        assert [idx for idx, _ in series] == list(range(10))
        assert all(s.writes == 1 and s.write_bytes == 8 for _, s in series)
        assert w.total_ops == 10 and w.total_bytes == 80

    def test_eviction_conserves_totals(self):
        w = DynamicsWindows(window_seconds=1.0, max_windows_per_key=3)
        for i in range(10):
            w.observe(vfd_event(i))
        assert w.evicted_windows == 7
        assert len(w.series_for("t", "/f", "/d")) == 3
        totals = w.totals_for("t", "/f", "/d")
        assert totals.writes == 10 and totals.write_bytes == 80

    def test_json_form_is_deterministic(self):
        w = DynamicsWindows(window_seconds=0.5)
        for i in range(4):
            w.observe(vfd_event(i))
        a = json.dumps(w.to_json_dict(), sort_keys=True)
        b = json.dumps(w.to_json_dict(), sort_keys=True)
        assert a == b
        assert w.to_json_dict()["series"][0]["points"][0]["t1"] == 0.5


@pytest.mark.parametrize("workload", WORKLOADS)
def test_live_snapshot_byte_identical_to_post_hoc(workload):
    env, _, _ = run_monitored(workload)
    profiles = list(env.mapper.profiles.values())
    assert graph_to_json(env.monitor.snapshot_ftg()) == \
        graph_to_json(build_ftg(profiles))
    assert graph_to_json(env.monitor.snapshot_sdg()) == \
        graph_to_json(build_sdg(profiles))
    assert env.monitor.reconciles()


@pytest.mark.parametrize("workload", WORKLOADS)
def test_streaming_findings_subset_of_batch(workload):
    env, _, _ = run_monitored(workload)
    profiles = list(env.mapper.profiles.values())
    batch = {f.fingerprint for f in lint_profiles(profiles).findings}
    stream = {f.fingerprint for f in env.monitor.findings}
    assert stream <= batch


class TestCornerHazardsMidRun:
    def test_dy203_alert_fires_before_completion(self):
        env, alerts, total_tasks = run_monitored("corner-hazards")
        hazard = [(a, n) for a, n in alerts if a.finding.code == "DY203"]
        assert hazard, "corner-hazards must raise its DY2xx alert live"
        alert, tasks_done_at_fire = hazard[0]
        # Fired mid-run: strictly before the last task completed.
        assert tasks_done_at_fire < total_tasks
        assert not alert.retracted
        # Same fingerprint as the batch engine's finding.
        profiles = list(env.mapper.profiles.values())
        batch = {f.fingerprint: f for f in lint_profiles(profiles).findings}
        assert alert.finding.fingerprint in batch
        assert batch[alert.finding.fingerprint].code == "DY203"

    def test_forced_backpressure_drops_counted_and_reconciled(self):
        env, alerts, _ = run_monitored(
            "corner-hazards", bus_capacity=8, policy=Backpressure.DROP)
        agg = env.monitor.bus.subscription("aggregate")
        assert agg.dropped > 0
        assert agg.offered == (agg.delivered + agg.dropped
                               + agg.sampled_out + agg.queued)
        assert env.monitor.reconciles()
        # Graph equivalence survives the losses: lifecycle events are
        # critical and never dropped.
        profiles = list(env.mapper.profiles.values())
        assert graph_to_json(env.monitor.snapshot_ftg()) == \
            graph_to_json(build_ftg(profiles))
        assert graph_to_json(env.monitor.snapshot_sdg()) == \
            graph_to_json(build_sdg(profiles))
        # The streaming-lint subscriber stays lossless, so the alert fires
        # even while the lossy subscribers shed load.
        assert any(a.finding.code == "DY203" for a, _ in alerts)
        assert env.monitor.bus.subscription("streamlint").dropped == 0


class TestOverheadIsolation:
    def test_monitoring_off_is_exactly_free(self):
        env = fresh_env()
        workflow, _ = build_workload("ddmd", 0.2)
        env.runner.run(workflow)
        report = overhead_report(env.clock)
        assert report.monitor == 0.0
        assert report.monitor_percent == 0.0
        assert env.clock.account(MONITOR_ACCOUNT) == 0.0

    def test_monitor_cost_separate_from_tracing_accounts(self):
        env_off = fresh_env()
        env_on = fresh_env(monitor=True)
        workflow_off, _ = build_workload("ddmd", 0.2)
        workflow_on, _ = build_workload("ddmd", 0.2)
        env_off.runner.run(workflow_off)
        env_on.runner.run(workflow_on)
        env_on.monitor.finish()
        off = overhead_report(env_off.clock)
        on = overhead_report(env_on.clock)
        assert on.monitor > 0.0
        # Subscriber work is charged, never advanced: the monitored run's
        # timeline and tracing accounts are identical to the unmonitored
        # run's, so Figure 9/10 numbers cannot be contaminated.
        assert on.total_runtime == off.total_runtime
        assert on.vfd_tracker == off.vfd_tracker
        assert on.vol_tracker == off.vol_tracker
        assert on.dayu_time == off.dayu_time


class TestMetricsExport:
    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        c = reg.counter("dayu_ops_total", "Ops.", ("op",))
        g = reg.gauge("dayu_running", "Running.")
        h = reg.histogram("dayu_lat", "Latency.", buckets=(0.1, 1.0))
        c.inc(op="read")
        c.inc(2, op="write")
        g.set(3)
        h.observe(0.05)
        h.observe(5.0)
        text = reg.render_prometheus()
        assert "# TYPE dayu_ops_total counter" in text
        assert 'dayu_ops_total{op="write"} 2' in text
        assert "# TYPE dayu_running gauge" in text
        assert "dayu_running 3" in text
        assert 'dayu_lat_bucket{le="+Inf"} 2' in text
        assert "dayu_lat_count 2" in text
        # Every sample line parses as <name>{labels}? <value>.
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            assert re.match(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$',
                            line), line

    def test_workflow_metrics_populated(self):
        env, _, _ = run_monitored("ddmd")
        snap = env.monitor.metrics_snapshot()
        tasks = snap["dayu_tasks_completed_total"]["values"][0]["value"]
        assert tasks == len(env.mapper.profiles)
        text = env.monitor.render_prometheus()
        assert 'dayu_io_ops_total{op="write"}' in text
        assert "dayu_io_latency_seconds_bucket" in text


class TestWindowedDynamicsEndToEnd:
    def test_ddmd_series_covers_run_and_reconciles_bytes(self):
        env, _, _ = run_monitored("ddmd")
        dyn = env.monitor.dynamics
        assert dyn.keys(), "monitored run produced no dynamics series"
        # Total bytes seen live == total bytes in the saved profiles.
        profile_bytes = sum(
            s.access_volume for p in env.mapper.profiles.values()
            for s in p.dataset_stats)
        assert dyn.total_bytes == profile_bytes
        payload = dyn.to_json_dict()
        assert payload["window_seconds"] == 0.5
        last_end = max(pt["t1"] for row in payload["series"]
                       for pt in row["points"])
        assert last_end > 0


class TestCliRegistration:
    def test_all_install_paths_expose_the_same_clis(self):
        # setup.py defers to pyproject.toml; assert the contract both
        # README and the packaging shim rely on.
        text = open("pyproject.toml").read()
        scripts = re.search(r"\[project\.scripts\](.*?)(\n\[|\Z)", text,
                            re.S).group(1)
        for cli, target in (
            ("dayu-run", "repro.cli:run_main"),
            ("dayu-analyze", "repro.cli:analyze_main"),
            ("dayu-lint", "repro.lint.cli:lint_main"),
            ("dayu-monitor", "repro.monitor.cli:monitor_main"),
        ):
            assert f'{cli} = "{target}"' in scripts
        assert "entry_points" not in open("setup.py").read()

    def test_monitor_cli_end_to_end(self, tmp_path, capsys):
        from repro.monitor.cli import monitor_main

        rc = monitor_main([
            "corner-hazards", "--scale", "0.05", "--out", str(tmp_path),
            "--policy", "drop", "--bus-capacity", "8",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ALERT DY203" in out
        assert "reconciles" in out
        for name in ("series.json", "metrics.prom", "metrics.json",
                     "ftg.json", "sdg.json", "alerts.json", "bus.json"):
            assert (tmp_path / name).exists(), name
        alerts = json.loads((tmp_path / "alerts.json").read_text())
        assert any(a["code"] == "DY203" and a["confirmed"] for a in alerts)
        bus = json.loads((tmp_path / "bus.json").read_text())
        assert bus["reconciles"]
        assert bus["subscribers"]["aggregate"]["dropped"] > 0
