"""Tests for ``repro.lint`` — dayu-lint hazard detection and sanitizing.

Coverage demanded by the acceptance gates:

- DY2xx hazards fire on the seeded corner-case fixture and stay silent
  on the clean bundled workloads (PyFLEXTRKR / DDMD / ARLDM / h5bench);
- VOL-vs-VFD reconciliation (DY3xx) passes on both JSON and binary
  persisted traces, and each sanitizer rule catches its corruption;
- SARIF 2.1.0 output validates against the SARIF schema;
- baselines suppress accepted findings; the parallel path matches the
  serial one; the registry/config machinery behaves.
"""

import copy
import dataclasses

import numpy as np
import pytest

from repro.analyzer import (
    CyclicDependencyError,
    ParallelAnalyzer,
    infer_task_order,
)
from repro.cli import _build_workload
from repro.experiments.common import fresh_env
from repro.lint import (
    Finding,
    LintConfig,
    LintReport,
    Severity,
    all_rules,
    get_rule,
    lint_profiles,
    load_baseline,
    save_baseline,
    to_sarif_dict,
)
from repro.mapper.mapper import TaskProfile
from repro.mapper.stats import DatasetIoStats
from repro.simclock import TimeSpan
from repro.vol.tracer import DataObjectProfile
from repro.workloads.corner_case import CornerCaseParams, build_corner_case


# ----------------------------------------------------------------------
# Shared fixtures: run the workloads once per module
# ----------------------------------------------------------------------
def _run_workload(name, scale=0.5):
    env = fresh_env(n_nodes=2)
    workflow, prepare = _build_workload(name, scale)
    if prepare is not None:
        prepare(env.cluster)
    env.runner.run(workflow)
    return env


@pytest.fixture(scope="module")
def hazard_env():
    env = fresh_env(n_nodes=2)
    params = CornerCaseParams(data_dir="/beegfs/corner", n_datasets=8,
                              file_bytes=1 << 14, read_repeats=2,
                              seed_hazards=True)
    env.runner.run(build_corner_case(params))
    return env


@pytest.fixture(scope="module")
def hazard_profiles(hazard_env):
    return list(hazard_env.mapper.profiles.values())


@pytest.fixture(scope="module")
def hazard_report(hazard_profiles):
    return lint_profiles(hazard_profiles)


# ----------------------------------------------------------------------
# DY2xx on the seeded fixture
# ----------------------------------------------------------------------
class TestSeededHazards:
    def test_double_write_detected(self, hazard_report):
        waw = [f for f in hazard_report.findings if f.code == "DY203"]
        assert len(waw) == 1
        f = waw[0]
        assert f.severity is Severity.ERROR  # overlapping extents
        assert f.subject.endswith("hazard.h5:/dup")
        assert f.tasks == ("hazard_writer_a", "hazard_writer_b")

    def test_phantom_read_detected(self, hazard_report):
        phantom = [f for f in hazard_report.findings if f.code == "DY102"]
        assert len(phantom) == 1
        f = phantom[0]
        assert f.subject.endswith("hazard.h5:/ghost")
        assert f.tasks == ("hazard_phantom_reader",)

    def test_all_seeded_hazards_and_nothing_else(self, hazard_report):
        # 100% of the seeded hazards, zero noise from the clean task.
        assert sorted(f.code for f in hazard_report.findings) == \
            ["DY102", "DY203"]
        for f in hazard_report.findings:
            assert "corner_case" not in f.tasks

    def test_report_plumbing(self, hazard_report):
        assert not hazard_report.clean
        assert hazard_report.counts["error"] == 2
        assert len(hazard_report.errors) == 2
        payload = hazard_report.to_json_dict()
        assert payload["tool"] == "dayu-lint"
        assert [f["code"] for f in payload["findings"]] == ["DY102", "DY203"]

    def test_war_race_detected(self):
        """A late truncating writer races an earlier reader (DY202)."""
        from repro.mapper.config import DaYuConfig
        from repro.mapper.mapper import DataSemanticMapper
        from repro.posix import SimFS
        from repro.simclock import SimClock
        from repro.storage import Mount, make_device

        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("ram"))])
        mapper = DataSemanticMapper(clock, DaYuConfig())
        data = np.arange(64, dtype=np.float32)
        with mapper.task("creator") as ctx:
            f = ctx.open(fs, "/war.h5", "w")
            f.create_dataset("d", shape=(64,), dtype="f4", data=data)
            f.close()
        with mapper.task("reader") as ctx:
            f = ctx.open(fs, "/war.h5", "r")
            f["d"].read()
            f.close()
        with mapper.task("late_writer") as ctx:
            # Truncate: no reads, so nothing orders this task after the
            # reader — rewriting "d" is a WAR race (and a WAW with the
            # creator).
            f = ctx.open(fs, "/war.h5", "w")
            f.create_dataset("d", shape=(64,), dtype="f4", data=data)
            f.close()
        report = lint_profiles(list(mapper.profiles.values()))
        codes = {f.code: f for f in report.findings}
        assert "DY202" in codes
        assert codes["DY202"].tasks == ("late_writer", "reader")
        assert "DY203" in codes
        assert codes["DY203"].tasks == ("creator", "late_writer")


# ----------------------------------------------------------------------
# Clean workloads stay clean
# ----------------------------------------------------------------------
class TestCleanWorkloads:
    @pytest.mark.parametrize("name", ["pyflextrkr", "ddmd", "arldm",
                                      "h5bench", "corner"])
    def test_bundled_workload_is_lint_clean(self, name):
        env = _run_workload(name)
        report = lint_profiles(list(env.mapper.profiles.values()))
        assert report.clean, [str(f) for f in report.findings]

    def test_opt_in_rule_fires_when_enabled(self):
        env = _run_workload("arldm")
        profiles = list(env.mapper.profiles.values())
        assert lint_profiles(profiles).clean
        report = lint_profiles(profiles, LintConfig(enable=("DY105",)))
        assert {f.code for f in report.findings} == {"DY105"}
        assert all(f.severity is Severity.NOTE for f in report.findings)


# ----------------------------------------------------------------------
# Persisted traces: JSON and binary, serial and parallel
# ----------------------------------------------------------------------
class TestPersistedTraces:
    @pytest.fixture(scope="class", params=["json", "binary"])
    def saved_traces(self, request, hazard_env, tmp_path_factory):
        d = tmp_path_factory.mktemp(f"traces_{request.param}")
        hazard_env.mapper.save_to_host_dir(str(d),
                                           trace_format=request.param)
        return str(d)

    @pytest.mark.parametrize("with_records", [False, True])
    def test_reconciliation_passes(self, saved_traces, with_records):
        """The DY3xx sanitizer finds nothing wrong with healthy traces,
        whichever codec stored them and whether records are loaded."""
        analyzer = ParallelAnalyzer(max_workers=1,
                                    with_io_records=with_records)
        profiles = analyzer.load(saved_traces)
        report = lint_profiles(profiles,
                               LintConfig(disable=("DY1", "DY2")))
        assert report.clean, [str(f) for f in report.findings]

    def test_hazards_survive_roundtrip(self, saved_traces):
        profiles = ParallelAnalyzer(max_workers=1).load(saved_traces)
        codes = sorted(f.code for f in lint_profiles(profiles).findings)
        assert codes == ["DY102", "DY203"]

    def test_parallel_lint_matches_serial(self, saved_traces):
        for with_records in (False, True):
            analyzer = ParallelAnalyzer(max_workers=4, shard_size=1,
                                        with_io_records=with_records)
            profiles = analyzer.load(saved_traces)
            parallel = analyzer.lint(profiles)
            serial = lint_profiles(profiles)
            assert [f.to_json_dict() for f in parallel.findings] == \
                [f.to_json_dict() for f in serial.findings]
            assert parallel.tasks == serial.tasks

    def test_analyze_carries_lint_report(self, saved_traces):
        result = ParallelAnalyzer(max_workers=1).analyze(saved_traces,
                                                         lint=True)
        assert result.lint_report is not None
        assert sorted(f.code for f in result.lint_report.findings) == \
            ["DY102", "DY203"]
        assert ParallelAnalyzer(max_workers=1).analyze(
            saved_traces).lint_report is None


# ----------------------------------------------------------------------
# Synthetic profiles: the rules the simulator can't misbehave into
# ----------------------------------------------------------------------
def _profile(task, start, end, stats=(), objects=(), records=(),
             sessions=()):
    return TaskProfile(task=task, span=TimeSpan(start, end),
                       files=sorted({s.file for s in stats}),
                       object_profiles=list(objects),
                       file_sessions=list(sessions),
                       io_records=list(records),
                       dataset_stats=list(stats))


def _stats(task, file, obj, *, reads=0, writes=0, first=0.0, last=1.0,
           data_ops=0, data_bytes=0, pages=((0, 0, 1),)):
    s = DatasetIoStats(task=task, file=file, data_object=obj)
    s.reads = reads
    s.writes = writes
    s.bytes_read = data_bytes if reads else 0
    s.bytes_written = data_bytes if writes else 0
    s.data_ops = data_ops
    s.data_bytes = data_bytes
    s.first_start = first
    s.last_end = last
    s.first_raw_op = "write" if writes else ("read" if reads else None)
    s.set_region_runs(list(pages))
    return s


class TestSyntheticHazards:
    def test_raw_race_on_interleaved_tasks(self):
        """The reader's file-level first read precedes the writer's first
        write (so the DAG records no producer→consumer edge), yet its
        read of the raced object lands after the write — a RAW race
        (DY201)."""
        writer = _profile("writer", 1.0, 3.0, stats=[
            _stats("writer", "/f.h5", "/d", writes=2, first=1.5, last=2.0,
                   data_ops=1, data_bytes=4096),
        ])
        reader = _profile("reader", 0.0, 4.0, stats=[
            _stats("reader", "/f.h5", "/e", reads=1, first=0.5, last=0.6,
                   data_ops=1, data_bytes=64),
            _stats("reader", "/f.h5", "/d", reads=2, first=2.5, last=3.5,
                   data_ops=1, data_bytes=4096),
        ])
        report = lint_profiles([writer, reader],
                               LintConfig(disable=("DY1", "DY3")))
        codes = {f.code: f for f in report.findings}
        assert "DY201" in codes
        assert codes["DY201"].tasks == ("reader", "writer")
        assert codes["DY201"].subject == "/f.h5:/d"
        assert "DY202" not in codes

    def test_double_write_disjoint_extents_downgrades(self):
        """Unordered writers on provably disjoint byte ranges are the
        collective-write pattern: warning, not error."""
        from repro.vfd.base import IoClass
        from repro.vfd.tracing import VfdIoRecord

        def rec(task, offset, start):
            return VfdIoRecord(task=task, file="/f.h5", op="write",
                               offset=offset, nbytes=512, start=start,
                               duration=0.01, access_type=IoClass.RAW,
                               data_object="/d")

        a = _profile("a", 0.0, 1.0, records=[rec("a", 0, 0.5)])
        b = _profile("b", 0.0, 1.0, records=[rec("b", 512, 0.6)])
        report = lint_profiles([a, b],
                               LintConfig(disable=("DY1", "DY3")))
        waw = [f for f in report.findings if f.code == "DY203"]
        assert len(waw) == 1
        assert waw[0].severity is Severity.WARNING
        assert waw[0].evidence["extent_precision"] == "byte"

    def test_cross_object_overlap(self):
        """Unordered writers whose byte ranges alias across different
        objects of one file (DY204)."""
        from repro.vfd.base import IoClass
        from repro.vfd.tracing import VfdIoRecord

        def rec(task, obj, offset, start):
            return VfdIoRecord(task=task, file="/f.h5", op="write",
                               offset=offset, nbytes=1024, start=start,
                               duration=0.01, access_type=IoClass.RAW,
                               data_object=obj)

        a = _profile("a", 0.0, 1.0, records=[rec("a", "/x", 0, 0.5)])
        b = _profile("b", 0.0, 1.0, records=[rec("b", "/y", 512, 0.6)])
        report = lint_profiles([a, b],
                               LintConfig(disable=("DY1", "DY3")))
        codes = {f.code: f for f in report.findings}
        assert "DY204" in codes
        assert codes["DY204"].evidence["overlap"] == [512, 1024]
        assert "DY203" not in codes  # different objects

    def test_layout_mismatch(self):
        def obj(task, layout):
            return DataObjectProfile(task=task, file="/f.h5",
                                     object_name="/d", acquired=0.0,
                                     layout=layout, reads=1,
                                     elements_read=10)

        a = _profile("a", 0.0, 1.0, objects=[obj("a", "chunked")], stats=[
            _stats("a", "/f.h5", "/d", reads=1, data_ops=1,
                   data_bytes=64)])
        b = _profile("b", 2.0, 3.0, objects=[obj("b", "contiguous")],
                     stats=[_stats("b", "/f.h5", "/d", reads=1, first=2.0,
                                   last=2.5, data_ops=1, data_bytes=64)])
        report = lint_profiles([a, b], LintConfig(disable=("DY3",)))
        mismatches = [f for f in report.findings if f.code == "DY104"]
        assert len(mismatches) == 1
        assert mismatches[0].evidence["layouts"] == {
            "chunked": ["a"], "contiguous": ["b"]}

    def test_dependency_cycle_flagged_and_named(self):
        # a writes f1 then reads f2; b writes f2 (earlier) then reads f1
        # (later): each task consumes the other's output.
        a = _profile("a", 0.0, 4.0, stats=[
            _stats("a", "/f1", "/d", writes=1, first=1.0, last=1.1,
                   data_ops=1, data_bytes=64),
            _stats("a", "/f2", "/d", reads=1, first=2.0, last=2.1,
                   data_ops=1, data_bytes=64),
        ])
        b = _profile("b", 0.0, 4.0, stats=[
            _stats("b", "/f2", "/d", writes=1, first=0.5, last=0.6,
                   data_ops=1, data_bytes=64),
            _stats("b", "/f1", "/d", reads=1, first=3.0, last=3.1,
                   data_ops=1, data_bytes=64),
        ])
        report = lint_profiles([a, b], LintConfig(disable=("DY3",)))
        cycles = [f for f in report.findings if f.code == "DY205"]
        assert len(cycles) == 1
        assert sorted(cycles[0].evidence["cycle"]) == ["a", "b"]

        with pytest.raises(CyclicDependencyError) as excinfo:
            infer_task_order([a, b])
        assert sorted(excinfo.value.cycle) == ["a", "b"]
        # Satellite requirement: the message names the offending tasks.
        assert "a" in str(excinfo.value) and "->" in str(excinfo.value)


# ----------------------------------------------------------------------
# DY3xx: each sanitizer rule catches its corruption
# ----------------------------------------------------------------------
@pytest.fixture()
def healthy_profile(hazard_profiles):
    p = copy.deepcopy(
        next(p for p in hazard_profiles if p.task == "corner_case"))
    assert p.io_records, "fixture must carry per-operation records"
    assert lint_profiles([p]).clean
    return p


def _codes(profile, config=None):
    return {f.code for f in
            lint_profiles([profile], config or LintConfig()).findings}


class TestSanitizer:
    def test_vol_without_vfd(self, healthy_profile):
        healthy_profile.object_profiles.append(DataObjectProfile(
            task=healthy_profile.task, file="/nowhere.h5",
            object_name="/lost", acquired=0.0, writes=1,
            elements_written=100))
        assert "DY301" in _codes(healthy_profile)

    def test_vfd_without_vol(self, healthy_profile):
        healthy_profile.dataset_stats.append(_stats(
            healthy_profile.task, "/nowhere.h5", "/untracked", writes=1,
            first=healthy_profile.span.start,
            last=healthy_profile.span.start + 0.001,
            data_ops=1, data_bytes=4096))
        assert "DY301" in _codes(healthy_profile)

    def test_underreported_write_bytes(self, healthy_profile):
        # Shrink every raw write record for one contiguous dataset: the
        # VOL still claims a full write, the VFD no longer moved it.
        target = next(op for op in healthy_profile.object_profiles
                      if op.elements_written > 0
                      and op.layout == "contiguous")
        healthy_profile.io_records = [
            dataclasses.replace(r, nbytes=1)
            if (r.data_object == target.object_name and r.op == "write")
            else r
            for r in healthy_profile.io_records
        ]
        assert "DY301" in _codes(healthy_profile,
                                 LintConfig(disable=("DY302", "DY303",
                                                     "DY304", "DY305")))

    def test_negative_record_extent(self, healthy_profile):
        healthy_profile.io_records[0] = dataclasses.replace(
            healthy_profile.io_records[0], nbytes=-5)
        assert "DY302" in _codes(healthy_profile)

    def test_malformed_region_run(self, healthy_profile):
        healthy_profile.dataset_stats[0].set_region_runs([(5, 2, 1)])
        assert "DY302" in _codes(healthy_profile)

    def test_orphan_stats_without_regions(self, healthy_profile):
        s = next(s for s in healthy_profile.dataset_stats
                 if s.access_count > 0)
        s.set_region_runs([])
        assert "DY303" in _codes(healthy_profile)

    def test_regions_disagree_with_records(self, healthy_profile):
        s = next(s for s in healthy_profile.dataset_stats
                 if s.data_ops > 0)
        runs = s.region_runs()
        s.set_region_runs(runs + [(runs[-1][1] + 10, runs[-1][1] + 11, 1)])
        assert "DY303" in _codes(healthy_profile)

    def test_record_outside_task_window(self, healthy_profile):
        healthy_profile.io_records[0] = dataclasses.replace(
            healthy_profile.io_records[0],
            start=healthy_profile.span.end + 5.0)
        assert "DY304" in _codes(
            healthy_profile, LintConfig(disable=("DY303",)))

    def test_records_without_session(self, healthy_profile):
        healthy_profile.file_sessions = []
        assert "DY305" in _codes(healthy_profile)

    def test_records_exceed_session_accounting(self, healthy_profile):
        for sess in healthy_profile.file_sessions:
            sess.read_ops = 0
            sess.write_ops = 0
        assert "DY305" in _codes(healthy_profile)


# ----------------------------------------------------------------------
# Registry, config, fingerprints, baseline
# ----------------------------------------------------------------------
class TestRegistryAndBaseline:
    def test_registry_families_complete(self):
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        assert {c[:3] for c in codes} == {"DY1", "DY2", "DY3", "DY4",
                                          "DY5", "DY6"}
        assert len(codes) == len(set(codes))
        assert get_rule("DY203").scope == "workflow"
        assert get_rule("DY301").scope == "profile"
        assert get_rule("DY401").scope == "contract"
        assert get_rule("DY451").scope == "drift"
        assert get_rule("DY501").scope == "race"
        assert get_rule("DY601").scope == "perf"
        assert get_rule("DY651").scope == "costdrift"

    def test_config_precedence(self):
        dy105 = get_rule("DY105")
        assert not LintConfig().is_enabled(dy105)  # off by default
        assert LintConfig(enable=("DY105",)).is_enabled(dy105)
        assert LintConfig(enable=("DY1",)).is_enabled(dy105)
        assert not LintConfig(enable=("DY105",),
                              disable=("DY1",)).is_enabled(dy105)
        with pytest.raises(ValueError):
            LintConfig(enable=("bogus",))

    def test_fingerprint_stability(self):
        def make(message):
            return Finding(code="DY203", rule="unordered-double-write",
                           severity=Severity.ERROR, message=message,
                           subject="/f.h5:/d", tasks=("b", "a"))

        assert make("one").fingerprint == make("two").fingerprint
        other = dataclasses.replace(make("one"), subject="/g.h5:/d")
        assert other.fingerprint != make("one").fingerprint

    def test_baseline_roundtrip(self, hazard_report, tmp_path):
        path = tmp_path / "baseline.txt"
        save_baseline(str(path), hazard_report.findings)
        fingerprints = load_baseline(str(path))
        assert len(fingerprints) == 2
        suppressed = hazard_report.apply_baseline(fingerprints)
        assert suppressed.clean
        assert len(suppressed.suppressed) == 2
        # A finding not in the baseline still surfaces.
        partial = hazard_report.apply_baseline(
            {hazard_report.findings[0].fingerprint})
        assert len(partial.findings) == 1
        assert len(partial.errors) == 1


# ----------------------------------------------------------------------
# SARIF 2.1.0
# ----------------------------------------------------------------------
# Structural subset of the OASIS SARIF 2.1.0 schema: the required
# top-level shape, run/tool/driver wiring, reportingDescriptors, and
# result objects with the constrained ``level`` enum.  Validating against
# the subset catches every structural mistake an emitter can make while
# keeping the fixture reviewable.
SARIF_SCHEMA_SUBSET = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {
                                                            "type": "string"},
                                                    },
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {"enum": [
                                                            "none", "note",
                                                            "warning",
                                                            "error"]},
                                                        "enabled": {
                                                            "type":
                                                            "boolean"},
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer",
                                              "minimum": 0},
                                "level": {"enum": ["none", "note",
                                                   "warning", "error"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"},
                                    },
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {
                                        "type": "string"},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type":
                                                                "string"},
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarif:
    def test_sarif_validates_against_schema(self, hazard_report):
        jsonschema = pytest.importorskip("jsonschema")
        log = to_sarif_dict(hazard_report)
        jsonschema.validate(log, SARIF_SCHEMA_SUBSET)

    def test_sarif_structure(self, hazard_report):
        log = to_sarif_dict(hazard_report)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        # Every registered rule is described, not just the ones that fired.
        assert [r["id"] for r in rules] == [r.code for r in all_rules()]
        assert len(run["results"]) == len(hazard_report.findings)
        for result, finding in zip(run["results"], hazard_report.findings):
            assert result["ruleId"] == finding.code
            assert rules[result["ruleIndex"]]["id"] == finding.code
            assert result["level"] == finding.severity.value
            assert result["partialFingerprints"][
                "dayuLintFingerprint/v1"] == finding.fingerprint

    def test_sarif_empty_report_is_valid(self):
        jsonschema = pytest.importorskip("jsonschema")
        log = to_sarif_dict(LintReport())
        jsonschema.validate(log, SARIF_SCHEMA_SUBSET)
        assert log["runs"][0]["results"] == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture(scope="class")
    def trace_dir(self, hazard_env, tmp_path_factory):
        d = tmp_path_factory.mktemp("cli_traces")
        hazard_env.mapper.save_to_host_dir(str(d), trace_format="binary")
        return str(d)

    def test_exit_one_on_errors(self, trace_dir, capsys):
        from repro.lint.cli import lint_main

        assert lint_main([trace_dir]) == 1
        out = capsys.readouterr().out
        assert "DY203" in out and "DY102" in out

    def test_baseline_flow_exits_zero(self, trace_dir, tmp_path, capsys):
        from repro.lint.cli import lint_main

        baseline = str(tmp_path / "base.txt")
        assert lint_main([trace_dir, "--write-baseline", baseline]) == 0
        assert lint_main([trace_dir, "--baseline", baseline]) == 0
        capsys.readouterr()

    def test_sarif_output_file(self, trace_dir, tmp_path, capsys):
        import json

        from repro.lint.cli import lint_main

        out = tmp_path / "lint.sarif"
        assert lint_main([trace_dir, "--format", "sarif",
                          "--out", str(out)]) == 1
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        capsys.readouterr()

    def test_disable_family(self, trace_dir, capsys):
        from repro.lint.cli import lint_main

        assert lint_main([trace_dir, "--disable", "DY2",
                          "--disable", "DY102"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        from repro.lint.cli import lint_main

        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for r in all_rules():
            assert r.code in out
