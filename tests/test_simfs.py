"""Unit tests for the simulated POSIX filesystem."""

import pytest
from hypothesis import given, strategies as st

from repro.posix import SimFS
from repro.posix.simfs import FsError
from repro.simclock import SimClock
from repro.storage import Mount, make_device


@pytest.fixture()
def fs():
    clock = SimClock()
    return SimFS(
        clock,
        mounts=[
            Mount("/pfs", make_device("beegfs")),
            Mount("/local", make_device("nvme"), node="n0"),
        ],
    )


class TestMountRouting:
    def test_longest_prefix_wins(self, fs):
        fs.add_mount(Mount("/pfs/fast", make_device("nvme")))
        assert fs.mount_for("/pfs/fast/f.h5").device.spec.name == "nvme"
        assert fs.mount_for("/pfs/f.h5").device.spec.name == "beegfs"

    def test_unserved_path_raises(self, fs):
        with pytest.raises(FsError):
            fs.mount_for("/nowhere/f")

    def test_duplicate_mount_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.add_mount(Mount("/pfs", make_device("nfs")))


class TestOpenModes:
    def test_w_creates(self, fs):
        fd = fs.open("/pfs/a", "w")
        assert fs.exists("/pfs/a")
        fs.close(fd)

    def test_r_requires_existing(self, fs):
        with pytest.raises(FsError):
            fs.open("/pfs/missing", "r")

    def test_x_exclusive(self, fs):
        fd = fs.open("/pfs/a", "x")
        fs.close(fd)
        with pytest.raises(FsError):
            fs.open("/pfs/a", "x")

    def test_w_truncates(self, fs):
        fd = fs.open("/pfs/a", "w")
        fs.write(fd, b"data")
        fs.close(fd)
        fd = fs.open("/pfs/a", "w")
        assert fs.file_size(fd) == 0
        fs.close(fd)

    def test_a_appends(self, fs):
        fd = fs.open("/pfs/a", "w")
        fs.write(fd, b"one")
        fs.close(fd)
        fd = fs.open("/pfs/a", "a")
        fs.write(fd, b"two")
        fs.close(fd)
        fd = fs.open("/pfs/a", "r")
        assert fs.read(fd, 10) == b"onetwo"
        fs.close(fd)

    def test_read_only_fd_rejects_write(self, fs):
        fd = fs.open("/pfs/a", "w")
        fs.close(fd)
        fd = fs.open("/pfs/a", "r")
        with pytest.raises(FsError):
            fs.write(fd, b"nope")
        fs.close(fd)

    def test_bad_mode_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.open("/pfs/a", "rw")

    def test_bad_fd_rejected(self, fs):
        with pytest.raises(FsError):
            fs.read(999, 1)


class TestPositionalIo:
    def test_pwrite_pread_roundtrip(self, fs):
        fd = fs.open("/pfs/a", "w")
        fs.pwrite(fd, b"hello world", 100)
        assert fs.pread(fd, 5, 106) == b"world"
        fs.close(fd)

    def test_sequential_offsets_advance(self, fs):
        fd = fs.open("/pfs/a", "w")
        fs.write(fd, b"abc")
        fs.write(fd, b"def")
        fs.lseek(fd, 0)
        assert fs.read(fd, 6) == b"abcdef"
        fs.close(fd)

    def test_lseek_negative_rejected(self, fs):
        fd = fs.open("/pfs/a", "w")
        with pytest.raises(FsError):
            fs.lseek(fd, -1)
        fs.close(fd)

    def test_truncate_via_fd(self, fs):
        fd = fs.open("/pfs/a", "w")
        fs.write(fd, b"abcdef")
        fs.truncate(fd, 2)
        assert fs.file_size(fd) == 2
        fs.close(fd)


class TestNamespace:
    def test_unlink(self, fs):
        fd = fs.open("/pfs/a", "w")
        fs.close(fd)
        fs.unlink("/pfs/a")
        assert not fs.exists("/pfs/a")

    def test_unlink_missing_raises(self, fs):
        with pytest.raises(FsError):
            fs.unlink("/pfs/zzz")

    def test_rename(self, fs):
        fd = fs.open("/pfs/a", "w")
        fs.write(fd, b"x")
        fs.close(fd)
        fs.rename("/pfs/a", "/pfs/b")
        assert not fs.exists("/pfs/a")
        assert fs.stat("/pfs/b").size == 1

    def test_listdir(self, fs):
        for name in ("/pfs/d/x", "/pfs/d/y", "/pfs/other"):
            fs.close(fs.open(name, "w"))
        assert fs.listdir("/pfs/d") == ["/pfs/d/x", "/pfs/d/y"]

    def test_stat_reports_device(self, fs):
        fd = fs.open("/local/f", "w")
        fs.write(fd, b"1234")
        fs.close(fd)
        st_ = fs.stat("/local/f")
        assert st_.size == 4
        assert st_.device == "nvme"


class TestTimingAndLog:
    def test_io_advances_clock(self, fs):
        before = fs.clock.now
        fd = fs.open("/pfs/a", "w")
        fs.write(fd, b"x" * 1024)
        fs.close(fd)
        assert fs.clock.now > before
        assert fs.clock.account(SimFS.IO_ACCOUNT) > 0

    def test_op_log_records_everything(self, fs):
        fd = fs.open("/pfs/a", "w")
        fs.pwrite(fd, b"x" * 10, 0)
        fs.pread(fd, 10, 0)
        fs.close(fd)
        assert [r.op for r in fs.op_log] == ["write", "read"]
        rec = fs.op_log[0]
        assert rec.path == "/pfs/a"
        assert rec.nbytes == 10
        assert rec.device == "beegfs"
        assert rec.cost > 0

    def test_log_suppression(self):
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))], log_ops=False)
        fd = fs.open("/a", "w")
        fs.write(fd, b"data")
        fs.close(fd)
        assert fs.op_log == []
        assert clock.now > 0  # timing still accrues

    def test_io_time_filter_by_path(self, fs):
        fa = fs.open("/pfs/a", "w")
        fb = fs.open("/pfs/b", "w")
        fs.write(fa, b"x" * 100)
        fs.write(fb, b"y" * 100)
        fs.close(fa)
        fs.close(fb)
        assert fs.io_time("/pfs/a") > 0
        assert fs.io_time() == pytest.approx(fs.io_time("/pfs/a") + fs.io_time("/pfs/b"))

    def test_op_count_filters(self, fs):
        fd = fs.open("/pfs/a", "w")
        fs.write(fd, b"1")
        fs.write(fd, b"2")
        fs.lseek(fd, 0)
        fs.read(fd, 2)
        fs.close(fd)
        assert fs.op_count(op="write") == 2
        assert fs.op_count(op="read") == 1
        assert fs.op_count(path="/pfs/a") == 3

    def test_faster_device_costs_less(self):
        def one_write(device):
            clock = SimClock()
            fs = SimFS(clock, mounts=[Mount("/", make_device(device))])
            fd = fs.open("/f", "w")
            fs.write(fd, b"z" * (1 << 20))
            fs.close(fd)
            return clock.now

        assert one_write("nvme") < one_write("sata_ssd") < one_write("nfs")


class TestPropertyRoundtrip:
    @given(
        st.lists(
            st.tuples(st.integers(0, 512), st.binary(min_size=1, max_size=128)),
            min_size=1,
            max_size=20,
        )
    )
    def test_pwrite_pread_reference_model(self, writes):
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("ram"))])
        fd = fs.open("/f", "w")
        ref = bytearray()
        for off, data in writes:
            fs.pwrite(fd, data, off)
            if off + len(data) > len(ref):
                ref.extend(b"\x00" * (off + len(data) - len(ref)))
            ref[off : off + len(data)] = data
        assert fs.pread(fd, len(ref), 0) == bytes(ref)
        fs.close(fd)
