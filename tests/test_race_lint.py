"""Tests for the DY5xx happens-before race family (``repro.lint.race``).

Acceptance gates exercised here:

- DY501–DY505 convict every seeded race in the ``racy-pipeline``
  ground-truth workload, each with a validating reorder witness —
  replaying the witness order actually flips the observed outcome;
- the disjoint-selection trap downgrades to a warning (byte-precise
  extents), and every other bundled workload is DY5xx-clean;
- static (pre-run) and post-hoc modes agree on the DY501–503
  convictions (code, subject, tasks);
- the sharded :class:`ParallelAnalyzer` path and the columnar
  page-stat-pushdown path produce byte-identical reports to serial;
- the streaming mirrors (DY501/502/503) confirm a fingerprint subset of
  batch and stay silent on clean workloads;
- ``dayu-lint`` exit codes (0 clean / 1 new errors / 2 usage or
  unreadable trace) hold across ``--static``, ``--diff`` and
  ``--races``; ``--select``/``--ignore`` family globs work;
- zero-length / truncated trace files raise the typed
  :class:`UnknownTraceFormat` naming the path.
"""

import json
from dataclasses import dataclass
from typing import Dict, List

import numpy as np
import pytest

from repro.analyzer import ParallelAnalyzer
from repro.experiments.common import fresh_env
from repro.faults import FaultInjector
from repro.lint import (
    LintConfig,
    lint_profiles,
    lint_workflow,
    sensitivity_report_from_findings,
)
from repro.lint.cli import lint_main
from repro.mapper.codec import encode_profile
from repro.mapper.columnar import encode_run
from repro.mapper.persist import (
    UnknownTraceFormat,
    load_profiles_path,
    sniff_trace_format_path,
)
from repro.monitor.monitor import MonitorConfig
from repro.workflow.replay import replay_in_order
from repro.workflow.runner import RetryPolicy, WorkflowRunner
from repro.workloads.racy_pipeline import RacyParams, racy_fault_spec
from repro.workloads.registry import build_workload

RACES = LintConfig(enable=("DY5*",))

#: Workloads expected DY5xx-clean (corner-hazards and racy-pipeline are
#: the two deliberately seeded fixtures).
CLEAN_WORKLOADS = ("pyflextrkr", "ddmd", "arldm", "h5bench",
                   "h5bench-shared", "climate", "corner", "chaos")


@dataclass
class RacyRun:
    workflow: object
    env: object
    profiles: List[object]
    attempts: Dict[str, int]
    params: RacyParams


@pytest.fixture(scope="module")
def racy_run():
    """One fault-injected racy-pipeline run: the DY5xx ground truth."""
    workflow, _ = build_workload("racy-pipeline", 1.0)
    env = fresh_env(n_nodes=2)
    runner = WorkflowRunner(
        env.cluster, env.mapper,
        retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.25))
    injector = FaultInjector(racy_fault_spec(), env.cluster)
    injector.arm()
    runner.faults = injector
    result = runner.run(workflow)
    assert result.attempts["racy_bump_state"] > 1  # the fault landed
    return RacyRun(workflow=workflow, env=env,
                   profiles=list(env.mapper.profiles.values()),
                   attempts=dict(result.attempts),
                   params=RacyParams())


@pytest.fixture(scope="module")
def racy_report(racy_run):
    return lint_profiles(racy_run.profiles, RACES,
                         attempts=racy_run.attempts)


@pytest.fixture(scope="module")
def racy_traces(racy_run, tmp_path_factory):
    """The same run persisted: row traces, a columnar run, attempts doc."""
    base = tmp_path_factory.mktemp("racy")
    row = base / "row"
    col = base / "col"
    row.mkdir()
    col.mkdir()
    for p in racy_run.profiles:
        (row / f"{p.task}.dayu").write_bytes(encode_profile(p))
    ordered = sorted(racy_run.profiles, key=lambda p: p.span.start)
    (col / "run.dayuc").write_bytes(encode_run(ordered))
    attempts = base / "attempts.json"
    attempts.write_text(json.dumps(racy_run.attempts))
    return {"row": str(row), "col": str(col), "attempts": str(attempts)}


def _by_code(report, code):
    return [f for f in report.findings if f.code == code]


def _dy5(findings):
    return [f for f in findings if f.code.startswith("DY5")]


# ----------------------------------------------------------------------
# Seeded convictions (post-hoc)
# ----------------------------------------------------------------------
class TestSeededConvictions:
    def test_dy501_true_waw_races(self, racy_run, racy_report):
        p = racy_run.params
        errors = {f.subject: f for f in _by_code(racy_report, "DY501")
                  if f.severity.value == "error"}
        assert f"{p.waw_path}:/jets" in errors
        assert f"{p.mask_path}:/mask" in errors
        jets = errors[f"{p.waw_path}:/jets"]
        assert jets.tasks == ("racy_jet_a", "racy_jet_b")
        assert jets.evidence["overlap"] is not None

    def test_dy501_disjoint_trap_downgrades(self, racy_run, racy_report):
        p = racy_run.params
        warn = [f for f in _by_code(racy_report, "DY501")
                if f.subject == f"{p.disjoint_path}:/field"]
        assert len(warn) == 1
        assert warn[0].severity.value == "warning"
        assert warn[0].evidence["overlap"] is None
        assert warn[0].evidence["extent_precision"] == "exact"

    def test_dy502_read_write_race(self, racy_run, racy_report):
        p = racy_run.params
        found = _by_code(racy_report, "DY502")
        assert [f.subject for f in found] == [f"{p.rw_path}:/series"]
        assert found[0].tasks == ("racy_amend", "racy_probe")

    def test_dy503_metadata_race(self, racy_run, racy_report):
        p = racy_run.params
        found = _by_code(racy_report, "DY503")
        assert [f.subject for f in found] == [f"{p.meta_path}:/log"]
        assert found[0].tasks == ("racy_grow_log", "racy_shape_probe")
        assert found[0].evidence["mutator"] == "racy_grow_log"

    def test_dy504_sensitivity_note(self, racy_report):
        notes = _by_code(racy_report, "DY504")
        assert len(notes) == 1
        ev = notes[0].evidence
        assert ev["schema"] == "dayu-sensitivity/v1"
        assert ev["total_edges"] == len(ev["edges"]) == 5
        assert not ev["truncated"]
        assert all(e["carrier"] == "observed-timing" for e in ev["edges"])
        pairs = {(e["before"], e["after"]) for e in ev["edges"]}
        assert ("racy_mask_early", "racy_mask_late") in pairs
        assert ("racy_probe", "racy_amend") in pairs
        # The report extractor returns the same document.
        assert sensitivity_report_from_findings(racy_report.findings) == ev

    def test_dy505_retry_exposed(self, racy_run, racy_report):
        p = racy_run.params
        found = _by_code(racy_report, "DY505")
        assert [f.subject for f in found] == [f"{p.retry_path}:/state"]
        assert found[0].tasks == ("racy_audit_state", "racy_bump_state")
        assert found[0].evidence["attempts"] == \
            racy_run.attempts["racy_bump_state"]
        w = found[0].evidence["witness"]
        assert w["schema"] == "dayu-witness/v1"
        assert w["replayed"] == "racy_bump_state"
        assert w["order"].count("racy_bump_state") == 2

    def test_dy505_needs_attempts(self, racy_run):
        report = lint_profiles(racy_run.profiles, RACES)  # no history
        assert not _by_code(report, "DY505")


# ----------------------------------------------------------------------
# Witness validation: replaying the reordering flips the outcome
# ----------------------------------------------------------------------
class TestWitnessValidation:
    def test_every_conviction_ships_a_witness(self, racy_report):
        for f in _dy5(racy_report.findings):
            if f.code in ("DY501", "DY502", "DY503", "DY505"):
                w = f.evidence["witness"]
                assert w is not None and w["schema"] == "dayu-witness/v1"
                assert set(w["reordered"]) <= set(w["order"])

    def test_waw_witness_replay_flips_survivor(self, racy_run, racy_report):
        p = racy_run.params
        jets = next(f for f in _by_code(racy_report, "DY501")
                    if f.subject == f"{p.waw_path}:/jets")
        witness = jets.evidence["witness"]
        order = witness["order"]
        assert witness["window"] == [0, witness["total_tasks"]]
        # The witness is a full legal schedule; run it.
        flipped = replay_in_order(racy_run.workflow, order)
        # The original orientation: same schedule with the pair swapped
        # back (also legal — the pair is concurrent under dependencies).
        second, first = witness["reordered"]
        swapped = list(order)
        i, j = swapped.index(second), swapped.index(first)
        swapped[i], swapped[j] = swapped[j], swapped[i]
        original = replay_in_order(racy_run.workflow, swapped)
        a = flipped.read(p.waw_path, "/jets")
        b = original.read(p.waw_path, "/jets")
        assert not np.array_equal(a, b)  # the race outcome flipped

    def test_replay_rejects_unknown_tasks(self, racy_run):
        with pytest.raises(ValueError, match="not in"):
            replay_in_order(racy_run.workflow, ["nope"])


# ----------------------------------------------------------------------
# Clean workloads stay clean
# ----------------------------------------------------------------------
class TestCleanWorkloads:
    @pytest.mark.parametrize("name", CLEAN_WORKLOADS)
    def test_trace_mode_clean(self, name):
        workflow, prepare = build_workload(name, 0.25)
        env = fresh_env(n_nodes=2)
        if prepare is not None:
            prepare(env.cluster)
        env.runner.run(workflow)
        report = lint_profiles(list(env.mapper.profiles.values()), RACES)
        assert _dy5(report.findings) == []

    @pytest.mark.parametrize("name", CLEAN_WORKLOADS)
    def test_static_mode_no_errors(self, name):
        workflow, _ = build_workload(name, 0.25)
        report = lint_workflow(workflow, RACES)
        errors = [f for f in _dy5(report.findings)
                  if f.severity.value == "error"]
        assert errors == []


# ----------------------------------------------------------------------
# Static vs post-hoc agreement
# ----------------------------------------------------------------------
class TestStaticAgreement:
    def test_static_convicts_the_same_races(self, racy_run, racy_report):
        static = lint_workflow(racy_run.workflow, RACES)
        key = lambda f: (f.code, f.subject, f.tasks)  # noqa: E731
        static_keys = {key(f) for f in _dy5(static.findings)
                       if f.code in ("DY501", "DY502", "DY503")}
        trace_keys = {key(f) for f in _dy5(racy_report.findings)
                      if f.code in ("DY501", "DY502", "DY503")}
        assert static_keys == trace_keys
        # Static units are elements, and the disjoint trap still warns.
        disjoint = next(f for f in _by_code(static, "DY501")
                        if "/field" in f.subject)
        assert disjoint.severity.value == "warning"
        assert disjoint.evidence["units"] == "elements"

    def test_static_sensitivity_carriers(self, racy_run):
        static = lint_workflow(racy_run.workflow, RACES)
        note = _by_code(static, "DY504")[0]
        carriers = {e["carrier"] for e in note.evidence["edges"]}
        assert carriers == {"stage-barrier"}


# ----------------------------------------------------------------------
# Parallel / columnar byte-identity
# ----------------------------------------------------------------------
class TestParallelIdentity:
    def test_sharded_lint_matches_serial(self, racy_run, racy_report):
        analyzer = ParallelAnalyzer(max_workers=4, shard_size=4,
                                    with_io_records=True)
        sharded = analyzer.lint(racy_run.profiles, RACES,
                                attempts=racy_run.attempts)
        assert sharded.to_json() == racy_report.to_json()

    def test_row_and_columnar_loads_agree(self, racy_run, racy_traces):
        serial = ParallelAnalyzer(max_workers=1, with_io_records=True)
        row = serial.lint(serial.load(racy_traces["row"]), RACES,
                          attempts=racy_run.attempts)
        stats: dict = {}
        col = serial.lint_run(racy_traces["col"], RACES, stats_out=stats,
                              attempts=racy_run.attempts)
        assert col.to_json() == row.to_json()
        assert stats["n_groups"] == len(racy_run.profiles)

    def test_pushdown_skips_races_on_disjoint_run(self, tmp_path):
        """A run where no two tasks share an object prunes every race
        rule from the page statistics alone."""
        workflow, _ = build_workload("h5bench", 0.25)
        env = fresh_env(n_nodes=2)
        env.runner.run(workflow)
        ordered = sorted(env.mapper.profiles.values(),
                         key=lambda p: p.span.start)
        (tmp_path / "run.dayuc").write_bytes(encode_run(ordered))
        stats: dict = {}
        report = ParallelAnalyzer(max_workers=1).lint_run(
            str(tmp_path), RACES, stats_out=stats)
        assert _dy5(report.findings) == []
        assert stats["rules_skipped"] > 0


# ----------------------------------------------------------------------
# Streaming mirrors
# ----------------------------------------------------------------------
class TestStreamingRaces:
    def test_streamed_subset_of_batch(self, racy_run):
        workflow, _ = build_workload("racy-pipeline", 1.0)
        env = fresh_env(n_nodes=2,
                        monitor_config=MonitorConfig(stream_races=True))
        env.runner.run(workflow)
        env.monitor.finish()
        streamed = _dy5(env.monitor.streamlint.finalize())
        batch = lint_profiles(list(env.mapper.profiles.values()), RACES)
        batch_prints = {f.fingerprint for f in _dy5(batch.findings)}
        assert streamed  # the seeded races stream mid-run
        assert {f.fingerprint for f in streamed} <= batch_prints
        # Every streamable conviction (not DY504/505) was streamed.
        streamable = {f.fingerprint for f in _dy5(batch.findings)
                      if f.code in ("DY501", "DY502", "DY503")}
        assert {f.fingerprint for f in streamed} == streamable

    def test_streaming_off_by_default(self):
        workflow, _ = build_workload("racy-pipeline", 1.0)
        env = fresh_env(n_nodes=2, monitor_config=MonitorConfig())
        env.runner.run(workflow)
        env.monitor.finish()
        assert _dy5(env.monitor.streamlint.finalize()) == []


# ----------------------------------------------------------------------
# CLI: exit codes, globs, reports
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_1_on_seeded_races(self, racy_traces):
        assert lint_main([racy_traces["row"], "--races",
                          "--with-io-records",
                          "--attempts", racy_traces["attempts"]]) == 1

    def test_exit_0_on_clean_static(self, capsys):
        assert lint_main(["--static", "ddmd", "--races"]) == 0
        capsys.readouterr()

    def test_exit_0_without_races_optin(self, racy_traces, capsys):
        # DY2xx still errors here, so disable that family: the DY5xx
        # rules must stay off unless opted in.
        out = capsys  # keep stdout drained
        code = lint_main([racy_traces["row"], "--ignore", "DY2",
                          "--format", "json"])
        body = json.loads(out.readouterr().out)
        assert code == 0
        assert not [f for f in body["findings"]
                    if f["code"].startswith("DY5")]

    def test_exit_2_unknown_workload(self, capsys):
        assert lint_main(["--static", "no-such-workload"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_exit_2_unreadable_trace(self, tmp_path, capsys):
        (tmp_path / "empty.dayu").write_bytes(b"")
        assert lint_main([str(tmp_path), "--races"]) == 2
        assert "empty.dayu" in capsys.readouterr().err

    def test_exit_2_bad_attempts(self, racy_traces, tmp_path, capsys):
        bad = tmp_path / "attempts.json"
        bad.write_text("[1, 2]")
        assert lint_main([racy_traces["row"], "--races",
                          "--attempts", str(bad)]) == 2
        assert "--attempts" in capsys.readouterr().err

    def test_select_ignore_globs(self, racy_traces, capsys):
        lint_main([racy_traces["row"], "--select", "DY5*",
                   "--ignore", "DY2*", "--with-io-records",
                   "--attempts", racy_traces["attempts"],
                   "--format", "json"])
        body = json.loads(capsys.readouterr().out)
        codes = {f["code"] for f in body["findings"]}
        assert codes == {"DY501", "DY502", "DY503", "DY504", "DY505"}

    def test_ignore_wins_over_select(self, racy_traces, capsys):
        lint_main([racy_traces["row"], "--select", "DY5*",
                   "--ignore", "DY5*", "--ignore", "DY2*",
                   "--format", "json"])
        body = json.loads(capsys.readouterr().out)
        assert not [f for f in body["findings"]
                    if f["code"].startswith("DY5")]

    def test_sarif_carries_witness(self, racy_traces, tmp_path, capsys):
        out = tmp_path / "races.sarif"
        lint_main([racy_traces["row"], "--races", "--with-io-records",
                   "--attempts", racy_traces["attempts"],
                   "--format", "sarif", "--out", str(out)])
        capsys.readouterr()
        sarif = json.loads(out.read_text())
        results = sarif["runs"][0]["results"]
        race_results = [r for r in results
                        if r["ruleId"].startswith("DY5")]
        assert race_results
        witnessed = [r for r in race_results
                     if (r["properties"]["evidence"].get("witness") or {})
                     .get("schema") == "dayu-witness/v1"]
        assert witnessed  # reorder witnesses survive serialization

    def test_sensitivity_out(self, racy_traces, tmp_path, capsys):
        out = tmp_path / "sens.json"
        lint_main([racy_traces["row"], "--races", "--with-io-records",
                   "--sensitivity-out", str(out), "--format", "json"])
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["schema"] == "dayu-sensitivity/v1"
        assert doc["total_edges"] == 5

    def test_static_and_posthoc_cli_agree(self, racy_traces, capsys):
        lint_main(["--static", "racy-pipeline", "--races",
                   "--format", "json"])
        static = json.loads(capsys.readouterr().out)
        lint_main([racy_traces["row"], "--races", "--with-io-records",
                   "--format", "json"])
        trace = json.loads(capsys.readouterr().out)

        def keys(body):
            return {(f["code"], f["subject"], tuple(f["tasks"]))
                    for f in body["findings"]
                    if f["code"] in ("DY501", "DY502", "DY503")}

        assert keys(static) == keys(trace)


# ----------------------------------------------------------------------
# Typed sniff errors on truncated traces
# ----------------------------------------------------------------------
class TestUnknownTraceFormat:
    @pytest.mark.parametrize("payload", [b"", b"DY"])
    def test_sniff_names_the_path(self, tmp_path, payload):
        path = tmp_path / "stub.dayu"
        path.write_bytes(payload)
        with pytest.raises(UnknownTraceFormat) as exc:
            sniff_trace_format_path(path)
        assert str(path) in str(exc.value)
        assert exc.value.size == len(payload)

    def test_loaders_raise_it_too(self, tmp_path):
        path = tmp_path / "stub.dayu"
        path.write_bytes(b"\x00")
        with pytest.raises(UnknownTraceFormat):
            load_profiles_path(path)

    def test_it_is_a_value_error(self):
        assert issubclass(UnknownTraceFormat, ValueError)
