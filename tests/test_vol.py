"""Unit tests for the VOL profiler and its wrapper objects."""

import json

import numpy as np
import pytest

from repro.hdf5 import Selection
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device
from repro.vfd import IoClass, VfdTracer, VolVfdChannel
from repro.vol import VolFile, VolTracer
from repro.vol.tracer import VOL_TRACKER_ACCOUNT


@pytest.fixture()
def env():
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("ram"))])
    channel = VolVfdChannel()
    channel.set_task("task0")
    vol = VolTracer(clock, channel)
    vfd = VfdTracer(clock, channel)
    return fs, channel, vol, vfd


def open_file(env, path="/f.h5", mode="w"):
    fs, channel, vol, vfd = env
    return VolFile(fs, path, mode, vol=vol, vfd_tracer=vfd)


class TestVolProfiles:
    def test_table1_semantics_captured(self, env):
        fs, channel, vol, vfd = env
        f = open_file(env)
        d = f.create_dataset("temps", shape=(64,), dtype="f8",
                             data=np.zeros(64))
        d.read()
        f.close()
        [p] = [p for p in vol.profiles if p.object_name == "/temps"]
        assert p.task == "task0"
        assert p.file == "/f.h5"
        assert p.shape == (64,)
        assert p.dtype == "f8"
        assert p.layout == "contiguous"
        assert p.nbytes == 512
        assert p.writes == 1 and p.reads == 1
        assert p.elements_written == 64 and p.elements_read == 64
        assert p.access_kind == "read_write"
        assert p.lifetime is not None and p.lifetime > 0

    def test_deferred_logging_until_file_close(self, env):
        fs, channel, vol, vfd = env
        f = open_file(env)
        d = f.create_dataset("d", shape=(4,), dtype="i4", data=[1, 2, 3, 4])
        d.close()  # dataset closed but file still open
        assert vol.profiles == []  # not yet emitted
        assert len(vol.all_profiles()) == 1
        f.close()
        assert len(vol.profiles) == 1

    def test_reopen_merges_into_one_profile(self, env):
        fs, channel, vol, vfd = env
        f = open_file(env)
        f.create_dataset("d", shape=(4,), dtype="i4", data=[0, 0, 0, 0])
        for _ in range(5):
            f["d"].read()  # each lookup opens a fresh handle
        f.close()
        profiles = [p for p in vol.profiles if p.object_name == "/d"]
        assert len(profiles) == 1
        assert profiles[0].open_count == 6
        assert profiles[0].reads == 5

    def test_access_kinds(self, env):
        fs, channel, vol, vfd = env
        f = open_file(env)
        f.create_dataset("w_only", shape=(2,), dtype="i4", data=[1, 2])
        r = f.create_dataset("rw", shape=(2,), dtype="i4", data=[1, 2])
        r.read()
        f.close()
        kinds = {p.object_name: p.access_kind for p in vol.profiles}
        assert kinds["/w_only"] == "write_only"
        assert kinds["/rw"] == "read_write"

    def test_files_touched(self, env):
        fs, channel, vol, vfd = env
        open_file(env, "/a.h5").close()
        open_file(env, "/b.h5").close()
        assert vol.files_touched == ["/a.h5", "/b.h5"]

    def test_partial_access_element_counts(self, env):
        fs, channel, vol, vfd = env
        f = open_file(env)
        d = f.create_dataset("d", shape=(100,), dtype="f8", data=np.zeros(100))
        d.read(Selection.hyperslab(((10, 25),)))
        f.close()
        [p] = [p for p in vol.profiles if p.object_name == "/d"]
        assert p.elements_read == 25

    def test_overhead_account_charged(self, env):
        fs, channel, vol, vfd = env
        clock = vol.clock
        f = open_file(env)
        f.create_dataset("d", shape=(4,), dtype="i4", data=[1, 2, 3, 4])
        f.close()
        assert clock.account(VOL_TRACKER_ACCOUNT) > 0

    def test_serialization(self, env):
        fs, channel, vol, vfd = env
        f = open_file(env)
        f.create_dataset("d", shape=(4,), dtype="i4", data=[1, 2, 3, 4])
        f.close()
        payload = json.loads(vol.serialize())
        assert payload["files"] == ["/f.h5"]
        assert payload["profiles"][0]["object"] == "/d"
        assert vol.storage_bytes > 0

    def test_bad_access_op_rejected(self, env):
        fs, channel, vol, vfd = env
        with pytest.raises(ValueError):
            vol.on_access("/f", "/d", "append", 1, 1)


class TestVolVfdMapping:
    """The core Characteristic-Mapper prerequisite: VFD records are tagged
    with the data object the VOL announced via shared memory."""

    def test_dataset_io_tagged_with_object(self, env):
        fs, channel, vol, vfd = env
        f = open_file(env)
        f.create_dataset("mydata", shape=(128,), dtype="f8",
                         data=np.ones(128))
        f.close()
        raw = [r for r in vfd.records if r.access_type is IoClass.RAW]
        assert raw, "expected raw data records"
        assert all(r.data_object == "/mydata" for r in raw if r.nbytes == 1024)

    def test_file_level_metadata_untagged(self, env):
        fs, channel, vol, vfd = env
        f = open_file(env)
        f.close()
        meta = [r for r in vfd.records if r.access_type is IoClass.METADATA]
        assert meta, "expected metadata records (superblock, root header)"
        assert all(r.data_object is None for r in meta)

    def test_dataset_metadata_tagged(self, env):
        """Chunk-index I/O performed during a dataset access carries the
        dataset's name: the mapping survives nesting."""
        fs, channel, vol, vfd = env
        f = open_file(env)
        f.create_dataset("c", shape=(100,), dtype="f8",
                         layout="chunked", chunks=(10,), data=np.zeros(100))
        f.close()
        tagged_meta = [
            r for r in vfd.records
            if r.access_type is IoClass.METADATA and r.data_object == "/c"
        ]
        assert tagged_meta, "B-tree writes should be tagged with the dataset"

    def test_task_name_propagates_to_both_layers(self, env):
        fs, channel, vol, vfd = env
        f = open_file(env)
        f.create_dataset("d", shape=(4,), dtype="i4", data=[1, 2, 3, 4])
        f.close()
        assert all(r.task == "task0" for r in vfd.records)
        assert all(p.task == "task0" for p in vol.profiles)

    def test_vlen_heap_io_tagged(self, env):
        fs, channel, vol, vfd = env
        f = open_file(env)
        f.create_dataset("v", shape=(8,), dtype="vlen-bytes",
                         data=[b"x" * 50] * 8)
        f.close()
        heap_writes = [
            r for r in vfd.records
            if r.access_type is IoClass.RAW and r.data_object == "/v"
        ]
        assert len(heap_writes) >= 8  # per-element heap writes + refs


class TestVolWrapperApi:
    def test_group_navigation(self, env):
        f = open_file(env)
        g = f.create_group("g")
        g.create_dataset("d", shape=(2,), dtype="i4", data=[5, 6])
        assert "g" in f
        assert f["g"].keys() == ["d"]
        assert len(f["g"]) == 1
        np.testing.assert_array_equal(f["g/d"].read(), [5, 6])
        f.close()

    def test_require_group(self, env):
        f = open_file(env)
        f.require_group("x")
        assert f.require_group("x").name == "/x"
        f.close()

    def test_dataset_properties_delegate(self, env):
        f = open_file(env)
        d = f.create_dataset("d", shape=(4, 4), dtype="f4",
                             layout="chunked", chunks=(2, 2))
        assert d.shape == (4, 4)
        assert d.dtype.code == "f4"
        assert d.chunks == (2, 2)
        assert d.size == 16
        assert d.layout_name == "chunked"
        f.close()

    def test_attrs_via_wrapper(self, env):
        f = open_file(env)
        d = f.create_dataset("d", shape=(1,))
        d.attrs["note"] = "hello"
        assert d.attrs["note"] == "hello"
        f.close()

    def test_ellipsis_io(self, env):
        f = open_file(env)
        d = f.create_dataset("d", shape=(3,), dtype="f8")
        d[...] = np.arange(3.0)
        np.testing.assert_array_equal(d[...], np.arange(3.0))
        f.close()

    def test_datasets_listing(self, env):
        f = open_file(env)
        f.create_dataset("a", shape=(1,))
        f.create_dataset("b", shape=(1,))
        f.create_group("g")
        names = [d.name for d in f.root.datasets()]
        assert names == ["/a", "/b"]
        f.close()

    def test_double_close_is_safe(self, env):
        fs, channel, vol, vfd = env
        f = open_file(env)
        f.close()
        f.close()
        # Only one close event should have been recorded.
        assert vol.files_touched.count("/f.h5") == 1

    def test_context_manager(self, env):
        with open_file(env) as f:
            f.create_dataset("d", shape=(1,), data=[1.0])
        assert f.closed
