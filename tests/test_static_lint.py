"""Tests for the pre-run (DY40x) and drift (DY45x) lint front ends.

The two headline guarantees:

- ``dayu-lint --static corner-hazards`` convicts the seeded hazards from
  the workflow *definition* alone — no traces anywhere; and
- ``dayu-lint --diff`` reports zero drift for every bundled workload,
  with the sharded :meth:`ParallelAnalyzer.diff` byte-identical to the
  serial join.
"""

import json

import pytest

from repro.analyzer import ParallelAnalyzer
from repro.experiments.common import fresh_env
from repro.lint import (
    LintConfig,
    Severity,
    build_predicted_sdg,
    diff_profiles,
    extract_workflow_contracts,
    lint_workflow,
)
from repro.lint.cli import lint_main
from repro.mapper.stats import FILE_METADATA_OBJECT
from repro.workflow import Stage, Task, Workflow
from repro.workflow.contracts import TaskContract, creates, reads, writes
from repro.workloads.registry import WORKLOADS, build_workload


def _noop(rt):
    return None


def _declared_workflow(*stage_specs):
    """Workflow from (stage_name, parallel, [(task, contract), ...])."""
    stages = [
        Stage(name, [Task(t, _noop, contract=c) for t, c in tasks],
              parallel=parallel)
        for name, parallel, tasks in stage_specs
    ]
    return Workflow("synthetic", stages)


def _codes(report):
    return sorted(f.code for f in report.findings)


# ----------------------------------------------------------------------
# DY40x: the seeded fixture convicts pre-run, clean workloads stay clean
# ----------------------------------------------------------------------
class TestStaticHazardFixture:
    @pytest.fixture(scope="class")
    def report(self):
        workflow, _ = build_workload("corner-hazards", 0.5)
        return lint_workflow(workflow)

    def test_unordered_double_write_from_definition(self, report):
        waw = [f for f in report.findings if f.code == "DY401"]
        assert len(waw) == 1
        f = waw[0]
        assert f.severity is Severity.ERROR
        assert f.subject.endswith("hazard.h5:/dup")
        assert f.tasks == ("hazard_writer_a", "hazard_writer_b")

    def test_phantom_read_from_definition(self, report):
        ghost = [f for f in report.findings if f.code == "DY403"]
        assert len(ghost) == 1
        f = ghost[0]
        assert f.subject.endswith("hazard.h5:/ghost")
        assert f.tasks == ("hazard_phantom_reader",)
        assert "hazard_writer_b" in f.message  # dataless creator named

    def test_nothing_else_fires(self, report):
        assert _codes(report) == ["DY401", "DY403"]

    def test_declared_matches_inferred(self, report):
        # The fixture's declared contracts are accurate, so the DY409
        # reconciliation stays silent.
        assert not [f for f in report.findings if f.code == "DY409"]


class TestStaticCleanWorkloads:
    # corner-hazards and racy-pipeline are the seeded-hazard fixtures:
    # their contract races fire DY401 pre-run by design.
    @pytest.mark.parametrize("name", sorted(set(WORKLOADS)
                                            - {"corner-hazards",
                                               "racy-pipeline"}))
    def test_no_errors(self, name):
        workflow, _ = build_workload(name, 0.5)
        report = lint_workflow(workflow)
        assert not report.errors, [str(f) for f in report.errors]

    def test_shared_file_writes_downgraded_to_warning(self):
        workflow, _ = build_workload("h5bench-shared", 0.5)
        report = lint_workflow(workflow)
        waw = [f for f in report.findings if f.code == "DY401"]
        assert waw
        assert all(f.severity is Severity.WARNING for f in waw)
        assert all(f.evidence["disjoint_selections"] for f in waw)


# ----------------------------------------------------------------------
# DY40x: rule-by-rule ground truth on synthetic workflows
# ----------------------------------------------------------------------
class TestPrerunRules:
    FILE = "/beegfs/syn.h5"

    def test_dy402_consumer_scheduled_before_producer(self):
        wf = _declared_workflow(
            ("readers", False, [
                ("early_reader", TaskContract.declare(
                    reads(self.FILE, "x", elements=4)))]),
            ("writers", False, [
                ("late_writer", TaskContract.declare(
                    creates(self.FILE, "x", shape=(4,), dtype="f4",
                            elements=4)))]),
        )
        report = lint_workflow(wf)
        dy402 = [f for f in report.findings if f.code == "DY402"]
        assert len(dy402) == 1
        assert dy402[0].tasks == ("early_reader",)
        assert "late_writer" in dy402[0].message

    def test_dy405_extent_overflow_across_tasks(self):
        wf = _declared_workflow(
            ("create", False, [
                ("creator", TaskContract.declare(
                    creates(self.FILE, "x", shape=(4,), dtype="f4",
                            elements=0)))]),
            ("write", False, [
                ("overflower", TaskContract.declare(
                    writes(self.FILE, "x", elements=9)))]),
        )
        report = lint_workflow(wf)
        dy405 = [f for f in report.findings if f.code == "DY405"]
        assert len(dy405) == 1
        assert dy405[0].tasks == ("overflower",)
        assert dy405[0].evidence == {"elements": 9, "capacity": 4,
                                     "op": "write"}

    def test_dy406_vlen_contiguous_is_opt_in(self):
        wf = _declared_workflow(
            ("s", False, [
                ("t0", TaskContract.declare(
                    creates(self.FILE, "x", shape=(4,), dtype="vlen-bytes",
                            elements=0)))]),
        )
        assert not [f for f in lint_workflow(wf).findings
                    if f.code == "DY406"]
        report = lint_workflow(wf, LintConfig(enable=("DY406",)))
        assert [f.code for f in report.findings if f.code == "DY406"] \
            == ["DY406"]

    def test_dy404_dead_output_is_opt_in(self):
        wf = _declared_workflow(
            ("s", False, [
                ("t0", TaskContract.declare(
                    creates(self.FILE, "x", shape=(4,), dtype="f4",
                            elements=4)))]),
        )
        assert not [f for f in lint_workflow(wf).findings
                    if f.code == "DY404"]
        report = lint_workflow(wf, LintConfig(enable=("DY404",)))
        dy404 = [f for f in report.findings if f.code == "DY404"]
        assert len(dy404) == 1 and dy404[0].tasks == ("t0",)

    def test_dy407_open_in_loop_inferred(self):
        def loopy(rt):
            for _ in range(12):
                f = rt.open("/beegfs/external.h5", "r")
                f["/x"].read()
                f.close()

        wf = Workflow("w", [Stage("s", [Task("loopy", loopy)])])
        report = lint_workflow(wf)
        dy407 = [f for f in report.findings if f.code == "DY407"]
        assert len(dy407) == 1
        assert dy407[0].evidence["opens"] == 12
        # The file is produced outside the workflow: no DY403 noise.
        assert not [f for f in report.findings if f.code == "DY403"]

    def test_dy407_threshold_configurable(self):
        def loopy(rt):
            for _ in range(4):
                f = rt.open("/beegfs/external.h5", "r")
                f["/x"].read()
                f.close()

        wf = Workflow("w", [Stage("s", [Task("loopy", loopy)])])
        assert not [f for f in lint_workflow(wf).findings
                    if f.code == "DY407"]
        report = lint_workflow(wf, LintConfig(open_loop_min_opens=3))
        assert [f.code for f in report.findings if f.code == "DY407"] \
            == ["DY407"]

    def test_dy408_small_write_amplification(self):
        wf = _declared_workflow(
            ("s", False, [
                ("chatty", TaskContract.declare(
                    creates(self.FILE, "x", shape=(1024,), dtype="f4",
                            elements=0),
                    writes(self.FILE, "x", elements=1, count=200,
                           dtype="f4")))]),
        )
        report = lint_workflow(wf)
        dy408 = [f for f in report.findings if f.code == "DY408"]
        assert len(dy408) == 1
        assert dy408[0].evidence == {"count": 200, "bytes_per_op": 4}

    def test_dy409_declared_vs_code_mismatch(self):
        # _noop's inferred contract is exact and empty, so an inaccurate
        # declaration is caught.
        wf = _declared_workflow(
            ("s", False, [
                ("liar", TaskContract.declare(
                    reads("/beegfs/external.h5", "x", elements=4)))]),
        )
        report = lint_workflow(wf)
        dy409 = [f for f in report.findings if f.code == "DY409"]
        assert len(dy409) == 1
        assert "never performs" in dy409[0].message

    def test_open_loop_min_opens_validated(self):
        with pytest.raises(ValueError):
            LintConfig(open_loop_min_opens=1)


# ----------------------------------------------------------------------
# Predicted SDG
# ----------------------------------------------------------------------
class TestPredictedSdg:
    def test_predicted_nodes_subset_of_traced(self):
        env = fresh_env(n_nodes=2)
        workflow, _ = build_workload("corner-hazards", 0.5)
        env.runner.run(workflow)
        predicted = build_predicted_sdg(workflow)
        assert predicted.graph.get("predicted") is True
        traced = ParallelAnalyzer(max_workers=1).build_sdg(
            list(env.mapper.profiles.values()))
        missing = set(predicted.nodes) - set(traced.nodes)
        assert not missing
        # Traced-only extras are exclusively the runtime's per-file
        # metadata pseudo-objects, which no contract predicts.
        extras = set(traced.nodes) - set(predicted.nodes)
        assert all(n.endswith(f":{FILE_METADATA_OBJECT}") for n in extras)


# ----------------------------------------------------------------------
# DY45x: drift against real traces
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hazard_run():
    env = fresh_env(n_nodes=2)
    workflow, _ = build_workload("corner-hazards", 0.5)
    env.runner.run(workflow)
    profiles = list(env.mapper.profiles.values())
    contracts = extract_workflow_contracts(workflow).effective()
    return profiles, contracts


class TestDrift:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_zero_drift_on_bundled_workloads(self, name):
        env = fresh_env(n_nodes=2)
        workflow, prepare = build_workload(name, 0.5)
        if prepare is not None:
            prepare(env.cluster)
        env.runner.run(workflow)
        contracts = extract_workflow_contracts(workflow).effective()
        report = diff_profiles(list(env.mapper.profiles.values()),
                               contracts)
        assert report.clean, [str(f) for f in report.findings]

    def test_dy451_undeclared_access(self, hazard_run):
        profiles, contracts = hazard_run
        doctored = dict(contracts)
        doctored["hazard_writer_a"] = TaskContract.declare(
            task="hazard_writer_a")  # empty: the /dup write is undeclared
        report = diff_profiles(profiles, doctored)
        dy451 = [f for f in report.findings if f.code == "DY451"]
        assert len(dy451) == 1
        f = dy451[0]
        assert f.severity is Severity.ERROR
        assert f.tasks == ("hazard_writer_a",)
        assert f.evidence["undeclared"] == ["write"]

    def test_dy452_unperformed_contract(self, hazard_run):
        profiles, contracts = hazard_run
        base = contracts["hazard_phantom_reader"]
        doctored = dict(contracts)
        doctored["hazard_phantom_reader"] = TaskContract(
            task="hazard_phantom_reader",
            accesses=[*base.accesses,
                      reads("/beegfs/corner/hazard.h5", "nope",
                            elements=4)],
            source="declared")
        report = diff_profiles(profiles, doctored)
        dy452 = [f for f in report.findings if f.code == "DY452"]
        assert len(dy452) == 1
        assert dy452[0].subject.endswith(":/nope")

    def test_dy453_uncontracted_task(self, hazard_run):
        profiles, contracts = hazard_run
        doctored = {k: v for k, v in contracts.items()
                    if k != "hazard_writer_a"}
        report = diff_profiles(profiles, doctored)
        dy453 = [f for f in report.findings if f.code == "DY453"]
        assert len(dy453) == 1
        assert dy453[0].severity is Severity.NOTE
        assert dy453[0].tasks == ("hazard_writer_a",)

    def test_parallel_diff_identical_to_serial(self, hazard_run):
        profiles, contracts = hazard_run
        doctored = dict(contracts)
        doctored["hazard_writer_a"] = TaskContract.declare(
            task="hazard_writer_a")
        del doctored["hazard_writer_b"]
        serial = diff_profiles(profiles, doctored)
        assert serial.findings  # the comparison must exercise something
        sharded = ParallelAnalyzer(max_workers=2, shard_size=1).diff(
            profiles, doctored)
        assert sharded.to_json() == serial.to_json()

    def test_parallel_diff_clean_identical_too(self, hazard_run):
        profiles, contracts = hazard_run
        serial = diff_profiles(profiles, contracts)
        sharded = ParallelAnalyzer(max_workers=2, shard_size=2).diff(
            profiles, contracts)
        assert serial.clean and sharded.to_json() == serial.to_json()


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestCli:
    def test_static_hazards_exit_1(self, capsys):
        assert lint_main(["--static", "corner-hazards"]) == 1
        out = capsys.readouterr().out
        assert "DY401" in out and "DY403" in out

    def test_static_clean_exit_0(self):
        assert lint_main(["--static", "ddmd"]) == 0

    def test_static_sarif_output(self, tmp_path):
        out = tmp_path / "static.sarif"
        rc = lint_main(["--static", "corner-hazards", "--format", "sarif",
                        "--out", str(out)])
        assert rc == 1
        sarif = json.loads(out.read_text())
        assert sarif["version"] == "2.1.0"
        codes = {r["ruleId"]
                 for r in sarif["runs"][0]["results"]}
        assert codes == {"DY401", "DY403"}

    def test_static_baseline_suppresses(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        rc = lint_main(["--static", "corner-hazards",
                        "--write-baseline", str(baseline)])
        assert rc == 0
        rc = lint_main(["--static", "corner-hazards",
                        "--baseline", str(baseline)])
        assert rc == 0

    def test_static_rule_selection(self):
        assert lint_main(["--static", "corner-hazards",
                          "--disable", "DY4"]) == 0

    def test_diff_cli_round_trip(self, tmp_path):
        from repro.cli import run_main

        traces = tmp_path / "traces"
        assert run_main(["corner-hazards", "--out", str(traces),
                         "--scale", "0.5"]) == 0
        assert lint_main([str(traces), "--diff", "corner-hazards",
                          "--scale", "0.5"]) == 0
        assert lint_main([str(traces), "--diff", "corner-hazards",
                          "--scale", "0.5", "--jobs", "2"]) == 0

    def test_list_rules_covers_new_families(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DY401", "DY402", "DY403", "DY405", "DY407",
                     "DY408", "DY409", "DY451", "DY452", "DY453"):
            assert code in out
        assert "contract" in out and "drift" in out

    def test_usage_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            lint_main(["--static", "ddmd", "--diff", "ddmd"])
        with pytest.raises(SystemExit):
            lint_main(["--static", "ddmd", str(tmp_path)])
        with pytest.raises(SystemExit):
            lint_main(["--diff", "ddmd"])
        with pytest.raises(SystemExit):
            lint_main([])

    def test_unknown_workload_rejected(self):
        # Usage errors are exit code 2, not an uncaught SystemExit.
        assert lint_main(["--static", "no-such-workload"]) == 2
