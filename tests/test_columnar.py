"""Columnar trace format: fuzzed round-trips, page-stat pushdown, bulk
graph builds, format sniffing, run compaction, and the --jobs 1 inline
guarantee."""

import json
import random

import pytest

from repro.analyzer import ParallelAnalyzer, build_ftg, build_sdg, graph_to_json
from repro.analyzer.parallel import ParallelAnalyzer as _PA
from repro.mapper import codec, columnar
from repro.mapper.columnar import (
    COLUMNAR_MAGIC,
    GroupStatsView,
    RunReader,
    RunStatsView,
    build_graph_from_groups,
    compact_profiles,
    decode_columnar,
    decode_run,
    encode_columnar,
    encode_run,
)
from repro.mapper.mapper import TaskProfile
from repro.mapper.persist import (
    load_profiles_path,
    sniff_trace_format,
    trace_paths,
)
from repro.mapper.stats import DatasetIoStats
from repro.simclock import TimeSpan
from repro.vfd.base import IoClass
from repro.vfd.tracing import FileSession, VfdIoRecord
from repro.vol.tracer import DataObjectProfile

from tests.test_codec import make_profile


# ---------------------------------------------------------------------------
# Randomized profile generator (property-style fuzzing, seeded).

_NAME_POOL = ("plain.h5", "μ-data.h5", "データ.h5", "smörgås.h5", "a b.h5")
_DS_POOL = ("/ds0", "/ds/α", "/グループ/x", None)
_DTYPES = ("", "float64", "vlen-str", "int32")
_LAYOUTS = ("", "contiguous", "chunked")


def _rand_stats(rng, task, file):
    s = DatasetIoStats(
        task=task, file=file,
        data_object=rng.choice(_DS_POOL) or "/empty",
        reads=rng.randrange(0, 5),
        writes=rng.randrange(0, 5),
        bytes_read=rng.choice((0, 123, 1 << 20, (1 << 64) + 7)),
        bytes_written=rng.randrange(0, 1 << 16),
        data_ops=rng.randrange(0, 8),
        data_bytes=rng.randrange(0, 1 << 20),
        metadata_ops=rng.randrange(0, 4),
        metadata_bytes=rng.randrange(0, 512),
        io_time=rng.choice((0.0, 0.125, 1 / 3)),
        first_start=rng.choice((None, 0.0, 2.5)),
        last_end=rng.choice((None, 9.75)),
        first_raw_op=rng.choice((None, "read", "write")),
    )
    if rng.random() < 0.7:
        s.regions = {rng.randrange(0, 1 << 30): rng.randrange(1, 4)
                     for _ in range(rng.randrange(0, 6))}
    return s


def random_profile(rng: random.Random, idx: int) -> TaskProfile:
    """One randomized TaskProfile hitting the codec's corners: empty
    sections, zero-length sessions, >=2**64 ids, non-ASCII names."""
    # Profile-level task stays set (the mapper always names tasks; graphs
    # key nodes on it) — record/object-level task=None is fuzzed below.
    task = f"täsk-{idx:03d}"
    n_files = rng.randrange(0, 4)
    files = [f"/pfs/ランダム/{idx}/{rng.choice(_NAME_POOL)}-{i}"
             for i in range(n_files)]
    records, sessions, objects, stats = [], [], [], []
    for f in files:
        for _ in range(rng.randrange(0, 4)):
            records.append(VfdIoRecord(
                task=rng.choice((task, None)), file=f,
                op=rng.choice(("read", "write")),
                offset=rng.choice((0, 4096, (1 << 64) + 13)),
                nbytes=rng.choice((0, 1, 4096)),
                start=rng.choice((0.0, 1.25, 1e-9)),
                duration=rng.choice((0.0, 1e-9, 0.5)),
                access_type=rng.choice((IoClass.RAW, IoClass.METADATA)),
                data_object=rng.choice(_DS_POOL),
            ))
        if rng.random() < 0.8:
            open_t = rng.choice((0.0, 1.0))
            sessions.append(FileSession(
                task=task, file=f, open_time=open_t,
                # zero-length and still-open sessions both legal
                close_time=rng.choice((None, open_t, open_t + 2.5)),
                read_ops=rng.randrange(0, 3),
                write_ops=rng.randrange(0, 3),
                read_bytes=rng.randrange(0, 1 << 12),
                write_bytes=rng.randrange(0, 1 << 12),
                sequential_ops=rng.randrange(0, 3),
                sequential_raw_ops=rng.randrange(0, 3),
                metadata_ops=rng.randrange(0, 3),
                raw_ops=rng.randrange(0, 3),
                data_objects=[d for d in _DS_POOL[:rng.randrange(0, 3)]
                              if d is not None],
            ))
        if rng.random() < 0.8:
            objects.append(DataObjectProfile(
                task=rng.choice((task, None)), file=f,
                object_name=rng.choice(_DS_POOL) or "/empty",
                acquired=0.5, released=rng.choice((None, 3.0)),
                open_count=rng.randrange(0, 3),
                shape=rng.choice(((), (64,), (64, 128), (1 << 40,))),
                dtype=rng.choice(_DTYPES),
                layout=rng.choice(_LAYOUTS),
                nbytes=rng.choice((0, 8192, (1 << 64) + 1)),
                reads=rng.randrange(0, 3),
                writes=rng.randrange(0, 3),
                elements_read=rng.randrange(0, 1 << 14),
                elements_written=rng.randrange(0, 1 << 14),
            ))
        for _ in range(rng.randrange(0, 3)):
            stats.append(_rand_stats(rng, task, f))
    start = float(idx)
    return TaskProfile(
        task=task,
        span=TimeSpan(start, start + rng.choice((0.0, 1.0, 9.75))),
        files=files,
        object_profiles=objects,
        file_sessions=sessions,
        io_records=records,
        dataset_stats=stats,
    )


def assert_profiles_equal(a: TaskProfile, b: TaskProfile) -> None:
    assert a.to_json_dict() == b.to_json_dict()
    assert a.io_records == b.io_records
    assert a.object_profiles == b.object_profiles
    # DatasetIoStats.__eq__ skips the run list (compare=False) — check it.
    for sa, sb in zip(a.dataset_stats, b.dataset_stats):
        assert sa.region_runs() == sb.region_runs()
        assert sa.regions == sb.regions


class TestFuzzRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_single_profile(self, seed):
        rng = random.Random(seed)
        for idx in range(6):
            p = random_profile(rng, idx)
            q = decode_columnar(encode_columnar(p))
            assert_profiles_equal(p, q)

    @pytest.mark.parametrize("seed", (101, 202, 303))
    def test_run_of_many(self, seed):
        rng = random.Random(seed)
        profiles = [random_profile(rng, i) for i in range(10)]
        back = decode_run(encode_run(profiles))
        assert len(back) == len(profiles)
        for p, q in zip(profiles, back):
            assert_profiles_equal(p, q)

    def test_row_columnar_row_via_codec(self):
        # row binary -> columnar -> row binary is byte-identical
        p = make_profile()
        q = decode_columnar(encode_columnar(p))
        assert codec.encode_profile(q) == codec.encode_profile(p)

    def test_handbuilt_profile(self):
        p = make_profile()
        assert_profiles_equal(p, decode_columnar(encode_columnar(p)))

    def test_none_task_profile(self):
        # The row codec round-trips a None task as None; parity demands
        # the columnar codec does too.
        p = TaskProfile(task=None, span=TimeSpan(0.0, 1.0), files=[],
                        object_profiles=[], file_sessions=[], io_records=[],
                        dataset_stats=[])
        q = decode_columnar(encode_columnar(p))
        assert q.task is None
        assert codec.decode_profile(codec.encode_profile(p)).task is None

    def test_empty_profile_and_empty_run(self):
        p = TaskProfile(task="empty", span=TimeSpan(0.0, 0.0), files=[],
                        object_profiles=[], file_sessions=[], io_records=[],
                        dataset_stats=[])
        assert_profiles_equal(p, decode_columnar(encode_columnar(p)))
        assert decode_run(encode_run([])) == []

    def test_records_skipped(self):
        p = make_profile()
        q = decode_columnar(encode_columnar(p), with_io_records=False)
        assert q.io_records == []
        want, got = p.to_json_dict(), q.to_json_dict()
        want.pop("io_records")
        got.pop("io_records")
        assert want == got

    def test_decode_columnar_rejects_multi_group(self):
        p, q = make_profile("t0"), make_profile("t1")
        with pytest.raises(ValueError):
            decode_columnar(encode_run([p, q]))

    def test_corrupt_rejected(self):
        blob = encode_columnar(make_profile())
        with pytest.raises(ValueError):
            RunReader.from_bytes(b"XXXX" + blob[4:])
        with pytest.raises(ValueError):
            RunReader.from_bytes(blob[:-20] + b"\x00" * 16 + COLUMNAR_MAGIC)


class TestBulkGraphs:
    @pytest.mark.parametrize("seed", (7, 77))
    def test_byte_identical_graphs(self, seed):
        rng = random.Random(seed)
        profiles = [random_profile(rng, i) for i in range(12)]
        reader = RunReader.from_bytes(encode_run(profiles))
        groups = list(reader)
        assert graph_to_json(build_graph_from_groups("ftg", groups)) == \
            graph_to_json(build_ftg(profiles))
        assert graph_to_json(build_graph_from_groups("sdg", groups)) == \
            graph_to_json(build_sdg(profiles))

    def test_byte_identical_sdg_with_regions(self):
        profiles = [make_profile("t0"), make_profile("t1")]
        reader = RunReader.from_bytes(encode_run(profiles))
        assert graph_to_json(
            build_graph_from_groups("sdg", list(reader), with_regions=True)
        ) == graph_to_json(build_sdg(profiles, with_regions=True))

    def test_groups_sorted_by_start(self):
        early = make_profile("late_name_early_start")
        early.span = TimeSpan(0.0, 1.0)
        late = make_profile("a_early_name_late_start")
        late.span = TimeSpan(5.0, 6.0)
        reader = RunReader.from_bytes(encode_run([late, early]))
        g = build_graph_from_groups("ftg", list(reader))
        serial = build_ftg([early, late])
        assert graph_to_json(g) == graph_to_json(serial)


class TestPageStats:
    def test_view_matches_columns(self):
        rng = random.Random(42)
        profiles = [random_profile(rng, i) for i in range(8)]
        reader = RunReader.from_bytes(encode_run(profiles))
        for group in reader:
            view = GroupStatsView(group)
            reads = group.column("stats", "reads")
            if reads:
                assert view.int_max("stats", "reads") == max(reads)
                assert view.int_sum("stats", "reads") == sum(reads)
            files = view.distinct("stats", "file")
            if files is not None:
                assert files == frozenset(
                    group.strid_column("stats", "file"))

    def test_distinct_overflow_returns_none(self):
        task = "many"
        stats = [DatasetIoStats(
            task=task, file=f"/pfs/f{i:04d}.h5", data_object="/d")
            for i in range(columnar._DISTINCT_CAP + 1)]
        p = TaskProfile(task=task, span=TimeSpan(0.0, 1.0),
                        files=sorted({s.file for s in stats}),
                        object_profiles=[], file_sessions=[], io_records=[],
                        dataset_stats=stats)
        reader = RunReader.from_bytes(encode_columnar(p))
        view = GroupStatsView(reader.groups[0])
        assert view.distinct("stats", "file") is None  # unknown, not wrong

    def test_run_view_spans_groups(self):
        profiles = [make_profile("t0"), make_profile("t1")]
        reader = RunReader.from_bytes(encode_run(profiles))
        view = RunStatsView.over(reader.groups)
        assert len(view.groups) == 2


class TestPushdownLint:
    def _row_and_columnar_reports(self, profiles, tmp_path, **kw):
        analyzer = ParallelAnalyzer(max_workers=1, **kw)
        row = analyzer.lint(profiles)
        run = tmp_path / "run.dayuc"
        compact_profiles(profiles, run)
        stats = {}
        col = analyzer.lint_run(str(run), stats_out=stats)
        return row, col, stats

    def test_parity_on_handbuilt(self, tmp_path):
        profiles = [make_profile("t0"), make_profile("t1")]
        row, col, stats = self._row_and_columnar_reports(
            profiles, tmp_path, with_io_records=True)
        assert {f.fingerprint for f in row.findings} == \
            {f.fingerprint for f in col.findings}
        assert row.to_json() == col.to_json()
        assert stats["n_groups"] == 2

    @pytest.mark.parametrize("seed", (5, 55))
    def test_parity_on_fuzzed(self, seed, tmp_path):
        rng = random.Random(seed)
        profiles = [random_profile(rng, i) for i in range(10)]
        row, col, stats = self._row_and_columnar_reports(
            profiles, tmp_path, with_io_records=True)
        assert {f.fingerprint for f in row.findings} == \
            {f.fingerprint for f in col.findings}
        assert stats["rules_evaluated"] + stats["rules_skipped"] > 0

    def test_pushdown_skips_on_quiet_traces(self, tmp_path):
        # Profiles that never write and share no files: the write-hazard
        # page predicates prove those rules can't fire.
        profiles = []
        for i in range(3):
            s = DatasetIoStats(
                task=f"t{i}", file=f"/pfs/only{i}.h5", data_object="/d",
                reads=1, bytes_read=10, data_ops=1, data_bytes=10)
            profiles.append(TaskProfile(
                task=f"t{i}", span=TimeSpan(float(i), i + 1.0),
                files=[s.file], object_profiles=[], file_sessions=[],
                io_records=[], dataset_stats=[s]))
        _row, _col, stats = self._row_and_columnar_reports(profiles, tmp_path)
        assert stats["rules_skipped"] > 0

    def test_rule_without_pushdown_never_skipped(self):
        from repro.lint.rules import all_rules

        no_pd = [r for r in all_rules()
                 if r.scope in ("profile", "workflow") and r.pushdown is None]
        # Sanity: such rules exist, and the engine treats None as
        # "unknown — must run" (lint_run only skips when pushdown says so).
        assert no_pd

    def test_pushdown_rejects_non_lintable_scope(self):
        from repro.lint.rules import Severity, rule

        with pytest.raises(ValueError):
            rule(code="DY999", name="bad", description="x",
                 severity=Severity.WARNING, scope="static",
                 pushdown=lambda v, c: True)(lambda *a: [])


class TestSniffingAndLoading:
    def test_sniff(self):
        p = make_profile()
        assert sniff_trace_format(codec.encode_profile(p)) == "binary"
        assert sniff_trace_format(encode_columnar(p)) == "columnar"
        assert sniff_trace_format(p.serialize()) == "json"

    def test_mixed_directory_auto(self, tmp_path):
        p0, p1, p2 = (make_profile(f"t{i}") for i in range(3))
        (tmp_path / "a.json").write_bytes(p0.serialize())
        (tmp_path / "b.dayu").write_bytes(codec.encode_profile(p1))
        (tmp_path / "c.dayuc").write_bytes(encode_columnar(p2))
        analyzer = ParallelAnalyzer(max_workers=1, with_io_records=True)
        profiles = analyzer.load(str(tmp_path))
        assert sorted(p.task for p in profiles) == ["t0", "t1", "t2"]

    def test_trace_format_filter(self, tmp_path):
        p0, p1 = make_profile("t0"), make_profile("t1")
        (tmp_path / "a.json").write_bytes(p0.serialize())
        (tmp_path / "c.dayuc").write_bytes(encode_columnar(p1))
        only = trace_paths(str(tmp_path), trace_format="columnar")
        assert [p.endswith(".dayuc") for p in map(str, only)] == [True]
        with pytest.raises(ValueError):
            trace_paths(str(tmp_path), trace_format="parquet")

    def test_load_profiles_path_expands_runs(self, tmp_path):
        profiles = [make_profile("t0"), make_profile("t1")]
        run = tmp_path / "run.dayuc"
        compact_profiles(profiles, run)
        loaded = load_profiles_path(str(run))
        assert [p.task for p in loaded] == ["t0", "t1"]


class TestCompaction:
    def test_compact_sorts_and_round_trips(self, tmp_path):
        late = make_profile("zz_late")
        late.span = TimeSpan(5.0, 6.0)
        early = make_profile("aa_early")
        early.span = TimeSpan(1.0, 2.0)
        run = tmp_path / "run.dayuc"
        n = compact_profiles([late, early], run)
        assert n == run.stat().st_size
        with RunReader.open(str(run)) as reader:
            assert [g.task for g in reader] == ["aa_early", "zz_late"]

    def test_compact_cli(self, tmp_path, capsys):
        from repro.mapper.compact import compact_main

        rows = tmp_path / "rows"
        rows.mkdir()
        for i in range(3):
            p = make_profile(f"t{i}")
            p.span = TimeSpan(float(i), i + 1.0)
            (rows / f"t{i}.json").write_bytes(p.serialize())
        out = tmp_path / "run.dayuc"
        assert compact_main([str(rows), "--out", str(out)]) == 0
        assert "compacted 3 profile(s)" in capsys.readouterr().out
        with RunReader.open(str(out)) as reader:
            assert len(reader) == 3
            assert all(g.io_records() != [] for g in reader)

    def test_compact_cli_no_records(self, tmp_path):
        from repro.mapper.compact import compact_main

        rows = tmp_path / "rows"
        rows.mkdir()
        (rows / "t0.json").write_bytes(make_profile().serialize())
        out = tmp_path / "run.dayuc"
        assert compact_main([str(rows), "--out", str(out),
                             "--no-records"]) == 0
        with RunReader.open(str(out)) as reader:
            assert reader.groups[0].io_records() == []

    def test_compact_cli_empty_dir(self, tmp_path, capsys):
        from repro.mapper.compact import compact_main

        assert compact_main([str(tmp_path), "--out",
                             str(tmp_path / "x.dayuc")]) == 2
        assert "no saved profiles" in capsys.readouterr().err


class TestInlineJobs:
    def test_inline_property(self):
        assert ParallelAnalyzer(max_workers=1).inline
        assert not ParallelAnalyzer(max_workers=2).inline

    def test_jobs_1_never_spawns_a_pool(self, tmp_path, monkeypatch):
        import concurrent.futures

        def boom(*a, **kw):  # pragma: no cover - must not be reached
            raise AssertionError("--jobs 1 must not spawn a process pool")

        # parallel.py imports the executor at call time, so poisoning the
        # stdlib attribute catches any pool spawn on this code path.
        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", boom)
        profiles = [make_profile(f"t{i}") for i in range(3)]
        for i, p in enumerate(profiles):
            p.span = TimeSpan(float(i), i + 1.0)
            (tmp_path / f"t{i}.json").write_bytes(p.serialize())
        analyzer = _PA(max_workers=1, with_io_records=True)
        loaded = analyzer.load(str(tmp_path))
        assert len(loaded) == 3
        assert graph_to_json(analyzer.build_ftg(loaded)) == \
            graph_to_json(build_ftg(loaded))
        analyzer.lint(loaded)


class TestCliParity:
    def test_analyze_graph_json_identical(self, tmp_path, capsys):
        from repro.cli import analyze_main

        rows = tmp_path / "rows"
        rows.mkdir()
        profiles = []
        for i in range(3):
            p = make_profile(f"t{i}")
            p.span = TimeSpan(float(i), i + 1.0)
            profiles.append(p)
            (rows / f"t{i}.json").write_bytes(p.serialize())
        colruns = tmp_path / "colruns"
        colruns.mkdir()
        compact_profiles(profiles, colruns / "run.dayuc")

        g_row, g_col = tmp_path / "g_row", tmp_path / "g_col"
        assert analyze_main([str(rows), "--out", str(g_row),
                             "--graph-json", "--lint"]) == 0
        assert analyze_main([str(colruns), "--out", str(g_col),
                             "--graph-json", "--lint"]) == 0
        capsys.readouterr()
        for name in ("ftg.json", "sdg.json", "lint.json"):
            assert (g_row / name).read_bytes() == (g_col / name).read_bytes()
            json.loads((g_row / name).read_text())
