"""Tests for the chunk compression filter pipeline and asynchronous
staging."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hdf5 import H5File, Selection
from repro.hdf5.errors import H5LayoutError
from repro.middleware import AsyncStager
from repro.middleware.async_stager import ASYNC_WAIT_ACCOUNT
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


def make_fs(device="ram"):
    return SimFS(SimClock(), mounts=[Mount("/", make_device(device))])


class TestCompression:
    def test_roundtrip(self):
        fs = make_fs()
        data = np.tile(np.arange(64, dtype=np.int64), 16)  # compressible
        with H5File(fs, "/c.h5", "w") as f:
            f.create_dataset("z", shape=(1024,), dtype="i8",
                             layout="chunked", chunks=(256,),
                             compression="zlib", data=data)
        with H5File(fs, "/c.h5", "r") as f:
            assert f["z"].compression == "zlib"
            np.testing.assert_array_equal(f["z"].read(), data)

    def test_compressed_chunks_smaller_on_disk(self):
        def file_size(compression):
            fs = make_fs()
            data = np.zeros(8192, dtype=np.int64)  # maximally compressible
            with H5File(fs, "/c.h5", "w") as f:
                f.create_dataset("z", shape=(8192,), dtype="i8",
                                 layout="chunked", chunks=(1024,),
                                 compression=compression, data=data)
            return fs.stat("/c.h5").size

        assert file_size("zlib") < file_size(None) / 4

    def test_compressed_io_moves_fewer_bytes(self):
        fs = make_fs()
        data = np.zeros(8192, dtype=np.int64)
        with H5File(fs, "/c.h5", "w") as f:
            f.create_dataset("z", shape=(8192,), dtype="i8",
                             layout="chunked", chunks=(1024,),
                             compression="zlib", data=data)
        fs.clear_log()
        with H5File(fs, "/c.h5", "r") as f:
            f["z"].read()
        raw_bytes = sum(r.nbytes for r in fs.op_log if r.op == "read")
        assert raw_bytes < 8192 * 8 / 4  # far less than the logical volume

    def test_partial_rmw_on_compressed_chunks(self):
        fs = make_fs()
        rng = np.random.default_rng(0)
        data = rng.integers(0, 4, 512).astype(np.int64)
        with H5File(fs, "/c.h5", "w") as f:
            d = f.create_dataset("z", shape=(512,), dtype="i8",
                                 layout="chunked", chunks=(128,),
                                 compression="zlib", data=data)
            d.write(np.full(64, 7, dtype=np.int64),
                    Selection.hyperslab(((100, 64),)))
            expect = data.copy()
            expect[100:164] = 7
            np.testing.assert_array_equal(d.read(), expect)

    def test_recompressed_chunk_relocation_leaves_hole(self):
        """Rewriting a chunk with less-compressible data grows its stored
        size — the chunk relocates and the old extent becomes a hole."""
        fs = make_fs()
        with H5File(fs, "/c.h5", "w") as f:
            d = f.create_dataset("z", shape=(256,), dtype="i8",
                                 layout="chunked", chunks=(256,),
                                 compression="zlib",
                                 data=np.zeros(256, dtype=np.int64))
            holes_before = f.allocator.free_bytes
            rng = np.random.default_rng(1)
            d.write(rng.integers(-2**60, 2**60, 256).astype(np.int64))
            assert f.allocator.free_bytes > holes_before  # old chunk freed
            # Data still correct after relocation + reopen.
        with H5File(fs, "/c.h5", "r") as f:
            assert f["z"].read().shape == (256,)

    def test_compression_requires_chunked(self):
        fs = make_fs()
        with H5File(fs, "/c.h5", "w") as f:
            with pytest.raises(H5LayoutError):
                f.create_dataset("x", shape=(4,), compression="zlib")

    def test_compression_rejects_vlen(self):
        fs = make_fs()
        with H5File(fs, "/c.h5", "w") as f:
            with pytest.raises(H5LayoutError):
                f.create_dataset("v", shape=(4,), dtype="vlen-bytes",
                                 layout="chunked", chunks=(2,),
                                 compression="zlib")

    def test_bad_level_rejected(self):
        fs = make_fs()
        with H5File(fs, "/c.h5", "w") as f:
            with pytest.raises(H5LayoutError):
                f.create_dataset("x", shape=(8,), layout="chunked",
                                 chunks=(4,), compression="zlib",
                                 compression_level=0)

    def test_uncompressed_dataset_reports_none(self):
        fs = make_fs()
        with H5File(fs, "/c.h5", "w") as f:
            d = f.create_dataset("x", shape=(8,), layout="chunked", chunks=(4,))
            assert d.compression is None
            c = f.create_dataset("y", shape=(8,))
            assert c.compression is None

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 300),
        chunk=st.integers(1, 64),
        level=st.integers(1, 9),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_roundtrip(self, n, chunk, level, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 16, n).astype(np.int64)
        fs = make_fs()
        with H5File(fs, "/p.h5", "w") as f:
            f.create_dataset("z", shape=(n,), dtype="i8",
                             layout="chunked", chunks=(chunk,),
                             compression="zlib", compression_level=level,
                             data=data)
        with H5File(fs, "/p.h5", "r") as f:
            np.testing.assert_array_equal(f["z"].read(), data)


class TestAsyncStager:
    def _fs_with_tiers(self):
        clock = SimClock()
        return SimFS(clock, mounts=[
            Mount("/pfs", make_device("beegfs")),
            Mount("/local", make_device("nvme"), node="n0"),
        ])

    def _make_file(self, fs, path, nbytes):
        fd = fs.open(path, "w")
        fs.store_of(path).write(0, bytes(nbytes))
        fs.close(fd)

    def test_submit_does_not_advance_clock(self):
        fs = self._fs_with_tiers()
        self._make_file(fs, "/local/out.h5", 1 << 20)
        stager = AsyncStager(fs)
        before = fs.clock.now
        transfer = stager.submit("/local/out.h5", "/pfs/out.h5")
        assert fs.clock.now == before
        assert transfer.nbytes == 1 << 20
        assert stager.pending == 1

    def test_destination_materialized(self):
        fs = self._fs_with_tiers()
        self._make_file(fs, "/local/out.h5", 4096)
        AsyncStager(fs).submit("/local/out.h5", "/pfs/out.h5")
        assert fs.stat("/pfs/out.h5").size == 4096

    def test_fully_overlapped_transfer_costs_nothing(self):
        fs = self._fs_with_tiers()
        self._make_file(fs, "/local/out.h5", 1 << 20)
        stager = AsyncStager(fs)
        transfer = stager.submit("/local/out.h5", "/pfs/out.h5")
        # Plenty of foreground work happens meanwhile...
        fs.clock.advance(10.0, account="compute")
        waited = stager.wait(transfer)
        assert waited == 0.0
        assert stager.overlap_savings() > 0

    def test_immediate_wait_pays_the_transfer(self):
        fs = self._fs_with_tiers()
        self._make_file(fs, "/local/out.h5", 8 << 20)
        stager = AsyncStager(fs)
        transfer = stager.submit("/local/out.h5", "/pfs/out.h5")
        waited = stager.wait(transfer)
        assert waited == pytest.approx(transfer.duration)
        assert fs.clock.account(ASYNC_WAIT_ACCOUNT) == pytest.approx(waited)

    def test_transfers_queue_behind_each_other(self):
        fs = self._fs_with_tiers()
        for i in range(3):
            self._make_file(fs, f"/local/f{i}.h5", 4 << 20)
        stager = AsyncStager(fs)
        transfers = [stager.submit(f"/local/f{i}.h5", f"/pfs/f{i}.h5")
                     for i in range(3)]
        # One daemon: completion times strictly increase.
        assert (transfers[0].completes_at < transfers[1].completes_at
                < transfers[2].completes_at)

    def test_drain_waits_everything(self):
        fs = self._fs_with_tiers()
        for i in range(2):
            self._make_file(fs, f"/local/f{i}.h5", 1 << 20)
        stager = AsyncStager(fs)
        for i in range(2):
            stager.submit(f"/local/f{i}.h5", f"/pfs/f{i}.h5")
        stager.drain()
        assert stager.pending == 0

    def test_async_beats_sync_staging_with_overlap(self):
        """The DDMD optimization: with enough foreground compute to hide
        behind, async stage-out is cheaper on the critical path."""
        from repro.middleware.stager import stage_out

        def critical_path(asynchronous):
            fs = self._fs_with_tiers()
            self._make_file(fs, "/local/out.h5", 8 << 20)
            start = fs.clock.now
            if asynchronous:
                stager = AsyncStager(fs)
                t = stager.submit("/local/out.h5", "/pfs/out.h5")
                fs.clock.advance(1.0, account="compute")  # next iteration
                stager.wait(t)
            else:
                stage_out(fs, "/local/out.h5", "/pfs/out.h5",
                          remove_src=False)
                fs.clock.advance(1.0, account="compute")
            return fs.clock.now - start

        assert critical_path(True) < critical_path(False)
