"""Tests for the classic-NetCDF-like format: header codec, define/data
modes, fixed vs. record variable I/O shapes, VOL instrumentation, and
mixed-format workflow analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analyzer import build_ftg, dataset_node, file_node, task_node
from repro.mapper import DaYuConfig, DataSemanticMapper
from repro.netcdf import NcFile, NcFormatError
from repro.netcdf.format import NcAtt, NcDim, NcHeader, NcVarMeta
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


def make_fs():
    return SimFS(SimClock(), mounts=[Mount("/", make_device("ram"))])


@pytest.fixture()
def fs():
    return make_fs()


class TestHeaderCodec:
    def test_roundtrip(self):
        header = NcHeader(
            numrecs=7,
            dims=[NcDim("time", 0), NcDim("x", 128)],
            atts=[NcAtt("title", "text", b"storm run")],
            variables=[
                NcVarMeta("temp", "f4", [0, 1], vsize=512, begin=1024),
                NcVarMeta("grid", "f8", [1],
                          atts=[NcAtt("units", "text", b"m")],
                          vsize=1024, begin=2048),
            ],
        )
        decoded = NcHeader.decode(header.encode())
        assert decoded.numrecs == 7
        assert [d.name for d in decoded.dims] == ["time", "x"]
        assert decoded.dims[0].is_record
        assert decoded.variables[0].dim_ids == [0, 1]
        assert decoded.variables[1].atts[0].payload == b"m"
        assert decoded.record_dim_id() == 0
        assert decoded.is_record_var(decoded.variables[0])
        assert not decoded.is_record_var(decoded.variables[1])
        assert decoded.recsize() == 512

    def test_alignment_padding(self):
        assert len(NcHeader().encode()) % 512 == 0

    def test_bad_magic(self):
        with pytest.raises(NcFormatError):
            NcHeader.decode(b"NOPE" + b"\x00" * 60)


class TestDefineMode:
    def test_schema_building(self, fs):
        f = NcFile(fs, "/a.nc", "w")
        f.create_dimension("time", None)
        f.create_dimension("x", 16)
        v = f.create_variable("temp", "f4", ["time", "x"])
        v.set_att("units", "K")
        f.set_att("title", "test")
        f.enddef()
        assert f.variables() == ["temp"]
        assert f.get_att("title") == "test"
        assert v.get_att("units") == "K"
        f.close()

    def test_duplicate_dimension_rejected(self, fs):
        f = NcFile(fs, "/a.nc", "w")
        f.create_dimension("x", 4)
        with pytest.raises(NcFormatError):
            f.create_dimension("x", 8)

    def test_two_unlimited_rejected(self, fs):
        f = NcFile(fs, "/a.nc", "w")
        f.create_dimension("t", None)
        with pytest.raises(NcFormatError):
            f.create_dimension("t2", None)

    def test_zero_length_dim_rejected(self, fs):
        with pytest.raises(NcFormatError):
            NcFile(fs, "/a.nc", "w").create_dimension("x", 0)

    def test_unknown_dimension_rejected(self, fs):
        f = NcFile(fs, "/a.nc", "w")
        with pytest.raises(NcFormatError):
            f.create_variable("v", "f4", ["ghost"])

    def test_record_dim_must_be_first(self, fs):
        f = NcFile(fs, "/a.nc", "w")
        f.create_dimension("t", None)
        f.create_dimension("x", 4)
        with pytest.raises(NcFormatError):
            f.create_variable("v", "f4", ["x", "t"])

    def test_vlen_rejected(self, fs):
        f = NcFile(fs, "/a.nc", "w")
        f.create_dimension("x", 4)
        with pytest.raises(NcFormatError):
            f.create_variable("v", "vlen-bytes", ["x"])

    def test_data_ops_blocked_in_define_mode(self, fs):
        f = NcFile(fs, "/a.nc", "w")
        f.create_dimension("x", 4)
        v = f.create_variable("v", "f4", ["x"])
        with pytest.raises(NcFormatError, match="define mode"):
            v.write(np.zeros(4, np.float32))

    def test_define_ops_blocked_after_enddef(self, fs):
        f = NcFile(fs, "/a.nc", "w")
        f.create_dimension("x", 4)
        f.enddef()
        with pytest.raises(NcFormatError, match="not in define mode"):
            f.create_dimension("y", 4)


class TestDataMode:
    def _file(self, fs, path="/a.nc"):
        f = NcFile(fs, path, "w")
        f.create_dimension("time", None)
        f.create_dimension("x", 8)
        grid = f.create_variable("grid", "f8", ["x"])
        temp = f.create_variable("temp", "f4", ["time", "x"])
        wind = f.create_variable("wind", "f4", ["time", "x"])
        f.enddef()
        return f, grid, temp, wind

    def test_fixed_roundtrip(self, fs):
        f, grid, temp, wind = self._file(fs)
        data = np.arange(8.0)
        grid.write(data)
        np.testing.assert_array_equal(grid.read(), data)
        f.close()

    def test_record_append_and_read(self, fs):
        f, grid, temp, wind = self._file(fs)
        for r in range(3):
            temp.write_record(r, np.full(8, float(r), np.float32))
            wind.write_record(r, np.full(8, float(-r), np.float32))
        assert f.numrecs == 3
        assert temp.shape == (3, 8)
        np.testing.assert_array_equal(temp.read_record(1), np.full(8, 1.0))
        np.testing.assert_array_equal(wind.read()[2], np.full(8, -2.0))
        f.close()

    def test_persistence_across_reopen(self, fs):
        f, grid, temp, wind = self._file(fs)
        grid.write(np.arange(8.0))
        temp.write(np.arange(16, dtype=np.float32))  # 2 records
        f.close()
        f2 = NcFile(fs, "/a.nc", "r")
        assert f2.numrecs == 2
        assert f2.dimensions() == {"time": 2, "x": 8}
        np.testing.assert_array_equal(f2.variable("grid").read(), np.arange(8.0))
        np.testing.assert_array_equal(
            f2.variable("temp").read().reshape(-1), np.arange(16.0))
        f2.close()

    def test_record_read_out_of_range(self, fs):
        f, grid, temp, wind = self._file(fs)
        with pytest.raises(NcFormatError, match="out of range"):
            temp.read_record(0)

    def test_record_ops_rejected_on_fixed_var(self, fs):
        f, grid, temp, wind = self._file(fs)
        with pytest.raises(NcFormatError):
            grid.write_record(0, np.zeros(8))

    def test_size_validation(self, fs):
        f, grid, temp, wind = self._file(fs)
        with pytest.raises(NcFormatError):
            grid.write(np.zeros(7))
        with pytest.raises(NcFormatError):
            temp.write_record(0, np.zeros(5, np.float32))
        with pytest.raises(NcFormatError):
            temp.write(np.zeros(12, np.float32))  # not a record multiple

    def test_unknown_variable(self, fs):
        f, *_ = self._file(fs)
        with pytest.raises(KeyError):
            f.variable("nope")

    def test_closed_file_rejects(self, fs):
        f, grid, *_ = self._file(fs)
        f.close()
        with pytest.raises(NcFormatError):
            grid.read()
        f.close()  # idempotent


class TestIoShape:
    """The signature netCDF behaviours DaYu would decode."""

    def test_fixed_variable_is_single_op(self, fs):
        f = NcFile(fs, "/a.nc", "w")
        f.create_dimension("x", 1024)
        v = f.create_variable("v", "f8", ["x"])
        f.enddef()
        fs.clear_log()
        v.write(np.zeros(1024))
        raw_writes = [r for r in fs.op_log if r.op == "write"]
        assert len(raw_writes) == 1
        f.close()

    def test_record_variable_scatters_one_op_per_record(self, fs):
        f = NcFile(fs, "/a.nc", "w")
        f.create_dimension("t", None)
        f.create_dimension("x", 64)
        a = f.create_variable("a", "f4", ["t", "x"])
        b = f.create_variable("b", "f4", ["t", "x"])
        f.enddef()
        for r in range(5):
            a.write_record(r, np.zeros(64, np.float32))
            b.write_record(r, np.zeros(64, np.float32))
        fs.clear_log()
        a.read()
        reads = [r for r in fs.op_log if r.op == "read"]
        assert len(reads) == 5  # one per record: the interleaving cost
        # And the reads are NOT contiguous (strided by the full recsize).
        offsets = [r.offset for r in reads]
        stride = offsets[1] - offsets[0]
        assert stride == 2 * 64 * 4  # both variables' record slices
        f.close()

    def test_record_append_updates_header(self, fs):
        f = NcFile(fs, "/a.nc", "w")
        f.create_dimension("t", None)
        f.create_dimension("x", 4)
        v = f.create_variable("v", "f4", ["t", "x"])
        f.enddef()
        fs.clear_log()
        v.write_record(0, np.zeros(4, np.float32))
        # numrecs rewrite: a small metadata write at the file head.
        header_writes = [r for r in fs.op_log
                         if r.op == "write" and r.offset == 4 and r.nbytes == 8]
        assert len(header_writes) == 1
        f.close()

    @settings(max_examples=20, deadline=None)
    @given(
        nx=st.integers(1, 32),
        nrec=st.integers(0, 10),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_roundtrip(self, nx, nrec, seed):
        rng = np.random.default_rng(seed)
        fs = make_fs()
        f = NcFile(fs, "/p.nc", "w")
        f.create_dimension("t", None)
        f.create_dimension("x", nx)
        fixed = f.create_variable("fixed", "f8", ["x"])
        recvar = f.create_variable("rec", "f4", ["t", "x"])
        f.enddef()
        fixed_data = rng.random(nx)
        fixed.write(fixed_data)
        rec_data = rng.random((nrec, nx)).astype(np.float32)
        for r in range(nrec):
            recvar.write_record(r, rec_data[r])
        f.close()
        f2 = NcFile(fs, "/p.nc", "r")
        np.testing.assert_array_equal(f2.variable("fixed").read(), fixed_data)
        got = f2.variable("rec").read()
        assert got.shape == (nrec, nx)
        np.testing.assert_array_equal(got, rec_data)
        f2.close()


class TestNetcdfUnderDaYu:
    def test_profiled_netcdf_task(self):
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
        mapper = DataSemanticMapper(clock, DaYuConfig())
        with mapper.task("nc_writer") as ctx:
            f = ctx.open_netcdf(fs, "/climate.nc", "w")
            f.create_dimension("time", None)
            f.create_dimension("cell", 128)
            temp = f.create_variable("temperature", "f4", ["time", "cell"])
            f.enddef()
            for r in range(4):
                temp.write_record(r, np.zeros(128, np.float32))
            f.close()
        profile = mapper.profiles["nc_writer"]
        rows = profile.stats_for("/temperature")
        assert rows and rows[0].writes == 4
        assert rows[0].data_ops == 4
        [obj] = [p for p in profile.object_profiles
                 if p.object_name == "/temperature"]
        assert obj.layout == "record"
        assert obj.dtype == "f4"

    def test_mixed_format_workflow_graph(self):
        """An HDF5 producer feeding a netCDF consumer appears as one
        connected FTG — the cross-format analysis the paper motivates."""
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
        mapper = DataSemanticMapper(clock, DaYuConfig())
        with mapper.task("h5_producer") as ctx:
            f = ctx.open(fs, "/sim.h5", "w")
            f.create_dataset("field", shape=(64,), dtype="f4",
                             data=np.zeros(64, np.float32))
            f.close()
        with mapper.task("nc_converter") as ctx:
            src = ctx.open(fs, "/sim.h5", "r")
            field = src["field"].read()
            src.close()
            dst = ctx.open_netcdf(fs, "/out.nc", "w")
            dst.create_dimension("x", 64)
            v = dst.create_variable("field", "f4", ["x"])
            dst.enddef()
            v.write(field)
            dst.close()
        ftg = build_ftg(mapper.profiles.values())
        assert ftg.has_edge(task_node("h5_producer"), file_node("/sim.h5"))
        assert ftg.has_edge(file_node("/sim.h5"), task_node("nc_converter"))
        assert ftg.has_edge(task_node("nc_converter"), file_node("/out.nc"))
