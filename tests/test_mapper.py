"""Unit tests for the Data Semantic Mapper: config parsing, the
characteristic (VOL-VFD) join, task profiles, and overhead accounting."""

import json

import numpy as np
import pytest

from repro.hdf5 import Selection
from repro.mapper import (
    FILE_METADATA_OBJECT,
    DaYuConfig,
    DataSemanticMapper,
    map_characteristics,
    overhead_report,
)
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device
from repro.vfd.base import IoClass
from repro.vfd.tracing import VfdIoRecord


@pytest.fixture()
def env():
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
    mapper = DataSemanticMapper(clock, DaYuConfig(page_size=4096))
    return clock, fs, mapper


class TestInputParser:
    def test_defaults(self):
        cfg = DaYuConfig()
        assert cfg.page_size == 4096
        assert cfg.trace_io is True

    def test_parse_charges_cost(self):
        clock = SimClock()
        DaYuConfig.parse({"page_size": 65536}, clock)
        assert clock.account("dayu.input_parser") > 0

    def test_parse_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            DaYuConfig.parse({"page_sz": 1})

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            DaYuConfig(page_size=0)
        with pytest.raises(ValueError):
            DaYuConfig(skip_ops=-1)
        with pytest.raises(ValueError):
            DaYuConfig(output_dir="relative/path")


def rec(op, offset, nbytes, io_class, obj, file="/f.h5", start=0.0, dur=0.001):
    return VfdIoRecord("t", file, op, offset, nbytes, start, dur, io_class, obj)


class TestCharacteristicMapper:
    def test_groups_by_object(self):
        records = [
            rec("write", 0, 100, IoClass.RAW, "/a"),
            rec("write", 100, 100, IoClass.RAW, "/a"),
            rec("write", 200, 50, IoClass.RAW, "/b"),
        ]
        stats = map_characteristics(records, 4096)
        by_obj = {s.data_object: s for s in stats}
        assert by_obj["/a"].writes == 2
        assert by_obj["/a"].bytes_written == 200
        assert by_obj["/b"].writes == 1

    def test_untagged_records_become_file_metadata(self):
        stats = map_characteristics([rec("write", 0, 48, IoClass.METADATA, None)], 4096)
        assert stats[0].data_object == FILE_METADATA_OBJECT

    def test_metadata_raw_split(self):
        records = [
            rec("read", 0, 64, IoClass.METADATA, "/d"),
            rec("read", 4096, 8000, IoClass.RAW, "/d"),
        ]
        [s] = map_characteristics(records, 4096)
        assert s.metadata_ops == 1 and s.metadata_bytes == 64
        assert s.data_ops == 1 and s.data_bytes == 8000
        assert s.average_metadata_size == 64
        assert s.average_data_size == 8000

    def test_metadata_only_detection(self):
        [s] = map_characteristics(
            [rec("read", 0, 512, IoClass.METADATA, "/contact_map")], 4096
        )
        assert s.metadata_only
        assert s.operation == "read_only"

    def test_operation_kinds(self):
        [s] = map_characteristics(
            [rec("read", 0, 10, IoClass.RAW, "/d"), rec("write", 0, 10, IoClass.RAW, "/d")],
            4096,
        )
        assert s.operation == "read_write"

    def test_bandwidth_and_times(self):
        records = [
            rec("write", 0, 1000, IoClass.RAW, "/d", start=1.0, dur=0.5),
            rec("write", 1000, 1000, IoClass.RAW, "/d", start=2.0, dur=0.5),
        ]
        [s] = map_characteristics(records, 4096)
        assert s.io_time == pytest.approx(1.0)
        assert s.bandwidth == pytest.approx(2000.0)
        assert s.first_start == 1.0
        assert s.last_end == 2.5

    def test_region_histogram(self):
        records = [
            rec("write", 0, 100, IoClass.RAW, "/d"),
            rec("write", 5000, 100, IoClass.RAW, "/d"),
            rec("write", 4000, 200, IoClass.RAW, "/d"),  # spans pages 0-1
        ]
        [s] = map_characteristics(records, 4096)
        assert s.regions == {0: 2, 1: 2}

    def test_same_object_in_two_files_kept_separate(self):
        records = [
            rec("write", 0, 10, IoClass.RAW, "/d", file="/f1.h5"),
            rec("write", 0, 10, IoClass.RAW, "/d", file="/f2.h5"),
        ]
        stats = map_characteristics(records, 4096)
        assert len(stats) == 2

    def test_empty_records(self):
        assert map_characteristics([], 4096) == []

    def test_json_roundtrip(self):
        [s] = map_characteristics([rec("write", 0, 10, IoClass.RAW, "/d")], 4096)
        d = s.to_json_dict()
        assert d["data_object"] == "/d"
        assert json.dumps(d)  # serializable


class TestDataSemanticMapper:
    def test_task_profile_end_to_end(self, env):
        clock, fs, mapper = env
        with mapper.task("stage1") as ctx:
            f = ctx.open(fs, "/out.h5", "w")
            d = f.create_dataset("result", shape=(256,), dtype="f8",
                                 data=np.arange(256.0))
            d.read(Selection.hyperslab(((0, 64),)))
            f.close()
        profile = mapper.profiles["stage1"]
        assert profile.task == "stage1"
        assert profile.files == ["/out.h5"]
        assert profile.duration > 0
        names = {s.data_object for s in profile.dataset_stats}
        assert "/result" in names
        assert FILE_METADATA_OBJECT in names
        [obj] = [p for p in profile.object_profiles if p.object_name == "/result"]
        assert obj.access_kind == "read_write"

    def test_stats_for(self, env):
        clock, fs, mapper = env
        with mapper.task("t") as ctx:
            f = ctx.open(fs, "/out.h5", "w")
            f.create_dataset("d", shape=(8,), dtype="i4", data=np.zeros(8, "i4"))
            f.close()
        assert mapper.profiles["t"].stats_for("/d")[0].writes >= 1
        assert mapper.profiles["t"].stats_for("/missing") == []

    def test_duplicate_task_name_rejected(self, env):
        clock, fs, mapper = env
        with mapper.task("t"):
            pass
        with pytest.raises(ValueError):
            with mapper.task("t"):
                pass

    def test_unclosed_files_closed_at_task_end(self, env):
        clock, fs, mapper = env
        with mapper.task("t") as ctx:
            f = ctx.open(fs, "/out.h5", "w")
            f.create_dataset("d", shape=(2,), data=[1.0, 2.0])
            # no close
        assert f.closed
        assert len(mapper.profiles["t"].object_profiles) == 1

    def test_two_tasks_isolated(self, env):
        clock, fs, mapper = env
        with mapper.task("producer") as ctx:
            f = ctx.open(fs, "/shared.h5", "w")
            f.create_dataset("d", shape=(16,), dtype="f8", data=np.ones(16))
            f.close()
        with mapper.task("consumer") as ctx:
            f = ctx.open(fs, "/shared.h5", "r")
            f["d"].read()
            f.close()
        prod = mapper.profiles["producer"]
        cons = mapper.profiles["consumer"]
        assert all(r.task == "producer" for r in prod.io_records)
        assert all(r.task == "consumer" for r in cons.io_records)
        assert cons.stats_for("/d")[0].operation == "read_only"

    def test_save_writes_json_profiles(self, env):
        clock, fs, mapper = env
        with mapper.task("t") as ctx:
            f = ctx.open(fs, "/out.h5", "w")
            f.create_dataset("d", shape=(2,), data=[1.0, 2.0])
            f.close()
        paths = mapper.save(fs)
        assert paths == ["/dayu/t.json"]
        fd = fs.open("/dayu/t.json", "r")
        payload = json.loads(fs.read(fd, 10_000_000))
        fs.close(fd)
        assert payload["task"] == "t"

    def test_trace_io_off_drops_records_keeps_stats_empty(self, env):
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
        mapper = DataSemanticMapper(clock, DaYuConfig(trace_io=False))
        with mapper.task("t") as ctx:
            f = ctx.open(fs, "/out.h5", "w")
            f.create_dataset("d", shape=(2,), data=[1.0, 2.0])
            f.close()
        profile = mapper.profiles["t"]
        assert profile.io_records == []
        assert profile.dataset_stats == []  # no per-op mapping possible
        assert profile.file_sessions  # aggregates still present
        assert profile.object_profiles  # VOL semantics still present


class TestOverheadAccounting:
    def test_report_components_positive(self, env):
        clock, fs, mapper = env
        with mapper.task("t") as ctx:
            f = ctx.open(fs, "/out.h5", "w")
            f.create_dataset("d", shape=(1000,), dtype="f8", data=np.zeros(1000))
            f.close()
        report = overhead_report(
            clock,
            trace_storage_bytes=mapper.storage_bytes,
            data_volume_bytes=mapper.data_volume(),
        )
        assert report.vfd_tracker > 0
        assert report.vol_tracker > 0
        assert report.characteristic_mapper > 0
        assert report.dayu_time < report.total_runtime
        shares = report.component_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_overhead_small_for_large_io(self, env):
        """DaYu's claim: overhead stays well under 1% for data-heavy runs."""
        clock, fs, mapper = env
        with mapper.task("t") as ctx:
            f = ctx.open(fs, "/out.h5", "w")
            f.create_dataset("big", shape=(2_000_000,), dtype="f8",
                             data=np.zeros(2_000_000))
            f.close()
        report = overhead_report(clock)
        assert report.runtime_percent < 1.0

    def test_storage_percent(self):
        clock = SimClock()
        clock.advance(1.0)
        report = overhead_report(clock, trace_storage_bytes=25, data_volume_bytes=10_000)
        assert report.storage_percent == pytest.approx(0.25)

    def test_empty_clock_report(self):
        report = overhead_report(SimClock())
        assert report.total_percent == 0.0
        assert report.runtime_percent == 0.0
        assert report.storage_percent == 0.0
        assert sum(report.component_shares().values()) == 0.0
