"""Multi-session tests: reopening files read-write, extending them, and
verifying the format survives repeated modify cycles (the workflow pattern
every case study relies on)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hdf5 import H5File, Selection
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


def make_fs():
    return SimFS(SimClock(), mounts=[Mount("/", make_device("ram"))])


class TestReadWriteReopen:
    def test_add_dataset_after_reopen(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("first", shape=(4,), dtype="i4", data=[1, 2, 3, 4])
        with H5File(fs, "/a.h5", "r+") as f:
            f.create_dataset("second", shape=(2,), dtype="f8", data=[1.5, 2.5])
        with H5File(fs, "/a.h5", "r") as f:
            assert f.keys() == ["first", "second"]
            np.testing.assert_array_equal(f["first"].read(), [1, 2, 3, 4])
            np.testing.assert_array_equal(f["second"].read(), [1.5, 2.5])

    def test_modify_data_after_reopen(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(8,), dtype="f8", data=np.zeros(8))
        with H5File(fs, "/a.h5", "r+") as f:
            f["d"].write(np.ones(4), Selection.hyperslab(((2, 4),)))
        with H5File(fs, "/a.h5", "r") as f:
            expect = np.zeros(8)
            expect[2:6] = 1.0
            np.testing.assert_array_equal(f["d"].read(), expect)

    def test_add_attributes_after_reopen(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(1,), data=[0.0])
        with H5File(fs, "/a.h5", "r+") as f:
            f["d"].attrs["round"] = 2
        with H5File(fs, "/a.h5", "r") as f:
            assert f["d"].attrs["round"] == 2

    def test_grow_root_group_across_sessions(self):
        """Adding children session after session forces the root header to
        relocate in a *later* session than it was created — the superblock
        must track it."""
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d000", shape=(1,), data=[0.0])
        for batch in range(4):
            with H5File(fs, "/a.h5", "r+") as f:
                for i in range(8):
                    name = f"d{batch:01d}{i:02d}_longish_name"
                    f.create_dataset(name, shape=(2,), dtype="i4",
                                     data=[batch, i])
        with H5File(fs, "/a.h5", "r") as f:
            assert len(f.keys()) == 33
            np.testing.assert_array_equal(f["d307_longish_name"].read(), [3, 7])

    def test_extend_chunked_dataset_new_chunks(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(100,), dtype="i8",
                                 layout="chunked", chunks=(10,))
            d.write(np.arange(50, dtype=np.int64),
                    Selection.hyperslab(((0, 50),)))
        with H5File(fs, "/a.h5", "r+") as f:
            f["d"].write(np.arange(50, 100, dtype=np.int64),
                         Selection.hyperslab(((50, 50),)))
        with H5File(fs, "/a.h5", "r") as f:
            np.testing.assert_array_equal(f["d"].read(), np.arange(100))

    def test_append_vlen_elements_across_sessions(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("v", shape=(6,), dtype="vlen-bytes",
                                 layout="chunked", chunks=(3,))
            d.write([b"a", b"bb", b"ccc"], Selection.hyperslab(((0, 3),)))
        with H5File(fs, "/a.h5", "r+") as f:
            f["v"].write([b"dddd", b"e", b"ff"],
                         Selection.hyperslab(((3, 3),)))
        with H5File(fs, "/a.h5", "r") as f:
            assert f["v"].read() == [b"a", b"bb", b"ccc", b"dddd", b"e", b"ff"]

    def test_rplus_requires_existing_file(self):
        fs = make_fs()
        with pytest.raises(Exception):
            H5File(fs, "/missing.h5", "r+")

    @settings(max_examples=15, deadline=None)
    @given(
        sessions=st.lists(
            st.lists(
                st.tuples(st.integers(0, 49), st.integers(-1000, 1000)),
                min_size=1, max_size=8,
            ),
            min_size=1, max_size=5,
        )
    )
    def test_property_multi_session_point_updates(self, sessions):
        """Property: a sequence of re-open/update sessions matches a plain
        numpy reference array."""
        fs = make_fs()
        ref = np.zeros(50, dtype=np.int64)
        with H5File(fs, "/p.h5", "w") as f:
            f.create_dataset("d", shape=(50,), dtype="i8",
                             layout="chunked", chunks=(7,), data=ref)
        for updates in sessions:
            with H5File(fs, "/p.h5", "r+") as f:
                d = f["d"]
                for idx, value in updates:
                    d.write(np.array([value], dtype=np.int64),
                            Selection.hyperslab(((idx, 1),)))
                    ref[idx] = value
        with H5File(fs, "/p.h5", "r") as f:
            np.testing.assert_array_equal(f["d"].read(), ref)
