"""Tests for the netCDF VOL wrapper layer specifically (the climate
workload covers the happy path; these cover the wrapper surface)."""

import numpy as np
import pytest

from repro.mapper import DaYuConfig, DataSemanticMapper
from repro.netcdf import NcFormatError
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device
from repro.vfd.base import IoClass


@pytest.fixture()
def env():
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
    mapper = DataSemanticMapper(clock, DaYuConfig())
    return fs, mapper


def write_file(ctx, fs, path="/w.nc", records=3, cells=16):
    f = ctx.open_netcdf(fs, path, "w")
    f.create_dimension("t", None)
    f.create_dimension("x", cells)
    f.set_att("source", "test")
    v = f.create_variable("v", "f4", ["t", "x"])
    v.set_att("units", "m/s")
    fixed = f.create_variable("grid", "f8", ["x"])
    f.enddef()
    for r in range(records):
        v.write_record(r, np.full(cells, float(r), np.float32))
    fixed.write(np.arange(cells, dtype=np.float64))
    f.close()
    return path


class TestNcVolSurface:
    def test_attributes_round_trip(self, env):
        fs, mapper = env
        with mapper.task("w") as ctx:
            write_file(ctx, fs)
        with mapper.task("r") as ctx:
            f = ctx.open_netcdf(fs, "/w.nc", "r")
            assert f.get_att("source") == "test"
            v = f.variable("v")
            assert v.get_att("units") == "m/s"
            assert v.is_record
            assert v.dtype.code == "f4"
            assert f.dimensions() == {"t": 3, "x": 16}
            f.close()

    def test_read_record_via_wrapper_profiled(self, env):
        fs, mapper = env
        with mapper.task("w") as ctx:
            write_file(ctx, fs)
        with mapper.task("r") as ctx:
            f = ctx.open_netcdf(fs, "/w.nc", "r")
            v = f.variable("v")
            rec = v.read_record(1)
            np.testing.assert_array_equal(rec, np.full(16, 1.0))
            f.close()
        profile = mapper.profiles["r"]
        [stats] = [s for s in profile.dataset_stats if s.data_object == "/v"]
        assert stats.reads == 1
        assert stats.operation == "read_only"

    def test_vfd_records_tagged_with_variable(self, env):
        fs, mapper = env
        with mapper.task("w") as ctx:
            write_file(ctx, fs)
        profile = mapper.profiles["w"]
        v_records = [r for r in profile.io_records if r.data_object == "/v"]
        assert v_records
        assert all(r.access_type is IoClass.RAW for r in v_records
                   if r.nbytes == 16 * 4)

    def test_numrecs_header_update_is_metadata(self, env):
        fs, mapper = env
        with mapper.task("w") as ctx:
            write_file(ctx, fs, records=2)
        profile = mapper.profiles["w"]
        numrecs_updates = [r for r in profile.io_records
                           if r.op == "write" and r.offset == 4
                           and r.access_type is IoClass.METADATA]
        assert len(numrecs_updates) == 2  # one per appended record

    def test_wrapper_write_record_count_mismatch(self, env):
        fs, mapper = env
        with mapper.task("w") as ctx:
            f = ctx.open_netcdf(fs, "/w.nc", "w")
            f.create_dimension("t", None)
            f.create_dimension("x", 8)
            v = f.create_variable("v", "f4", ["t", "x"])
            f.enddef()
            with pytest.raises(NcFormatError):
                v.write_record(0, np.zeros(5, np.float32))
            f.close()

    def test_double_close_single_file_event(self, env):
        fs, mapper = env
        with mapper.task("w") as ctx:
            path = write_file(ctx, fs)
            f = ctx.open_netcdf(fs, path, "r")
            f.close()
            f.close()  # idempotent
        assert mapper.profiles["w"].files == [path]

    def test_context_manager(self, env):
        fs, mapper = env
        with mapper.task("w") as ctx:
            with ctx.open_netcdf(fs, "/cm.nc", "w") as f:
                f.create_dimension("x", 4)
                f.create_variable("d", "f8", ["x"])
                f.enddef()
                f.variable("d").write(np.zeros(4))
            assert f.closed

    def test_mixed_fixed_record_shapes(self, env):
        fs, mapper = env
        with mapper.task("w") as ctx:
            write_file(ctx, fs, records=4, cells=8)
        with mapper.task("r") as ctx:
            f = ctx.open_netcdf(fs, "/w.nc", "r")
            assert f.variable("v").shape == (4, 8)
            assert f.variable("grid").shape == (8,)
            assert not f.variable("grid").is_record
            np.testing.assert_array_equal(
                f.variable("grid").read(), np.arange(8.0))
            f.close()
