"""Integration tests for the experiment harnesses: each must reproduce the
paper's qualitative result (who wins, the direction of scaling, and the
approximate factor) at reduced sweep sizes."""

import pytest

from repro.experiments.analyzer_scale import SyntheticScale, run_analyzer_scale
from repro.experiments.common import ResultTable, fresh_env
from repro.experiments.fig9_overhead import (
    run_fig9a_filesize,
    run_fig9b_processes,
    run_fig9c_read_scaling,
    run_fig9d_storage,
)
from repro.experiments.fig10_breakdown import (
    run_fig10a_h5bench,
    run_fig10b_corner_case,
)
from repro.experiments.fig11_placement import C1, Fig11Config, run_fig11
from repro.experiments.fig12_ddmd import Fig12Params, run_fig12
from repro.experiments.fig13a_consolidation import Fig13aParams, run_fig13a
from repro.experiments.fig13b_layout import Fig13bParams, run_fig13b
from repro.experiments.fig13c_arldm import Fig13cParams, run_fig13c

MIB = 1 << 20


class TestResultTable:
    def test_add_and_markdown(self):
        t = ResultTable("T", ["a", "b"])
        t.add(a=1, b=2.5)
        md = t.to_markdown()
        assert "### T" in md and "| 1 | 2.5 |" in md

    def test_missing_column_rejected(self):
        t = ResultTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(a=1)

    def test_column_accessor(self):
        t = ResultTable("T", ["a"])
        t.add(a=1)
        t.add(a=2)
        assert t.column("a") == [1, 2]


class TestFig9:
    def test_9a_overhead_small_and_decreasing(self):
        table = run_fig9a_filesize([5, 20])
        vfd = table.column("vfd_percent")
        assert all(v < 0.25 for v in vfd)  # the paper's headline bound
        assert vfd[-1] < vfd[0]  # decreasing with file size
        assert all(v < 0.25 for v in table.column("vol_percent"))

    def test_9b_overhead_decreasing_with_processes(self):
        table = run_fig9b_processes([4, 16])
        vfd = table.column("vfd_percent")
        assert vfd[-1] < vfd[0]

    def test_9c_overhead_increases_with_ops(self):
        table = run_fig9c_read_scaling([0, 20], file_bytes=10 * MIB)
        vfd = table.column("vfd_percent")
        assert vfd[-1] > vfd[0]
        assert all(v < 4.0 for v in vfd)  # the paper's 4% worst case

    def test_9d_vfd_linear_vol_flat(self):
        table = run_fig9d_storage([0, 10, 20], file_bytes=20 * MIB)
        vfd = table.column("vfd_storage_percent")
        vol = table.column("vol_storage_percent")
        assert vfd[2] > vfd[1] > vfd[0]
        assert vol[2] == pytest.approx(vol[0], rel=0.05)  # flat
        # Roughly linear: equal op increments give equal storage increments.
        assert (vfd[2] - vfd[1]) == pytest.approx(vfd[1] - vfd[0], rel=0.2)


class TestFig10:
    def test_10a_h5bench_mapper_dominated(self):
        result = run_fig10a_h5bench(total_mib=20, n_procs=4)
        # The <0.25% headline holds at the full (default 80 MiB) scale; at
        # this reduced test scale the fixed parse cost looms larger.
        assert result.report.runtime_percent < 1.0
        shares = result.shares
        # Paper Figure 10a: the Characteristic Mapper dominates.
        assert shares["Characteristic_Mapper"] > max(
            shares["Input_Parser"], shares["Access_Tracker"]
        )
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_10b_corner_tracker_dominated_vfd_over_vol(self):
        result = run_fig10b_corner_case(file_mib=10, read_repeats=30)
        shares = result.shares
        # The paper's Figure 10b: Access Tracker dominates...
        assert shares["Access_Tracker"] > 0.5
        # ...with the VFD layer costing more than the VOL layer.
        assert result.report.vfd_percent > result.report.vol_percent
        assert result.report.runtime_percent < 4.5

    def test_breakdown_table_renders(self):
        result = run_fig10a_h5bench(total_mib=5, n_procs=2)
        md = result.to_table().to_markdown()
        assert "Input_Parser" in md


SMALL_C1 = Fig11Config("C1", total_input_bytes=8 * MIB, n_files=8,
                       n_parallel=4, n_nodes=2)


class TestFig11:
    def test_optimized_beats_baseline(self):
        table = run_fig11([SMALL_C1])
        totals = table.column("total_s")
        assert totals[1] < totals[0]  # optimized < baseline

    def test_phase_structure(self):
        table = run_fig11([SMALL_C1])
        baseline, optimized = table.rows
        assert baseline["Stage-In"] == 0.0
        assert optimized["Stage-In"] > 0.0
        assert optimized["Stage-Out"] > 0.0
        assert optimized["Stage 3"] < baseline["Stage 3"]

    def test_speedup_in_paper_band(self):
        """At the calibrated default scale the overall speedup must land
        near the paper's 1.6x and stage 3 near 2.6x."""
        table = run_fig11([C1])
        baseline, optimized = table.rows
        overall = baseline["total_s"] / optimized["total_s"]
        stage3 = baseline["Stage 3"] / optimized["Stage 3"]
        assert 1.3 <= overall <= 2.1
        assert 1.8 <= stage3 <= 3.4


class TestFig12:
    def test_optimized_beats_baseline_each_iteration(self):
        table = run_fig12(Fig12Params(iterations=2, n_sim_tasks=4,
                                      frames=1024))
        for row in table.rows:
            assert row["speedup"] > 1.0

    def test_speedup_in_paper_band(self):
        table = run_fig12(Fig12Params(iterations=1))
        [row] = table.rows
        assert 1.05 <= row["speedup"] <= 1.45  # paper: 1.15-1.2x


class TestFig13a:
    def test_consolidation_wins_in_band(self):
        table = run_fig13a(Fig13aParams(dataset_bytes=(1024,),
                                        process_counts=(1, 4)))
        for row in table.rows:
            assert 1.5 <= row["reduction"] <= 4.0  # paper: 1.7-3.7x

    def test_io_time_grows_with_processes(self):
        table = run_fig13a(Fig13aParams(dataset_bytes=(2048,),
                                        process_counts=(1, 8)))
        base = table.column("baseline_ms")
        assert base[1] > base[0]


class TestFig13b:
    def test_contiguous_wins_in_band(self):
        table = run_fig13b(Fig13bParams(dataset_kib=(100, 400),
                                        process_counts=(1, 4)))
        for row in table.rows:
            assert 1.2 <= row["speedup"] <= 2.6  # paper: up to 1.9x


class TestFig13c:
    def test_chunked_advantage_grows_with_size(self):
        table = run_fig13c(Fig13cParams(total_mib=(5, 20), chunk_counts=(5,)))
        by_size = {}
        for row in table.rows:
            if row["variant"] == "5 chunks":
                by_size[row["total_mib"]] = row["speedup_vs_contig"]
        assert by_size[20] > by_size[5]
        assert by_size[20] >= 1.2  # the paper's "up to 1.4x" regime

    def test_chunked_fewer_write_ops(self):
        table = run_fig13c(Fig13cParams(total_mib=(20,), chunk_counts=(5,)))
        contig_ops = next(r["write_ops"] for r in table.rows
                          if r["variant"].startswith("contiguous"))
        chunk_ops = next(r["write_ops"] for r in table.rows
                         if r["variant"] == "5 chunks")
        assert chunk_ops <= contig_ops / 1.5  # paper: ~2x fewer


class TestGuidelineValidation:
    def test_advisor_agrees_everywhere(self):
        from repro.experiments.guideline_validation import (
            GuidelineValidationParams,
            run_guideline_validation,
        )

        table = run_guideline_validation(
            GuidelineValidationParams(random_accesses=4))
        assert len(table.rows) == 4
        assert all(row["agrees"] for row in table.rows)


class TestAnalyzerScale:
    def test_thousand_node_graph_within_paper_bounds(self):
        result = run_analyzer_scale(SyntheticScale())
        assert result["ftg_nodes"] >= 1000
        assert result["ftg_edges"] >= 3000
        assert result["analyze_seconds"] < 15.0  # paper: <15 s
        assert result["render_seconds"] < 10.0   # paper: <2 s on their box

    def test_small_scale_fast(self):
        result = run_analyzer_scale(SyntheticScale(n_tasks=10, n_files=50))
        assert result["analyze_seconds"] < 2.0
        assert result["insights"] > 0


class TestGraphArtifacts:
    def test_generate_all(self, tmp_path):
        from repro.experiments.graphs import generate_all_graphs

        artifacts = generate_all_graphs(str(tmp_path))
        expected = {
            "fig3_example_sdg", "fig4_pyflextrkr_ftg", "fig5_stage9_sdg",
            "fig6_ddmd_ftg", "fig7_ddmd_sdg",
            "fig8a_contiguous_arldm_sdg", "fig8b_chunked_arldm_sdg",
        }
        assert expected <= set(artifacts)
        for name, paths in artifacts.items():
            html = (tmp_path / f"{name}.html")
            assert html.exists() and html.stat().st_size > 500
            assert (tmp_path / f"{name}.dot").exists()
        assert artifacts["fig7_ddmd_sdg"].get("metadata_only_contact_map") == "confirmed"
