"""Property tests for the happens-before engine (``repro.lint.hb``).

Seeded fuzz over the structures the DY5xx race pass leans on:

- :class:`IntervalSet` obeys the vector-clock lattice laws (join is
  commutative / associative / idempotent; the order is a partial order)
  and agrees index-for-index with dense Python sets;
- :class:`HbOrder` clocks over random DAGs agree with
  ``networkx.ancestors`` reachability — the interval representation is
  an exact compression, not an approximation;
- :func:`reorder_witness` always emits a *legal* topological order of
  the dependency DAG with the pair flipped;
- extent overlap verdicts match a brute-force byte-set ground truth,
  and page-run (histogram-granular) extents never *miss* an overlap
  byte-precise extents would convict (conservativeness — the reason the
  approximate path can only upgrade disjoint→overlap, never the
  reverse).
"""

import random

import networkx as nx
import pytest

from repro.lint.context import extents_overlap, merge_extents
from repro.lint.hb import HbOrder, IntervalSet, reorder_witness

SEED = 20260808


def _random_dag(rng, n, p):
    """A random DAG on tasks t0..t{n-1}; edges only point forward."""
    g = nx.DiGraph()
    names = [f"t{i}" for i in range(n)]
    g.add_nodes_from(names)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(names[i], names[j])
    return g


def _random_indices(rng, universe=200, max_points=40):
    return {rng.randrange(universe) for _ in range(rng.randrange(max_points))}


# ----------------------------------------------------------------------
# IntervalSet lattice laws
# ----------------------------------------------------------------------
class TestIntervalSetLattice:
    def test_join_laws_and_dense_agreement(self):
        rng = random.Random(SEED)
        for _ in range(200):
            xs, ys, zs = (_random_indices(rng) for _ in range(3))
            a = IntervalSet.from_indices(xs)
            b = IntervalSet.from_indices(ys)
            c = IntervalSet.from_indices(zs)
            # Join laws.
            assert a.union(b) == b.union(a)
            assert a.union(a) == a
            assert a.union(b).union(c) == a.union(b.union(c))
            # Dense agreement: covered indices are exactly the set union.
            assert set(a.union(b)) == xs | ys
            assert len(a.union(b)) == len(xs | ys)
            for i in range(0, 210, 7):
                assert (i in a) == (i in xs)

    def test_partial_order_laws(self):
        rng = random.Random(SEED + 1)
        for _ in range(200):
            xs, ys = (_random_indices(rng) for _ in range(2))
            a = IntervalSet.from_indices(xs)
            b = IntervalSet.from_indices(ys)
            # Ground truth via dense sets.
            assert a.issuperset(b) == (xs >= ys)
            # Reflexivity, antisymmetry.
            assert a.issuperset(a)
            if a.issuperset(b) and b.issuperset(a):
                assert a == b
            # The join is the least upper bound: above both.
            j = a.union(b)
            assert j.issuperset(a) and j.issuperset(b)

    def test_normalization_merges_touching(self):
        s = IntervalSet([(5, 7), (0, 3), (3, 5), (9, 9)])
        assert s.intervals == ((0, 7),)


# ----------------------------------------------------------------------
# HbOrder clocks vs graph reachability
# ----------------------------------------------------------------------
class TestHbOrderClocks:
    def test_graph_clocks_match_ancestors(self):
        rng = random.Random(SEED + 2)
        for trial in range(30):
            g = _random_dag(rng, rng.randrange(2, 40), rng.uniform(0.02, 0.3))
            hb = HbOrder.from_graph(g)
            assert not hb.cyclic
            names = list(g.nodes)
            for t in names:
                downset = {hb.position[u] for u in nx.ancestors(g, t)}
                downset.add(hb.position[t])
                assert hb.clock(t) == IntervalSet.from_indices(downset)
            for _ in range(50):
                a, b = rng.choice(names), rng.choice(names)
                expected = a != b and a in nx.ancestors(g, b)
                assert hb.ordered_before(a, b) == expected
                assert hb.concurrent(a, b) == (
                    a != b and not expected and b not in nx.ancestors(g, a))

    def test_total_order(self):
        hb = HbOrder.total(["a", "b", "c"])
        assert hb.clock("b") == IntervalSet([(0, 2)])
        assert hb.ordered_before("a", "c")
        assert not hb.ordered_before("c", "a")
        assert not hb.concurrent("a", "b")
        with pytest.raises(ValueError):
            HbOrder.total(["a", "a"])

    def test_ranked_order(self):
        hb = HbOrder.ranked({"s0": (0, 0), "p1": (1, 0), "p2": (1, 0),
                             "s2": (2, 0)})
        assert hb.ordered_before("s0", "p1")
        assert hb.concurrent("p1", "p2")  # same rank: one parallel stage
        assert hb.ordered_before("p2", "s2")
        # Clock of a parallel task covers the strictly-lower ranks plus
        # itself, not its rank-mates.
        clk = hb.clock("p1")
        assert hb.position["s0"] in clk
        assert hb.position["p2"] not in clk

    def test_cycle_condensation(self):
        g = nx.DiGraph([("a", "b"), ("b", "a"), ("b", "c")])
        hb = HbOrder.from_graph(g)
        assert hb.cyclic
        # SCC members are mutually ordered (matching OrderingInfo).
        assert hb.ordered_before("a", "b") and hb.ordered_before("b", "a")
        assert hb.ordered_before("a", "c")


# ----------------------------------------------------------------------
# Reorder witnesses
# ----------------------------------------------------------------------
def _assert_topological(g, order):
    pos = {t: i for i, t in enumerate(order)}
    assert len(pos) == g.number_of_nodes()
    for u, v in g.edges:
        assert pos[u] < pos[v]


class TestReorderWitness:
    def test_fuzz_witnesses_are_legal(self):
        rng = random.Random(SEED + 3)
        produced = 0
        for trial in range(40):
            g = _random_dag(rng, rng.randrange(3, 30), rng.uniform(0.0, 0.25))
            hb = HbOrder.from_graph(g)
            names = list(g.nodes)
            pairs = [(a, b) for a in names for b in names
                     if a < b and hb.concurrent(a, b)]
            if not pairs:
                continue
            first, second = rng.choice(pairs)
            w = reorder_witness(hb, first, second)
            assert w is not None
            produced += 1
            assert w["schema"] == "dayu-witness/v1"
            assert w["reordered"] == [second, first]
            assert w["window"] == [0, w["total_tasks"]]
            _assert_topological(g, w["order"])
            assert w["order"].index(second) < w["order"].index(first)
        assert produced >= 10  # the fuzz actually exercised the path

    def test_ordered_pair_has_no_witness(self):
        g = nx.DiGraph([("a", "b")])
        hb = HbOrder.from_graph(g)
        assert reorder_witness(hb, "a", "b") is None

    def test_total_order_has_no_witness(self):
        hb = HbOrder.total(["a", "b"])
        assert reorder_witness(hb, "a", "b") is None

    def test_windowing_large_graphs(self):
        g = nx.DiGraph()
        names = [f"n{i:03d}" for i in range(300)]
        g.add_nodes_from(names)
        hb = HbOrder.from_graph(g)
        w = reorder_witness(hb, "n000", "n299", max_tasks=50)
        assert w is not None
        assert w["total_tasks"] == 300
        lo, hi = w["window"]
        assert hi - lo == len(w["order"]) <= 300
        assert "n299" in w["order"] and "n000" in w["order"]
        assert w["order"].index("n299") < w["order"].index("n000")


# ----------------------------------------------------------------------
# Extent overlap vs ground truth
# ----------------------------------------------------------------------
def _random_extents(rng, universe=400, max_runs=8, max_len=40):
    return [(lo, lo + rng.randrange(1, max_len))
            for lo in (rng.randrange(universe)
                       for _ in range(rng.randrange(max_runs)))]


def _page_runs(extents, page=16):
    """The page-run histogram view: each extent widened to page bounds."""
    return merge_extents([(lo - lo % page, hi + (-hi) % page)
                          for lo, hi in extents])


class TestExtentOverlapGroundTruth:
    def test_fuzz_overlap_matches_byte_sets(self):
        rng = random.Random(SEED + 4)
        for _ in range(300):
            ea, eb = _random_extents(rng), _random_extents(rng)
            a, b = merge_extents(ea), merge_extents(eb)
            bytes_a = {i for lo, hi in ea for i in range(lo, hi)}
            bytes_b = {i for lo, hi in eb for i in range(lo, hi)}
            overlap = extents_overlap(a, b)
            if overlap is None:
                assert not (bytes_a & bytes_b)
            else:
                lo, hi = overlap
                assert lo < hi
                # The reported range is a real common range.
                assert set(range(lo, hi)) <= bytes_a
                assert set(range(lo, hi)) <= bytes_b

    def test_fuzz_page_runs_are_conservative(self):
        """Page-granular extents may over-report overlap but never miss
        one — which is why only *exact* digests can downgrade DY501/502
        to the disjoint warning."""
        rng = random.Random(SEED + 5)
        misses = 0
        for _ in range(300):
            ea, eb = _random_extents(rng), _random_extents(rng)
            byte_overlap = extents_overlap(merge_extents(ea),
                                           merge_extents(eb))
            page_overlap = extents_overlap(_page_runs(ea), _page_runs(eb))
            if byte_overlap is not None:
                assert page_overlap is not None  # conservative: no misses
                lo, hi = byte_overlap
                plo, phi = page_overlap
                assert plo <= lo and hi <= phi or page_overlap is not None
            elif page_overlap is not None:
                misses += 1  # false positive at page granularity: allowed
        # The fuzz distribution should exhibit the asymmetry at least once.
        assert misses > 0

    def test_merge_extents_canonical(self):
        assert merge_extents([(3, 5), (0, 3), (7, 8), (4, 6)]) == \
            [(0, 6), (7, 8)]
        assert merge_extents([(5, 5)]) == []
