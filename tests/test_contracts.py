"""Tests for ``repro.workflow.contracts`` and the AST contract extractor.

The load-bearing property: for every bundled workload, the extractor's
*exact* inferred accesses must be a subset of the datasets the task
actually touched in its traces — the static front end never hallucinates
dataflow.  The model tests pin the contract algebra the DY40x/DY45x
rules are built on.
"""

import pytest

from repro.experiments.common import fresh_env
from repro.lint import extract_workflow_contracts, infer_contract
from repro.mapper.stats import FILE_METADATA_OBJECT
from repro.workflow import Stage, Task, Workflow
from repro.workflow.contracts import (
    ContractAccess,
    ContractError,
    TaskContract,
    creates,
    dtype_itemsize,
    normalize_dataset,
    opens,
    reads,
    reconcile,
    validate_contract,
    writes,
)
from repro.workloads.registry import WORKLOADS, build_workload


# ----------------------------------------------------------------------
# Contract model
# ----------------------------------------------------------------------
class TestContractModel:
    def test_dataset_names_are_root_anchored(self):
        assert normalize_dataset("dup") == "/dup"
        assert normalize_dataset("/dup") == "/dup"
        assert reads("/f.h5", "x").dataset == "/x"

    def test_bad_op_rejected(self):
        with pytest.raises(ContractError):
            ContractAccess(op="append", file="/f.h5", dataset="/x")

    def test_negative_count_and_elements_rejected(self):
        with pytest.raises(ContractError):
            ContractAccess(op="read", file="/f.h5", dataset="/x", count=-1)
        with pytest.raises(ContractError):
            ContractAccess(op="read", file="/f.h5", dataset="/x",
                           elements=-1)

    def test_moves_data_semantics(self):
        assert reads("/f.h5", "x").moves_data
        assert writes("/f.h5", "x").moves_data
        assert not opens("/f.h5", "x").moves_data
        # create: 0 = explicitly dataless, None = unknown (conservative),
        # >0 = initial data written at creation.
        assert not creates("/f.h5", "x", shape=(8,), elements=0).moves_data
        assert creates("/f.h5", "x", shape=(8,)).moves_data
        assert creates("/f.h5", "x", shape=(8,), elements=8).moves_data

    def test_extent_elements_and_select_range(self):
        a = creates("/f.h5", "x", shape=(4, 8), dtype="f4")
        assert a.extent_elements == 32
        w = writes("/f.h5", "x", elements=8, select=((16, 8),))
        assert w.select_range == (16, 24)
        assert writes("/f.h5", "x").select_range is None

    def test_dtype_itemsize(self):
        assert dtype_itemsize("f8") == 8
        assert dtype_itemsize("i4") == 4
        assert dtype_itemsize("") is None

    def test_views(self):
        c = TaskContract.declare(
            creates("/f.h5", "x", shape=(8,), elements=0),
            writes("/f.h5", "x", elements=8),
            reads("/g.h5", "y", elements=4),
        )
        assert c.datasets() == [("/f.h5", "/x"), ("/g.h5", "/y")]
        assert c.ops_for("/f.h5", "/x") == ["create", "write"]
        assert [a.key for a in c.data_writes()] == [("/f.h5", "/x")]
        assert [a.key for a in c.data_reads()] == [("/g.h5", "/y")]
        assert c.files() == ["/f.h5", "/g.h5"]

    def test_task_attaches_and_names_contract(self):
        c = TaskContract.declare(reads("/f.h5", "x"))
        t = Task("t0", lambda rt: None, contract=c)
        assert t.contract.task == "t0"

    def test_workflow_validate_rejects_bad_contract(self):
        bad = TaskContract.declare(
            creates("/f.h5", "x", shape=(4,), dtype="f4", elements=0),
            writes("/f.h5", "x", elements=9),  # exceeds the extent
        )
        wf = Workflow("w", [Stage("s", [Task("t0", lambda rt: None,
                                             contract=bad)])])
        with pytest.raises(ContractError):
            wf.validate()

    def test_validate_contract_conflicting_dtypes(self):
        c = TaskContract.declare(
            creates("/f.h5", "x", shape=(4,), dtype="f4"),
            creates("/f.h5", "x", shape=(4,), dtype="i8"),
        )
        with pytest.raises(ContractError):
            validate_contract(c, "t0")

    def test_validate_contract_task_name_mismatch(self):
        c = TaskContract.declare(reads("/f.h5", "x"))
        c.task = "other"
        with pytest.raises(ContractError):
            validate_contract(c, "t0")

    def test_json_round_trippable_dict(self):
        c = TaskContract.declare(
            writes("/f.h5", "x", elements=8, select=((0, 8),)))
        d = c.to_json_dict()
        assert d["source"] == "declared"
        assert d["accesses"][0]["select"] == [[0, 8]]


class TestReconcile:
    def _declared(self, *accesses):
        return TaskContract.declare(*accesses, task="t0")

    def _inferred(self, *accesses, exact=True):
        return TaskContract(task="t0", accesses=list(accesses),
                            source="inferred", exact=exact)

    def test_agreement_is_silent(self):
        d = self._declared(creates("/f.h5", "x", shape=(8,), elements=8))
        i = self._inferred(creates("/f.h5", "x", shape=(8,), elements=8))
        assert reconcile(d, i) == []

    def test_undeclared_access_reported(self):
        d = self._declared(reads("/f.h5", "x"))
        i = self._inferred(reads("/f.h5", "x"), writes("/f.h5", "y"))
        out = reconcile(d, i)
        assert any("undeclared write" in s and "/y" in s for s in out)

    def test_unperformed_declaration_reported_only_when_exact(self):
        d = self._declared(reads("/f.h5", "x"), writes("/f.h5", "y"))
        i_exact = self._inferred(reads("/f.h5", "x"))
        assert any("never performs" in s
                   for s in reconcile(d, i_exact))
        # An inexact inferred contract may simply have missed the write.
        i_fuzzy = self._inferred(reads("/f.h5", "x"), exact=False)
        assert reconcile(d, i_fuzzy) == []


# ----------------------------------------------------------------------
# Extractor vs. ground truth: every bundled workload
# ----------------------------------------------------------------------
def _run(name, scale=0.5):
    env = fresh_env(n_nodes=2)
    workflow, prepare = build_workload(name, scale)
    if prepare is not None:
        prepare(env.cluster)
    env.runner.run(workflow)
    return workflow, env


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def traced_workload(request):
    return request.param, *_run(request.param)


class TestExtractorAgainstTraces:
    def test_inferred_subset_of_traced(self, traced_workload):
        """Exact inferred accesses name only datasets the run touched."""
        name, workflow, env = traced_workload
        contracts = extract_workflow_contracts(workflow)
        for task_name, contract in contracts.inferred.items():
            profile = env.mapper.profiles.get(task_name)
            assert profile is not None, f"{name}: no trace for {task_name}"
            traced = {(s.file, s.data_object)
                      for s in profile.dataset_stats}
            traced |= {(f, FILE_METADATA_OBJECT) for f, _ in traced}
            for a in contract.accesses:
                if a.conditional or not a.exact:
                    continue
                assert a.key in traced, (
                    f"{name}/{task_name}: inferred {a.op} of {a.dataset} "
                    f"in {a.file} never appears in the trace")

    def test_every_task_gets_a_contract(self, traced_workload):
        name, workflow, env = traced_workload
        contracts = extract_workflow_contracts(workflow)
        for t in workflow.all_tasks():
            assert t.name in contracts.inferred

    def test_declared_contracts_survive_extraction(self, traced_workload):
        name, workflow, env = traced_workload
        contracts = extract_workflow_contracts(workflow)
        declared_tasks = {t.name for t in workflow.all_tasks()
                          if t.contract is not None}
        assert set(contracts.declared) == declared_tasks
        for task_name in declared_tasks:
            assert contracts.effective()[task_name].source == "declared"


class TestExtractorDetails:
    def test_hazard_fixture_contract_shape(self):
        workflow, _ = build_workload("corner-hazards", 0.5)
        by_name = {t.name: t for t in workflow.all_tasks()}
        c = infer_contract(by_name["hazard_writer_b"])
        assert c.exact
        ops = {(a.dataset, a.op): a for a in c.accesses}
        assert ops[("/dup", "create")].moves_data
        assert ops[("/ghost", "create")].elements == 0  # dataless

    def test_shared_slab_selections_resolved(self):
        workflow, _ = build_workload("h5bench-shared", 0.5)
        by_name = {t.name: t for t in workflow.all_tasks()}
        c = infer_contract(by_name["h5bench_write_0001"])
        selects = {a.select for a in c.accesses if a.op == "write"}
        assert selects and all(s is not None for s in selects)

    def test_unresolvable_code_degrades_to_inexact(self):
        import os

        def fn(rt):
            f = rt.open("/beegfs/x.h5", "r")
            for _ in range(int(os.environ.get("N", "3"))):  # opaque bound
                f["/x"].read()
            f.close()

        c = infer_contract(Task("t0", fn))
        assert not c.exact and c.notes
        assert all(a.conditional for a in c.accesses if a.op == "read")

    def test_non_function_body_yields_empty_inexact(self):
        class Body:
            def __call__(self, rt):  # pragma: no cover - never run
                pass

        c = infer_contract(Task("t0", Body()))
        assert not c.exact and not c.accesses
