"""Tests for the automated optimizer: plan building, plan execution, and
the transparent runtime cache — including an end-to-end check that an
auto-generated plan actually speeds up a workflow."""

import numpy as np
import pytest

from repro.cluster import Cluster, Node
from repro.diagnostics import diagnose
from repro.diagnostics.insights import Insight, InsightKind
from repro.diagnostics.report import DiagnosticReport
from repro.hdf5 import H5File
from repro.mapper import DaYuConfig, DataSemanticMapper
from repro.optimizer import TransparentCache, build_plan
from repro.simclock import SimClock
from repro.workflow import Stage, Task, Workflow, WorkflowRunner
from repro.workflow.scheduler import PinnedScheduler


def make_cluster(n=2):
    clock = SimClock()
    cluster = Cluster(
        clock,
        [Node(f"n{i}", local_tiers={"ssd": "nvme"}) for i in range(n)],
        shared_mounts={"/pfs": "beegfs"},
    )
    return clock, cluster


def insight(kind, subject, tasks=("t1",), **evidence):
    return Insight(kind=kind, subject=subject, tasks=list(tasks),
                   evidence=dict(evidence), description="test")


class TestPlanBuilding:
    def test_reuse_becomes_stage_in_and_pins(self):
        clock, cluster = make_cluster()
        report = DiagnosticReport([
            insight(InsightKind.DATA_REUSE, "/pfs/hot.h5", tasks=("a", "b")),
        ])
        plan = build_plan(report, cluster)
        assert [s.action for s in plan.by_action("stage_in")] == ["stage_in"]
        assert plan.pins == {"a": "n0", "b": "n0"}
        assert plan.resolve("/pfs/hot.h5").startswith("/local/n0/ssd/")
        assert plan.resolve("/pfs/cold.h5") == "/pfs/cold.h5"

    def test_scattering_becomes_consolidate(self):
        clock, cluster = make_cluster()
        report = DiagnosticReport([
            insight(InsightKind.DATA_SCATTERING, "/pfs/scatter.h5"),
        ])
        plan = build_plan(report, cluster)
        assert plan.by_action("consolidate")[0].target == "/pfs/scatter.h5"

    def test_metadata_overhead_becomes_contiguous_conversion(self):
        clock, cluster = make_cluster()
        report = DiagnosticReport([
            insight(InsightKind.METADATA_OVERHEAD, "/pfs/f.h5:/dset"),
        ])
        plan = build_plan(report, cluster)
        assert plan.by_action("convert_contiguous")[0].target == "/pfs/f.h5"

    def test_vlen_becomes_chunked_conversion(self):
        clock, cluster = make_cluster()
        report = DiagnosticReport([
            insight(InsightKind.VLEN_LAYOUT, "/pfs/v.h5:/image0"),
        ])
        plan = build_plan(report, cluster)
        assert plan.by_action("convert_chunked")[0].target == "/pfs/v.h5"

    def test_disposable_becomes_stage_out(self):
        clock, cluster = make_cluster()
        report = DiagnosticReport([
            insight(InsightKind.DISPOSABLE_DATA, "/pfs/tmp.h5"),
        ])
        plan = build_plan(report, cluster)
        assert plan.by_action("stage_out")

    def test_duplicate_insights_deduplicated(self):
        clock, cluster = make_cluster()
        report = DiagnosticReport([
            insight(InsightKind.DATA_REUSE, "/pfs/hot.h5", tasks=("a",)),
            insight(InsightKind.DATA_REUSE, "/pfs/hot.h5", tasks=("b",)),
            insight(InsightKind.METADATA_OVERHEAD, "/pfs/f.h5:/d1"),
            insight(InsightKind.METADATA_OVERHEAD, "/pfs/f.h5:/d2"),
        ])
        plan = build_plan(report, cluster)
        assert len(plan.by_action("stage_in")) == 1
        assert len(plan.by_action("convert_contiguous")) == 1

    def test_target_node_and_tier_selection(self):
        clock, cluster = make_cluster(3)
        report = DiagnosticReport([
            insight(InsightKind.DATA_REUSE, "/pfs/hot.h5", tasks=("a",)),
        ])
        plan = build_plan(report, cluster, target_node="n2")
        assert plan.pins["a"] == "n2"
        assert plan.resolve("/pfs/hot.h5").startswith("/local/n2/ssd/")

    def test_node_without_tier_rejected(self):
        clock = SimClock()
        cluster = Cluster(clock, [Node("bare")], {"/pfs": "nfs"})
        with pytest.raises(ValueError, match="no local storage tier"):
            build_plan(DiagnosticReport([]), cluster)

    def test_empty_report_empty_plan(self):
        clock, cluster = make_cluster()
        plan = build_plan(DiagnosticReport([]), cluster)
        assert plan.steps == []
        assert "Nothing to optimize" in plan.summary()

    def test_summary_lists_steps(self):
        clock, cluster = make_cluster()
        plan = build_plan(DiagnosticReport([
            insight(InsightKind.DATA_SCATTERING, "/pfs/s.h5"),
        ]), cluster)
        assert "consolidate" in plan.summary()


class TestPlanExecution:
    def test_stage_in_all_creates_replicas(self):
        clock, cluster = make_cluster()
        with H5File(cluster.fs, "/pfs/hot.h5", "w") as f:
            f.create_dataset("d", shape=(100,), data=np.zeros(100))
        plan = build_plan(DiagnosticReport([
            insight(InsightKind.DATA_REUSE, "/pfs/hot.h5", tasks=("a",)),
        ]), cluster)
        staged = plan.stage_in_all(cluster.fs)
        assert cluster.fs.exists(staged["/pfs/hot.h5"])

    def test_apply_format_changes_contiguous(self):
        clock, cluster = make_cluster()
        with H5File(cluster.fs, "/pfs/f.h5", "w") as f:
            f.create_dataset("d", shape=(64,), dtype="f8",
                             layout="chunked", chunks=(8,),
                             data=np.arange(64.0))
        plan = build_plan(DiagnosticReport([
            insight(InsightKind.METADATA_OVERHEAD, "/pfs/f.h5:/d"),
        ]), cluster)
        rewritten = plan.apply_format_changes(cluster.fs)
        new = rewritten["/pfs/f.h5"]
        with H5File(cluster.fs, new, "r") as f:
            assert f["d"].layout_name == "contiguous"
            np.testing.assert_array_equal(f["d"].read(), np.arange(64.0))

    def test_apply_format_changes_consolidate(self):
        clock, cluster = make_cluster()
        with H5File(cluster.fs, "/pfs/s.h5", "w") as f:
            for i in range(10):
                f.create_dataset(f"x{i}", shape=(4,), dtype="i4",
                                 data=np.full(4, i, np.int32))
        plan = build_plan(DiagnosticReport([
            insight(InsightKind.DATA_SCATTERING, "/pfs/s.h5"),
        ]), cluster)
        rewritten = plan.apply_format_changes(cluster.fs)
        with H5File(cluster.fs, rewritten["/pfs/s.h5"], "r") as f:
            assert "consolidated" in f.keys()

    def test_missing_files_skipped(self):
        clock, cluster = make_cluster()
        plan = build_plan(DiagnosticReport([
            insight(InsightKind.METADATA_OVERHEAD, "/pfs/ghost.h5:/d"),
        ]), cluster)
        assert plan.apply_format_changes(cluster.fs) == {}

    def test_stage_out_all(self):
        clock, cluster = make_cluster()
        with H5File(cluster.fs, "/pfs/tmp.h5", "w") as f:
            f.create_dataset("d", shape=(4,), data=[1.0, 2.0, 3.0, 4.0])
        plan = build_plan(DiagnosticReport([
            insight(InsightKind.DISPOSABLE_DATA, "/pfs/tmp.h5"),
        ]), cluster)
        moved = plan.stage_out_all(cluster.fs, "/pfs/archive")
        assert moved == ["/pfs/archive/tmp.h5"]


class TestEndToEndAutoOptimization:
    """The closed loop: profile → diagnose → plan → re-run faster."""

    def _workflow(self, plan=None):
        src = "/pfs/input.h5"

        def reader(name):
            def fn(rt):
                path = plan.resolve(src) if plan else src
                f = rt.open(path, "r")
                f["data"].read()
                f.close()
            return fn

        return Workflow("fanout", [
            Stage("consume", [Task(f"reader_{i}", reader(i)) for i in range(6)]),
        ])

    def _run(self, cluster, workflow, scheduler=None):
        mapper = DataSemanticMapper(cluster.clock, DaYuConfig())
        runner = WorkflowRunner(cluster, mapper, scheduler)
        result = runner.run(workflow)
        return result, mapper

    def test_auto_plan_speeds_up_fanout(self):
        # Baseline run on shared PFS.
        clock, cluster = make_cluster()
        with H5File(cluster.fs, "/pfs/input.h5", "w") as f:
            f.create_dataset("data", shape=(200_000,), dtype="f8",
                             data=np.zeros(200_000))
        baseline, mapper = self._run(cluster, self._workflow())

        # Diagnose and plan automatically.
        report = diagnose(mapper.profiles.values())
        plan = build_plan(report, cluster)
        assert plan.by_action("stage_in"), "reuse should trigger staging"

        # Optimized re-run in a fresh environment.
        clock2, cluster2 = make_cluster()
        with H5File(cluster2.fs, "/pfs/input.h5", "w") as f:
            f.create_dataset("data", shape=(200_000,), dtype="f8",
                             data=np.zeros(200_000))
        plan.stage_in_all(cluster2.fs)
        optimized, _ = self._run(cluster2, self._workflow(plan),
                                 scheduler=plan.scheduler())
        assert optimized.stage("consume").wall_time < \
            baseline.stage("consume").wall_time


class TestTransparentCache:
    def _setup(self):
        clock, cluster = make_cluster()
        with H5File(cluster.fs, "/pfs/shared.h5", "w") as f:
            f.create_dataset("d", shape=(100_000,), dtype="f8",
                             data=np.zeros(100_000))
        return clock, cluster

    def test_first_read_places_later_reads_hit(self):
        clock, cluster = self._setup()
        cache = TransparentCache(cluster, tier="ssd")
        p1 = cache("/pfs/shared.h5", "r", "n0")
        assert p1.startswith("/local/n0/ssd/")
        assert cache.misses == 1
        p2 = cache("/pfs/shared.h5", "r", "n0")
        assert p2 == p1
        assert cache.hits == 1
        assert cache.hit_rate == 0.5

    def test_per_node_replicas(self):
        clock, cluster = self._setup()
        cache = TransparentCache(cluster)
        p0 = cache("/pfs/shared.h5", "r", "n0")
        p1 = cache("/pfs/shared.h5", "r", "n1")
        assert p0.startswith("/local/n0/") and p1.startswith("/local/n1/")

    def test_write_invalidates(self):
        clock, cluster = self._setup()
        cache = TransparentCache(cluster)
        replica = cache("/pfs/shared.h5", "r", "n0")
        assert cache.is_cached("/pfs/shared.h5", "n0")
        resolved = cache("/pfs/shared.h5", "r+", "n0")
        assert resolved == "/pfs/shared.h5"  # writes go to the source
        assert not cache.is_cached("/pfs/shared.h5", "n0")
        assert not cluster.fs.exists(replica)

    def test_small_files_not_replicated(self):
        clock, cluster = self._setup()
        with H5File(cluster.fs, "/pfs/tiny.h5", "w") as f:
            f.create_dataset("d", shape=(1,), data=[1.0])
        cache = TransparentCache(cluster, min_bytes=1 << 20)
        assert cache("/pfs/tiny.h5", "r", "n0") == "/pfs/tiny.h5"

    def test_local_paths_pass_through(self):
        clock, cluster = self._setup()
        cache = TransparentCache(cluster)
        local = "/local/n0/ssd/already_here.h5"
        assert cache(local, "r", "n0") == local

    def test_place_on_read_disabled(self):
        clock, cluster = self._setup()
        cache = TransparentCache(cluster, place_on_read=False)
        assert cache("/pfs/shared.h5", "r", "n0") == "/pfs/shared.h5"
        cache.place("/pfs/shared.h5", "n0")
        assert cache("/pfs/shared.h5", "r", "n0").startswith("/local/n0/")

    def test_missing_file_passthrough(self):
        clock, cluster = self._setup()
        cache = TransparentCache(cluster)
        assert cache("/pfs/ghost.h5", "r", "n0") == "/pfs/ghost.h5"

    def test_unknown_tier_rejected(self):
        clock, cluster = self._setup()
        with pytest.raises(KeyError):
            TransparentCache(cluster, tier="tape")

    def test_runner_integration_second_task_faster(self):
        """Installed as the runner's path resolver, the cache makes the
        second reader of a shared file measurably faster — transparent
        runtime optimization, no task-code change."""
        clock, cluster = self._setup()
        cache = TransparentCache(cluster)
        mapper = DataSemanticMapper(clock, DaYuConfig())
        durations = {}

        def reader(name):
            def fn(rt):
                f = rt.open("/pfs/shared.h5", "r")
                f["d"].read()
                f.close()
            return fn

        wf = Workflow("cached", [
            Stage("r1", [Task("first", reader("first"))], parallel=False),
            Stage("r2", [Task("second", reader("second"))], parallel=False),
        ])
        runner = WorkflowRunner(
            cluster, mapper,
            scheduler=PinnedScheduler({"first": "n0", "second": "n0"}),
            path_resolver=cache,
        )
        result = runner.run(wf)
        first = result.stage("r1").task_durations["first"]
        second = result.stage("r2").task_durations["second"]
        assert second < first  # replica served from node-local SSD
        assert cache.hits >= 1
