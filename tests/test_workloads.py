"""Integration tests for the workload skeletons: each workflow runs end to
end under DaYu profiling and exhibits the dataflow features the paper's
case studies describe."""

import numpy as np
import pytest

from repro.analyzer import build_ftg, build_sdg, dataset_node, file_node, task_node
from repro.cluster import Cluster, Node, gpu_cluster
from repro.diagnostics import InsightKind, diagnose
from repro.mapper import DaYuConfig, DataSemanticMapper
from repro.simclock import SimClock
from repro.workflow import WorkflowRunner
from repro.workloads import (
    ArldmParams,
    CornerCaseParams,
    DdmdParams,
    H5benchParams,
    PyflextrkrParams,
    build_arldm,
    build_corner_case,
    build_ddmd,
    build_h5bench_read,
    build_h5bench_write,
    build_pyflextrkr,
    prepare_pyflextrkr_inputs,
)


def run_workload(build_fn, params, prepare=None, n_nodes=2):
    clock = SimClock()
    cluster = gpu_cluster(clock, n_nodes=n_nodes)
    # Workloads write under /pfs; mount it for the gpu cluster namespace.
    from repro.storage import Mount, make_device
    cluster.fs.add_mount(Mount("/pfs", cluster.shared_devices["/beegfs"]))
    if prepare is not None:
        prepare(cluster, params)
    mapper = DataSemanticMapper(clock, DaYuConfig())
    runner = WorkflowRunner(cluster, mapper)
    result = runner.run(build_fn(params))
    return result, mapper, cluster


class TestPyflextrkr:
    @pytest.fixture(scope="class")
    def run(self):
        params = PyflextrkrParams(n_files=4, grid=512, n_parallel=2,
                                  small_datasets=16, speed_reads=3)
        return run_workload(build_pyflextrkr, params,
                            prepare=prepare_pyflextrkr_inputs), params

    def test_nine_stages_execute(self, run):
        (result, mapper, cluster), params = run
        assert len(result.stage_results) == 9
        assert result.wall_time > 0
        names = [s.name for s in result.stage_results]
        assert names[0] == "stage1_idfeature"
        assert names[-1] == "stage9_speed"

    def test_files_produced(self, run):
        (result, mapper, cluster), params = run
        fs = cluster.fs
        assert fs.exists(params.tracks_all)
        assert fs.exists(params.robust_mcs)
        for i in range(params.n_files):
            assert fs.exists(params.feature(i))
            assert fs.exists(params.speed_file(i))

    def test_stage1_output_reused_downstream(self, run):
        (result, mapper, cluster), params = run
        ftg = build_ftg(mapper.profiles.values())
        feature = file_node(params.feature(0))
        consumers = list(ftg.successors(feature))
        # Stage-1 output read by stage-2, stage-3, stage-4, stage-6, stage-8.
        assert len(consumers) >= 3
        assert ftg.nodes[feature]["reused"]

    def test_write_after_read_at_stage3(self, run):
        (result, mapper, cluster), params = run
        profile = mapper.profiles["run_gettracks"]
        track_rows = [s for s in profile.dataset_stats
                      if s.data_object == "/links"]
        assert track_rows
        assert all(s.operation == "read_write" for s in track_rows)
        assert all(s.first_raw_op == "read" for s in track_rows)

    def test_diagnostics_find_paper_observations(self, run):
        (result, mapper, cluster), params = run
        report = diagnose(mapper.profiles.values(),
                          min_datasets=8, late_fraction=0.2)
        kinds = {i.kind for i in report.insights}
        assert InsightKind.DATA_REUSE in kinds
        assert InsightKind.DATA_SCATTERING in kinds
        assert InsightKind.WRITE_AFTER_READ in kinds
        # Terrain files only needed at stage 6 -> time-dependent inputs.
        tdi = report.by_kind(InsightKind.TIME_DEPENDENT_INPUT)
        assert any("terrain" in i.subject for i in tdi)

    def test_scattering_in_speed_files(self, run):
        (result, mapper, cluster), params = run
        report = diagnose(mapper.profiles.values(), min_datasets=8)
        scattering = report.by_kind(InsightKind.DATA_SCATTERING)
        assert any("speed_stats" in i.subject for i in scattering)


class TestDdmd:
    @pytest.fixture(scope="class")
    def run(self):
        params = DdmdParams(n_sim_tasks=4, frames=32, epochs=6)
        return run_workload(build_ddmd, params), params

    def test_four_stages_per_iteration(self, run):
        (result, mapper, cluster), params = run
        assert [s.name for s in result.stage_results] == [
            "openmm_0000", "aggregate_0000", "training_0000", "inference_0000",
        ]

    def test_simulation_outputs_have_four_chunked_datasets(self, run):
        (result, mapper, cluster), params = run
        from repro.hdf5 import H5File
        with H5File(cluster.fs, params.sim_file(0, 0), "r") as f:
            assert set(f.keys()) == {"contact_map", "point_cloud", "fnc", "rmsd"}
            assert f["contact_map"].layout_name == "chunked"
            assert f["contact_map"].nbytes > f["point_cloud"].nbytes

    def test_aggregate_reads_all_simulated_data(self, run):
        (result, mapper, cluster), params = run
        agg = mapper.profiles["aggregate_0000"]
        sim_files_read = {s.file for s in agg.dataset_stats
                          if s.reads and "task" in s.file}
        assert len(sim_files_read) == params.n_sim_tasks

    def test_training_contact_map_metadata_only(self, run):
        """The Figure 7 pop-up: training touches the aggregated
        contact_map's metadata, never its data."""
        (result, mapper, cluster), params = run
        training = mapper.profiles["training_0000"]
        rows = [s for s in training.dataset_stats
                if s.file == params.aggregated(0)
                and s.data_object == "/contact_map"]
        assert rows, "expected contact_map stats against the aggregated file"
        assert all(s.metadata_only for s in rows)
        # But contact_map data IS read from a simulation file directly.
        sim_rows = [s for s in training.dataset_stats
                    if s.file == params.sim_file(0, 0)
                    and s.data_object == "/contact_map"]
        assert any(s.data_ops > 0 for s in sim_rows)

    def test_training_inference_no_shared_h5_data(self, run):
        (result, mapper, cluster), params = run
        training = mapper.profiles["training_0000"]
        inference = mapper.profiles["inference_0000"]
        # No training *output* other than the model is consumed by
        # inference: the graph "reveals no direct data dependency between
        # the training and inference tasks" (Figure 6, circle 3).
        training_outputs = {s.file for s in training.dataset_stats if s.writes}
        inference_inputs = {s.file for s in inference.dataset_stats if s.reads}
        assert training_outputs & inference_inputs <= {params.model(0)}
        assert any("embeddings" in f for f in training_outputs)

    def test_embeddings_read_after_write(self, run):
        (result, mapper, cluster), params = run
        report = diagnose(mapper.profiles.values())
        raw = report.by_kind(InsightKind.READ_AFTER_WRITE)
        assert any("embeddings-epoch-5" in i.subject for i in raw)

    def test_partial_file_access_detected(self, run):
        (result, mapper, cluster), params = run
        report = diagnose(mapper.profiles.values())
        partial = report.by_kind(InsightKind.PARTIAL_FILE_ACCESS)
        assert any("contact_map" in i.subject and "aggregated" in i.subject
                   for i in partial)

    def test_metadata_overhead_detected_for_chunked_small(self, run):
        (result, mapper, cluster), params = run
        report = diagnose(mapper.profiles.values())
        assert report.by_kind(InsightKind.METADATA_OVERHEAD)

    def test_multi_iteration(self):
        params = DdmdParams(n_sim_tasks=2, frames=16, epochs=2, iterations=2)
        result, mapper, cluster = run_workload(build_ddmd, params)
        assert len(result.stage_results) == 8
        assert "openmm_0001_0000" in mapper.profiles

    def test_ftg_matches_figure6_topology(self, run):
        (result, mapper, cluster), params = run
        ftg = build_ftg(mapper.profiles.values())
        agg_file = file_node(params.aggregated(0))
        assert ftg.has_edge(task_node("aggregate_0000"), agg_file)
        assert ftg.has_edge(agg_file, task_node("training_0000"))
        # Inference reads every simulation file.
        for i in range(params.n_sim_tasks):
            assert ftg.has_edge(file_node(params.sim_file(0, i)),
                                task_node("inference_0000"))


class TestArldm:
    @pytest.fixture(scope="class")
    def run(self):
        params = ArldmParams(items=16, avg_image_bytes=512)
        return run_workload(build_arldm, params), params

    def test_three_stages(self, run):
        (result, mapper, cluster), params = run
        assert [s.name for s in result.stage_results] == [
            "arldm_prepare", "arldm_train", "arldm_inference",
        ]

    def test_output_file_has_vlen_datasets(self, run):
        (result, mapper, cluster), params = run
        from repro.hdf5 import H5File
        with H5File(cluster.fs, params.out_file, "r") as f:
            assert set(f.keys()) == {"image0", "image1", "image2", "image3",
                                     "image4", "text"}
            assert f["image0"].dtype.is_vlen
            items = f["image0"].read()
            assert len(items) == params.items
            assert len(set(map(len, items))) > 1  # genuinely variable length

    def test_vlen_layout_insight(self, run):
        (result, mapper, cluster), params = run
        report = diagnose(mapper.profiles.values())
        vlen = report.by_kind(InsightKind.VLEN_LAYOUT)
        assert any("image0" in i.subject for i in vlen)

    def test_chunked_variant_halves_writes(self):
        def writes(layout):
            params = ArldmParams(items=32, avg_image_bytes=512, layout=layout,
                                 chunks=4)
            result, mapper, cluster = run_workload(build_arldm, params)
            save = mapper.profiles["arldm_saveh5"]
            return sum(s.writes for s in save.dataset_stats
                       if s.data_object.startswith("/image"))

        contiguous = writes("contiguous")
        chunked = writes("chunked")
        assert chunked < contiguous / 2

    def test_sdg_shows_fragmented_image_datasets(self, run):
        (result, mapper, cluster), params = run
        sdg = build_sdg([mapper.profiles["arldm_saveh5"]],
                        with_regions=True, region_bytes=16384)
        img = dataset_node(params.out_file, "/image0")
        regions = [v for v in sdg.successors(img)
                   if sdg.nodes[v]["kind"] == "region"]
        assert regions  # image content mapped to file address regions


class TestH5bench:
    def test_write_then_read(self):
        params = H5benchParams(n_procs=2, bytes_per_proc=1 << 16, ops_per_proc=4)
        clock = SimClock()
        cluster = gpu_cluster(clock)
        from repro.storage import Mount, make_device
        cluster.fs.add_mount(Mount("/pfs", cluster.shared_devices["/beegfs"]))
        mapper = DataSemanticMapper(clock, DaYuConfig())
        runner = WorkflowRunner(cluster, mapper)
        w = runner.run(build_h5bench_write(params))
        r = runner.run(build_h5bench_read(params))
        assert w.wall_time > 0 and r.wall_time > 0
        written = sum(
            s.bytes_written for p in mapper.profiles.values()
            for s in p.dataset_stats if "write" in p.task
        )
        assert written >= params.total_bytes

    def test_param_validation(self):
        with pytest.raises(ValueError):
            H5benchParams(n_procs=0)


class TestCornerCase:
    def test_runs_and_counts_io(self):
        params = CornerCaseParams(n_datasets=50, file_bytes=1 << 18,
                                  read_repeats=2)
        result, mapper, cluster = run_workload(build_corner_case, params,
                                               n_nodes=1)
        profile = mapper.profiles["corner_case"]
        reads = [p for p in profile.object_profiles
                 if p.object_name.startswith("/d")]
        assert len(reads) == 50
        assert all(p.reads == 2 for p in reads)
        assert params.dataset_io_operations == 50 * 3

    def test_scattering_detected(self):
        # Tiny datasets: 50 datasets × 80 B.
        params = CornerCaseParams(n_datasets=50, file_bytes=4000,
                                  read_repeats=0)
        result, mapper, cluster = run_workload(build_corner_case, params,
                                               n_nodes=1)
        report = diagnose(mapper.profiles.values())
        assert report.by_kind(InsightKind.DATA_SCATTERING)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            CornerCaseParams(n_datasets=1000, file_bytes=10)
        with pytest.raises(ValueError):
            CornerCaseParams(read_repeats=-1)
