"""Tests for dataset resizing, object deletion/reclamation, task-order
inference, and format corruption handling."""

import numpy as np
import pytest

from repro.analyzer import (
    CyclicDependencyError,
    dependency_dag,
    infer_task_order,
)
from repro.hdf5 import H5File, Selection
from repro.hdf5.errors import H5FormatError, H5LayoutError, H5NameError, H5StateError, H5TypeError
from repro.mapper import DaYuConfig, DataSemanticMapper
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


def make_fs():
    return SimFS(SimClock(), mounts=[Mount("/", make_device("ram"))])


class TestResize:
    def test_grow_exposes_fill_values(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(10,), dtype="i8",
                                 layout="chunked", chunks=(4,),
                                 data=np.arange(10, dtype=np.int64))
            d.resize((16,))
            out = d.read()
            np.testing.assert_array_equal(out[:10], np.arange(10))
            np.testing.assert_array_equal(out[10:], np.zeros(6))

    def test_grow_then_write_new_region(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(8,), dtype="f8",
                                 layout="chunked", chunks=(4,),
                                 data=np.zeros(8))
            d.resize(12)
            d.write(np.ones(4), Selection.hyperslab(((8, 4),)))
            np.testing.assert_array_equal(d.read()[8:], np.ones(4))

    def test_shrink_narrows_extent(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(10,), dtype="i4",
                                 layout="chunked", chunks=(5,),
                                 data=np.arange(10, dtype=np.int32))
            d.resize((6,))
            assert d.shape == (6,)
            np.testing.assert_array_equal(d.read(), np.arange(6))

    def test_resize_persists(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(4,), dtype="f8",
                                 layout="chunked", chunks=(4,),
                                 data=np.arange(4.0))
            d.resize((8,))
        with H5File(fs, "/a.h5", "r") as f:
            assert f["d"].shape == (8,)
            np.testing.assert_array_equal(f["d"].read()[:4], np.arange(4.0))

    def test_contiguous_not_resizable(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(4,), dtype="f8")
            with pytest.raises(H5LayoutError, match="resizable"):
                d.resize((8,))

    def test_rank_and_sign_validation(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(4, 4), dtype="f8",
                                 layout="chunked", chunks=(2, 2))
            with pytest.raises(H5TypeError):
                d.resize((8,))
            with pytest.raises(H5TypeError):
                d.resize((-1, 4))


class TestDeletion:
    def test_delete_unlinks(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("keep", shape=(4,), data=[1.0, 2, 3, 4])
            f.create_dataset("drop", shape=(4,), data=[5.0, 6, 7, 8])
            del f.root["drop"]
            assert f.keys() == ["keep"]
        with H5File(fs, "/a.h5", "r") as f:
            assert f.keys() == ["keep"]
            np.testing.assert_array_equal(f["keep"].read(), [1, 2, 3, 4])

    def test_delete_missing_raises(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            with pytest.raises(H5NameError):
                f.root.delete("ghost")

    def test_delete_frees_contiguous_data(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("big", shape=(10_000,), dtype="f8",
                             data=np.zeros(10_000))
            eof_before = f.allocator.eof
            del f.root["big"]
            # The data block and header return to the allocator — here the
            # freed tail collapses straight into an EOF shrink.
            reclaimed = (eof_before - f.allocator.eof) + f.allocator.free_bytes
            assert reclaimed >= 80_000

    def test_delete_frees_chunked_data_and_index(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("c", shape=(1000,), dtype="f8",
                             layout="chunked", chunks=(100,),
                             data=np.zeros(1000))
            eof_before = f.allocator.eof
            del f.root["c"]
            # 10 chunks of 800 B plus the index node(s) and header.
            reclaimed = (eof_before - f.allocator.eof) + f.allocator.free_bytes
            assert reclaimed >= 8000

    def test_freed_hole_reused_by_new_objects(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("old", shape=(5000,), dtype="f8",
                             data=np.zeros(5000))
            # Anchor keeps EOF above the hole the deletion will open.
            f.create_dataset("anchor", shape=(2048,), dtype="f8",
                             data=np.zeros(2048))
            eof_full = f.allocator.eof
            del f.root["old"]
            assert f.allocator.free_bytes >= 40_000  # a genuine hole
            # A new small dataset's header fits in the hole: EOF stable
            # apart from its freshly appended raw data block.
            f.create_dataset("new", shape=(4,), dtype="f8", data=np.zeros(4))
            assert f.allocator.eof <= eof_full + 4 * 8

    def test_recursive_group_delete(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("g/sub/d1", shape=(100,), dtype="f8",
                             data=np.zeros(100))
            f.create_dataset("g/d2", shape=(100,), dtype="f8",
                             data=np.zeros(100))
            del f.root["g"]
            assert f.keys() == []
        with H5File(fs, "/a.h5", "r") as f:
            assert f.keys() == []

    def test_stale_handle_after_delete(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            d = f.create_dataset("d", shape=(4,), data=[1.0, 2, 3, 4])
            del f.root["d"]
            with pytest.raises(H5StateError, match="stale"):
                d.read()

    def test_delete_read_only_rejected(self):
        fs = make_fs()
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(1,), data=[1.0])
        with H5File(fs, "/a.h5", "r") as f:
            with pytest.raises(H5StateError):
                f.root.delete("d")


class TestCorruptionHandling:
    def _valid_file(self, fs):
        with H5File(fs, "/a.h5", "w") as f:
            f.create_dataset("d", shape=(4,), data=[1.0, 2, 3, 4])

    def test_corrupted_superblock_signature(self):
        fs = make_fs()
        self._valid_file(fs)
        store = fs.store_of("/a.h5")
        store.write(0, b"XXXX")
        with pytest.raises(H5FormatError, match="signature"):
            H5File(fs, "/a.h5", "r")

    def test_corrupted_root_header(self):
        fs = make_fs()
        self._valid_file(fs)
        from repro.hdf5.format import SUPERBLOCK_SIZE
        fs.store_of("/a.h5").write(SUPERBLOCK_SIZE, b"GARBAGE!")
        with pytest.raises(H5FormatError):
            H5File(fs, "/a.h5", "r")

    def test_truncated_file(self):
        fs = make_fs()
        self._valid_file(fs)
        fd = fs.open("/a.h5", "r+")
        fs.truncate(fd, 20)
        fs.close(fd)
        with pytest.raises(H5FormatError):
            H5File(fs, "/a.h5", "r")

    def test_empty_file(self):
        fs = make_fs()
        fd = fs.open("/empty.h5", "w")
        fs.close(fd)
        with pytest.raises(H5FormatError):
            H5File(fs, "/empty.h5", "r")


def _profiles_for_chain():
    """a writes f1; b reads f1 writes f2; c reads f2.  Returned shuffled."""
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
    mapper = DataSemanticMapper(clock, DaYuConfig())
    with mapper.task("task_a") as ctx:
        f = ctx.open(fs, "/f1.h5", "w")
        f.create_dataset("x", shape=(8,), data=np.zeros(8))
        f.close()
    with mapper.task("task_b") as ctx:
        f = ctx.open(fs, "/f1.h5", "r")
        f["x"].read()
        f.close()
        g = ctx.open(fs, "/f2.h5", "w")
        g.create_dataset("y", shape=(8,), data=np.ones(8))
        g.close()
    with mapper.task("task_c") as ctx:
        f = ctx.open(fs, "/f2.h5", "r")
        f["y"].read()
        f.close()
    profiles = list(mapper.profiles.values())
    return [profiles[2], profiles[0], profiles[1]]  # shuffled


class TestTaskOrderInference:
    def test_dependency_dag_edges(self):
        dag = dependency_dag(_profiles_for_chain())
        assert dag.has_edge("task_a", "task_b")
        assert dag.has_edge("task_b", "task_c")
        assert not dag.has_edge("task_a", "task_c")
        assert dag.edges["task_a", "task_b"]["file"] == "/f1.h5"

    def test_order_recovered_from_shuffled_profiles(self):
        order = infer_task_order(_profiles_for_chain())
        assert order == ["task_a", "task_b", "task_c"]

    def test_independent_tasks_tie_break_by_time(self):
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
        mapper = DataSemanticMapper(clock, DaYuConfig())
        for name in ("first", "second"):
            with mapper.task(name) as ctx:
                f = ctx.open(fs, f"/{name}.h5", "w")
                f.create_dataset("d", shape=(2,), data=[1.0, 2.0])
                f.close()
        order = infer_task_order(list(mapper.profiles.values())[::-1])
        assert order == ["first", "second"]

    def test_writer_also_reading_own_output_no_self_edge(self):
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
        mapper = DataSemanticMapper(clock, DaYuConfig())
        with mapper.task("selfish") as ctx:
            f = ctx.open(fs, "/s.h5", "w")
            d = f.create_dataset("d", shape=(4,), data=np.zeros(4))
            d.read()
            f.close()
        dag = dependency_dag(list(mapper.profiles.values()))
        assert list(dag.edges) == []

    def test_cycle_detected(self):
        """Two tasks passing data in both directions is a cycle."""
        clock = SimClock()
        fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
        mapper = DataSemanticMapper(clock, DaYuConfig())
        with mapper.task("ping") as ctx:
            f = ctx.open(fs, "/ab.h5", "w")
            f.create_dataset("d", shape=(2,), data=[1.0, 2.0])
            f.close()
        with mapper.task("pong") as ctx:
            f = ctx.open(fs, "/ab.h5", "r+")
            f["d"].read()
            f.close()
            g = ctx.open(fs, "/ba.h5", "w")
            g.create_dataset("d", shape=(2,), data=[3.0, 4.0])
            g.close()
        with mapper.task("ping2") as ctx:
            # "ping2" reads pong's file AND rewrites ping's file, then we
            # rename the profile to look like ping continuing — easier to
            # fabricate the cycle directly:
            pass
        profiles = list(mapper.profiles.values())
        # Fabricate: make 'ping' also read /ba.h5 AFTER pong wrote it.
        from repro.mapper.stats import DatasetIoStats
        s = DatasetIoStats(task="ping", file="/ba.h5", data_object="/d")
        s.reads = 1
        s.bytes_read = 16
        s.first_start = clock.now + 100  # after pong's write
        profiles[0].dataset_stats.append(s)
        with pytest.raises(CyclicDependencyError):
            infer_task_order(profiles)

    def test_ftg_with_inferred_order(self):
        """The inferred order feeds straight into build_ftg's task_order."""
        from repro.analyzer import build_ftg, task_node

        profiles = _profiles_for_chain()
        order = infer_task_order(profiles)
        ftg = build_ftg(profiles, task_order=order)
        assert ftg.nodes[task_node("task_a")]["order"] == 0
        assert ftg.nodes[task_node("task_c")]["order"] == 2
