"""Unit tests for the VFD layer: sec2 driver, channel, tracing profiler."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device
from repro.vfd import (
    IoClass,
    Sec2VFD,
    TracingVFD,
    VfdIoRecord,
    VfdTracer,
    VolVfdChannel,
)
from repro.vfd.tracing import ACCESS_TRACKER_ACCOUNT


@pytest.fixture()
def fs():
    return SimFS(SimClock(), mounts=[Mount("/", make_device("nvme"))])


class TestSec2VFD:
    def test_write_read_roundtrip(self, fs):
        vfd = Sec2VFD(fs, "/f.h5", "w")
        vfd.write(0, b"signature", IoClass.METADATA)
        assert vfd.read(0, 9, IoClass.METADATA) == b"signature"
        vfd.close()

    def test_eof_tracks_writes(self, fs):
        vfd = Sec2VFD(fs, "/f.h5", "w")
        assert vfd.get_eof() == 0
        vfd.write(100, b"xx", IoClass.RAW)
        assert vfd.get_eof() == 102
        vfd.close()

    def test_truncate(self, fs):
        vfd = Sec2VFD(fs, "/f.h5", "w")
        vfd.write(0, b"abcdef", IoClass.RAW)
        vfd.truncate(3)
        assert vfd.get_eof() == 3
        vfd.close()

    def test_use_after_close_raises(self, fs):
        vfd = Sec2VFD(fs, "/f.h5", "w")
        vfd.close()
        with pytest.raises(ValueError):
            vfd.read(0, 1, IoClass.RAW)

    def test_close_idempotent(self, fs):
        vfd = Sec2VFD(fs, "/f.h5", "w")
        vfd.close()
        vfd.close()  # must not raise


class TestVolVfdChannel:
    def test_initially_empty(self):
        ch = VolVfdChannel()
        assert ch.current_task is None
        assert ch.current_object is None
        assert ch.depth == 0

    def test_task_announcement(self):
        ch = VolVfdChannel()
        ch.set_task("stage1")
        assert ch.current_task == "stage1"
        ch.set_task(None)
        assert ch.current_task is None

    def test_object_scope_nesting(self):
        ch = VolVfdChannel()
        with ch.object_scope("/g/dset_a"):
            assert ch.current_object == "/g/dset_a"
            with ch.object_scope("/g/dset_b"):
                assert ch.current_object == "/g/dset_b"
            assert ch.current_object == "/g/dset_a"
        assert ch.current_object is None

    def test_scope_restored_on_error(self):
        ch = VolVfdChannel()
        with pytest.raises(RuntimeError):
            with ch.object_scope("/d"):
                raise RuntimeError("boom")
        assert ch.depth == 0

    def test_pop_underflow(self):
        with pytest.raises(RuntimeError):
            VolVfdChannel().pop_object()


@pytest.fixture()
def traced(fs):
    channel = VolVfdChannel()
    channel.set_task("taskA")
    tracer = VfdTracer(fs.clock, channel)
    vfd = TracingVFD(Sec2VFD(fs, "/f.h5", "w"), tracer)
    return vfd, tracer, channel


class TestTracingVFD:
    def test_records_carry_table2_fields(self, traced):
        vfd, tracer, channel = traced
        with channel.object_scope("/dset"):
            vfd.write(0, b"x" * 64, IoClass.RAW)
        vfd.close()
        [rec] = tracer.records
        assert rec.task == "taskA"
        assert rec.file == "/f.h5"
        assert rec.op == "write"
        assert rec.offset == 0
        assert rec.nbytes == 64
        assert rec.access_type is IoClass.RAW
        assert rec.data_object == "/dset"
        assert rec.duration > 0

    def test_io_without_object_scope_untagged(self, traced):
        vfd, tracer, _ = traced
        vfd.write(0, b"hdr", IoClass.METADATA)
        vfd.close()
        assert tracer.records[0].data_object is None

    def test_session_lifetime(self, traced):
        vfd, tracer, _ = traced
        vfd.write(0, b"x", IoClass.RAW)
        vfd.close()
        [session] = tracer.sessions
        assert session.task == "taskA"
        assert session.close_time is not None
        assert session.lifetime > 0

    def test_session_statistics(self, traced):
        vfd, tracer, channel = traced
        with channel.object_scope("/a"):
            vfd.write(0, b"x" * 10, IoClass.RAW)
            vfd.write(10, b"y" * 10, IoClass.RAW)  # sequential
            vfd.write(100, b"z" * 5, IoClass.METADATA)  # jump
        vfd.close()
        [s] = tracer.sessions
        assert s.write_ops == 3
        assert s.write_bytes == 25
        assert s.sequential_ops == 1
        assert s.metadata_ops == 1
        assert s.raw_ops == 2
        assert s.data_objects == ["/a"]
        assert 0 < s.sequential_fraction < 1

    def test_tracker_overhead_charged(self, traced):
        vfd, tracer, _ = traced
        vfd.write(0, b"x", IoClass.RAW)
        vfd.close()
        # open + close + 1 record
        expected = 2 * tracer.costs.per_session_event + tracer.costs.per_io_record
        assert tracer.clock.account(ACCESS_TRACKER_ACCOUNT) == pytest.approx(expected)

    def test_trace_io_off_keeps_sessions_only(self, fs):
        channel = VolVfdChannel()
        tracer = VfdTracer(fs.clock, channel, trace_io=False)
        vfd = TracingVFD(Sec2VFD(fs, "/f.h5", "w"), tracer)
        vfd.write(0, b"x" * 100, IoClass.RAW)
        vfd.close()
        assert tracer.records == []
        assert tracer.sessions[0].write_ops == 1

    def test_skip_ops(self, fs):
        channel = VolVfdChannel()
        tracer = VfdTracer(fs.clock, channel, skip_ops=2)
        vfd = TracingVFD(Sec2VFD(fs, "/f.h5", "w"), tracer)
        for i in range(5):
            vfd.write(i * 10, b"x", IoClass.RAW)
        vfd.close()
        assert len(tracer.records) == 3  # first 2 skipped
        # Sessions still see all 5 ops.
        assert tracer.sessions[0].write_ops == 5

    def test_negative_skip_rejected(self, fs):
        with pytest.raises(ValueError):
            VfdTracer(fs.clock, VolVfdChannel(), skip_ops=-1)

    def test_serialization_is_valid_json(self, traced):
        vfd, tracer, _ = traced
        vfd.write(0, b"x" * 10, IoClass.RAW)
        vfd.close()
        payload = json.loads(tracer.serialize())
        assert len(payload["records"]) == 1
        assert len(payload["sessions"]) == 1
        assert tracer.storage_bytes == len(tracer.serialize())

    def test_storage_grows_with_records(self, fs):
        channel = VolVfdChannel()
        tracer = VfdTracer(fs.clock, channel)
        vfd = TracingVFD(Sec2VFD(fs, "/f.h5", "w"), tracer)
        vfd.write(0, b"x", IoClass.RAW)
        small = tracer.storage_bytes
        for i in range(50):
            vfd.write(i, b"x", IoClass.RAW)
        assert tracer.storage_bytes > small
        vfd.close()

    def test_region_histogram(self, fs):
        channel = VolVfdChannel()
        tracer = VfdTracer(fs.clock, channel)
        vfd = TracingVFD(Sec2VFD(fs, "/f.h5", "w"), tracer)
        vfd.write(0, b"x" * 4096, IoClass.RAW)  # page 0
        vfd.write(4096, b"x" * 10, IoClass.RAW)  # page 1
        vfd.write(4000, b"x" * 200, IoClass.RAW)  # spans pages 0-1
        vfd.close()
        hist = tracer.region_histogram("/f.h5", 4096)
        assert hist == {0: 2, 1: 2}

    def test_passthrough_data_integrity(self, traced):
        vfd, _, _ = traced
        vfd.write(5, b"hello", IoClass.RAW)
        assert vfd.read(5, 5, IoClass.RAW) == b"hello"
        vfd.close()


class TestVfdIoRecord:
    def test_region_single_page(self):
        rec = VfdIoRecord(None, "f", "read", 0, 100, 0.0, 1.0, IoClass.RAW, None)
        assert rec.region(4096) == (0, 0)

    def test_region_spanning(self):
        rec = VfdIoRecord(None, "f", "read", 4090, 100, 0.0, 1.0, IoClass.RAW, None)
        assert rec.region(4096) == (0, 1)

    def test_region_zero_bytes(self):
        rec = VfdIoRecord(None, "f", "read", 8192, 0, 0.0, 1.0, IoClass.RAW, None)
        assert rec.region(4096) == (2, 2)

    def test_region_bad_page_size(self):
        rec = VfdIoRecord(None, "f", "read", 0, 1, 0.0, 1.0, IoClass.RAW, None)
        with pytest.raises(ValueError):
            rec.region(0)

    def test_bandwidth(self):
        rec = VfdIoRecord(None, "f", "read", 0, 1000, 0.0, 2.0, IoClass.RAW, None)
        assert rec.bandwidth == 500.0

    def test_bandwidth_zero_duration(self):
        rec = VfdIoRecord(None, "f", "read", 0, 1000, 0.0, 0.0, IoClass.RAW, None)
        assert rec.bandwidth == 0.0

    @given(st.integers(0, 1 << 30), st.integers(0, 1 << 20), st.integers(1, 1 << 16))
    def test_region_invariants(self, offset, nbytes, page):
        rec = VfdIoRecord(None, "f", "read", offset, nbytes, 0.0, 1.0, IoClass.RAW, None)
        first, last = rec.region(page)
        assert first <= last
        assert first * page <= offset
        assert last * page <= offset + max(nbytes - 1, 0)
