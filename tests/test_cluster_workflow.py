"""Unit tests for the cluster model and workflow engine."""

import numpy as np
import pytest

from repro.cluster import Cluster, Node, cpu_cluster, gpu_cluster
from repro.mapper import DaYuConfig, DataSemanticMapper
from repro.posix.simfs import FsError
from repro.simclock import SimClock
from repro.workflow import (
    CoLocateScheduler,
    PinnedScheduler,
    RoundRobinScheduler,
    Stage,
    Task,
    Workflow,
    WorkflowRunner,
)


def small_cluster(n=2):
    clock = SimClock()
    cluster = Cluster(
        clock,
        [Node(f"n{i}", cpus=4, local_tiers={"ssd": "nvme"}) for i in range(n)],
        shared_mounts={"/pfs": "beegfs"},
    )
    return clock, cluster


class TestCluster:
    def test_topology(self):
        clock, cluster = small_cluster(3)
        assert cluster.node_names() == ["n0", "n1", "n2"]
        assert cluster.node("n1").cpus == 4
        with pytest.raises(KeyError):
            cluster.node("n9")

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValueError):
            Cluster(SimClock(), [Node("a"), Node("a")], {"/pfs": "nfs"})

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster(SimClock(), [], {"/pfs": "nfs"})

    def test_mounts_wired(self):
        clock, cluster = small_cluster()
        assert cluster.owning_node("/pfs/x") is None
        assert cluster.owning_node("/local/n0/ssd/x") == "n0"
        assert cluster.local_device("n0", "ssd").spec.name == "nvme"
        with pytest.raises(KeyError):
            cluster.local_device("n0", "tape")

    def test_stage_concurrency_routing(self):
        clock, cluster = small_cluster()
        cluster.set_stage_concurrency({"n0": 3, "n1": 1})
        assert cluster.shared_devices["/pfs"].concurrency == 4
        assert cluster.local_device("n0", "ssd").concurrency == 3
        assert cluster.local_device("n1", "ssd").concurrency == 1
        cluster.reset_concurrency()
        assert cluster.shared_devices["/pfs"].concurrency == 1

    def test_table3_configs(self):
        clock = SimClock()
        cpu = cpu_cluster(clock, n_nodes=2)
        assert set(cpu.nodes["n0"].local_tiers) == {"nvme", "ssd", "hdd"}
        assert "/nfs" in cpu.shared_devices
        gpu = gpu_cluster(SimClock(), n_nodes=8)
        assert len(gpu.nodes) == 8
        assert "/beegfs" in gpu.shared_devices
        assert gpu.nodes["n0"].ram_bytes == 384 * (1 << 30)


class TestWorkflowModel:
    def test_validate_duplicate_names(self):
        wf = Workflow("w", [Stage("s", [Task("t", lambda rt: None),
                                        Task("t", lambda rt: None)])])
        with pytest.raises(ValueError, match="duplicate"):
            wf.validate()

    def test_validate_empty(self):
        with pytest.raises(ValueError, match="no tasks"):
            Workflow("w").validate()

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Task("t", lambda rt: None, compute_seconds=-1)

    def test_builders(self):
        wf = Workflow("w").add_stage(Stage("s").add(Task("t", lambda rt: None)))
        assert [t.name for t in wf.all_tasks()] == ["t"]


class TestSchedulers:
    def test_round_robin(self):
        clock, cluster = small_cluster(2)
        stage = Stage("s", [Task(f"t{i}", lambda rt: None) for i in range(4)])
        placement = RoundRobinScheduler().place(stage, cluster)
        assert placement == {"t0": "n0", "t1": "n1", "t2": "n0", "t3": "n1"}

    def test_pinned(self):
        clock, cluster = small_cluster(2)
        stage = Stage("s", [Task("a", lambda rt: None), Task("b", lambda rt: None)])
        placement = PinnedScheduler({"b": "n1"}).place(stage, cluster)
        assert placement["b"] == "n1"

    def test_pinned_unknown_node(self):
        clock, cluster = small_cluster(1)
        stage = Stage("s", [Task("a", lambda rt: None)])
        with pytest.raises(KeyError):
            PinnedScheduler({"a": "n9"}).place(stage, cluster)

    def test_colocate(self):
        clock, cluster = small_cluster(3)
        stage = Stage("hot", [Task(f"t{i}", lambda rt: None) for i in range(3)])
        placement = CoLocateScheduler(["hot"], node="n2").place(stage, cluster)
        assert set(placement.values()) == {"n2"}

    def test_colocate_other_stages_spread(self):
        clock, cluster = small_cluster(2)
        stage = Stage("cold", [Task(f"t{i}", lambda rt: None) for i in range(2)])
        placement = CoLocateScheduler(["hot"]).place(stage, cluster)
        assert set(placement.values()) == {"n0", "n1"}


class TestWorkflowRunner:
    def _run(self, workflow, scheduler=None, n_nodes=2):
        clock, cluster = small_cluster(n_nodes)
        mapper = DataSemanticMapper(clock, DaYuConfig())
        runner = WorkflowRunner(cluster, mapper, scheduler)
        return runner.run(workflow), cluster

    def test_simple_pipeline_runs_and_profiles(self):
        def produce(rt):
            f = rt.open("/pfs/data.h5", "w")
            f.create_dataset("x", shape=(100,), dtype="f8",
                             data=np.arange(100.0))
            f.close()

        def consume(rt):
            f = rt.open("/pfs/data.h5", "r")
            f["x"].read()
            f.close()

        wf = Workflow("pipe", [
            Stage("produce", [Task("producer", produce)]),
            Stage("consume", [Task("consumer", consume)]),
        ])
        result, cluster = self._run(wf)
        assert result.wall_time > 0
        assert set(result.profiles) == {"producer", "consumer"}
        assert result.stage("produce").wall_time > 0
        with pytest.raises(KeyError):
            result.stage("nope")

    def test_parallel_stage_wall_is_max(self):
        def work(rt):
            rt.compute(1.0)

        wf = Workflow("par", [
            Stage("s", [Task(f"t{i}", work) for i in range(4)], parallel=True),
        ])
        result, _ = self._run(wf)
        s = result.stage("s")
        assert s.wall_time == pytest.approx(1.0, rel=0.01)
        assert s.total_work == pytest.approx(4.0, rel=0.01)

    def test_serial_stage_wall_is_sum(self):
        wf = Workflow("ser", [
            Stage("s", [Task(f"t{i}", lambda rt: rt.compute(1.0))
                        for i in range(3)], parallel=False),
        ])
        result, _ = self._run(wf)
        assert result.stage("s").wall_time == pytest.approx(3.0, rel=0.01)

    def test_contention_slows_parallel_shared_io(self):
        def io_task(rt):
            f = rt.open(f"/pfs/{rt.task.name}.h5", "w")
            f.create_dataset("x", shape=(100_000,), dtype="f8",
                             data=np.zeros(100_000))
            f.close()

        def run_with(n_tasks):
            wf = Workflow("w", [
                Stage("s", [Task(f"t{i}", io_task) for i in range(n_tasks)]),
            ])
            result, _ = self._run(wf, n_nodes=1)
            return result.stage("s").task_durations["t0"]

        assert run_with(8) > run_with(1)

    def test_locality_enforced(self):
        def bad(rt):
            rt.open("/local/n1/ssd/secret.h5", "w")

        wf = Workflow("w", [Stage("s", [Task("intruder", bad)])])
        clock, cluster = small_cluster(2)
        mapper = DataSemanticMapper(clock, DaYuConfig())
        runner = WorkflowRunner(cluster, mapper, PinnedScheduler({"intruder": "n0"}))
        with pytest.raises(FsError, match="local to node"):
            runner.run(wf)

    def test_local_path_helper(self):
        captured = {}

        def task(rt):
            captured["path"] = rt.local_path("ssd", "scratch.h5")
            f = rt.open(captured["path"], "w")
            f.create_dataset("d", shape=(4,), data=[1.0, 2.0, 3.0, 4.0])
            f.close()

        wf = Workflow("w", [Stage("s", [Task("t", task)])])
        result, cluster = self._run(wf)
        node = result.stage("s").placement["t"]
        assert captured["path"] == f"/local/{node}/ssd/scratch.h5"
        assert cluster.fs.exists(captured["path"])

    def test_local_path_unknown_tier(self):
        def task(rt):
            rt.local_path("tape", "x")

        wf = Workflow("w", [Stage("s", [Task("t", task)])])
        with pytest.raises(KeyError):
            self._run(wf)

    def test_compute_seconds_charged(self):
        wf = Workflow("w", [Stage("s", [Task("t", lambda rt: None,
                                             compute_seconds=2.5)])])
        result, cluster = self._run(wf)
        assert result.stage("s").wall_time >= 2.5
        assert cluster.clock.account("compute") == pytest.approx(2.5)

    def test_speedup_over(self):
        wf = Workflow("w", [Stage("s", [Task("t", lambda rt: rt.compute(2.0))])])
        slow, _ = self._run(wf)
        wf2 = Workflow("w", [Stage("s", [Task("t", lambda rt: rt.compute(1.0))])])
        fast, _ = self._run(wf2)
        assert fast.speedup_over(slow) == pytest.approx(2.0, rel=0.01)

    def test_concurrency_reset_after_stage(self):
        wf = Workflow("w", [
            Stage("s", [Task(f"t{i}", lambda rt: rt.compute(0.1))
                        for i in range(4)]),
        ])
        result, cluster = self._run(wf)
        assert cluster.shared_devices["/pfs"].concurrency == 1

    def test_concurrency_reset_after_task_error(self):
        def boom(rt):
            raise RuntimeError("task failure")

        wf = Workflow("w", [Stage("s", [Task("t", boom)])])
        clock, cluster = small_cluster()
        mapper = DataSemanticMapper(clock, DaYuConfig())
        with pytest.raises(RuntimeError):
            WorkflowRunner(cluster, mapper).run(wf)
        assert cluster.shared_devices["/pfs"].concurrency == 1
