"""Tests for the event-driven dataflow scheduler and the
placement-liveness bugfix sweep that rode along with it:

- typed ``NoAliveNodesError`` instead of ``ZeroDivisionError`` when every
  node is dead, with a clean runner abort preserving partial results;
- pins and co-locate targets naming dead nodes fall back to survivors;
- ``WorkflowResult.wall_time`` is the first-start/last-finish makespan
  (the old sum survives as ``serial_time``);
- the per-task state machine: exactly one terminal state per task,
  fixed-seed replay bit-identical, work stealing, speculation, and the
  locality-beats-round-robin placement property.
"""

import json
import random

import numpy as np
import pytest

from repro.cluster import Cluster, Node
from repro.faults import FaultInjector, FaultSpec, NodeFault
from repro.mapper import DataSemanticMapper
from repro.simclock import SimClock
from repro.workflow import (
    CoLocateScheduler,
    DataflowRunner,
    DataflowScheduler,
    NoAliveNodesError,
    PinnedScheduler,
    RetryPolicy,
    RoundRobinScheduler,
    SpeculationPolicy,
    Stage,
    Task,
    TaskGraph,
    Workflow,
    WorkflowResult,
    WorkflowRunner,
    upward_ranks,
)
from repro.workflow.contracts import TaskContract, creates, reads
from repro.workflow.dscheduler import TERMINAL_STATES, TaskState
from repro.workflow.runner import StageResult


def small_cluster(n=2, cpus=4):
    clock = SimClock()
    cluster = Cluster(
        clock,
        [Node(f"n{i}", cpus=cpus, local_tiers={"ssd": "nvme"})
         for i in range(n)],
        shared_mounts={"/pfs": "beegfs"},
    )
    return clock, cluster


def writer_task(name, path, elems=256):
    def fn(rt):
        f = rt.open(path, "w")
        f.create_dataset("d", shape=(elems,), dtype="f4",
                         data=np.zeros(elems, dtype=np.float32))
        f.close()
    return Task(name, fn)


def reader_task(name, path):
    def fn(rt):
        f = rt.open(path, "r")
        f["d"][...]
        f.close()
    return Task(name, fn)


def kill_all(cluster):
    for node in cluster.node_names():
        cluster.fail_node(node, force=True)


class Collector:
    """Minimal monitor stand-in: records every published event."""

    def __init__(self):
        self.events = []

    def publish(self, event):
        self.events.append(event)

    def kinds(self):
        return [e.kind for e in self.events]


# ----------------------------------------------------------------------
# Satellite 1: all-dead cluster raises the typed error, not ZeroDivision
# ----------------------------------------------------------------------
class TestAllDeadCluster:
    def test_round_robin_raises_typed_error(self):
        clock, cluster = small_cluster(2)
        kill_all(cluster)
        stage = Stage("s", [writer_task("t", "/pfs/x.h5")])
        with pytest.raises(NoAliveNodesError) as exc:
            RoundRobinScheduler().place(stage, cluster)
        assert exc.value.dead_nodes == ["n0", "n1"]
        assert "all 2" in str(exc.value)

    def test_pinned_and_colocate_raise_too(self):
        clock, cluster = small_cluster(2)
        kill_all(cluster)
        stage = Stage("s", [writer_task("t", "/pfs/x.h5")])
        with pytest.raises(NoAliveNodesError):
            PinnedScheduler({"t": "n0"}).place(stage, cluster)
        with pytest.raises(NoAliveNodesError):
            CoLocateScheduler(["s"]).place(stage, cluster)

    def test_engine_assign_raises_typed_error(self):
        g = TaskGraph()
        g.add_task("t")
        eng = DataflowScheduler(g, slots={"n0": 1}, alive=lambda n: False)
        eng.start()
        name = eng.pop_ready()
        with pytest.raises(NoAliveNodesError):
            eng.assign(name)

    def test_runner_aborts_cleanly_with_partial_results(self):
        clock, cluster = small_cluster(2)
        mapper = DataSemanticMapper(clock)
        spec = FaultSpec(node_faults=(
            NodeFault("n0", at=0.0005), NodeFault("n1", at=0.0005)))
        inj = FaultInjector(spec, cluster).arm()
        wf = Workflow("wf", [
            Stage("produce", [writer_task("w", "/pfs/a.h5")]),
            Stage("consume", [reader_task("r", "/pfs/a.h5")]),
        ])
        runner = WorkflowRunner(cluster, mapper, faults=inj)
        with pytest.raises(NoAliveNodesError):
            runner.run(wf)
        partial = runner.last_result
        assert partial is not None
        # The completed stage's timings and profile survive the abort.
        assert "w" in partial.profiles
        assert partial.stage("produce").task_durations["w"] > 0
        assert partial.stage("consume").aborted

    def test_event_runner_aborts_cleanly_and_cancels_pending(self):
        clock, cluster = small_cluster(2)
        mapper = DataSemanticMapper(clock)
        spec = FaultSpec(node_faults=(
            NodeFault("n0", at=0.0005), NodeFault("n1", at=0.0005)))
        inj = FaultInjector(spec, cluster).arm()
        wf = Workflow("wf", [
            Stage("produce", [writer_task("w", "/pfs/a.h5")]),
            Stage("consume", [reader_task("r", "/pfs/a.h5")]),
        ])
        runner = DataflowRunner(cluster, mapper, faults=inj)
        with pytest.raises(NoAliveNodesError):
            runner.run(wf)
        partial = runner.last_result
        assert "w" in partial.profiles
        states = runner.last_engine.state
        assert states["w"] is TaskState.MEMORY
        assert states["r"] in (TaskState.CANCELLED, TaskState.FAILED)


# ----------------------------------------------------------------------
# Satellite 2: dead pins / co-locate targets fall back to survivors
# ----------------------------------------------------------------------
class TestDeadPinFallback:
    def test_pin_to_dead_node_falls_back_to_survivor(self):
        clock, cluster = small_cluster(3)
        stage = Stage("s", [writer_task("t", "/pfs/x.h5")])
        sched = PinnedScheduler({"t": "n1"})
        assert sched.place(stage, cluster)["t"] == "n1"
        cluster.fail_node("n1")
        # Regression: the old code re-pinned the task onto the corpse.
        placed = sched.place(stage, cluster)["t"]
        assert placed != "n1"
        assert cluster.is_alive(placed)

    def test_pin_to_unknown_node_still_raises(self):
        clock, cluster = small_cluster(2)
        stage = Stage("s", [writer_task("t", "/pfs/x.h5")])
        with pytest.raises(KeyError):
            PinnedScheduler({"t": "n9"}).place(stage, cluster)

    def test_colocate_dead_target_falls_back(self):
        clock, cluster = small_cluster(3)
        stage = Stage("s", [writer_task("t", "/pfs/x.h5")])
        sched = CoLocateScheduler(["s"], node="n2")
        assert sched.place(stage, cluster)["t"] == "n2"
        cluster.fail_node("n2")
        assert sched.place(stage, cluster)["t"] == "n0"

    def test_colocate_unknown_target_still_raises(self):
        clock, cluster = small_cluster(2)
        stage = Stage("s", [writer_task("t", "/pfs/x.h5")])
        with pytest.raises(KeyError):
            CoLocateScheduler(["s"], node="n9").place(stage, cluster)

    def test_colocate_target_dies_mid_workflow_with_retries(self):
        clock, cluster = small_cluster(3)
        mapper = DataSemanticMapper(clock)
        spec = FaultSpec(node_faults=(NodeFault("n2", at=0.0008),))
        inj = FaultInjector(spec, cluster).arm()
        wf = Workflow("wf", [
            Stage("a", [writer_task("w0", "/pfs/a.h5", elems=4096)]),
            Stage("b", [reader_task("r0", "/pfs/a.h5"),
                        reader_task("r1", "/pfs/a.h5")]),
        ])
        runner = WorkflowRunner(
            cluster, mapper, scheduler=CoLocateScheduler(["a", "b"], node="n2"),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.01),
            faults=inj)
        result = runner.run(wf)
        assert not result.failures
        # Everything that ran after the death landed on a survivor.
        for sr in result.stage_results:
            for task, node in sr.placement.items():
                if sr.attempts.get(task, 1) > 1 or node != "n2":
                    assert cluster.is_alive(node)

    def test_event_engine_dead_pin_released(self):
        g = TaskGraph()
        g.add_task("t")
        eng = DataflowScheduler(
            g, slots={"n0": 1, "n1": 1}, pins={"t": "n1"},
            alive=lambda n: n != "n1")
        eng.start()
        a = eng.assign(eng.pop_ready())
        assert a.node == "n0"


# ----------------------------------------------------------------------
# Satellite 3: wall_time is the makespan envelope, not the sum
# ----------------------------------------------------------------------
class TestMakespan:
    def test_overlapping_stages_are_not_double_counted(self):
        r = WorkflowResult(workflow="w", stage_results=[
            StageResult(name="a", wall_time=10.0, started_at=0.0,
                        finished_at=10.0),
            StageResult(name="b", wall_time=8.0, started_at=2.0,
                        finished_at=10.0),
        ])
        # Regression: the old wall_time summed to 18 despite the run
        # finishing at t=10.
        assert r.wall_time == 10.0
        assert r.serial_time == 18.0

    def test_stage_at_a_time_chains_back_to_back(self):
        clock, cluster = small_cluster(2)
        mapper = DataSemanticMapper(clock)
        wf = Workflow("wf", [
            Stage("a", [writer_task("w", "/pfs/a.h5")]),
            Stage("b", [reader_task("r", "/pfs/a.h5")]),
        ])
        result = WorkflowRunner(cluster, mapper).run(wf)
        assert result.wall_time == pytest.approx(result.serial_time)
        a, b = result.stage_results
        assert b.started_at == pytest.approx(a.finished_at)

    def test_event_scheduler_overlaps_independent_stages(self):
        clock, cluster = small_cluster(2)
        mapper = DataSemanticMapper(clock)
        # Two independent pipelines expressed as four stages: the stage
        # runner serializes them; dataflow dependencies let them overlap.
        wf = Workflow("wf", [
            Stage("a1", [writer_task("a1", "/pfs/a.h5", elems=8192)]),
            Stage("b1", [writer_task("b1", "/pfs/b.h5", elems=8192)]),
            Stage("a2", [Task("a2", reader_task("x", "/pfs/a.h5").fn,
                              depends_on=("a1",))]),
            Stage("b2", [Task("b2", reader_task("y", "/pfs/b.h5").fn,
                              depends_on=("b1",))]),
        ])
        for stage in wf.stages:
            task = stage.tasks[0]
            file = f"/pfs/{stage.name[0]}.h5"
            if stage.name.endswith("1"):
                task.contract = TaskContract.declare(
                    creates(file, "/d", shape=(8192,), dtype="f4",
                            elements=8192))
            else:
                task.contract = TaskContract.declare(
                    reads(file, "/d", elements=8192))
        runner = DataflowRunner(cluster, mapper, dependency_mode="dataflow")
        result = runner.run(wf)
        assert result.wall_time < result.serial_time
        spans = {s.name: (s.started_at, s.finished_at)
                 for s in result.stage_results}
        # b1 does not wait for a1 (no edge between the pipelines).
        assert spans["b1"][0] < spans["a1"][1]


# ----------------------------------------------------------------------
# The task graph
# ----------------------------------------------------------------------
class TestTaskGraph:
    def test_stage_mode_barriers(self):
        wf = Workflow("wf", [
            Stage("a", [writer_task("w0", "/pfs/a.h5"),
                        writer_task("w1", "/pfs/b.h5")]),
            Stage("b", [reader_task("r0", "/pfs/a.h5")]),
        ])
        g = TaskGraph.from_workflow(wf, mode="stage")
        assert set(g.entries["r0"].deps) == {"w0", "w1"}

    def test_serial_stage_chains_tasks(self):
        wf = Workflow("wf", [
            Stage("s", [writer_task("w0", "/pfs/a.h5"),
                        writer_task("w1", "/pfs/b.h5"),
                        writer_task("w2", "/pfs/c.h5")], parallel=False),
        ])
        g = TaskGraph.from_workflow(wf, mode="stage")
        assert g.entries["w1"].deps == ["w0"]
        assert g.entries["w2"].deps == ["w1"]

    def test_depends_on_validated(self):
        wf = Workflow("wf", [
            Stage("s", [Task("t", lambda rt: None, depends_on=("ghost",))]),
        ])
        with pytest.raises(ValueError, match="ghost"):
            wf.validate()
        wf2 = Workflow("wf", [
            Stage("s", [Task("t", lambda rt: None, depends_on=("t",))]),
        ])
        with pytest.raises(ValueError):
            wf2.validate()

    def test_cycle_detected(self):
        g = TaskGraph()
        g.add_task("a")
        g.add_task("b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()

    def test_dataflow_mode_derives_flow_edges(self):
        producer = writer_task("w", "/pfs/a.h5", elems=1024)
        producer.contract = TaskContract.declare(
            creates("/pfs/a.h5", "/d", shape=(1024,), dtype="f4",
                    elements=1024))
        consumer = reader_task("r", "/pfs/a.h5")
        consumer.contract = TaskContract.declare(
            reads("/pfs/a.h5", "/d", elements=1024, dtype="f4"))
        other = writer_task("u", "/pfs/b.h5")
        other.contract = TaskContract.declare(
            creates("/pfs/b.h5", "/d", shape=(256,), dtype="f4",
                    elements=256))
        wf = Workflow("wf", [
            Stage("a", [producer, other]),
            Stage("b", [consumer]),
        ])
        g = TaskGraph.from_workflow(wf, mode="dataflow")
        assert g.entries["r"].deps == ["w"]  # no barrier against "u"
        assert g.volume[("w", "r")] == 1024 * 4

    def test_contractless_task_becomes_barrier(self):
        wf = Workflow("wf", [
            Stage("a", [writer_task("w", "/pfs/a.h5")]),
            Stage("b", [Task("opaque", lambda rt: None)]),
            Stage("c", [reader_task("r", "/pfs/a.h5")]),
        ])
        g = TaskGraph.from_workflow(wf, mode="dataflow")
        assert "w" in g.entries["opaque"].deps
        assert "opaque" in g.entries["r"].deps

    def test_upward_ranks_prefer_critical_path(self):
        g = TaskGraph()
        for n in ("root", "heavy", "light", "sink"):
            g.add_task(n)
        g.add_edge("root", "heavy")
        g.add_edge("root", "light")
        g.add_edge("heavy", "sink")
        ranks = upward_ranks(g, {"heavy": 10.0, "light": 1.0})
        assert ranks["heavy"] > ranks["light"]
        assert ranks["root"] > ranks["heavy"]


# ----------------------------------------------------------------------
# State-machine properties
# ----------------------------------------------------------------------
def random_graph(rng, n_tasks):
    g = TaskGraph()
    for i in range(n_tasks):
        g.add_task(f"t{i}")
    for i in range(1, n_tasks):
        for j in rng.sample(range(i), min(i, rng.randint(0, 3))):
            g.add_edge(f"t{j}", f"t{i}", volume=rng.randint(0, 1 << 20))
    return g


class TestStateMachine:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_every_task_reaches_exactly_one_terminal_state(self, seed):
        rng = random.Random(seed)
        g = random_graph(rng, 40)
        eng = DataflowScheduler(g, slots={"n0": 2, "n1": 2},
                                policy="least_loaded")
        eng.start()
        terminal_transitions = {name: 0 for name in g.entries}
        while True:
            name = eng.pop_ready()
            if name is None:
                break
            eng.assign(name)
            # Some tasks fail an attempt first; some fail terminally.
            roll = rng.random()
            if roll < 0.15:
                eng.fail(name, elapsed=0.1, backoff=0.05, terminal=False)
            elif roll < 0.25:
                eng.fail(name, elapsed=0.1, terminal=True, release=True)
                terminal_transitions[name] += 1
            else:
                eng.complete(name, rng.random())
                terminal_transitions[name] += 1
        for name in eng.cancel_pending():
            terminal_transitions[name] += 1
        assert all(eng.state[n] in TERMINAL_STATES for n in g.entries)
        assert all(count == 1 for count in terminal_transitions.values())

    def test_terminal_transition_from_terminal_state_rejected(self):
        g = TaskGraph()
        g.add_task("t")
        eng = DataflowScheduler(g, slots={"n0": 1})
        eng.start()
        eng.assign(eng.pop_ready())
        eng.complete("t", 1.0)
        with pytest.raises(RuntimeError):
            eng.complete("t", 1.0)
        with pytest.raises(RuntimeError):
            eng.fail("t")
        with pytest.raises(RuntimeError):
            eng.assign("t")

    def test_simulation_is_deterministic(self):
        rng = random.Random(99)
        g1 = random_graph(rng, 60)
        rng = random.Random(99)
        g2 = random_graph(rng, 60)
        durs = {f"t{i}": (i % 7 + 1) * 0.1 for i in range(60)}
        s1 = DataflowScheduler(g1, slots={"n0": 2, "n1": 3}).simulate(durs)
        s2 = DataflowScheduler(g2, slots={"n0": 2, "n1": 3}).simulate(durs)
        assert s1.placement == s2.placement
        assert s1.vstart == s2.vstart
        assert s1.makespan == s2.makespan

    def test_retry_backoff_delays_virtual_ready(self):
        g = TaskGraph()
        g.add_task("t")
        eng = DataflowScheduler(g, slots={"n0": 1})
        eng.start()
        eng.assign(eng.pop_ready())
        eng.fail("t", elapsed=1.0, backoff=0.5, terminal=False)
        name = eng.pop_ready()
        assert name == "t"
        a = eng.assign(name)
        assert a.vstart == pytest.approx(1.5)


# ----------------------------------------------------------------------
# Work stealing and speculation
# ----------------------------------------------------------------------
class TestStealingAndSpeculation:
    def test_idle_node_steals_from_busy_preferred_node(self):
        g = TaskGraph()
        g.add_task("p")
        g.add_task("c1")
        g.add_task("c2")
        g.add_edge("p", "c1", volume=1000)
        g.add_edge("p", "c2", volume=1000)
        eng = DataflowScheduler(g, slots={"n0": 1, "n1": 1},
                                policy="locality", steal=True)
        eng.start()
        eng.complete(eng.assign(eng.pop_ready()).task, 1.0)  # p on n0
        a1 = eng.assign(eng.pop_ready())
        assert a1.node == "n0" and a1.stolen_from is None  # locality
        a2 = eng.assign(eng.pop_ready())
        # n0's only slot is busy until p+c; n1 is idle: steal.
        assert a2.stolen_from == "n0"
        assert a2.node == "n1"
        assert a2.saved > 0
        assert eng.steals == 1

    def test_steal_disabled_keeps_locality(self):
        g = TaskGraph()
        g.add_task("p")
        g.add_task("c1")
        g.add_task("c2")
        g.add_edge("p", "c1", volume=1000)
        g.add_edge("p", "c2", volume=1000)
        eng = DataflowScheduler(g, slots={"n0": 1, "n1": 1},
                                policy="locality", steal=False)
        sched = eng.simulate(default_duration=1.0)
        assert sched.steals == 0
        assert sched.placement["c1"] == "n0"
        assert sched.placement["c2"] == "n0"

    def test_stealing_shortens_makespan(self):
        def build():
            g = TaskGraph()
            g.add_task("p")
            for i in range(4):
                g.add_task(f"c{i}")
                g.add_edge("p", f"c{i}", volume=1000)
            return g

        slow = DataflowScheduler(build(), slots={"n0": 1, "n1": 1},
                                 policy="locality", steal=False)
        fast = DataflowScheduler(build(), slots={"n0": 1, "n1": 1},
                                 policy="locality", steal=True)
        assert (fast.simulate(default_duration=1.0).makespan
                < slow.simulate(default_duration=1.0).makespan)

    def test_straggler_is_speculated(self):
        clock, cluster = small_cluster(2, cpus=4)
        collector = Collector()
        mapper = DataSemanticMapper(clock)
        mapper.monitor = collector
        fast = [writer_task(f"w{i}", f"/pfs/f{i}.h5", elems=64)
                for i in range(4)]
        # The straggler is a tail task (dependent on the fast wave), so
        # a duration median exists by the time it completes — the shape
        # speculation is built for.
        slow = writer_task("slug", "/pfs/slug.h5", elems=64)
        slow.compute_seconds = 5.0
        slow.depends_on = tuple(t.name for t in fast)
        wf = Workflow("wf", [Stage("s", fast + [slow])])
        runner = DataflowRunner(
            cluster, mapper, placement="round_robin",
            speculation=SpeculationPolicy(factor=2.0, min_samples=3))
        result = runner.run(wf)
        spec_events = [e for e in collector.events
                       if e.kind == "task_speculated"]
        assert [e.task for e in spec_events] == ["slug"]
        assert spec_events[0].speculative_node != spec_events[0].node
        assert not result.failures
        # The speculative probe must not pollute the real profiles.
        assert sorted(result.profiles) == sorted(
            t.name for t in wf.all_tasks())

    def test_stolen_and_ready_events_published(self):
        clock, cluster = small_cluster(2, cpus=1)
        collector = Collector()
        mapper = DataSemanticMapper(clock)
        mapper.monitor = collector
        producer = writer_task("p", "/pfs/a.h5", elems=2048)
        producer.contract = TaskContract.declare(
            creates("/pfs/a.h5", "/d", shape=(2048,), dtype="f4",
                    elements=2048))
        consumers = []
        for i in range(2):
            c = reader_task(f"c{i}", "/pfs/a.h5")
            c.contract = TaskContract.declare(
                reads("/pfs/a.h5", "/d", elements=2048, dtype="f4"))
            consumers.append(c)
        wf = Workflow("wf", [Stage("a", [producer]), Stage("b", consumers)])
        runner = DataflowRunner(cluster, mapper, placement="locality",
                                dependency_mode="dataflow")
        runner.run(wf)
        kinds = collector.kinds()
        assert kinds.count("task_ready") == 3
        assert "task_stolen" in kinds  # second consumer steals to n1

    def test_events_flow_through_real_monitor(self):
        from repro.monitor import WorkflowMonitor

        clock, cluster = small_cluster(2, cpus=1)
        monitor = WorkflowMonitor(clock)
        mapper = DataSemanticMapper(clock, monitor=monitor)
        wf = Workflow("wf", [
            Stage("a", [writer_task("w", "/pfs/a.h5")]),
            Stage("b", [reader_task("r", "/pfs/a.h5")]),
        ])
        result = DataflowRunner(cluster, mapper).run(wf)
        monitor.finish()
        assert not result.failures
        # The live graph snapshot still reconciles with the run.
        assert len(monitor.aggregator.tasks_finished) == 2


# ----------------------------------------------------------------------
# Fixed-seed replay
# ----------------------------------------------------------------------
class TestReplay:
    def chaos_run(self):
        clock, cluster = small_cluster(3)
        mapper = DataSemanticMapper(clock)
        spec = FaultSpec(seed=11, node_faults=(NodeFault("n1", at=0.001),))
        inj = FaultInjector(spec, cluster).arm()
        wf = Workflow("wf", [
            Stage("a", [writer_task(f"w{i}", f"/pfs/f{i}.h5", elems=2048)
                        for i in range(4)]),
            Stage("b", [reader_task(f"r{i}", f"/pfs/f{i}.h5")
                        for i in range(4)], best_effort=True),
        ])
        runner = DataflowRunner(
            cluster, mapper, placement="locality",
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.01),
            faults=inj)
        return runner.run(wf)

    def test_fixed_seed_replay_is_bit_identical(self):
        a = json.dumps(self.chaos_run().to_json_dict(), sort_keys=True)
        b = json.dumps(self.chaos_run().to_json_dict(), sort_keys=True)
        assert a == b


# ----------------------------------------------------------------------
# Placement quality: locality beats round-robin under a cache
# ----------------------------------------------------------------------
class TestLocalityPlacement:
    def test_locality_clusters_consumers_and_beats_round_robin(self):
        from repro.experiments.dataflow_scheduler import (
            run_locality_fixture,
        )

        rr = run_locality_fixture(placement="round_robin")
        loc = run_locality_fixture(placement="locality")
        # Clustered consumers share one replica; spreading pays one
        # replication miss per node.
        assert loc.cache_misses < rr.cache_misses
        assert loc.wall_time < rr.wall_time
