"""Unit tests for the chunk-index B-tree and the global heap."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdf5.btree import MAX_ENTRIES, ChunkBTree
from repro.hdf5.errors import H5FormatError
from repro.hdf5.freespace import FreeSpaceManager
from repro.hdf5.heap import GlobalHeap, HeapRef
from repro.hdf5.meta_cache import MetadataCache
from repro.hdf5.metaio import MetaIO
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device
from repro.vfd import Sec2VFD


@pytest.fixture()
def io():
    fs = SimFS(SimClock(), mounts=[Mount("/", make_device("ram"))])
    vfd = Sec2VFD(fs, "/t.bin", "w")
    return MetaIO(vfd, FreeSpaceManager(), MetadataCache())


class TestChunkBTree:
    def test_empty_lookup(self, io):
        tree = ChunkBTree(io, ndim=1)
        assert tree.lookup((0,)) is None
        assert len(tree) == 0

    def test_insert_lookup(self, io):
        tree = ChunkBTree(io, ndim=1)
        tree.insert((3,), addr=1000, size=64)
        assert tree.lookup((3,)) == (1000, 64)
        assert tree.lookup((4,)) is None

    def test_update_existing_key(self, io):
        tree = ChunkBTree(io, ndim=1)
        tree.insert((1,), 10, 5)
        tree.insert((1,), 20, 6)
        assert tree.lookup((1,)) == (20, 6)
        assert len(tree) == 1

    def test_2d_keys(self, io):
        tree = ChunkBTree(io, ndim=2)
        tree.insert((0, 1), 100, 8)
        tree.insert((1, 0), 200, 8)
        assert tree.lookup((0, 1)) == (100, 8)
        assert tree.lookup((1, 0)) == (200, 8)

    def test_rank_mismatch(self, io):
        tree = ChunkBTree(io, ndim=2)
        with pytest.raises(H5FormatError):
            tree.insert((1,), 0, 0)
        with pytest.raises(H5FormatError):
            tree.lookup((1, 2, 3))

    def test_items_in_key_order(self, io):
        tree = ChunkBTree(io, ndim=1)
        for k in (5, 1, 9, 3, 7):
            tree.insert((k,), k * 100, 10)
        keys = [k for k, _, _ in tree.items()]
        assert keys == sorted(keys)

    def test_split_grows_height(self, io):
        tree = ChunkBTree(io, ndim=1)
        assert tree.height() == 1
        for i in range(MAX_ENTRIES + 1):
            tree.insert((i,), i * 10, 1)
        assert tree.height() == 2
        for i in range(MAX_ENTRIES + 1):
            assert tree.lookup((i,)) == (i * 10, 1)

    def test_many_inserts_multilevel(self, io):
        tree = ChunkBTree(io, ndim=1)
        n = MAX_ENTRIES * MAX_ENTRIES + 10  # forces at least 3 levels
        for i in range(n):
            tree.insert((i,), i, 1)
        assert tree.height() >= 3
        assert len(tree) == n
        for probe in (0, 1, MAX_ENTRIES, n // 2, n - 1):
            assert tree.lookup((probe,)) == (probe, 1)

    def test_reverse_order_inserts(self, io):
        tree = ChunkBTree(io, ndim=1)
        n = MAX_ENTRIES * 3
        for i in reversed(range(n)):
            tree.insert((i,), i + 1, 2)
        for i in range(n):
            assert tree.lookup((i,)) == (i + 1, 2)

    def test_reopen_from_root_addr(self, io):
        tree = ChunkBTree(io, ndim=1)
        for i in range(100):
            tree.insert((i,), i * 7, 3)
        root = tree.root_addr
        reopened = ChunkBTree(io, ndim=1, root_addr=root)
        assert reopened.lookup((42,)) == (294, 3)
        assert len(reopened) == 100

    def test_bad_rank_construction(self, io):
        with pytest.raises(H5FormatError):
            ChunkBTree(io, ndim=0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=300, unique=True))
    def test_property_matches_dict(self, keys):
        fs = SimFS(SimClock(), mounts=[Mount("/", make_device("ram"))])
        io = MetaIO(Sec2VFD(fs, "/p.bin", "w"), FreeSpaceManager(), MetadataCache())
        tree = ChunkBTree(io, ndim=1)
        ref = {}
        for k in keys:
            tree.insert((k,), k * 2, k % 17)
            ref[(k,)] = (k * 2, k % 17)
        for k, v in ref.items():
            assert tree.lookup(k) == v
        assert [k for k, _, _ in tree.items()] == sorted(ref)


class TestGlobalHeap:
    def test_insert_read_roundtrip(self, io):
        heap = GlobalHeap(io)
        ref = heap.insert(b"hello heap")
        assert heap.read(ref) == b"hello heap"

    def test_refs_encode_roundtrip(self):
        ref = HeapRef(12345, 7, 890)
        assert HeapRef.decode(ref.encode()) == ref
        assert len(ref.encode()) == HeapRef.nbytes()

    def test_batch_roundtrip(self, io):
        heap = GlobalHeap(io)
        items = [b"a" * i for i in range(1, 20)]
        refs = heap.insert_batch(items)
        assert [heap.read(r) for r in refs] == items

    def test_empty_batch(self, io):
        assert GlobalHeap(io).insert_batch([]) == []

    def test_collection_rollover(self, io):
        heap = GlobalHeap(io, data_capacity=100)
        refs = [heap.insert(b"x" * 40) for _ in range(5)]
        addrs = {r.collection_addr for r in refs}
        assert len(addrs) >= 2  # rolled to a new collection
        for r in refs:
            assert heap.read(r) == b"x" * 40

    def test_oversized_object_gets_own_collection(self, io):
        heap = GlobalHeap(io, data_capacity=64)
        small = heap.insert(b"s")
        big = heap.insert(b"B" * 1000)
        assert big.collection_addr != small.collection_addr
        assert heap.read(big) == b"B" * 1000

    def test_dir_entries_limit_rolls_collection(self, io):
        heap = GlobalHeap(io, dir_entries=3, data_capacity=10_000)
        refs = [heap.insert(b"t") for _ in range(7)]
        assert len({r.collection_addr for r in refs}) == 3

    def test_flush_and_cold_read(self):
        """References must dereference after closing and reopening — i.e.
        through the on-disk directory, not in-memory state."""
        fs = SimFS(SimClock(), mounts=[Mount("/", make_device("ram"))])
        vfd = Sec2VFD(fs, "/h.bin", "w")
        alloc = FreeSpaceManager()
        heap = GlobalHeap(MetaIO(vfd, alloc, MetadataCache()))
        refs = [heap.insert(b"item-%d" % i) for i in range(10)]
        refs += heap.insert_batch([b"batch-%d" % i for i in range(5)])
        heap.flush()
        vfd.close()
        # Fresh heap over the same file: no in-memory directories.
        vfd2 = Sec2VFD(fs, "/h.bin", "r")
        heap2 = GlobalHeap(MetaIO(vfd2, alloc, MetadataCache()))
        assert heap2.read(refs[3]) == b"item-3"
        assert heap2.read(refs[12]) == b"batch-2"

    def test_bad_index_rejected(self, io):
        heap = GlobalHeap(io)
        ref = heap.insert(b"one")
        bogus = HeapRef(ref.collection_addr, 99, 3)
        with pytest.raises(H5FormatError):
            heap.read(bogus)

    def test_batch_uses_single_raw_write(self):
        fs = SimFS(SimClock(), mounts=[Mount("/", make_device("ram"))])
        vfd = Sec2VFD(fs, "/h.bin", "w")
        heap = GlobalHeap(MetaIO(vfd, FreeSpaceManager(), MetadataCache()))
        fs.clear_log()
        heap.insert_batch([b"q" * 10] * 30)
        assert fs.op_count(op="write") == 1

    def test_individual_inserts_write_per_element(self):
        fs = SimFS(SimClock(), mounts=[Mount("/", make_device("ram"))])
        vfd = Sec2VFD(fs, "/h.bin", "w")
        heap = GlobalHeap(MetaIO(vfd, FreeSpaceManager(), MetadataCache()))
        fs.clear_log()
        for _ in range(30):
            heap.insert(b"q" * 10)
        assert fs.op_count(op="write") == 30

    def test_dirty_collections_counter(self, io):
        heap = GlobalHeap(io)
        assert heap.dirty_collections == 0
        heap.insert(b"x")
        assert heap.dirty_collections == 1
        heap.flush()
        assert heap.dirty_collections == 0

    def test_invalid_capacities(self, io):
        with pytest.raises(H5FormatError):
            GlobalHeap(io, dir_entries=0)
        with pytest.raises(H5FormatError):
            GlobalHeap(io, data_capacity=0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(max_size=500), min_size=1, max_size=60))
    def test_property_roundtrip_mixed_paths(self, items):
        fs = SimFS(SimClock(), mounts=[Mount("/", make_device("ram"))])
        vfd = Sec2VFD(fs, "/p.bin", "w")
        heap = GlobalHeap(MetaIO(vfd, FreeSpaceManager(), MetadataCache()),
                          data_capacity=256)
        refs = []
        for i, item in enumerate(items):
            if i % 3 == 0:
                refs.extend(heap.insert_batch([item]))
            else:
                refs.append(heap.insert(item))
        heap.flush()
        assert [heap.read(r) for r in refs] == items
