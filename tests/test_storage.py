"""Unit tests for the storage substrate: devices, block store, mounts."""

import pytest
from hypothesis import given, strategies as st

from repro.storage import (
    DEVICE_CATALOG,
    BlockStore,
    DeviceSpec,
    Mount,
    StorageDevice,
    make_device,
)


class TestDeviceCatalog:
    def test_expected_devices_present(self):
        # Table III storage options + the RAM buffering tier.
        for name in ("ram", "nvme", "sata_ssd", "hdd", "nfs", "beegfs", "lustre"):
            assert name in DEVICE_CATALOG

    def test_shared_flags(self):
        assert DEVICE_CATALOG["nfs"].shared
        assert DEVICE_CATALOG["beegfs"].shared
        assert not DEVICE_CATALOG["nvme"].shared

    def test_tier_ordering_latency(self):
        # Faster tiers must have lower latency: ram < nvme < sata < nfs-ish.
        c = DEVICE_CATALOG
        assert c["ram"].read_latency < c["nvme"].read_latency
        assert c["nvme"].read_latency < c["sata_ssd"].read_latency
        assert c["sata_ssd"].read_latency < c["hdd"].read_latency

    def test_tier_ordering_bandwidth(self):
        c = DEVICE_CATALOG
        assert c["ram"].read_bandwidth > c["nvme"].read_bandwidth
        assert c["nvme"].read_bandwidth > c["sata_ssd"].read_bandwidth

    def test_make_device_unknown_name(self):
        with pytest.raises(KeyError, match="unknown device"):
            make_device("floppy")


class TestDeviceSpecValidation:
    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", 0.0, 0.0, 0.0, 1.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", -1.0, 0.0, 1.0, 1.0)

    def test_rejects_bad_contention_share(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", 0.0, 0.0, 1.0, 1.0, contention_share=1.5)


class TestStorageDeviceCosts:
    def test_cost_includes_latency_and_transfer(self):
        dev = make_device("nvme")
        spec = dev.spec
        cost = dev.read_cost("f", 0, 1024)
        assert cost == pytest.approx(spec.read_latency + 1024 / spec.read_bandwidth)

    def test_sequential_access_avoids_seek(self):
        dev = make_device("hdd")
        first = dev.read_cost("f", 0, 4096)
        second = dev.read_cost("f", 4096, 4096)  # continues where first ended
        assert second == pytest.approx(first)
        assert dev.counters.seeks == 0

    def test_random_access_pays_seek(self):
        dev = make_device("hdd")
        dev.read_cost("f", 0, 4096)
        jumped = dev.read_cost("f", 10_000_000, 4096)
        assert jumped > dev.spec.read_latency + 4096 / dev.spec.read_bandwidth
        assert dev.counters.seeks == 1

    def test_streams_tracked_independently(self):
        dev = make_device("hdd")
        dev.read_cost("a", 0, 100)
        dev.read_cost("b", 5000, 100)  # first access on stream b: no seek
        assert dev.counters.seeks == 0

    def test_forget_stream_resets_sequentiality(self):
        dev = make_device("hdd")
        dev.read_cost("a", 0, 100)
        dev.forget_stream("a")
        dev.read_cost("a", 9999, 100)
        assert dev.counters.seeks == 0

    def test_counters_accumulate(self):
        dev = make_device("nvme")
        dev.read_cost("f", 0, 100)
        dev.write_cost("f", 100, 200)
        assert dev.counters.read_ops == 1
        assert dev.counters.write_ops == 1
        assert dev.counters.read_bytes == 100
        assert dev.counters.write_bytes == 200
        assert dev.counters.total_ops == 2
        assert dev.counters.total_bytes == 300
        assert dev.counters.busy_seconds > 0

    def test_counter_snapshot_delta(self):
        dev = make_device("nvme")
        dev.read_cost("f", 0, 100)
        snap = dev.counters.snapshot()
        dev.write_cost("f", 100, 50)
        delta = dev.counters.delta(snap)
        assert delta.read_ops == 0
        assert delta.write_ops == 1
        assert delta.write_bytes == 50

    def test_reset_counters(self):
        dev = make_device("nvme")
        dev.read_cost("f", 0, 100)
        dev.reset_counters()
        assert dev.counters.total_ops == 0

    def test_negative_offset_rejected(self):
        dev = make_device("nvme")
        with pytest.raises(ValueError):
            dev.read_cost("f", -1, 10)


class TestContention:
    def test_default_concurrency_is_one(self):
        dev = make_device("beegfs")
        assert dev.concurrency == 1
        assert dev.contention_factor() == 1.0

    def test_shared_device_slows_under_concurrency(self):
        dev = make_device("beegfs")
        solo = dev.read_cost("f", 0, 1 << 20)
        dev.forget_stream("f")
        dev.set_concurrency(8)
        contended = dev.read_cost("f", 0, 1 << 20)
        assert contended > solo

    def test_contention_factor_formula(self):
        dev = make_device("nfs")
        share = dev.spec.contention_share
        assert dev.contention_factor(4) == pytest.approx(1.0 + share * 3)

    def test_ram_is_contention_free(self):
        dev = make_device("ram")
        assert dev.contention_factor(64) == 1.0

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ValueError):
            make_device("nfs").set_concurrency(0)

    @given(st.integers(min_value=1, max_value=512))
    def test_contention_monotone_in_n(self, n):
        dev = make_device("beegfs")
        assert dev.contention_factor(n + 1) >= dev.contention_factor(n)


class TestBlockStore:
    def test_empty_store(self):
        s = BlockStore()
        assert s.size == 0
        assert s.read(0, 10) == b""

    def test_write_then_read(self):
        s = BlockStore()
        s.write(0, b"hello")
        assert s.read(0, 5) == b"hello"

    def test_write_extends_with_zero_fill(self):
        s = BlockStore()
        s.write(10, b"xy")
        assert s.size == 12
        assert s.read(0, 10) == b"\x00" * 10

    def test_partial_read_at_eof(self):
        s = BlockStore()
        s.write(0, b"abc")
        assert s.read(1, 100) == b"bc"

    def test_truncate_shrink(self):
        s = BlockStore()
        s.write(0, b"abcdef")
        s.truncate(3)
        assert s.size == 3
        assert s.read(0, 10) == b"abc"

    def test_truncate_grow(self):
        s = BlockStore()
        s.truncate(4)
        assert s.read(0, 4) == b"\x00\x00\x00\x00"

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            BlockStore().write(-1, b"x")

    def test_write_extents_chronological(self):
        s = BlockStore()
        s.write(0, b"aa")
        s.write(10, b"bb")
        assert s.write_extents == [(0, 2), (10, 2)]

    def test_coalesced_extents_merges_adjacent(self):
        s = BlockStore()
        s.write(0, b"aa")
        s.write(2, b"bb")
        s.write(10, b"cc")
        assert s.coalesced_extents() == [(0, 4), (10, 2)]

    def test_coalesced_extents_empty(self):
        assert BlockStore().coalesced_extents() == []

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.binary(min_size=1, max_size=64)),
            min_size=1,
            max_size=30,
        )
    )
    def test_readback_matches_reference(self, writes):
        """Property: BlockStore agrees with a plain bytearray reference model."""
        s = BlockStore()
        ref = bytearray()
        for off, data in writes:
            s.write(off, data)
            if off + len(data) > len(ref):
                ref.extend(b"\x00" * (off + len(data) - len(ref)))
            ref[off : off + len(data)] = data
        assert s.size == len(ref)
        assert s.read(0, len(ref)) == bytes(ref)


class TestMount:
    def test_prefix_normalization(self):
        m = Mount("/scratch/", make_device("nvme"), node="n0")
        assert m.prefix == "/scratch"

    def test_relative_prefix_rejected(self):
        with pytest.raises(ValueError):
            Mount("scratch", make_device("nvme"))

    def test_shared_when_no_node(self):
        assert Mount("/pfs", make_device("beegfs")).shared
        assert not Mount("/local", make_device("nvme"), node="n0").shared

    def test_matches_exact_and_children(self):
        m = Mount("/pfs", make_device("beegfs"))
        assert m.matches("/pfs")
        assert m.matches("/pfs/a/b.h5")
        assert not m.matches("/pfsx/file")

    def test_root_mount_matches_everything(self):
        m = Mount("/", make_device("nfs"))
        assert m.matches("/anything/at/all")
