"""Unit tests for the HTML exporter's internals: the layered layout, edge
styling scales, and humanized formatting."""

import networkx as nx
import pytest

from repro.analyzer.graphs import NodeKind
from repro.analyzer.html_export import (
    _edge_color,
    _edge_width,
    _human_bytes,
    _layout,
    to_html,
)


def g_with(*edges):
    g = nx.DiGraph()
    for u, v in edges:
        for n in (u, v):
            if n not in g:
                g.add_node(n, kind=NodeKind.TASK.value, label=n, volume=0)
        g.add_edge(u, v, operation="write", count=1, volume=10, io_time=0.1,
                   data_ops=1, data_bytes=10, metadata_ops=0,
                   metadata_bytes=0, start=0.0, end=0.1, bandwidth=100.0)
    return g


class TestLayout:
    def test_chain_layers_left_to_right(self):
        g = g_with(("a", "b"), ("b", "c"))
        pos = _layout(g)
        assert pos["a"][0] < pos["b"][0] < pos["c"][0]

    def test_siblings_share_column_distinct_rows(self):
        g = g_with(("a", "b"), ("a", "c"))
        pos = _layout(g)
        assert pos["b"][0] == pos["c"][0]
        assert pos["b"][1] != pos["c"][1]

    def test_two_cycle_terminates_and_separates(self):
        g = g_with(("a", "b"), ("b", "a"))
        pos = _layout(g)
        assert pos["a"] != pos["b"]

    def test_long_cycle_terminates(self):
        g = g_with(("a", "b"), ("b", "c"), ("c", "a"))
        pos = _layout(g)  # must not hang or KeyError
        assert len(pos) == 3

    def test_empty_graph(self):
        assert _layout(nx.DiGraph()) == {}

    def test_start_time_orders_rows(self):
        g = nx.DiGraph()
        for name, start in (("late", 5.0), ("early", 1.0)):
            g.add_node(name, kind=NodeKind.TASK.value, label=name,
                       volume=0, start=start)
        pos = _layout(g)
        assert pos["early"][1] < pos["late"][1]


class TestScales:
    def test_edge_width_monotone_in_volume(self):
        widths = [_edge_width(v, 1 << 30) for v in (0, 1 << 10, 1 << 20, 1 << 30)]
        assert widths == sorted(widths)
        assert widths[0] >= 1.0

    def test_edge_width_zero_max(self):
        assert _edge_width(100, 0) == 1.5

    def test_reuse_edges_orange(self):
        assert _edge_color(1.0, 10.0, reuse=True) == "#e67e22"

    def test_color_darkens_with_bandwidth(self):
        def lightness(color):
            rgb = color[4:-1].split(",")
            return sum(int(c) for c in rgb)

        low = _edge_color(10.0, 1e9, reuse=False)
        high = _edge_color(1e9, 1e9, reuse=False)
        assert lightness(high) < lightness(low)

    def test_human_bytes(self):
        assert _human_bytes(512) == "512 B"
        assert _human_bytes(2048) == "2.00 KB"
        assert _human_bytes(3 * (1 << 20)) == "3.00 MB"
        assert _human_bytes(5 * (1 << 30)) == "5.00 GB"


class TestHtmlDocument:
    def test_special_characters_escaped(self):
        g = nx.DiGraph()
        g.add_node("task:<evil>&", kind=NodeKind.TASK.value,
                   label='<script>alert("x")</script>', volume=0)
        page = to_html(g)
        assert "<script>alert" not in page
        assert "&lt;script&gt;" in page

    def test_long_labels_truncated(self):
        g = nx.DiGraph()
        g.add_node("n", kind=NodeKind.FILE.value,
                   label="/a/very/long/path/that/never/ends/output.h5",
                   volume=0)
        page = to_html(g)
        assert "…" in page
