"""Cross-layer consistency fuzzing.

DaYu's value rests on its three trace layers agreeing with each other and
with the ground-truth POSIX log.  This suite drives *randomized* workloads
through the full stack and checks the invariants that must hold for any
workload whatsoever:

1. the VFD trace matches the POSIX log exactly (op counts, bytes, order);
2. the Characteristic-Mapper join conserves operations and bytes — the
   per-object rows partition the VFD records;
3. every data object the join reports was announced by the VOL layer (or
   is the File-Metadata pseudo-object), and objects with raw traffic in
   the join show accesses in the VOL profile;
4. session aggregates equal the sum of their per-op records;
5. data written through the instrumented stack reads back verbatim.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hdf5 import Selection
from repro.mapper import FILE_METADATA_OBJECT, DaYuConfig, DataSemanticMapper
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device
from repro.vfd.base import IoClass


# One random "program": a list of actions over a couple of files.
_action = st.sampled_from(["create_contig", "create_chunked", "create_vlen",
                           "read_full", "read_partial", "overwrite", "attr"])


@st.composite
def programs(draw):
    n = draw(st.integers(2, 12))
    return [
        (draw(_action), draw(st.integers(0, 2)), draw(st.integers(1, 64)),
         draw(st.integers(0, 2**31 - 1)))
        for _ in range(n)
    ]


def run_program(program):
    """Execute a random action list under full DaYu instrumentation."""
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
    mapper = DataSemanticMapper(clock, DaYuConfig())
    expected = {}  # (file, name) -> expected contents
    with mapper.task("fuzz") as ctx:
        files = {}

        def file_for(idx):
            path = f"/fuzz_{idx}.h5"
            if path not in files:
                files[path] = ctx.open(fs, path, "w")
            return path, files[path]

        counter = 0
        for action, file_idx, size, seed in program:
            rng = np.random.default_rng(seed)
            path, f = file_for(file_idx)
            existing = [k for k in expected if k[0] == path
                        and not isinstance(expected[k], list)]
            if action in ("create_contig", "create_chunked"):
                name = f"d{counter:03d}"
                counter += 1
                data = rng.integers(-1000, 1000, size).astype(np.int64)
                kwargs = ({"layout": "chunked",
                           "chunks": (max(size // 3, 1),)}
                          if action == "create_chunked" else {})
                f.create_dataset(name, shape=(size,), dtype="i8",
                                 data=data, **kwargs)
                expected[(path, name)] = data
            elif action == "create_vlen":
                name = f"v{counter:03d}"
                counter += 1
                items = [bytes(rng.integers(0, 256, rng.integers(0, 40),
                                            dtype=np.uint8).tobytes())
                         for _ in range(min(size, 16))]
                f.create_dataset(name, shape=(len(items),),
                                 dtype="vlen-bytes", data=items)
                expected[(path, name)] = list(items)
            elif action == "read_full" and existing:
                key = existing[seed % len(existing)]
                f[key[1]].read()
            elif action == "read_partial" and existing:
                key = existing[seed % len(existing)]
                n = expected[key].size
                start = seed % n
                count = max(1, (seed // 7) % (n - start + 1))
                f[key[1]].read(Selection.hyperslab(((start, count),)))
            elif action == "overwrite" and existing:
                key = existing[seed % len(existing)]
                data = rng.integers(-1000, 1000,
                                    expected[key].size).astype(np.int64)
                f[key[1]].write(data)
                expected[key] = data
            elif action == "attr" and existing:
                key = existing[seed % len(existing)]
                f[key[1]].attrs[f"a{seed % 5}"] = int(seed)
        for f in files.values():
            f.close()
    return fs, mapper, expected


@settings(max_examples=25, deadline=None)
@given(programs())
def test_vfd_trace_matches_posix_ground_truth(program):
    fs, mapper, expected = run_program(program)
    profile = mapper.profiles["fuzz"]
    posix = fs.op_log
    records = profile.io_records
    assert len(records) == len(posix)
    for rec, op in zip(records, posix):
        assert rec.op == op.op
        assert rec.file == op.path
        assert rec.offset == op.offset
        assert rec.nbytes == op.nbytes
        assert rec.duration == pytest.approx(op.cost)


@settings(max_examples=25, deadline=None)
@given(programs())
def test_join_conserves_ops_and_bytes(program):
    fs, mapper, expected = run_program(program)
    profile = mapper.profiles["fuzz"]
    total_ops = sum(s.access_count for s in profile.dataset_stats)
    total_bytes = sum(s.access_volume for s in profile.dataset_stats)
    assert total_ops == len(profile.io_records)
    assert total_bytes == sum(r.nbytes for r in profile.io_records)
    # Metadata/data split also conserves.
    meta = sum(s.metadata_ops for s in profile.dataset_stats)
    raw = sum(s.data_ops for s in profile.dataset_stats)
    assert meta == sum(1 for r in profile.io_records
                       if r.access_type is IoClass.METADATA)
    assert raw == sum(1 for r in profile.io_records
                      if r.access_type is IoClass.RAW)


@settings(max_examples=25, deadline=None)
@given(programs())
def test_join_objects_announced_by_vol(program):
    fs, mapper, expected = run_program(program)
    profile = mapper.profiles["fuzz"]
    vol_objects = {(p.file, p.object_name) for p in profile.object_profiles}
    for s in profile.dataset_stats:
        if s.data_object == FILE_METADATA_OBJECT:
            continue
        assert (s.file, s.data_object) in vol_objects, (
            f"VFD saw object {s.data_object!r} the VOL never announced")


@settings(max_examples=25, deadline=None)
@given(programs())
def test_sessions_aggregate_their_records(program):
    fs, mapper, expected = run_program(program)
    profile = mapper.profiles["fuzz"]
    per_file_records = {}
    for r in profile.io_records:
        per_file_records.setdefault(r.file, []).append(r)
    for session in profile.file_sessions:
        records = per_file_records.get(session.file, [])
        assert session.total_ops == len(records)
        assert session.read_bytes == sum(
            r.nbytes for r in records if r.op == "read")
        assert session.write_bytes == sum(
            r.nbytes for r in records if r.op == "write")
        assert session.lifetime is not None and session.lifetime >= 0


@settings(max_examples=25, deadline=None)
@given(programs())
def test_data_integrity_after_fuzzing(program):
    fs, mapper, expected = run_program(program)
    from repro.hdf5 import H5File
    by_file = {}
    for (path, name), value in expected.items():
        by_file.setdefault(path, {})[name] = value
    for path, members in by_file.items():
        with H5File(fs, path, "r") as f:
            for name, value in members.items():
                got = f[name].read()
                if isinstance(value, list):
                    assert got == value
                else:
                    np.testing.assert_array_equal(got, value)
