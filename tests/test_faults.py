"""Tests for the fault-injection plane and resilient workflow execution:
spec validation/round-trip, deterministic replay, retries and graceful
degradation, node death, monitor failure accounting, and the failure-path
contracts of the cache and async stager middleware."""

import json

import numpy as np
import pytest

from repro.cluster import Cluster, Node
from repro.faults import DeviceFault, FaultInjector, FaultSpec, NodeFault
from repro.mapper import DataSemanticMapper
from repro.middleware import AsyncStager, BufferTier, TieredCache
from repro.monitor import MonitorConfig, WorkflowMonitor
from repro.posix.simfs import FsError
from repro.simclock import SimClock
from repro.storage.devices import DeviceError
from repro.workflow import (
    RetryPolicy,
    Stage,
    Task,
    Workflow,
    WorkflowRunner,
)
from repro.workflow.runner import RETRY_BACKOFF_ACCOUNT


def small_cluster(n=2):
    clock = SimClock()
    cluster = Cluster(
        clock,
        [Node(f"n{i}", cpus=4, local_tiers={"ssd": "nvme"}) for i in range(n)],
        shared_mounts={"/pfs": "beegfs"},
    )
    return clock, cluster


def make_runner(cluster, clock, monitor=None, **kwargs):
    mapper = DataSemanticMapper(clock, monitor=monitor)
    return WorkflowRunner(cluster, mapper, **kwargs), mapper


def writer_task(name, path, elems=256):
    def fn(rt):
        f = rt.open(path, "w")
        f.create_dataset("d", shape=(elems,), dtype="f4",
                         data=np.zeros(elems, dtype=np.float32))
        f.close()
    return Task(name, fn)


# ----------------------------------------------------------------------
# Spec validation and serialization
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_json_roundtrip(self):
        spec = FaultSpec(seed=42, device_faults=(
            DeviceFault("/pfs", "transient", rate=0.1, ops="write"),
            DeviceFault("/local/n0/ssd", "slowdown", factor=3.0,
                        start=1.0, end=2.0),
            DeviceFault("/pfs/x", "permanent", start=0.5),
            DeviceFault("/pfs/y", "short_io", rate=0.5),
        ), node_faults=(NodeFault("n1", at=2.5),))
        again = FaultSpec.loads(spec.dumps())
        assert again == spec
        assert again.to_json_dict() == spec.to_json_dict()

    def test_open_ended_window_serializes_as_null(self):
        spec = FaultSpec(device_faults=(
            DeviceFault("/pfs", "permanent"),))
        d = spec.to_json_dict()
        assert d["device_faults"][0]["end"] is None
        assert FaultSpec.from_json_dict(d).device_faults[0].end is None

    def test_load_from_file(self, tmp_path):
        spec = FaultSpec(seed=3, node_faults=(NodeFault("n0", at=1.0),))
        p = tmp_path / "spec.json"
        p.write_text(spec.dumps())
        assert FaultSpec.load(str(p)) == spec

    @pytest.mark.parametrize("kwargs", [
        dict(path_prefix="rel", kind="transient", rate=0.5),
        dict(path_prefix="/pfs", kind="bogus"),
        dict(path_prefix="/pfs", kind="transient", rate=0.0),
        dict(path_prefix="/pfs", kind="transient", rate=1.5),
        dict(path_prefix="/pfs", kind="slowdown", factor=0.5),
        dict(path_prefix="/pfs", kind="permanent", start=2.0, end=1.0),
        dict(path_prefix="/pfs", kind="transient", rate=0.5, ops="readwrite"),
    ])
    def test_bad_device_fault_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DeviceFault(**kwargs)

    def test_duplicate_node_fault_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(node_faults=(
                NodeFault("n0", at=1.0), NodeFault("n0", at=2.0)))

    def test_path_matching_is_component_wise(self):
        fault = DeviceFault("/pfs/a", "permanent")
        assert fault.matches_path("/pfs/a")
        assert fault.matches_path("/pfs/a/b")
        assert not fault.matches_path("/pfs/ab")


# ----------------------------------------------------------------------
# Injector mechanics
# ----------------------------------------------------------------------
class TestInjector:
    def test_permanent_fault_fails_every_matching_op(self):
        clock, cluster = small_cluster()
        spec = FaultSpec(device_faults=(
            DeviceFault("/pfs/bad", "permanent"),))
        inj = FaultInjector(spec, cluster).arm()
        fs = cluster.fs
        fd = fs.open("/pfs/ok", "w")
        fs.write(fd, b"x" * 100)
        fs.close(fd)
        with pytest.raises(DeviceError):
            bad = fs.open("/pfs/bad/f", "w")
            fs.write(bad, b"x")
        assert inj.stats()["permanent"] == 1
        inj.disarm()
        assert fs.fault_injector is None

    def test_injected_failure_is_atomic(self):
        """A failed write moves no bytes, logs no op, costs no time."""
        clock, cluster = small_cluster()
        fs = cluster.fs
        fd = fs.open("/pfs/f", "w")
        fs.write(fd, b"a" * 64)
        ops_before = len(fs.op_log)
        t_before = clock.now
        inj = FaultInjector(FaultSpec(device_faults=(
            DeviceFault("/pfs", "permanent", ops="write"),)), cluster).arm()
        with pytest.raises(DeviceError):
            fs.pwrite(fd, b"b" * 64, 64)
        assert fs.stat("/pfs/f").size == 64
        assert len(fs.op_log) == ops_before
        assert clock.now == t_before
        # Reads are unaffected (ops="write").
        assert fs.pread(fd, 64, 0) == b"a" * 64
        inj.disarm()
        fs.close(fd)

    def test_windowed_fault_only_fires_inside_window(self):
        clock, cluster = small_cluster()
        fs = cluster.fs
        inj = FaultInjector(FaultSpec(device_faults=(
            DeviceFault("/pfs", "permanent", start=10.0, end=20.0),)),
            cluster).arm()
        fd = fs.open("/pfs/f", "w")
        fs.write(fd, b"x")  # before the window: fine
        clock.advance(15.0)
        with pytest.raises(DeviceError):
            fs.pwrite(fd, b"y", 1)
        clock.advance(10.0)  # past the window
        fs.pwrite(fd, b"y", 1)
        inj.disarm()

    def test_transient_rate_zero_draws_when_not_matching(self):
        """RNG draws happen only for matching ops: non-matching traffic
        does not perturb the stream (the determinism contract)."""
        clock, cluster = small_cluster()
        fs = cluster.fs
        inj = FaultInjector(FaultSpec(seed=1, device_faults=(
            DeviceFault("/pfs/target", "transient", rate=0.5),)),
            cluster).arm()
        state = inj._rng.getstate()
        fd = fs.open("/pfs/other", "w")
        fs.write(fd, b"x" * 1000)
        fs.close(fd)
        assert inj._rng.getstate() == state
        inj.disarm()

    def test_slowdown_degrades_device_inside_window(self):
        clock, cluster = small_cluster()
        fs = cluster.fs
        inj = FaultInjector(FaultSpec(device_faults=(
            DeviceFault("/pfs", "slowdown", factor=4.0, start=0.0, end=5.0),)),
            cluster).arm()
        device = cluster.shared_devices["/pfs"]
        assert device.slowdown == 4.0
        fd = fs.open("/pfs/f", "w")
        fs.write(fd, b"x" * (1 << 20))
        t_slow = clock.now
        clock.advance(10.0)  # close the window
        inj.poll()
        assert device.slowdown == 1.0
        fs.pwrite(fd, b"x" * (1 << 20), 0)
        t_fast = clock.now - 10.0 - t_slow
        assert t_slow > 2.0 * t_fast
        inj.disarm()
        fs.close(fd)

    def test_node_fault_fires_on_poll(self):
        clock, cluster = small_cluster(3)
        events = []
        inj = FaultInjector(
            FaultSpec(node_faults=(NodeFault("n1", at=5.0),)),
            cluster, emit=events.append).arm()
        inj.poll()
        assert cluster.is_alive("n1")
        clock.advance(5.0)
        inj.poll()
        assert not cluster.is_alive("n1")
        assert cluster.alive_node_names() == ["n0", "n2"]
        assert [e.kind for e in events] == ["node_failed"]
        assert events[0].node == "n1"
        # Idempotent: a second poll does not re-fire.
        inj.poll()
        assert inj.stats()["node"] == 1

    def test_dead_nodes_local_tier_unreachable(self):
        clock, cluster = small_cluster(2)
        fs = cluster.fs
        fd = fs.open("/local/n1/ssd/f", "w")
        fs.write(fd, b"x" * 10)
        fs.close(fd)
        cluster.fail_node("n1")
        with pytest.raises(FsError):
            fs.open("/local/n1/ssd/f", "r")
        # Post-mortem stat still answers (cached-inode semantics).
        assert fs.stat("/local/n1/ssd/f").size == 10
        # Shared mount survives.
        fd = fs.open("/pfs/g", "w")
        fs.close(fd)

    def test_last_node_cannot_die(self):
        clock, cluster = small_cluster(2)
        cluster.fail_node("n0")
        with pytest.raises(ValueError):
            cluster.fail_node("n1")

    def test_double_arm_rejected(self):
        clock, cluster = small_cluster()
        FaultInjector(FaultSpec(), cluster).arm()
        with pytest.raises(RuntimeError):
            FaultInjector(FaultSpec(), cluster).arm()


# ----------------------------------------------------------------------
# Resilient execution: retries, degradation, re-placement
# ----------------------------------------------------------------------
class TestRetries:
    def test_retry_policy_backoff_schedule(self):
        p = RetryPolicy(max_attempts=4, backoff_base=0.5, backoff_factor=2.0)
        assert p.backoff(1) == 0.0
        assert p.backoff(2) == 0.5
        assert p.backoff(3) == 1.0
        assert p.backoff(4) == 2.0
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_flaky_task_succeeds_on_retry(self):
        clock, cluster = small_cluster()
        runner, mapper = make_runner(
            cluster, clock, retry_policy=RetryPolicy(max_attempts=3))
        attempts = []

        def flaky(rt):
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("flaky")
            f = rt.open("/pfs/out.h5", "w")
            f.create_dataset("d", shape=(4,), dtype="f4",
                             data=np.zeros(4, dtype=np.float32))
            f.close()

        wf = Workflow("w", [Stage("s", [Task("t", flaky)])])
        result = runner.run(wf)
        assert len(attempts) == 3
        assert not result.failures
        assert result.retries == 2
        assert result.stage("s").task_durations["t"] > 0
        # Exactly one profile despite three attempts.
        assert list(mapper.profiles) == ["t"]
        # Backoff was charged to its own account: base + base*factor.
        assert clock.account(RETRY_BACKOFF_ACCOUNT) == pytest.approx(0.75)

    def test_fail_fast_without_policy_preserves_exception(self):
        clock, cluster = small_cluster()
        runner, mapper = make_runner(cluster, clock)

        def boom(rt):
            raise RuntimeError("boom")

        wf = Workflow("w", [Stage("s", [Task("t", boom)])])
        with pytest.raises(RuntimeError, match="boom"):
            runner.run(wf)
        # The partial result is preserved with the failure recorded.
        result = runner.last_result
        assert result is not None
        assert result.stage("s").aborted
        assert result.stage("s").failures["t"].attempts == 1
        assert "t" not in mapper.profiles

    def test_best_effort_stage_degrades_without_aborting(self):
        clock, cluster = small_cluster()
        runner, mapper = make_runner(cluster, clock)

        def boom(rt):
            raise RuntimeError("boom")

        wf = Workflow("w", [
            Stage("lossy", [
                writer_task("ok0", "/pfs/a.h5"),
                Task("bad", boom),
                writer_task("ok1", "/pfs/b.h5"),
            ], best_effort=True),
            Stage("after", [writer_task("downstream", "/pfs/c.h5")]),
        ])
        result = runner.run(wf)
        assert result.degraded
        assert set(result.failures) == {"bad"}
        assert not result.stage("lossy").aborted
        # The later tasks of the stage and the next stage still ran.
        assert set(result.stage("lossy").task_durations) == {"ok0", "ok1"}
        assert "downstream" in result.stage("after").task_durations
        assert set(mapper.profiles) == {"ok0", "ok1", "downstream"}

    def test_node_death_retry_replaces_onto_survivor(self):
        clock, cluster = small_cluster(2)
        spec = FaultSpec(node_faults=(NodeFault("n1", at=0.0),))
        inj = FaultInjector(spec, cluster)
        runner, mapper = make_runner(
            cluster, clock,
            retry_policy=RetryPolicy(max_attempts=2), faults=inj)
        inj.arm()
        ran_on = []

        def local_writer(rt):
            ran_on.append(rt.node)
            path = rt.local_path("ssd", "x.bin")
            fd = rt.fs.open(path, "w")
            rt.fs.write(fd, b"x" * 100)
            rt.fs.close(fd)

        # Two tasks: round-robin would put the second on n1, which dies
        # at t=0 — the stage poll kills it before placement, so both run
        # on the survivor.
        wf = Workflow("w", [Stage("s", [
            Task("t0", local_writer), Task("t1", local_writer)])])
        result = runner.run(wf)
        assert not result.failures
        assert ran_on == ["n0", "n0"]
        assert result.stage("s").placement == {"t0": "n0", "t1": "n0"}

    def test_mid_run_node_death_degrades_best_effort(self):
        """A node dying mid-stage fails tasks on its local tier; the
        best-effort stage records the loss and the run completes."""
        clock, cluster = small_cluster(2)
        spec = FaultSpec(node_faults=(NodeFault("n1", at=0.005),))
        inj = FaultInjector(spec, cluster)
        runner, mapper = make_runner(cluster, clock, faults=inj)
        inj.arm()

        def slow_local(rt):
            # Ensure the clock passes the node-death time first.
            rt.compute(0.01)
            path = rt.local_path("ssd", "y.bin")
            fd = rt.fs.open(path, "w")
            rt.fs.write(fd, b"x" * 100)
            rt.fs.close(fd)

        wf = Workflow("w", [Stage("s", [
            Task("t0", slow_local), Task("t1", slow_local)],
            best_effort=True)])
        result = runner.run(wf)
        assert set(result.failures) == {"t1"}
        assert "t0" in result.stage("s").task_durations
        assert cluster.dead_nodes == ["n1"]


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def _run(self, retries):
        from repro.experiments.fault_resilience import run_chaos_once

        run = run_chaos_once(0.10, retries=retries, seed=7)
        digests = {name: p.serialize() for name, p in
                   run.result.profiles.items()}
        return (json.dumps(run.result.to_json_dict(), sort_keys=True),
                digests, run.injected)

    def test_fixed_seed_replays_bit_for_bit(self):
        a_json, a_profiles, a_injected = self._run(retries=2)
        b_json, b_profiles, b_injected = self._run(retries=2)
        assert a_json == b_json
        assert a_injected == b_injected
        assert a_profiles.keys() == b_profiles.keys()
        for name in a_profiles:
            assert a_profiles[name] == b_profiles[name], name

    def test_different_seed_diverges(self):
        from repro.experiments.fault_resilience import run_chaos_once

        a = run_chaos_once(0.10, retries=0, seed=7)
        b = run_chaos_once(0.10, retries=0, seed=8)
        assert (a.injected != b.injected
                or a.result.wall_time != b.result.wall_time)

    def test_retries_recover_makespan(self):
        """The acceptance headline: under the same fault spec, retries
        beat no-retry (which pays the merge's recompute premium), and a
        fault-free run beats both."""
        from repro.experiments.fault_resilience import run_chaos_once

        clean = run_chaos_once(0.0)
        no_retry = run_chaos_once(0.10, retries=0, seed=7)
        retry = run_chaos_once(0.10, retries=2, seed=7)
        assert no_retry.lost_tasks > 0
        assert retry.lost_tasks < no_retry.lost_tasks
        assert no_retry.makespan > retry.makespan
        assert clean.makespan <= retry.makespan


# ----------------------------------------------------------------------
# Monitor integration under faults
# ----------------------------------------------------------------------
class TestMonitorFailureEvents:
    def _monitored_runner(self, cluster, clock, **kwargs):
        monitor = WorkflowMonitor(clock, MonitorConfig())
        mapper = DataSemanticMapper(clock, monitor=monitor)
        runner = WorkflowRunner(cluster, mapper, **kwargs)
        return runner, mapper, monitor

    def test_failure_events_and_counters(self):
        clock, cluster = small_cluster()
        runner, mapper, monitor = self._monitored_runner(
            cluster, clock, retry_policy=RetryPolicy(max_attempts=2))
        attempts = []

        def flaky(rt):
            attempts.append(1)
            if len(attempts) < 2:
                raise RuntimeError("flaky")

        def hopeless(rt):
            raise RuntimeError("always")

        wf = Workflow("w", [Stage("s", [
            Task("flaky", flaky), Task("hopeless", hopeless)],
            best_effort=True)])
        result = runner.run(wf)
        monitor.finish()
        snap = monitor.metrics_snapshot()

        def metric(name, **labels):
            for sample in snap[name]["values"]:
                if all(sample["labels"].get(k) == v
                       for k, v in labels.items()):
                    return sample["value"]
            return None

        # flaky and hopeless each got one second attempt.
        assert metric("dayu_task_retries_total") == 2
        # Non-final failures: flaky attempt 1 + hopeless attempt 1.
        assert metric("dayu_task_failures_total", fatal="false") == 2
        # Final failure: hopeless attempt 2 (budget spent).
        assert metric("dayu_task_failures_total", fatal="true") == 1
        # Running gauge is balanced: every started attempt ended.
        assert metric("dayu_tasks_running") == 0
        assert monitor.aggregator.tasks_running == 0
        assert monitor.reconciles()
        assert set(result.failures) == {"hopeless"}

    def test_stage_finished_published_on_abort(self):
        clock, cluster = small_cluster()
        runner, mapper, monitor = self._monitored_runner(cluster, clock)

        def boom(rt):
            raise RuntimeError("boom")

        wf = Workflow("w", [Stage("s", [Task("t", boom)])])
        with pytest.raises(RuntimeError):
            runner.run(wf)
        monitor.finish()
        # The stage lifecycle closed despite the abort, and reconciliation
        # still balances.
        snap = monitor.metrics_snapshot()
        kinds = {s["labels"]["kind"]: s["value"]
                 for s in snap["dayu_events_total"]["values"]}
        assert kinds.get("stage_started") == 1
        assert kinds.get("stage_finished") == 1
        assert kinds.get("task_failed") == 1
        assert monitor.reconciles()

    def test_node_failed_event_reaches_metrics(self):
        clock, cluster = small_cluster(2)
        monitor = WorkflowMonitor(clock, MonitorConfig())
        inj = FaultInjector(
            FaultSpec(node_faults=(NodeFault("n1", at=0.0),)),
            cluster, emit=monitor.publish).arm()
        inj.poll()
        monitor.finish()
        snap = monitor.metrics_snapshot()
        assert snap["dayu_node_failures_total"]["values"][0]["value"] == 1

    def test_live_graph_ignores_failed_attempts(self):
        """The live FTG only sees completed attempts — a retried task
        contributes exactly one profile, same as the post-hoc build."""
        clock, cluster = small_cluster()
        runner, mapper, monitor = self._monitored_runner(
            cluster, clock, retry_policy=RetryPolicy(max_attempts=2))
        attempts = []

        def flaky(rt):
            attempts.append(1)
            f = rt.open("/pfs/out.h5", "w" if len(attempts) > 1 else "w")
            f.create_dataset("d", shape=(8,), dtype="f4",
                             data=np.zeros(8, dtype=np.float32))
            f.close()
            if len(attempts) < 2:
                raise RuntimeError("late failure, after I/O")

        wf = Workflow("w", [Stage("s", [Task("t", flaky)])])
        runner.run(wf)
        monitor.finish()
        live = monitor.snapshot_ftg()
        assert monitor.aggregator.tasks_finished == ["t"]
        from repro.analyzer.graphs import GraphBuilder

        post = GraphBuilder("ftg")
        for p in mapper.profiles.values():
            post.add_profile(p)
        assert set(live.nodes) == set(post.build().nodes)


# ----------------------------------------------------------------------
# Middleware failure paths (satellites)
# ----------------------------------------------------------------------
def _mounted_fs():
    clock = SimClock()
    from repro.posix import SimFS
    from repro.storage import Mount, make_device

    return clock, SimFS(clock, mounts=[
        Mount("/pfs", make_device("beegfs")),
        Mount("/ram", make_device("ram"), node="n0"),
    ])


def _make_file(fs, path, nbytes=1000):
    fd = fs.open(path, "w")
    fs.write(fd, bytes(range(256)) * (nbytes // 256 + 1))
    fs.truncate(fd, nbytes)
    fs.close(fd)


class TestCacheRegression:
    def test_replica_paths_do_not_collide(self):
        """/pfs/a/b vs /pfs/a_b used to flatten to the same replica."""
        clock, fs = _mounted_fs()
        _make_file(fs, "/pfs/a/b", 100)
        _make_file(fs, "/pfs/a_b", 200)
        cache = TieredCache(fs, [BufferTier("ram", "/ram", 10_000)])
        r1 = cache.place("/pfs/a/b")
        r2 = cache.place("/pfs/a_b")
        assert r1 != r2
        assert fs.stat(r1).size == 100
        assert fs.stat(r2).size == 200

    def test_encoding_is_injective_on_adversarial_pairs(self):
        from repro.middleware.cache import _encode_path

        pairs = [("/a/_b", "/a_/b"), ("/a/b", "/a_b"), ("/a__b", "/a/_b"),
                 ("/x_s", "/x/s")]
        for left, right in pairs:
            assert _encode_path(left) != _encode_path(right), (left, right)

    def test_place_revalidates_stale_replica(self):
        """A source rewritten after caching must not be served stale."""
        clock, fs = _mounted_fs()
        _make_file(fs, "/pfs/f", 100)
        cache = TieredCache(fs, [BufferTier("ram", "/ram", 10_000)])
        replica = cache.place("/pfs/f")
        assert fs.stat(replica).size == 100
        # Rewrite the source with different content and size.
        clock.advance(1.0)
        _make_file(fs, "/pfs/f", 300)
        fresh = cache.place("/pfs/f")
        assert fs.stat(fresh).size == 300
        tier = cache.tiers[0]
        assert tier.used_bytes == 300

    def test_place_detects_same_size_rewrite(self):
        """Same-size rewrites are caught via mtime, not just size."""
        clock, fs = _mounted_fs()
        _make_file(fs, "/pfs/f", 100)
        cache = TieredCache(fs, [BufferTier("ram", "/ram", 10_000)])
        replica = cache.place("/pfs/f")
        before = fs.store_of(replica).read(0, 100)
        clock.advance(1.0)
        fd = fs.open("/pfs/f", "w")
        fs.write(fd, b"Z" * 100)
        fs.close(fd)
        fresh = cache.place("/pfs/f")
        assert fs.store_of(fresh).read(0, 100) == b"Z" * 100
        assert fs.store_of(fresh).read(0, 100) != before

    def test_resolve_evicts_stale_replica(self):
        clock, fs = _mounted_fs()
        _make_file(fs, "/pfs/f", 100)
        cache = TieredCache(fs, [BufferTier("ram", "/ram", 10_000)])
        replica = cache.place("/pfs/f")
        assert cache.resolve("/pfs/f") == replica
        clock.advance(1.0)
        _make_file(fs, "/pfs/f", 200)
        assert cache.resolve("/pfs/f") == "/pfs/f"
        assert not cache.is_cached("/pfs/f")
        assert cache.tiers[0].used_bytes == 0

    def test_fresh_token_travels_with_demotion(self):
        clock, fs = _mounted_fs()
        _make_file(fs, "/pfs/a", 600)
        _make_file(fs, "/pfs/b", 600)
        cache = TieredCache(fs, [
            BufferTier("ram", "/ram", 1000),
            BufferTier("pfs_cache", "/pfs/cache", 10_000),
        ])
        cache.place("/pfs/a", tier_name="ram")
        cache.place("/pfs/b", tier_name="ram")  # demotes /pfs/a
        assert "/pfs/a" in cache.tiers[1].resident
        # The demoted replica is still recognized as fresh.
        demoted = cache.resolve("/pfs/a")
        assert demoted == cache.tiers[1].resident["/pfs/a"]

    def test_deleted_source_keeps_replica(self):
        clock, fs = _mounted_fs()
        _make_file(fs, "/pfs/f", 100)
        cache = TieredCache(fs, [BufferTier("ram", "/ram", 10_000)])
        replica = cache.place("/pfs/f")
        fs.unlink("/pfs/f")
        assert cache.resolve("/pfs/f") == replica

    def test_failed_copy_leaves_no_partial_replica(self):
        clock, cluster = small_cluster()
        fs = cluster.fs
        _make_file(fs, "/pfs/src", 1000)
        # RAM tier lives on n0's local ssd mount for this test.
        cache = TieredCache(fs, [
            BufferTier("local", "/local/n0/ssd", 10_000)])
        inj = FaultInjector(FaultSpec(device_faults=(
            DeviceFault("/local/n0/ssd", "permanent", ops="write"),)),
            cluster).arm()
        with pytest.raises(DeviceError):
            cache.place("/pfs/src")
        inj.disarm()
        tier = cache.tiers[0]
        assert tier.resident == {}
        assert tier.tokens == {}
        assert tier.used_bytes == 0
        assert fs.listdir("/local/n0/ssd") == []
        # After the fault clears, placement succeeds normally.
        replica = cache.place("/pfs/src")
        assert fs.stat(replica).size == 1000


class TestAsyncStagerFailurePaths:
    """Pin the stager's failure contract: a submit that raises leaves the
    daemon timeline, the transfer list, and the namespace untouched."""

    def test_unreachable_source_rejected_cleanly(self):
        clock, cluster = small_cluster(2)
        fs = cluster.fs
        _make_file(fs, "/local/n1/ssd/src", 500)
        stager = AsyncStager(fs)
        free_before = stager._daemon_free_at
        cluster.fail_node("n1")
        with pytest.raises(FsError):
            stager.submit("/local/n1/ssd/src", "/pfs/dst")
        assert stager.transfers == []
        assert stager.pending == 0
        assert stager._daemon_free_at == free_before
        assert not fs.exists("/pfs/dst")

    def test_unreachable_destination_rejected_cleanly(self):
        clock, cluster = small_cluster(2)
        fs = cluster.fs
        _make_file(fs, "/pfs/src", 500)
        stager = AsyncStager(fs)
        cluster.fail_node("n1")
        dst = "/local/n1/ssd/dst"
        with pytest.raises(FsError):
            stager.submit("/pfs/src", dst)
        assert stager.transfers == []
        assert not fs.exists(dst)
        assert stager._daemon_free_at == 0.0
        # The daemon is still usable for good transfers afterwards.
        t = stager.submit("/pfs/src", "/local/n0/ssd/dst")
        assert stager.pending == 1
        stager.wait(t)
        assert fs.stat("/local/n0/ssd/dst").size == 500

    def test_submit_bypasses_io_fault_injection(self):
        """Current contract: submit materializes bytes via store-level
        reads/writes, below the pread/pwrite injection point — transient
        device faults do not fail background staging."""
        clock, cluster = small_cluster()
        fs = cluster.fs
        _make_file(fs, "/pfs/src", 500)
        inj = FaultInjector(FaultSpec(device_faults=(
            DeviceFault("/pfs", "transient", rate=1.0),)), cluster).arm()
        stager = AsyncStager(fs)
        t = stager.submit("/pfs/src", "/pfs/dst")
        inj.disarm()
        assert fs.stat("/pfs/dst").size == 500
        assert t.duration > 0

    def test_drain_timeline_consistent_after_failed_submit(self):
        clock, cluster = small_cluster(2)
        fs = cluster.fs
        _make_file(fs, "/pfs/a", 500)
        _make_file(fs, "/pfs/b", 500)
        stager = AsyncStager(fs)
        t1 = stager.submit("/pfs/a", "/local/n0/ssd/a")
        free_after_t1 = stager._daemon_free_at
        cluster.fail_node("n1")
        with pytest.raises(FsError):
            stager.submit("/pfs/b", "/local/n1/ssd/b")
        # The failed submit consumed no daemon time.
        assert stager._daemon_free_at == free_after_t1
        t2 = stager.submit("/pfs/b", "/local/n0/ssd/b")
        # t2 queues directly behind t1 on the background timeline.
        assert t2.completes_at > t1.completes_at
        assert stager._daemon_free_at == t2.completes_at
        assert stager.drain() > 0
        assert stager.pending == 0
