"""Unit tests for the Data Flow Diagnostics detectors and report."""

import json

import numpy as np
import pytest

from repro.diagnostics import (
    InsightKind,
    detect_data_reuse,
    detect_data_scattering,
    detect_disposable_data,
    detect_metadata_overhead,
    detect_partial_file_access,
    detect_readonly_sequential,
    detect_task_independence,
    detect_time_dependent_inputs,
    detect_vlen_layout,
    diagnose,
)
from repro.mapper import DaYuConfig, DataSemanticMapper
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


def make_env():
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("nvme"))])
    return clock, fs, DataSemanticMapper(clock, DaYuConfig())


class TestDataReuse:
    def test_multi_consumer_file_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("producer") as ctx:
            f = ctx.open(fs, "/d.h5", "w")
            f.create_dataset("x", shape=(10,), data=np.zeros(10))
            f.close()
        for name in ("c1", "c2", "c3"):
            with mapper.task(name) as ctx:
                f = ctx.open(fs, "/d.h5", "r")
                f["x"].read()
                f.close()
        insights = detect_data_reuse(list(mapper.profiles.values()))
        reuse = [i for i in insights if i.kind == InsightKind.DATA_REUSE]
        assert len(reuse) == 1
        assert reuse[0].subject == "/d.h5"
        assert reuse[0].evidence["consumers"] == 3
        assert reuse[0].guideline == "customized_caching"

    def test_write_after_read_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("seed") as ctx:
            f = ctx.open(fs, "/d.h5", "w")
            f.create_dataset("x", shape=(10,), data=np.zeros(10))
            f.close()
        with mapper.task("war") as ctx:
            f = ctx.open(fs, "/d.h5", "r+")
            v = f["x"].read()
            f["x"].write(v + 1)
            f.close()
        insights = detect_data_reuse(list(mapper.profiles.values()))
        war = [i for i in insights if i.kind == InsightKind.WRITE_AFTER_READ]
        assert any(i.tasks == ["war"] for i in war)

    def test_read_after_write_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("writer") as ctx:
            f = ctx.open(fs, "/e.h5", "w")
            f.create_dataset("x", shape=(4,), data=np.zeros(4))
            f.close()
        with mapper.task("reader") as ctx:
            f = ctx.open(fs, "/e.h5", "r")
            f["x"].read()
            f.close()
        insights = detect_data_reuse(list(mapper.profiles.values()))
        raw = [i for i in insights if i.kind == InsightKind.READ_AFTER_WRITE]
        assert raw and raw[0].evidence["producer"] == "writer"

    def test_single_consumer_not_reuse(self):
        clock, fs, mapper = make_env()
        with mapper.task("p") as ctx:
            f = ctx.open(fs, "/d.h5", "w")
            f.create_dataset("x", shape=(4,), data=np.zeros(4))
            f.close()
        with mapper.task("c") as ctx:
            f = ctx.open(fs, "/d.h5", "r")
            f["x"].read()
            f.close()
        reuse = [i for i in detect_data_reuse(list(mapper.profiles.values()))
                 if i.kind == InsightKind.DATA_REUSE]
        assert reuse == []


class TestTimeDependentInputs:
    def test_late_input_flagged(self):
        clock, fs, mapper = make_env()
        # External input files created outside any task.
        for path in ("/early.h5", "/late.h5"):
            from repro.hdf5 import H5File
            with H5File(fs, path, "w") as f:
                f.create_dataset("x", shape=(1000,), data=np.zeros(1000))
        with mapper.task("t1") as ctx:
            f = ctx.open(fs, "/early.h5", "r")
            f["x"].read()
            f.close()
            clock.advance(100.0)  # long compute phase
        with mapper.task("t2") as ctx:
            f = ctx.open(fs, "/late.h5", "r")
            f["x"].read()
            f.close()
        insights = detect_time_dependent_inputs(list(mapper.profiles.values()))
        subjects = {i.subject for i in insights}
        assert "/late.h5" in subjects
        assert "/early.h5" not in subjects

    def test_produced_files_not_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("t1") as ctx:
            f = ctx.open(fs, "/made.h5", "w")
            f.create_dataset("x", shape=(4,), data=np.zeros(4))
            f.close()
            clock.advance(100.0)
        with mapper.task("t2") as ctx:
            f = ctx.open(fs, "/made.h5", "r")
            f["x"].read()
            f.close()
        assert detect_time_dependent_inputs(list(mapper.profiles.values())) == []

    def test_empty_profiles(self):
        assert detect_time_dependent_inputs([]) == []


class TestDisposableData:
    def test_single_use_output_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("t1") as ctx:
            f = ctx.open(fs, "/tmp.h5", "w")
            f.create_dataset("x", shape=(4,), data=np.zeros(4))
            f.close()
        with mapper.task("t2") as ctx:
            f = ctx.open(fs, "/tmp.h5", "r")
            f["x"].read()
            f.close()
            g = ctx.open(fs, "/final.h5", "w")
            g.create_dataset("y", shape=(4,), data=np.zeros(4))
            g.close()
        with mapper.task("t3") as ctx:
            f = ctx.open(fs, "/final.h5", "r")
            f["y"].read()
            f.close()
        insights = detect_disposable_data(list(mapper.profiles.values()))
        subjects = {i.subject for i in insights}
        assert "/tmp.h5" in subjects  # idle while t3 runs
        assert "/final.h5" not in subjects  # used by the last task


class TestDataScattering:
    def test_many_small_datasets_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("writer") as ctx:
            f = ctx.open(fs, "/scatter.h5", "w")
            for i in range(32):
                f.create_dataset(f"s{i}", shape=(10,), dtype="i4",
                                 data=np.zeros(10, "i4"))  # 40 B each
            f.close()
        insights = detect_data_scattering(list(mapper.profiles.values()))
        assert len(insights) == 1
        assert insights[0].evidence["datasets"] == 32
        assert insights[0].guideline == "data_format_optimization"

    def test_vlen_datasets_exempt(self):
        """VL objects' inline footprint is just heap references; they must
        not read as 'tiny scattered datasets'."""
        clock, fs, mapper = make_env()
        with mapper.task("writer") as ctx:
            f = ctx.open(fs, "/vl.h5", "w")
            for i in range(16):
                f.create_dataset(f"v{i}", shape=(4,), dtype="vlen-bytes",
                                 data=[b"big" * 1000] * 4)
            f.close()
        assert detect_data_scattering(list(mapper.profiles.values())) == []

    def test_large_datasets_not_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("writer") as ctx:
            f = ctx.open(fs, "/big.h5", "w")
            for i in range(10):
                f.create_dataset(f"b{i}", shape=(10_000,), dtype="f8",
                                 data=np.zeros(10_000))
            f.close()
        assert detect_data_scattering(list(mapper.profiles.values())) == []


class TestPartialFileAccess:
    def test_metadata_only_sibling_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("prep") as ctx:
            f = ctx.open(fs, "/agg.h5", "w")
            f.create_dataset("contact_map", shape=(5000,), dtype="f8",
                             data=np.zeros(5000))
            f.create_dataset("rmsd", shape=(100,), dtype="f8",
                             data=np.zeros(100))
            f.close()
        with mapper.task("training") as ctx:
            f = ctx.open(fs, "/agg.h5", "r")
            # Opening the dataset reads only its header (metadata), not data.
            _ = f["contact_map"].shape
            f["rmsd"].read()
            f.close()
        profiles = [mapper.profiles["training"]]
        insights = detect_partial_file_access(profiles)
        assert any("contact_map" in i.subject for i in insights)
        assert all(i.guideline == "partial_file_access" for i in insights)


class TestMetadataOverhead:
    def test_small_chunked_dataset_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("w") as ctx:
            f = ctx.open(fs, "/small.h5", "w")
            f.create_dataset("c", shape=(64,), dtype="f8",
                             layout="chunked", chunks=(8,),
                             data=np.zeros(64))
            f.close()
        insights = detect_metadata_overhead(list(mapper.profiles.values()))
        assert any("/c" in i.subject for i in insights)

    def test_contiguous_not_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("w") as ctx:
            f = ctx.open(fs, "/c.h5", "w")
            f.create_dataset("d", shape=(64,), dtype="f8", data=np.zeros(64))
            f.close()
        assert detect_metadata_overhead(list(mapper.profiles.values())) == []


class TestReadonlySequential:
    def test_scanning_task_flagged(self):
        clock, fs, mapper = make_env()
        from repro.hdf5 import H5File
        for i in range(4):
            with H5File(fs, f"/sim{i}.h5", "w") as f:
                f.create_dataset("x", shape=(1000,), data=np.zeros(1000))
        with mapper.task("aggregate") as ctx:
            for i in range(4):
                f = ctx.open(fs, f"/sim{i}.h5", "r")
                f["x"].read()
                f.close()
        insights = detect_readonly_sequential(list(mapper.profiles.values()))
        assert len(insights) == 1
        assert insights[0].subject == "aggregate"
        assert insights[0].evidence["files"] == 4


class TestTaskIndependence:
    def test_independent_pair_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("training") as ctx:
            f = ctx.open(fs, "/model.h5", "w")
            f.create_dataset("w", shape=(10,), data=np.zeros(10))
            f.close()
        with mapper.task("inference") as ctx:
            f = ctx.open(fs, "/results.h5", "w")
            f.create_dataset("out", shape=(10,), data=np.zeros(10))
            f.close()
        insights = detect_task_independence(list(mapper.profiles.values()))
        assert len(insights) == 1
        assert insights[0].tasks == ["training", "inference"]
        assert insights[0].guideline == "task_parallelization"

    def test_dependent_pair_not_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("a") as ctx:
            f = ctx.open(fs, "/shared.h5", "w")
            f.create_dataset("x", shape=(4,), data=np.zeros(4))
            f.close()
        with mapper.task("b") as ctx:
            f = ctx.open(fs, "/shared.h5", "r")
            f["x"].read()
            f.close()
        assert detect_task_independence(list(mapper.profiles.values())) == []


class TestVlenLayout:
    def test_contiguous_vlen_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("save") as ctx:
            f = ctx.open(fs, "/arldm.h5", "w")
            f.create_dataset("image0", shape=(10,), dtype="vlen-bytes",
                             data=[b"img" * (i + 1) for i in range(10)])
            f.close()
        insights = detect_vlen_layout(list(mapper.profiles.values()))
        assert len(insights) == 1
        assert "image0" in insights[0].subject

    def test_chunked_vlen_not_flagged(self):
        clock, fs, mapper = make_env()
        with mapper.task("save") as ctx:
            f = ctx.open(fs, "/arldm.h5", "w")
            f.create_dataset("image0", shape=(10,), dtype="vlen-bytes",
                             layout="chunked", chunks=(5,),
                             data=[b"img"] * 10)
            f.close()
        assert detect_vlen_layout(list(mapper.profiles.values())) == []


class TestDiagnoseReport:
    def _workflow(self):
        clock, fs, mapper = make_env()
        with mapper.task("producer") as ctx:
            f = ctx.open(fs, "/scatter.h5", "w")
            for i in range(16):
                f.create_dataset(f"s{i}", shape=(8,), dtype="i4",
                                 data=np.zeros(8, "i4"))
            f.close()
        for name in ("c1", "c2"):
            with mapper.task(name) as ctx:
                f = ctx.open(fs, "/scatter.h5", "r")
                f["s0"].read()
                f.close()
        return list(mapper.profiles.values())

    def test_diagnose_runs_all_detectors(self):
        report = diagnose(self._workflow())
        kinds = {i.kind for i in report.insights}
        assert InsightKind.DATA_REUSE in kinds
        assert InsightKind.DATA_SCATTERING in kinds

    def test_threshold_routing(self):
        # Tighten scattering threshold until it stops firing.
        report = diagnose(self._workflow(), min_datasets=100)
        assert report.by_kind(InsightKind.DATA_SCATTERING) == []

    def test_unknown_threshold_rejected(self):
        with pytest.raises(TypeError, match="unknown diagnose"):
            diagnose([], bogus_threshold=1)

    def test_summary_and_json(self):
        report = diagnose(self._workflow())
        text = report.summary()
        assert "guideline:" in text
        parsed = json.loads(report.to_json())
        assert len(parsed) == len(report)

    def test_empty_summary(self):
        assert "No dataflow issues" in diagnose([]).summary()

    def test_by_guideline_groups(self):
        groups = diagnose(self._workflow()).by_guideline()
        assert "customized_caching" in groups
        assert all(i.guideline == g for g, items in groups.items() for i in items)
