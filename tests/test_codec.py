"""Binary trace codec: JSON↔binary equivalence, streaming I/O, skipping,
and the coalesced page-run storage behind the region histograms."""

import io
import json

import pytest

from repro.mapper import codec
from repro.mapper.config import DaYuConfig
from repro.mapper.mapper import TaskProfile
from repro.mapper.persist import load_profile, load_profiles_from_host_dir
from repro.mapper.stats import DatasetIoStats, _coalesce_runs
from repro.simclock import TimeSpan
from repro.vfd.base import IoClass
from repro.vfd.tracing import FileSession, VfdIoRecord
from repro.vol.tracer import DataObjectProfile


def make_profile(task="t0"):
    """A hand-built profile exercising every serialized field, including
    the awkward ones: None timestamps, unset first_raw_op, negative-able
    floats, unicode names, shared interned strings."""
    file_a = "/pfs/run/μ-data.h5"
    file_b = "/pfs/run/other.h5"
    records = [
        VfdIoRecord(task=task, file=file_a, op="write", offset=0,
                    nbytes=4096, start=1.25, duration=0.5,
                    access_type=IoClass.METADATA, data_object=None),
        VfdIoRecord(task=task, file=file_a, op="read", offset=4096,
                    nbytes=123, start=2.0, duration=0.0,
                    access_type=IoClass.RAW, data_object="/ds/α"),
        VfdIoRecord(task=None, file=file_b, op="write", offset=1 << 40,
                    nbytes=0, start=0.1, duration=1e-9,
                    access_type=IoClass.RAW, data_object="/ds/α"),
    ]
    sessions = [
        FileSession(task=task, file=file_a, open_time=1.0, close_time=3.5,
                    read_ops=1, write_ops=1, read_bytes=123,
                    write_bytes=4096, sequential_ops=1, sequential_raw_ops=1,
                    metadata_ops=1, raw_ops=1, data_objects=["/ds/α"]),
        FileSession(task=task, file=file_b, open_time=4.0, close_time=None),
    ]
    objects = [
        DataObjectProfile(task=task, file=file_a, object_name="/ds/α",
                          acquired=1.0, released=3.0, open_count=2,
                          shape=(64, 128), dtype="float64", layout="chunked",
                          nbytes=64 * 128 * 8, reads=1, writes=0,
                          elements_read=8192),
        DataObjectProfile(task=None, file=file_b, object_name="/empty",
                          acquired=0.0, released=None),
    ]
    full = DatasetIoStats(task=task, file=file_a, data_object="/ds/α",
                          reads=3, writes=2, bytes_read=300, bytes_written=200,
                          data_ops=4, data_bytes=450, metadata_ops=1,
                          metadata_bytes=50, io_time=0.125,
                          first_start=1.5, last_end=2.5, first_raw_op="read")
    full.regions = {0: 2, 1: 2, 7: 1, 1000000: 3}
    bare = DatasetIoStats(task=None, file=file_b, data_object="/empty")
    return TaskProfile(
        task=task,
        span=TimeSpan(0.5, 9.75),
        files=[file_a, file_b],
        object_profiles=objects,
        file_sessions=sessions,
        io_records=records,
        dataset_stats=[full, bare],
    )


class TestRoundTrip:
    def test_every_field_survives(self):
        p = make_profile()
        q = codec.decode_profile(codec.encode_profile(p))
        assert q.to_json_dict() == p.to_json_dict()

    def test_dataclass_level_equality(self):
        p = make_profile()
        q = codec.decode_profile(codec.encode_profile(p))
        assert q.io_records == p.io_records
        assert [s.to_json_dict() for s in q.file_sessions] == \
               [s.to_json_dict() for s in p.file_sessions]
        assert q.object_profiles == p.object_profiles
        for a, b in zip(q.dataset_stats, p.dataset_stats):
            assert a.regions == b.regions
            assert a.first_raw_op == b.first_raw_op
            assert a.first_start == b.first_start and a.last_end == b.last_end

    def test_binary_vs_json_loaders_agree(self):
        p = make_profile()
        via_binary = load_profile(codec.encode_profile(p))
        via_json = load_profile(p.serialize())
        assert via_binary.to_json_dict() == via_json.to_json_dict()

    def test_empty_profile(self):
        p = TaskProfile(task="empty", span=TimeSpan(0.0, 0.0), files=[],
                        object_profiles=[], file_sessions=[], io_records=[],
                        dataset_stats=[])
        q = codec.decode_profile(codec.encode_profile(p))
        assert q.to_json_dict() == p.to_json_dict()

    def test_float_exactness(self):
        p = make_profile()
        p.span = TimeSpan(1 / 3, 2 / 3)
        p.dataset_stats[0].io_time = 0.1 + 0.2  # not exactly 0.3
        q = codec.decode_profile(codec.encode_profile(p))
        assert q.span.start == p.span.start
        assert q.dataset_stats[0].io_time == p.dataset_stats[0].io_time


class TestSkipRecords:
    def test_records_skipped_rest_identical(self):
        p = make_profile()
        q = codec.decode_profile(codec.encode_profile(p),
                                 with_io_records=False)
        assert q.io_records == []
        want = p.to_json_dict()
        got = q.to_json_dict()
        want.pop("io_records")
        got.pop("io_records")
        assert got == want

    def test_json_loader_honors_flag_too(self):
        p = make_profile()
        q = load_profile(p.serialize(), with_io_records=False)
        assert q.io_records == []
        assert len(q.dataset_stats) == len(p.dataset_stats)


class TestStreaming:
    def test_write_read_file_object(self, tmp_path):
        p = make_profile()
        path = tmp_path / f"t0{codec.BINARY_TRACE_SUFFIX}"
        with open(path, "wb") as fp:
            codec.write_profile(fp, p)
        with open(path, "rb") as fp:
            q = codec.read_profile(fp)
        assert q.to_json_dict() == p.to_json_dict()
        assert codec.is_binary_trace(path.read_bytes())

    def test_sniffing(self):
        p = make_profile()
        assert codec.is_binary_trace(codec.encode_profile(p))
        assert not codec.is_binary_trace(p.serialize())
        assert not codec.is_binary_trace(b"")

    def test_corrupt_payload_rejected(self):
        blob = codec.encode_profile(make_profile())
        with pytest.raises(ValueError):
            codec.decode_profile(blob[:-3])

    def test_mixed_format_directory(self, tmp_path):
        p = make_profile("alpha")
        r = make_profile("beta")
        (tmp_path / "alpha.json").write_bytes(p.serialize())
        (tmp_path / "beta.dayu").write_bytes(codec.encode_profile(r))
        loaded = load_profiles_from_host_dir(str(tmp_path))
        assert sorted(q.task for q in loaded) == ["alpha", "beta"]


class TestSizes:
    def test_binary_much_smaller_than_json(self):
        p = make_profile()
        assert len(codec.encode_profile(p)) * 3 < len(p.serialize())

    def test_trace_nbytes_match_encodings(self):
        p = make_profile()
        assert p.vfd_binary_bytes == len(
            codec.encode_vfd_trace(p.io_records, p.file_sessions))
        assert p.vol_binary_bytes == len(
            codec.encode_vol_trace(p.object_profiles))

    def test_vfd_bytes_grow_with_records(self):
        p = make_profile()
        fewer = codec.vfd_trace_nbytes(p.io_records[:1], p.file_sessions)
        assert p.vfd_binary_bytes > fewer > 0


class TestConfig:
    def test_trace_format_validated(self):
        assert DaYuConfig(trace_format="binary").trace_format == "binary"
        assert DaYuConfig().trace_format == "json"
        with pytest.raises(ValueError):
            DaYuConfig(trace_format="xml")

    def test_config_drives_save_format(self):
        from repro.mapper.mapper import DataSemanticMapper
        from repro.simclock import SimClock

        p = make_profile()
        mapper = DataSemanticMapper(SimClock(),
                                    DaYuConfig(trace_format="binary"))
        suffix, blob = mapper._serialized(p, None)
        assert suffix == codec.BINARY_TRACE_SUFFIX
        assert codec.is_binary_trace(blob)
        suffix, blob = mapper._serialized(p, "json")
        assert suffix == ".json"
        json.loads(blob)


class TestCoalescedRegions:
    def naive_observe(self, spans, page_size=4096):
        hist = {}
        for offset, nbytes in spans:
            last = max(offset, offset + nbytes - 1)
            for page in range(offset // page_size, last // page_size + 1):
                hist[page] = hist.get(page, 0) + 1
        return hist

    def test_observe_matches_naive_per_page_histogram(self):
        spans = [(0, 4096), (0, 8192), (4096, 1), (12288, 20000),
                 (1 << 30, 4096), (5000, 0)]
        stats = DatasetIoStats(task="t", file="f", data_object="d")
        for offset, nbytes in spans:
            rec = VfdIoRecord(task="t", file="f", op="read", offset=offset,
                              nbytes=nbytes, start=0.0, duration=0.0,
                              access_type=IoClass.RAW, data_object="d")
            stats.observe(rec, page_size=4096)
        assert stats.regions == self.naive_observe(spans)

    def test_runs_are_sorted_disjoint_maximal(self):
        stats = DatasetIoStats(task="t", file="f", data_object="d")
        stats.regions = {0: 1, 1: 1, 2: 1, 5: 2, 6: 2, 9: 1}
        assert stats.region_runs() == [(0, 2, 1), (5, 6, 2), (9, 9, 1)]

    def test_coalesce_overlapping_increments(self):
        # Two overlapping spans stack; adjacent equal levels merge.
        assert _coalesce_runs([(0, 9, 1), (5, 14, 1)]) == \
               [(0, 4, 1), (5, 9, 2), (10, 14, 1)]
        assert _coalesce_runs([(0, 4, 1), (5, 9, 1)]) == [(0, 9, 1)]
        assert _coalesce_runs([]) == []

    def test_large_write_is_cheap_to_record(self):
        stats = DatasetIoStats(task="t", file="f", data_object="d")
        rec = VfdIoRecord(task="t", file="f", op="write", offset=0,
                          nbytes=1 << 30, start=0.0, duration=0.1,
                          access_type=IoClass.RAW, data_object="d")
        stats.observe(rec, page_size=4096)
        # One run, not 262144 dict entries.
        assert stats.region_runs() == [(0, (1 << 30) // 4096 - 1, 1)]
        payload = stats.to_json_dict()
        assert len(payload["regions"]) == (1 << 30) // 4096
