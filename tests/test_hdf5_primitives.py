"""Unit tests for the format primitives: superblock, datatypes, dataspaces,
object headers, layouts, free space, metadata cache."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hdf5.dataspace import Dataspace, Selection, selection_runs
from repro.hdf5.datatype import Datatype
from repro.hdf5.errors import H5FormatError, H5TypeError
from repro.hdf5.format import SUPERBLOCK_SIZE, Superblock
from repro.hdf5.freespace import FreeSpaceManager
from repro.hdf5.layout import (
    ChunkedLayout,
    CompactLayout,
    ContiguousLayout,
    decode_layout,
    encode_layout,
)
from repro.hdf5.meta_cache import MetadataCache
from repro.hdf5.oheader import (
    Message,
    MessageType,
    ObjectHeader,
    ObjectKind,
    decode_attribute,
    decode_link,
    encode_attribute,
    encode_link,
)


class TestSuperblock:
    def test_roundtrip(self):
        sb = Superblock(root_addr=123, eof_addr=4567)
        decoded = Superblock.decode(sb.encode())
        assert decoded.root_addr == 123
        assert decoded.eof_addr == 4567

    def test_fixed_size(self):
        assert len(Superblock().encode()) == SUPERBLOCK_SIZE

    def test_bad_signature_rejected(self):
        data = bytearray(Superblock().encode())
        data[0] ^= 0xFF
        with pytest.raises(H5FormatError, match="signature"):
            Superblock.decode(bytes(data))

    def test_truncated_rejected(self):
        with pytest.raises(H5FormatError):
            Superblock.decode(b"\x00" * 4)


class TestDatatype:
    @pytest.mark.parametrize(
        "code,size",
        [("i1", 1), ("i8", 8), ("u4", 4), ("f4", 4), ("f8", 8), ("S16", 16)],
    )
    def test_fixed_itemsize(self, code, size):
        assert Datatype(code).itemsize == size
        assert not Datatype(code).is_vlen

    def test_vlen_itemsize_is_ref_size(self):
        assert Datatype("vlen-bytes").itemsize == 14
        assert Datatype("vlen-str").is_vlen

    def test_of_numpy_dtype(self):
        assert Datatype.of(np.dtype("float64")).code == "f8"
        assert Datatype.of(np.float32).code == "f4"
        assert Datatype.of(np.dtype("S8")).code == "S8"

    def test_of_python_types(self):
        assert Datatype.of(bytes).code == "vlen-bytes"
        assert Datatype.of(str).code == "vlen-str"

    def test_of_passthrough(self):
        dt = Datatype("f8")
        assert Datatype.of(dt) is dt

    def test_unknown_code_rejected(self):
        with pytest.raises(H5TypeError):
            Datatype("q16")

    def test_numpy_dtype_of_vlen_rejected(self):
        with pytest.raises(H5TypeError):
            Datatype("vlen-str").numpy_dtype

    def test_heap_codec_str(self):
        dt = Datatype("vlen-str")
        assert dt.from_heap_bytes(dt.to_heap_bytes("héllo")) == "héllo"

    def test_heap_codec_bytes(self):
        dt = Datatype("vlen-bytes")
        assert dt.from_heap_bytes(dt.to_heap_bytes(b"\x00\x01")) == b"\x00\x01"

    def test_heap_codec_type_errors(self):
        with pytest.raises(H5TypeError):
            Datatype("vlen-str").to_heap_bytes(b"not str")
        with pytest.raises(H5TypeError):
            Datatype("f8").to_heap_bytes(b"x")

    def test_serialization_roundtrip(self):
        for code in ("i4", "f8", "S32", "vlen-str"):
            encoded = Datatype(code).encode()
            decoded, _ = Datatype.decode(encoded)
            assert decoded.code == code


class TestDataspace:
    def test_npoints(self):
        assert Dataspace((3, 4, 5)).npoints == 60
        assert Dataspace(()).npoints == 1
        assert Dataspace((0, 10)).npoints == 0

    def test_roundtrip(self):
        space = Dataspace((7, 11))
        decoded, offset = Dataspace.decode(space.encode())
        assert decoded == space
        assert offset == len(space.encode())

    def test_negative_dim_rejected(self):
        with pytest.raises(H5TypeError):
            Dataspace((-1,))


class TestSelection:
    def test_all_resolves_to_shape(self):
        space = Dataspace((4, 6))
        assert Selection.all().resolve(space) == ((0, 4), (0, 6))

    def test_hyperslab_resolve(self):
        space = Dataspace((10,))
        sel = Selection.hyperslab(((2, 5),))
        assert sel.resolve(space) == ((2, 5),)
        assert sel.npoints(space) == 5
        assert sel.out_shape(space) == (5,)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(H5TypeError):
            Selection.hyperslab(((0, 1),)).resolve(Dataspace((2, 2)))

    def test_overrun_rejected(self):
        with pytest.raises(H5TypeError):
            Selection.hyperslab(((5, 10),)).resolve(Dataspace((8,)))

    def test_negative_rejected(self):
        with pytest.raises(H5TypeError):
            Selection.hyperslab(((-1, 2),))


class TestSelectionRuns:
    def test_full_1d_is_one_run(self):
        assert selection_runs(Dataspace((100,)), Selection.all()) == [(0, 100)]

    def test_full_nd_is_one_run(self):
        assert selection_runs(Dataspace((4, 5, 6)), Selection.all()) == [(0, 120)]

    def test_partial_1d(self):
        sel = Selection.hyperslab(((10, 20),))
        assert selection_runs(Dataspace((100,)), sel) == [(10, 20)]

    def test_row_block_2d(self):
        # Rows 1-2 of a 4x5: full rows coalesce per row... actually they are
        # adjacent, but the partially-selected axis is axis 0, so the block
        # is one contiguous run of 2*5 elements.
        sel = Selection.hyperslab(((1, 2), (0, 5)))
        assert selection_runs(Dataspace((4, 5)), sel) == [(5, 10)]

    def test_column_block_2d_scatters(self):
        # Columns 1-2 of each of 3 rows: one run per row.
        sel = Selection.hyperslab(((0, 3), (1, 2)))
        assert selection_runs(Dataspace((3, 5)), sel) == [(1, 2), (6, 2), (11, 2)]

    def test_empty_selection(self):
        sel = Selection.hyperslab(((0, 0),))
        assert selection_runs(Dataspace((5,)), sel) == []

    def test_scalar_space(self):
        assert selection_runs(Dataspace(()), Selection.all()) == [(0, 1)]

    @given(
        st.tuples(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8)),
        st.data(),
    )
    def test_runs_cover_exactly_the_selection(self, shape, data):
        """Property: runs form a disjoint exact cover of the selected flat
        indices, in ascending order."""
        space = Dataspace(shape)
        slabs = []
        for dim in shape:
            start = data.draw(st.integers(0, dim - 1))
            count = data.draw(st.integers(1, dim - start))
            slabs.append((start, count))
        sel = Selection.hyperslab(slabs)
        runs = selection_runs(space, sel)
        covered = []
        for start, length in runs:
            covered.extend(range(start, start + length))
        # Reference: numpy index arithmetic.
        idx = np.arange(space.npoints).reshape(shape)
        slices = tuple(slice(s, s + c) for s, c in slabs)
        expected = idx[slices].reshape(-1).tolist()
        assert covered == expected
        assert covered == sorted(set(covered))


class TestObjectHeader:
    def _header(self):
        return ObjectHeader(
            kind=ObjectKind.DATASET,
            messages=[
                Message(MessageType.DATASPACE, b"\x01" + b"\x08" + b"\x00" * 7),
                Message(MessageType.DATATYPE, b"\x02\x00\x00\x00f8"),
            ],
        )

    def test_roundtrip(self):
        h = self._header()
        decoded = ObjectHeader.decode(h.encode())
        assert decoded.kind == ObjectKind.DATASET
        assert len(decoded.messages) == 2
        assert decoded.messages[0].payload == h.messages[0].payload
        assert decoded.capacity == h.capacity

    def test_encode_pads_to_capacity(self):
        h = self._header()
        assert len(h.encode()) == h.capacity

    def test_overflow_rejected(self):
        h = self._header()
        h.messages.append(Message(MessageType.ATTRIBUTE, b"z" * 1000))
        with pytest.raises(H5FormatError):
            h.encode()

    def test_capacity_for_doubles(self):
        assert ObjectHeader.capacity_for(10) == 256
        assert ObjectHeader.capacity_for(257) == 512
        assert ObjectHeader.capacity_for(1025) == 2048

    def test_peek_capacity(self):
        h = self._header()
        assert ObjectHeader.peek_capacity(h.encode()) == h.capacity

    def test_find_and_replace(self):
        h = self._header()
        assert h.find(MessageType.DATASPACE) is not None
        assert h.find(MessageType.LAYOUT) is None
        h.replace(MessageType.LAYOUT, b"LL")
        assert h.find(MessageType.LAYOUT).payload == b"LL"
        h.replace(MessageType.LAYOUT, b"MM")
        assert len(h.find_all(MessageType.LAYOUT)) == 1

    def test_remove(self):
        h = self._header()
        n = h.remove(lambda m: m.type == MessageType.DATATYPE)
        assert n == 1
        assert h.find(MessageType.DATATYPE) is None

    def test_bad_signature(self):
        with pytest.raises(H5FormatError):
            ObjectHeader.decode(b"XXXX" + b"\x00" * 60)


class TestLinkAndAttributeCodecs:
    def test_link_roundtrip(self):
        payload = encode_link("dset_1", ObjectKind.DATASET, 0xDEADBEEF)
        assert decode_link(payload) == ("dset_1", ObjectKind.DATASET, 0xDEADBEEF)

    def test_link_unicode_name(self):
        payload = encode_link("数据", ObjectKind.GROUP, 42)
        assert decode_link(payload)[0] == "数据"

    def test_attribute_roundtrip(self):
        payload = encode_attribute("units", "vlen-str", b"meters")
        assert decode_attribute(payload) == ("units", "vlen-str", b"meters")


class TestLayoutCodec:
    def test_compact_roundtrip(self):
        lay = decode_layout(encode_layout(CompactLayout(b"rawdata")))
        assert isinstance(lay, CompactLayout)
        assert lay.data == b"rawdata"

    def test_contiguous_roundtrip(self):
        lay = decode_layout(encode_layout(ContiguousLayout(addr=4096, size=800)))
        assert isinstance(lay, ContiguousLayout)
        assert (lay.addr, lay.size) == (4096, 800)
        assert lay.allocated

    def test_unallocated_contiguous(self):
        lay = decode_layout(encode_layout(ContiguousLayout()))
        assert not lay.allocated

    def test_chunked_roundtrip(self):
        lay = decode_layout(encode_layout(ChunkedLayout((16, 32), btree_addr=77)))
        assert isinstance(lay, ChunkedLayout)
        assert lay.chunk_shape == (16, 32)
        assert lay.btree_addr == 77

    def test_chunk_grid(self):
        lay = ChunkedLayout((10,))
        assert lay.chunk_grid((25,)) == (3,)
        assert lay.chunk_grid((30,)) == (3,)

    def test_bad_chunk_shape(self):
        from repro.hdf5.errors import H5LayoutError

        with pytest.raises(H5LayoutError):
            ChunkedLayout((0,))

    def test_empty_payload_rejected(self):
        with pytest.raises(H5FormatError):
            decode_layout(b"")


class TestFreeSpaceManager:
    def test_allocations_dont_overlap(self):
        fsm = FreeSpaceManager()
        a = fsm.allocate(100)
        b = fsm.allocate(200)
        assert a + 100 <= b or b + 200 <= a

    def test_first_allocation_after_superblock(self):
        fsm = FreeSpaceManager()
        assert fsm.allocate(10) == SUPERBLOCK_SIZE

    def test_free_then_reuse(self):
        fsm = FreeSpaceManager()
        a = fsm.allocate(100)
        fsm.allocate(50)  # keeps EOF above the hole
        fsm.free(a, 100)
        c = fsm.allocate(80)
        assert c == a  # first-fit reuses the hole

    def test_free_merges_adjacent(self):
        fsm = FreeSpaceManager()
        a = fsm.allocate(100)
        b = fsm.allocate(100)
        fsm.allocate(10)
        fsm.free(a, 100)
        fsm.free(b, 100)
        assert fsm.free_extents == [(a, 200)]

    def test_eof_shrinks_when_tail_freed(self):
        fsm = FreeSpaceManager()
        fsm.allocate(100)
        b = fsm.allocate(50)
        fsm.free(b, 50)
        assert fsm.eof == SUPERBLOCK_SIZE + 100

    def test_allocate_at_eof_never_reuses(self):
        fsm = FreeSpaceManager()
        a = fsm.allocate(100)
        fsm.allocate(10)
        fsm.free(a, 100)
        c = fsm.allocate_at_eof(50)
        assert c >= SUPERBLOCK_SIZE + 110

    def test_fragmentation_metric(self):
        fsm = FreeSpaceManager()
        a = fsm.allocate(100)
        fsm.allocate(100)
        assert fsm.fragmentation() == 0.0
        fsm.free(a, 100)
        assert fsm.fragmentation() == pytest.approx(0.5)

    def test_zero_alloc_rejected(self):
        with pytest.raises(H5FormatError):
            FreeSpaceManager().allocate(0)

    def test_cannot_free_superblock(self):
        with pytest.raises(H5FormatError):
            FreeSpaceManager().free(0, 10)

    @given(st.lists(st.integers(1, 500), min_size=1, max_size=40))
    def test_property_no_overlaps(self, sizes):
        fsm = FreeSpaceManager()
        extents = sorted((fsm.allocate(s), s) for s in sizes)
        for (a1, s1), (a2, _s2) in zip(extents, extents[1:]):
            assert a1 + s1 <= a2


class TestMetadataCache:
    def test_miss_then_hit(self):
        cache = MetadataCache()
        loads = []
        loader = lambda: loads.append(1) or b"DATA"
        assert cache.read(100, 4, loader) == b"DATA"
        assert cache.read(100, 4, loader) == b"DATA"
        assert len(loads) == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_shorter_cached_block_is_miss(self):
        cache = MetadataCache()
        cache.put(100, b"AB")
        got = cache.read(100, 4, lambda: b"ABCD")
        assert got == b"ABCD"
        assert cache.misses == 1

    def test_longer_cached_block_truncates(self):
        cache = MetadataCache()
        cache.put(100, b"ABCDEF")
        assert cache.read(100, 4, lambda: pytest.fail("should not load")) == b"ABCD"

    def test_disabled_cache_always_loads(self):
        cache = MetadataCache(enabled=False)
        loads = []
        for _ in range(3):
            cache.read(1, 1, lambda: loads.append(1) or b"X")
        assert len(loads) == 3
        assert cache.hit_rate == 0.0

    def test_invalidate(self):
        cache = MetadataCache()
        cache.put(5, b"OLD")
        cache.invalidate(5)
        assert cache.read(5, 3, lambda: b"NEW") == b"NEW"

    def test_eviction_bounded_by_capacity(self):
        cache = MetadataCache(capacity_bytes=100)
        for i in range(20):
            cache.put(i, b"x" * 10)
        assert cache.size_bytes <= 100
        assert cache.entry_count <= 10

    def test_oversized_block_bypasses(self):
        cache = MetadataCache(capacity_bytes=10)
        cache.put(1, b"x" * 100)
        assert cache.peek(1) is None

    def test_put_replaces(self):
        cache = MetadataCache()
        cache.put(1, b"AAAA")
        cache.put(1, b"BB")
        assert cache.peek(1) == b"BB"
        assert cache.size_bytes == 2
