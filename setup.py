"""Legacy-install shim.

``pyproject.toml`` is the single source of truth for metadata and the
console scripts (``dayu-run``, ``dayu-analyze``, ``dayu-lint``,
``dayu-monitor``).  setuptools>=64 reads ``[project.scripts]`` from there
for both ``pip install .`` and ``python setup.py``-style installs, so no
entry points are redeclared here — redeclaring them risks the two install
paths drifting apart.  ``tests/test_monitor.py`` asserts the expected
CLI set is present in ``pyproject.toml``.
"""

from setuptools import setup

setup()
