#!/usr/bin/env python
"""Quickstart: profile a single task's dataflow with DaYu.

This example builds the smallest end-to-end DaYu pipeline:

1. a simulated node with a BeeGFS-like shared mount;
2. one task writing and reading datasets through the instrumented
   (VOL + VFD) HDF5-like stack;
3. the Data Semantic Mapper joining object semantics with low-level I/O;
4. the Workflow Analyzer rendering the Semantic Dataflow Graph — the
   paper's Figure 3 view — as a standalone interactive HTML file.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analyzer import build_sdg, to_html
from repro.diagnostics import diagnose
from repro.hdf5 import Selection
from repro.mapper import DaYuConfig, DataSemanticMapper, overhead_report
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


def main() -> None:
    # A one-node "cluster": a shared parallel-filesystem mount.
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/pfs", make_device("beegfs"))])

    # DaYu: the Input Parser reads the configuration...
    config = DaYuConfig.parse({"page_size": 4096}, clock)
    mapper = DataSemanticMapper(clock, config)

    # ...and the launcher announces each task.
    with mapper.task("quickstart_task") as ctx:
        f = ctx.open(fs, "/pfs/quickstart.h5", "w")
        # A contiguous dataset: whole-array access in one I/O.
        temps = f.create_dataset("dataset_1", shape=(4096,), dtype="f8",
                                 data=np.linspace(250.0, 320.0, 4096))
        # A chunked dataset: partial access touches only two chunks.
        counts = f.create_dataset("dataset_2", shape=(4096,), dtype="i4",
                                  layout="chunked", chunks=(512,),
                                  data=np.arange(4096, dtype=np.int32))
        temps.read()
        counts.read(Selection.hyperslab(((1024, 1024),)))
        f.close()

    profile = mapper.profiles["quickstart_task"]
    print(f"Task ran for {profile.duration * 1e3:.2f} simulated ms, "
          f"touching {len(profile.files)} file(s).\n")

    print("Per-dataset I/O statistics (the Characteristic Mapper join):")
    for stats in profile.dataset_stats:
        print(f"  {stats.data_object:<16} {stats.operation:<10} "
              f"ops={stats.access_count:<4} volume={stats.access_volume:>8} B  "
              f"metadata/data = {stats.metadata_ops}/{stats.data_ops}  "
              f"bandwidth={stats.bandwidth / 1e6:.1f} MB/s")

    report = overhead_report(clock, trace_storage_bytes=mapper.storage_bytes,
                             data_volume_bytes=mapper.data_volume())
    print(f"\nDaYu overhead: {report.total_percent:.3f}% of runtime "
          f"(VFD {report.vfd_percent:.3f}% / VOL {report.vol_percent:.3f}%), "
          f"trace storage {report.storage_percent:.3f}% of data volume.")

    insights = diagnose([profile])
    print(f"\n{insights.summary()}")

    sdg = build_sdg([profile], with_regions=True, region_bytes=4096)
    out = "quickstart_sdg.html"
    with open(out, "w") as fh:
        fh.write(to_html(sdg, title="Quickstart SDG (cf. paper Figure 3)"))
    print(f"\nWrote the interactive Semantic Dataflow Graph to ./{out}")


if __name__ == "__main__":
    main()
