#!/usr/bin/env python
"""Storm tracking: analyze the nine-stage PyFLEXTRKR pipeline with DaYu.

Reproduces the paper's Section VI-A study end to end:

1. run the full PyFLEXTRKR I/O skeleton on a simulated two-node cluster;
2. build and export the workflow's File-Task Graph (the paper's Figure 4);
3. diagnose the dataflow — data reuse, the stage-3 write-after-read, the
   stage-6 time-dependent inputs, disposable data, and the stage-9 data
   scattering (Figure 5);
4. print the optimization recommendations DaYu's guidelines derive.

Run:  python examples/storm_tracking_analysis.py
"""

from repro.analyzer import build_ftg, build_sdg, to_html
from repro.diagnostics import diagnose
from repro.experiments.common import fresh_env
from repro.guidelines import recommend
from repro.workloads.pyflextrkr import (
    PyflextrkrParams,
    build_pyflextrkr,
    prepare_pyflextrkr_inputs,
)


def main() -> None:
    env = fresh_env(n_nodes=2)
    params = PyflextrkrParams(
        data_dir="/beegfs/flex", n_files=8, grid=8192, n_parallel=4,
        small_datasets=32, speed_reads=23,
    )
    prepare_pyflextrkr_inputs(env.cluster, params)

    print("Running the nine-stage PyFLEXTRKR pipeline under DaYu...")
    result = env.runner.run(build_pyflextrkr(params))
    for stage in result.stage_results:
        print(f"  {stage.name:<22} wall={stage.wall_time * 1e3:8.1f} ms "
              f"({len(stage.task_durations)} task(s))")
    print(f"  total makespan: {result.wall_time:.3f} simulated seconds\n")

    profiles = list(env.mapper.profiles.values())
    ftg = build_ftg(profiles)
    with open("pyflextrkr_ftg.html", "w") as fh:
        fh.write(to_html(ftg, title="PyFLEXTRKR Workflow FTG (cf. Figure 4)"))
    stage9 = [p for p in profiles if p.task.startswith("run_speed")]
    with open("pyflextrkr_stage9_sdg.html", "w") as fh:
        fh.write(to_html(build_sdg(stage9),
                         title="PyFLEXTRKR Stage-9 SDG (cf. Figure 5)"))
    print("Wrote pyflextrkr_ftg.html and pyflextrkr_stage9_sdg.html\n")

    report = diagnose(profiles, late_fraction=0.25)
    print(report.summary())

    print("\nRecommended optimizations (strongest support first):")
    for rec in recommend(report.insights)[:8]:
        print(f"  - {rec}")


if __name__ == "__main__":
    main()
