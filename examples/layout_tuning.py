#!/usr/bin/env python
"""Data-layout tuning: the ARLDM variable-length data study.

Reproduces the paper's Section VI-C workflow:

1. run the ARLDM data-preparation stage with its default contiguous
   layout for variable-length image/text arrays;
2. let DaYu flag the layout (variable-length data → chunked, per the
   Section III-A.4 guidelines) and show the per-region SDG fragmentation;
3. rewrite the file with the layout converter and compare POSIX write
   operations and write time (the paper's Figures 8 and 13c);
4. demonstrate the consolidation tool on a scattered small-dataset file
   (the PyFLEXTRKR stage-9 fix, Figure 13a).

Run:  python examples/layout_tuning.py
"""

import numpy as np

from repro.analyzer import NodeKind, build_sdg
from repro.diagnostics import InsightKind, diagnose
from repro.experiments.common import fresh_env
from repro.guidelines import AccessPattern, advise_layout
from repro.hdf5 import H5File
from repro.middleware import consolidate_datasets, convert_layout, read_consolidated
from repro.workloads.arldm import ArldmParams, build_arldm


def vlen_layout_study() -> None:
    print("=== ARLDM: variable-length data layout ===")
    for layout in ("contiguous", "chunked"):
        env = fresh_env(n_nodes=1)
        params = ArldmParams(data_dir="/beegfs/arldm", items=20,
                             avg_image_bytes=131072, layout=layout, chunks=5,
                             heap_data_capacity=131072)
        result = env.runner.run(build_arldm(params))
        save = env.mapper.profiles["arldm_saveh5"]
        writes = sum(s.writes for s in save.dataset_stats)
        wall = result.stage("arldm_prepare").wall_time
        print(f"  {layout:<11} arldm_saveh5: {wall * 1e3:7.1f} ms, "
              f"{writes} POSIX writes")
        if layout == "contiguous":
            report = diagnose([save])
            for insight in report.by_kind(InsightKind.VLEN_LAYOUT)[:1]:
                print(f"    DaYu: {insight.description}")
            sdg = build_sdg([save], with_regions=True, region_bytes=262144)
            regions = [n for n, a in sdg.nodes(data=True)
                       if a["kind"] == NodeKind.REGION.value]
            print(f"    SDG shows dataset content spread over "
                  f"{len(regions)} file address regions (cf. Figure 8)")

    advice = advise_layout("vlen-bytes", 20, AccessPattern.RANDOM)
    print(f"  guideline: {advice.layout} — {advice.rationale}\n")


def consolidation_study() -> None:
    print("=== PyFLEXTRKR stage-9: consolidating scattered datasets ===")
    env = fresh_env(n_nodes=1)
    fs = env.cluster.fs
    scattered = "/beegfs/speed_stats.h5"
    with H5File(fs, scattered, "w") as f:
        for d in range(32):
            f.create_dataset(f"speed_{d:03d}", shape=(100,), dtype="i4",
                             data=np.arange(100, dtype=np.int32) * d)
    consolidate_datasets(fs, scattered, "/beegfs/speed_stats_merged.h5")

    def read_all(path, consolidated):
        fs.clear_log()
        t0 = env.clock.now
        with H5File(fs, path, "r") as f:
            if consolidated:
                big = f["consolidated"]
                for d in range(32):
                    read_consolidated(big, f"speed_{d:03d}")
            else:
                for d in range(32):
                    f[f"speed_{d:03d}"].read()
        return fs.op_count(op="read"), env.clock.now - t0

    ops_scattered, t_scattered = read_all(scattered, False)
    ops_merged, t_merged = read_all("/beegfs/speed_stats_merged.h5", True)
    print(f"  scattered:    {ops_scattered} read ops, {t_scattered * 1e3:6.2f} ms")
    print(f"  consolidated: {ops_merged} read ops, {t_merged * 1e3:6.2f} ms "
          f"({t_scattered / t_merged:.1f}x faster, cf. Figure 13a)\n")


def layout_converter_study() -> None:
    print("=== DDMD: chunked → contiguous conversion ===")
    env = fresh_env(n_nodes=1)
    fs = env.cluster.fs
    src = "/beegfs/sim_out.h5"
    with H5File(fs, src, "w") as f:
        for name, n in (("contact_map", 65536), ("point_cloud", 16384),
                        ("fnc", 1024), ("rmsd", 1024)):
            f.create_dataset(name, shape=(n,), dtype="f4",
                             layout="chunked", chunks=(max(n // 8, 1),),
                             data=np.zeros(n, dtype=np.float32))
    n = convert_layout(fs, src, "/beegfs/sim_out_contig.h5", layout="auto")
    print(f"  rewrote {n} datasets with the layout advisor")

    def read_ops(path):
        fs.clear_log()
        with H5File(fs, path, "r") as f:
            for name in ("contact_map", "point_cloud", "fnc", "rmsd"):
                f[name].read()
        return fs.op_count(op="read")

    before, after = read_ops(src), read_ops("/beegfs/sim_out_contig.h5")
    print(f"  full-file read: {before} ops (chunked) → {after} ops "
          f"(contiguous), cf. Figure 13b")


def main() -> None:
    vlen_layout_study()
    consolidation_study()
    layout_converter_study()


if __name__ == "__main__":
    main()
