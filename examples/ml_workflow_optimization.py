#!/usr/bin/env python
"""Molecular simulation with deep learning: optimize DDMD with DaYu.

Reproduces the paper's Section VI-B loop:

1. run the 4-stage DeepDriveMD pipeline (12 simulations → aggregate →
   training → inference) under DaYu profiling;
2. surface the key insight — the training task opens the aggregated
   ``contact_map`` but never reads its *data* (metadata-only access, the
   paper's Figure 7 pop-up) — plus the training/inference independence;
3. apply the optimizations (skip the unused dataset, stage simulation
   outputs to node-local SSD, co-locate, pipeline training+inference) and
   measure the per-iteration speedup (the paper's Figure 12).

Run:  python examples/ml_workflow_optimization.py
"""

from repro.diagnostics import InsightKind, diagnose
from repro.experiments.common import fresh_env
from repro.experiments.fig12_ddmd import Fig12Params, run_fig12
from repro.workloads.ddmd import DdmdParams, build_ddmd


def main() -> None:
    # ---------------- phase 1: profile the baseline -------------------
    env = fresh_env(n_nodes=2)
    params = DdmdParams(data_dir="/beegfs/ddmd", n_sim_tasks=12,
                        frames=1024, epochs=10, chunk_elems=1024)
    print("Running one DDMD iteration (12 simulations) under DaYu...")
    env.runner.run(build_ddmd(params))
    profiles = list(env.mapper.profiles.values())

    # The Figure 7 pop-up, straight from the joined statistics:
    training = env.mapper.profiles["training_0000"]
    for s in training.stats_for("/contact_map"):
        where = "aggregated file" if "aggregated" in s.file else "simulation file"
        print(f"  training → contact_map ({where}): "
              f"{s.access_count} accesses, {s.data_ops} data ops, "
              f"{s.metadata_ops} metadata ops "
              f"({'METADATA-ONLY' if s.metadata_only else 'reads data'})")

    report = diagnose(profiles)
    print("\nKey insights DaYu finds:")
    for kind in (InsightKind.PARTIAL_FILE_ACCESS, InsightKind.READONLY_SEQUENTIAL,
                 InsightKind.TASK_INDEPENDENCE, InsightKind.METADATA_OVERHEAD,
                 InsightKind.READ_AFTER_WRITE):
        for insight in report.by_kind(kind)[:2]:
            print(f"  - {insight}")

    # ------------- phase 2: apply the guidelines and measure ----------
    print("\nApplying the optimizations over 3 iterations "
          "(skip unused data + stage-in + co-locate + pipeline)...")
    table = run_fig12(Fig12Params(iterations=3))
    print(table.to_markdown())


if __name__ == "__main__":
    main()
