#!/usr/bin/env python
"""Climate ensemble analysis over netCDF, with automatic optimization.

DaYu's method applies to any descriptive format; this example exercises
the netCDF path end to end and then closes the loop with the automated
optimizer:

1. run a climate ensemble workflow (record-variable appends → regrid →
   statistics) under DaYu;
2. inspect how record interleaving shows up in the joined statistics
   (one scattered operation per record — netCDF's signature pattern);
3. diagnose, triage with the advisor, auto-build an optimization plan,
   and re-run with the plan's staging + co-scheduling applied;
4. quantify the improvement with the run comparison tool.

Run:  python examples/climate_netcdf_pipeline.py
"""

from repro.analyzer import compare_runs
from repro.diagnostics import advise, diagnose
from repro.experiments.common import fresh_env
from repro.optimizer import build_plan
from repro.workloads import ClimateParams, build_climate


def main() -> None:
    params = ClimateParams(data_dir="/beegfs/climate", n_models=6,
                           timesteps=16, cells=4096)

    # ---------------- baseline run ------------------------------------
    env = fresh_env(n_nodes=2)
    print("Running the climate ensemble (netCDF) under DaYu...")
    baseline = env.runner.run(build_climate(params))
    print(f"  baseline makespan: {baseline.wall_time:.3f} simulated s")

    model0 = env.mapper.profiles["model_000"]
    [temp] = [s for s in model0.dataset_stats
              if s.data_object == "/temperature"]
    print(f"  record interleaving: /temperature wrote "
          f"{temp.writes} separate records "
          f"({temp.bytes_written} B total) — one POSIX op per record\n")

    report = diagnose(env.mapper.profiles.values())
    print(advise(report.insights).render())

    # ---------------- automated optimization --------------------------
    plan = build_plan(report, env.cluster)
    print()
    print(plan.summary())

    env2 = fresh_env(n_nodes=2)
    # Re-simulate: run the ensemble, then stage + co-schedule downstream.
    opt_wf = build_climate(params)
    sim_stage, regrid_stage, stats_stage = opt_wf.stages
    runner = env2.runner
    runner.run(type(opt_wf)("climate_sim_only", [sim_stage]))
    plan.staged_paths = {
        params.member_file(i):
            f"/local/n0/ssd/member_{i:03d}.nc"
        for i in range(params.n_models)
    }
    for src, dst in plan.staged_paths.items():
        from repro.middleware import stage_in
        stage_in(env2.cluster.fs, src, dst)

    # Point regrid at the staged replicas and pin it to the data's node.
    staged_params = ClimateParams(
        data_dir=params.data_dir, n_models=params.n_models,
        timesteps=params.timesteps, cells=params.cells)
    from repro.workflow.scheduler import PinnedScheduler

    def staged_member(i):
        return plan.staged_paths[params.member_file(i)]

    def regrid_staged(rt):
        import numpy as np
        fields = []
        for i in range(params.n_models):
            f = rt.open_netcdf(staged_member(i), "r")
            fields.append(f.variable("temperature").read())
            f.close()
        mean = np.mean(np.stack(fields), axis=0).astype(np.float32)
        out = rt.open_netcdf(params.merged_file, "w")
        out.create_dimension("time", params.timesteps)
        out.create_dimension("cell", params.cells)
        merged = out.create_variable("mean_temperature", "f4", ["time", "cell"])
        out.enddef()
        merged.write(mean)
        out.close()

    regrid_stage.tasks[0].fn = regrid_staged
    runner.scheduler = PinnedScheduler({"regrid": "n0", "statistics": "n0"})
    optimized = runner.run(type(opt_wf)("climate_rest", [regrid_stage, stats_stage]))

    total_opt = optimized.wall_time
    # Compare the downstream stages (simulation is identical in both runs).
    base_downstream = (baseline.stage("regrid").wall_time
                       + baseline.stage("statistics").wall_time)
    print(f"\nDownstream stages: baseline {base_downstream * 1e3:.1f} ms → "
          f"optimized {total_opt * 1e3:.1f} ms "
          f"({base_downstream / total_opt:.2f}x)")

    cmp = compare_runs(
        [env.mapper.profiles["regrid"]],
        [env2.mapper.profiles["regrid"]],
    )
    print(cmp.to_markdown())


if __name__ == "__main__":
    main()
