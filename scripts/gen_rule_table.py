#!/usr/bin/env python
"""Regenerate the README's rule table from the live lint registry.

The table between the ``<!-- rule-table:begin -->`` and
``<!-- rule-table:end -->`` markers in README.md is generated — code,
name, severity, default enablement, and description all come from the
registered :class:`~repro.lint.rules.LintRule` objects, so documentation
cannot drift from the rules that actually run.

Run:    python scripts/gen_rule_table.py            # rewrite in place
Check:  python scripts/gen_rule_table.py --check    # exit 1 when stale
"""

from __future__ import annotations

import sys
from pathlib import Path

BEGIN = "<!-- rule-table:begin -->"
END = "<!-- rule-table:end -->"


def render_table() -> str:
    from repro.lint import all_rules

    lines = [
        "| Code  | Rule | Severity | Default | What it catches |",
        "|-------|------|----------|---------|-----------------|",
    ]
    for r in all_rules():
        desc = " ".join(r.description.split()).replace("|", "\\|")
        default = "on" if r.default_enabled else "opt-in"
        lines.append(f"| {r.code} | {r.name} | {r.severity.value} "
                     f"| {default} | {desc} |")
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    check = "--check" in argv
    readme = Path(__file__).resolve().parent.parent / "README.md"
    text = readme.read_text(encoding="utf-8")
    try:
        head, rest = text.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
    except ValueError:
        print(f"gen_rule_table: markers {BEGIN!r} / {END!r} "
              f"not found in {readme}", file=sys.stderr)
        return 2
    new = head + BEGIN + "\n" + render_table() + "\n" + END + tail
    if check:
        if new != text:
            print("gen_rule_table: README.md rule table is stale against "
                  "the rule registry; run "
                  "`python scripts/gen_rule_table.py`", file=sys.stderr)
            return 1
        print("gen_rule_table: README.md rule table is up to date")
        return 0
    if new != text:
        readme.write_text(new, encoding="utf-8")
        print(f"gen_rule_table: rewrote the rule table in {readme}")
    else:
        print("gen_rule_table: rule table already up to date")
    return 0


if __name__ == "__main__":
    sys.exit(main())
