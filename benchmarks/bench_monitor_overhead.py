"""Live-monitor cost: event throughput and end-to-end wall-time overhead.

Unlike the simulated-clock experiments, the monitor's cost is real
in-process CPU time, so both benchmarks measure actual wall clock.  The
acceptance bar (and the number recorded in ``BENCH_monitor.json`` at the
repo root): attaching the full monitor — aggregator, streaming lint,
metrics — to a ~1k-SDG-node workflow adds at most 10% wall time, and the
live snapshot stays byte-identical to the post-hoc graphs.
"""

import json
from pathlib import Path

from repro.experiments.monitor_overhead import (
    run_monitor_overhead,
    run_monitor_throughput,
)

BENCH_OUT = Path(__file__).resolve().parent.parent / "BENCH_monitor.json"


def test_monitor_event_throughput(run_once, write_bench_json):
    result = run_once(run_monitor_throughput)
    # Floor set ~2 orders of magnitude under observed rates: a regression
    # that trips it means per-event cost exploded, not noise.
    assert result["events_per_second"] > 10_000
    write_bench_json(BENCH_OUT, {"throughput": result})


def test_monitor_workflow_overhead(run_once, write_bench_json):
    result = run_once(run_monitor_overhead)
    merged = {"throughput": json.loads(BENCH_OUT.read_text())["throughput"],
              "workflow_overhead": result} if BENCH_OUT.exists() else \
             {"workflow_overhead": result}
    write_bench_json(BENCH_OUT, merged)
    assert result["sdg_nodes"] >= 1000
    assert result["identical_graphs"]
    assert result["reconciles"]
    assert result["overhead_percent"] <= 10.0
