"""Figure 12: DDMD (12 tasks) baseline vs. DaYu-optimized, 5 iterations.

Paper: 1.15x per pipeline iteration, 1.2x across the 5-iteration pipeline.
"""

from repro.experiments.fig12_ddmd import Fig12Params, run_fig12


def test_fig12_five_iterations(run_once):
    table = run_once(run_fig12, Fig12Params(iterations=5))
    speedups = table.column("speedup")
    assert all(s > 1.0 for s in speedups)
    baseline_total = sum(table.column("baseline_s"))
    optimized_total = sum(table.column("optimized_s"))
    overall = baseline_total / optimized_total
    assert 1.05 <= overall <= 1.45  # paper: ~1.2x
