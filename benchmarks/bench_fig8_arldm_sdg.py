"""Figure 8: the ARLDM arldm_saveh5 SDG, contiguous vs. chunked.

Checks: (1) each image dataset's content is spread over multiple file
address regions in both layouts (box 1); (2) the chunked variant's
file-metadata region is present (box 2); (3) the chunked layout uses only
slightly more address space yet markedly fewer POSIX writes.
"""

from repro.analyzer import NodeKind, build_sdg, dataset_node
from repro.experiments.common import fresh_env
from repro.workloads.arldm import ArldmParams, build_arldm


def _run(layout):
    env = fresh_env(n_nodes=1)
    params = ArldmParams(data_dir="/beegfs/arldm", items=20,
                         avg_image_bytes=16384, layout=layout, chunks=5)
    env.runner.run(build_arldm(params))
    save = env.mapper.profiles["arldm_saveh5"]
    sdg = build_sdg([save], with_regions=True, region_bytes=65536)
    file_size = env.cluster.fs.stat(params.out_file).size
    writes = sum(s.writes for s in save.dataset_stats)
    return sdg, params, file_size, writes


def test_fig8_arldm_sdg(run_once):
    (contig_sdg, params, contig_size, contig_writes), \
        (chunk_sdg, _, chunk_size, chunk_writes) = run_once(
            lambda: (_run("contiguous"), _run("chunked")))

    # Box 1: image datasets fan out to several address regions (both).
    for sdg in (contig_sdg, chunk_sdg):
        img = dataset_node(params.out_file, "/image0")
        regions = [v for v in sdg.successors(img)
                   if sdg.nodes[v]["kind"] == NodeKind.REGION.value]
        assert len(regions) >= 1
        all_regions = [n for n, a in sdg.nodes(data=True)
                       if a["kind"] == NodeKind.REGION.value]
        assert len(all_regions) >= 2  # content spread across the file

    # Box 2: the chunked variant surfaces a File-Metadata dataset node.
    meta = dataset_node(params.out_file, "File-Metadata")
    assert meta in chunk_sdg

    # Chunked uses only slightly more address space...
    assert chunk_size < contig_size * 1.3
    # ...but far fewer POSIX writes (paper: about half).
    assert chunk_writes < contig_writes
