"""Figure 10: breakdown of DaYu's execution time by component.

Paper: h5bench (80 GB / 64 procs) → 38.83 ms total, 0.008% of execution,
Characteristic-Mapper-dominated; corner case → 813.74 ms, ~4% (2.97% VFD +
1.0% VOL), Access-Tracker-dominated.
"""

from repro.experiments.fig10_breakdown import (
    run_fig10a_h5bench,
    run_fig10b_corner_case,
)


def test_fig10a_h5bench_breakdown(run_once):
    result = run_once(run_fig10a_h5bench, 80, 8)
    benchmark_table = result.to_table()
    shares = result.shares
    # Mapper-dominated; total overhead a tiny fraction of execution.
    assert shares["Characteristic_Mapper"] > max(
        shares["Input_Parser"], shares["Access_Tracker"])
    assert result.report.runtime_percent < 0.25


def test_fig10b_corner_case_breakdown(run_once):
    result = run_once(run_fig10b_corner_case, 50, 40)
    shares = result.shares
    assert shares["Access_Tracker"] > 0.5          # tracker-dominated
    assert result.report.vfd_percent > result.report.vol_percent
    assert result.report.runtime_percent < 4.5     # paper: ~4%
    assert result.report.runtime_percent > 1.0     # genuinely a corner case
