"""Figure 5: the PyFLEXTRKR stage-9 SDG exposing data scattering.

Regenerates the SDG and checks the observation: many small datasets
(sub-500-byte) per file causing frequent metadata access.
"""

from repro.analyzer import NodeKind, build_sdg
from repro.diagnostics import InsightKind, diagnose
from repro.experiments.common import fresh_env
from repro.workloads.pyflextrkr import (
    PyflextrkrParams,
    build_pyflextrkr,
    prepare_pyflextrkr_inputs,
)


def test_fig5_stage9_sdg(run_once):
    def build():
        env = fresh_env(n_nodes=2)
        params = PyflextrkrParams(data_dir="/beegfs/flex", n_files=4,
                                  grid=2048, n_parallel=2,
                                  small_datasets=32, small_elems=100,
                                  speed_reads=23)
        prepare_pyflextrkr_inputs(env.cluster, params)
        env.runner.run(build_pyflextrkr(params))
        stage9 = [p for n, p in env.mapper.profiles.items()
                  if n.startswith("run_speed")]
        return build_sdg(stage9), diagnose(stage9, min_datasets=16)

    sdg, report = run_once(build)
    # The SDG's dataset layer is crowded with tiny datasets.
    dataset_nodes = [n for n, a in sdg.nodes(data=True)
                     if a["kind"] == NodeKind.DATASET.value
                     and "speed_" in a["label"]]
    assert len(dataset_nodes) >= 32
    scattering = report.by_kind(InsightKind.DATA_SCATTERING)
    assert scattering
    assert all(i.evidence["avg_bytes"] < 500 for i in scattering)
