"""Figure 11: PyFLEXTRKR stages 3-5, baseline vs. DaYu-guided placement.

Paper: C1 (170 MB / 48 procs / 2 nodes) and C2 (1.2 GB / 240 procs /
8 nodes); co-scheduling + staging yields 1.6x overall, 2.6x on stage 3
in C1.
"""

from repro.experiments.fig11_placement import C1, C2, run_fig11


def test_fig11_c1(run_once):
    table = run_once(run_fig11, [C1])
    baseline, optimized = table.rows
    overall = baseline["total_s"] / optimized["total_s"]
    stage3 = baseline["Stage 3"] / optimized["Stage 3"]
    assert 1.3 <= overall <= 2.1   # paper: ~1.6x
    assert 1.8 <= stage3 <= 3.4    # paper: ~2.6x


def test_fig11_c2(run_once):
    table = run_once(run_fig11, [C2])
    baseline, optimized = table.rows
    overall = baseline["total_s"] / optimized["total_s"]
    assert 1.3 <= overall <= 2.1   # paper: ~1.6x
    assert optimized["Stage 3"] < baseline["Stage 3"]
