"""Figure 7: the DDMD aggregate/training SDG with the contact_map pop-up.

Checks the three callouts: contact_map has the largest volume, training
does not use the aggregated contact_map's data (metadata-only access), and
the contact_map data training does read comes from a simulation file.
"""

from repro.analyzer import build_sdg, dataset_node, task_node
from repro.experiments.common import fresh_env
from repro.workloads.ddmd import DdmdParams, build_ddmd


def test_fig7_ddmd_sdg(run_once):
    def build():
        env = fresh_env(n_nodes=2)
        params = DdmdParams(data_dir="/beegfs/ddmd", n_sim_tasks=4,
                            frames=256, epochs=6, chunk_elems=256)
        env.runner.run(build_ddmd(params))
        keep = [p for n, p in env.mapper.profiles.items()
                if n.startswith(("aggregate", "training"))]
        return build_sdg(keep), env.mapper.profiles["training_0000"], params

    sdg, training, params = run_once(build)
    agg_file = params.aggregated(0)
    cm = dataset_node(agg_file, "/contact_map")

    # (1) contact_map is the biggest dataset in the aggregated file.
    volumes = {
        name: sdg.nodes[dataset_node(agg_file, f"/{name}")]["volume"]
        for name in ("contact_map", "point_cloud", "fnc", "rmsd")
    }
    assert volumes["contact_map"] == max(volumes.values())

    # (3) the pop-up: training's access to the aggregated contact_map is
    # metadata-only (HDF5 data access count == 0).
    edge = sdg.get_edge_data(cm, task_node("training_0000"))
    assert edge is not None
    assert edge["data_ops"] == 0
    assert edge["metadata_ops"] >= 1
    assert edge["operation"] == "read"

    # (2) the contact_map data training uses comes from a simulation file.
    sim_rows = training.stats_for("/contact_map")
    assert any(s.file == params.sim_file(0, 0) and s.data_ops > 0
               for s in sim_rows)
