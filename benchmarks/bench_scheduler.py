"""Event-scheduler benchmark: gates ``repro.workflow.dscheduler`` and
records ``BENCH_scheduler.json`` at the repo root.

Two gates:

- **decision overhead** — the full decision engine (ready-heap pops,
  upward-rank priorities, locality placement with work stealing, slot
  accounting) scheduling a ~100k-task layered DAG must average under a
  millisecond of host wall-clock per placement decision.  That is the
  property that makes per-task dispatch viable at workflow scale — a
  stage-at-a-time scheduler makes O(stages) decisions, the event engine
  makes O(tasks).
- **locality beats round-robin** — on the producer/fan-of-consumers
  fixture with a transparent node-local cache, locality placement must
  produce strictly fewer replication misses *and* a strictly shorter
  makespan than round-robin spreading.  This is the paper's fig11
  co-scheduling effect expressed as a scheduler property.

``DAYU_SMOKE=1`` shrinks the DAG and relaxes the per-decision ceiling
for noisy CI runners (the locality gate never relaxes).
"""

import os
import time
from pathlib import Path

from repro.experiments.dataflow_scheduler import (
    build_synthetic_dag,
    run_locality_fixture,
)
from repro.workflow.dscheduler import DataflowScheduler, upward_ranks

BENCH_OUT = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"

_SMOKE = os.environ.get("DAYU_SMOKE") == "1"


def _run_decision_benchmark(n_tasks: int) -> dict:
    graph = build_synthetic_dag(n_tasks, width=256, fan_in=3)
    # Deterministic non-uniform durations and weights (no RNG — replay).
    durations = {name: (i % 11 + 1) * 0.25
                 for i, name in enumerate(graph.entries)}
    build_start = time.perf_counter()
    ranks = upward_ranks(graph, durations)
    rank_seconds = time.perf_counter() - build_start
    engine = DataflowScheduler(
        graph,
        slots={f"n{i}": 16 for i in range(8)},
        policy="locality",
        priorities=ranks,
    )
    start = time.perf_counter()
    schedule = engine.simulate(durations)
    elapsed = time.perf_counter() - start
    return {
        "n_tasks": graph.n_tasks,
        "n_edges": graph.n_edges,
        "decisions": schedule.decisions,
        "steals": schedule.steals,
        "virtual_makespan": schedule.makespan,
        "rank_seconds": rank_seconds,
        "schedule_seconds": elapsed,
        "mean_decision_us": elapsed / schedule.decisions * 1e6,
    }


def test_scheduler_decisions_and_locality(run_once, write_bench_json):
    n_tasks = 10_000 if _SMOKE else 100_000
    max_mean_decision_us = 5000.0 if _SMOKE else 1000.0

    decisions = run_once(_run_decision_benchmark, n_tasks)

    placements = {}
    for policy in ("round_robin", "locality"):
        run = run_locality_fixture(placement=policy)
        placements[policy] = {
            "wall_time": run.wall_time,
            "serial_time": run.serial_time,
            "cache_hits": run.cache_hits,
            "cache_misses": run.cache_misses,
            "consumer_nodes": run.consumer_nodes,
        }

    payload = {
        "smoke": _SMOKE,
        "max_mean_decision_us": max_mean_decision_us,
        "decision_benchmark": decisions,
        "locality_fixture": placements,
    }
    write_bench_json(BENCH_OUT, payload)

    # Every task got exactly one placement decision.
    assert decisions["decisions"] == decisions["n_tasks"]
    assert decisions["mean_decision_us"] <= max_mean_decision_us
    # The fig11 property: clustering consumers onto the producer's
    # replica beats spreading them, in misses and in makespan.
    loc, rr = placements["locality"], placements["round_robin"]
    assert loc["cache_misses"] < rr["cache_misses"]
    assert loc["wall_time"] < rr["wall_time"]
    assert loc["consumer_nodes"] == 1
