"""Figure 6: the DDMD four-stage FTG with its circled observations.

Checks: aggregate and inference read all simulated data (circles 1 and 3),
training reads the aggregated output plus one simulation file (circle 2),
and training/inference share no data dependency.
"""

from repro.analyzer import build_ftg, file_node, task_node
from repro.diagnostics import InsightKind, diagnose
from repro.experiments.common import fresh_env
from repro.workloads.ddmd import DdmdParams, build_ddmd


def test_fig6_ddmd_ftg(run_once):
    def build():
        env = fresh_env(n_nodes=2)
        params = DdmdParams(data_dir="/beegfs/ddmd", n_sim_tasks=12,
                            frames=128, epochs=10, chunk_elems=128)
        env.runner.run(build_ddmd(params))
        profiles = list(env.mapper.profiles.values())
        return build_ftg(profiles), diagnose(profiles), params

    ftg, report, params = run_once(build)
    agg, tr, inf = "aggregate_0000", "training_0000", "inference_0000"
    # Circles 1 and 3: aggregate and inference read every simulation file.
    for i in range(params.n_sim_tasks):
        sim = file_node(params.sim_file(0, i))
        assert ftg.has_edge(sim, task_node(agg))
        assert ftg.has_edge(sim, task_node(inf))
    # Circle 2: training reads the aggregated file and only one sim file.
    training_inputs = [u for u in ftg.predecessors(task_node(tr))]
    sim_inputs = [u for u in training_inputs if "task0" in u and "stage" in u]
    assert file_node(params.aggregated(0)) in training_inputs
    assert len(sim_inputs) == 1
    # Embedding files show the read-after-write reuse the paper circles.
    raw = report.by_kind(InsightKind.READ_AFTER_WRITE)
    assert any("embeddings-epoch-5" in i.subject for i in raw)
