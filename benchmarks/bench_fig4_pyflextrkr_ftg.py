"""Figure 4: the PyFLEXTRKR nine-stage FTG with its circled observations.

Regenerates the graph and checks the three circled findings: the stage-3
write-after-read, the stage-6 time-dependent inputs, and stage-1 output
reuse by multiple downstream stages.
"""

from repro.analyzer import build_ftg, file_node
from repro.diagnostics import InsightKind, diagnose
from repro.experiments.common import fresh_env
from repro.workloads.pyflextrkr import (
    PyflextrkrParams,
    build_pyflextrkr,
    prepare_pyflextrkr_inputs,
)


def test_fig4_ftg(run_once):
    def build():
        env = fresh_env(n_nodes=2)
        params = PyflextrkrParams(data_dir="/beegfs/flex", n_files=8,
                                  grid=4096, n_parallel=4)
        prepare_pyflextrkr_inputs(env.cluster, params)
        env.runner.run(build_pyflextrkr(params))
        profiles = list(env.mapper.profiles.values())
        return build_ftg(profiles), diagnose(profiles, late_fraction=0.2), params

    ftg, report, params = run_once(build)
    # Circle 1: stage-3 write-after-read.
    war = report.by_kind(InsightKind.WRITE_AFTER_READ)
    assert any("run_gettracks" in i.tasks for i in war)
    # Circle 2: terrain inputs only needed mid-workflow.
    tdi = report.by_kind(InsightKind.TIME_DEPENDENT_INPUT)
    assert any("terrain" in i.subject for i in tdi)
    # Circle 3: stage-1 outputs reused by multiple downstream stages.
    feature = file_node(params.feature(0))
    assert ftg.nodes[feature]["reused"]
    assert len(list(ftg.successors(feature))) >= 3
