"""Figure 13c: ARLDM variable-length data — contiguous vs. chunked.

Paper: write time of arldm_saveh5 at 5/10/20 GB (scaled to MiB here);
layouts comparable at the small scale, chunked up to 1.4x faster at the
large scale with ~2x fewer write operations.
"""

from repro.experiments.fig13c_arldm import Fig13cParams, run_fig13c


def test_fig13c_vlen_layout_sweep(run_once):
    table = run_once(run_fig13c, Fig13cParams(total_mib=(5, 10, 20)))

    def speedup(total, variant):
        return next(r["speedup_vs_contig"] for r in table.rows
                    if r["total_mib"] == total and r["variant"] == variant)

    # Comparable at the smallest scale; chunked advantage grows with size.
    assert 0.8 <= speedup(5, "5 chunks") <= 1.4
    assert speedup(20, "5 chunks") > speedup(5, "5 chunks")
    assert speedup(20, "5 chunks") >= 1.2  # paper: up to 1.4x

    # ~2x fewer write operations for the optimal chunking.
    contig_ops = next(r["write_ops"] for r in table.rows
                      if r["total_mib"] == 20
                      and r["variant"].startswith("contiguous"))
    chunk_ops = next(r["write_ops"] for r in table.rows
                     if r["total_mib"] == 20 and r["variant"] == "5 chunks")
    assert chunk_ops <= contig_ops / 1.5
