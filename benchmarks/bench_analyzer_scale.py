"""Workflow Analyzer scalability (paper Section VII-B).

Paper: "<15 seconds to analyze a graph with 1k nodes and 6k edges, and
<2 seconds to construct the corresponding FTG and SDG in HTML format."
Real wall-clock time (the Analyzer is offline tooling).

The scale-out benchmark compares the seed trace-to-graphs pipeline
(serial JSON load with per-op records, serial build) against the binary
codec + :class:`~repro.analyzer.parallel.ParallelAnalyzer` path, and
writes the before/after numbers to ``BENCH_analyzer.json`` at the repo
root.
"""

from pathlib import Path

from repro.experiments.analyzer_scale import (
    SyntheticScale,
    run_analyzer_scale,
    run_analyzer_scaleout,
)

BENCH_OUT = Path(__file__).resolve().parent.parent / "BENCH_analyzer.json"


def test_analyzer_thousand_node_graph(run_once):
    result = run_once(run_analyzer_scale, SyntheticScale())
    assert result["ftg_nodes"] >= 1000
    assert result["ftg_edges"] >= 3000
    assert result["analyze_seconds"] < 15.0
    assert result["render_seconds"] < 10.0
    assert result["html_bytes"] > 0


def test_analyzer_scaleout_binary_parallel(run_once, write_bench_json):
    result = run_once(run_analyzer_scaleout)
    write_bench_json(BENCH_OUT, result)
    # The scale-out path must be a pure optimization: same graphs, byte
    # for byte, from a trace at least 5x smaller, at least 3x faster.
    assert result["identical_graphs"]
    assert result["ftg_nodes"] >= 1000
    assert result["size_ratio"] >= 5.0
    assert result["speedup"] >= 3.0
