"""Workflow Analyzer scalability (paper Section VII-B).

Paper: "<15 seconds to analyze a graph with 1k nodes and 6k edges, and
<2 seconds to construct the corresponding FTG and SDG in HTML format."
Real wall-clock time (the Analyzer is offline tooling).
"""

from repro.experiments.analyzer_scale import SyntheticScale, run_analyzer_scale


def test_analyzer_thousand_node_graph(run_once):
    result = run_once(run_analyzer_scale, SyntheticScale())
    assert result["ftg_nodes"] >= 1000
    assert result["ftg_edges"] >= 3000
    assert result["analyze_seconds"] < 15.0
    assert result["render_seconds"] < 10.0
    assert result["html_bytes"] > 0
