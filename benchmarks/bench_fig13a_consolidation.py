"""Figure 13a: PyFLEXTRKR stage-9 — scattered vs. consolidated datasets.

Paper: 32 datasets x 23 accesses on node-local NVMe, dataset sizes
1-8 KB, 1-16 processes; consolidation cuts I/O time by 1.7x-3.7x.
"""

from repro.experiments.fig13a_consolidation import Fig13aParams, run_fig13a


def test_fig13a_consolidation_sweep(run_once):
    table = run_once(
        run_fig13a,
        Fig13aParams(dataset_bytes=(1024, 2048, 4096, 8192),
                     process_counts=(1, 4, 16)),
    )
    for row in table.rows:
        assert 1.5 <= row["reduction"] <= 4.0  # paper band: 1.7-3.7x
    # I/O time grows with concurrency for both variants.
    ones = [r for r in table.rows if r["processes"] == 1]
    sixteens = [r for r in table.rows if r["processes"] == 16]
    assert sum(r["baseline_ms"] for r in sixteens) > sum(
        r["baseline_ms"] for r in ones)
