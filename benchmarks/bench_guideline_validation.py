"""Section III-A.4 guideline validation.

Measures every cell of the paper's data-layout decision table (small/large
fixed-length × sequential/non-sequential access, plus variable-length) and
checks the layout advisor picks the empirically cheaper layout everywhere.
"""

from repro.experiments.guideline_validation import (
    GuidelineValidationParams,
    run_guideline_validation,
)


def test_guideline_decision_table(run_once):
    table = run_once(run_guideline_validation, GuidelineValidationParams())
    assert all(row["agrees"] for row in table.rows)
    # The non-sequential regime is where chunking matters most: the gap
    # must be large, not marginal.
    random_row = next(r for r in table.rows if "random" in r["regime"])
    assert random_row["contiguous_ms"] > random_row["chunked_ms"] * 5
