"""Ablation: DaYu's data-collection granularity knobs.

The Input Parser exposes two storage-overhead levers the paper describes:
turning time-sensitive I/O tracing off entirely (constant storage) and
skipping the first N operations per file.  Both must shrink the trace
without touching the aggregate session statistics.
"""

from repro.experiments.common import fresh_env
from repro.mapper.config import DaYuConfig
from repro.workloads.corner_case import CornerCaseParams, build_corner_case

MIB = 1 << 20


def _run(config: DaYuConfig):
    env = fresh_env(n_nodes=1, config=config)
    params = CornerCaseParams(data_dir="/beegfs/corner", n_datasets=100,
                              file_bytes=4 * MIB, read_repeats=10)
    env.runner.run(build_corner_case(params))
    profile = env.mapper.profiles["corner_case"]
    return profile


def test_ablation_trace_io_off(run_once):
    full, off = run_once(lambda: (
        _run(DaYuConfig(trace_io=True)),
        _run(DaYuConfig(trace_io=False)),
    ))
    # Tracing off: no per-op records, far smaller trace...
    assert off.io_records == []
    assert off.storage_bytes < full.storage_bytes / 5
    # ...but identical aggregate session statistics (constant storage mode).
    assert len(off.file_sessions) == len(full.file_sessions)
    assert off.file_sessions[0].read_ops == full.file_sessions[0].read_ops
    # And identical VOL semantics.
    assert len(off.object_profiles) == len(full.object_profiles)


def test_ablation_skip_ops(run_once):
    full, skipping = run_once(lambda: (
        _run(DaYuConfig(skip_ops=0)),
        _run(DaYuConfig(skip_ops=50)),
    ))
    assert 0 < len(skipping.io_records) < len(full.io_records)
    assert skipping.storage_bytes < full.storage_bytes
    # Sessions still count every operation.
    assert skipping.file_sessions[0].total_ops == full.file_sessions[0].total_ops
