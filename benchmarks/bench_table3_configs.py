"""Table III: machine configurations.

Builds both evaluation clusters and checks they expose exactly the compute
and storage options of the paper's Table III.
"""

from repro.cluster import cpu_cluster, gpu_cluster
from repro.simclock import SimClock


def test_table3_cpu_cluster(run_once):
    cluster = run_once(lambda: cpu_cluster(SimClock(), n_nodes=2))
    node = cluster.node("n0")
    assert node.cpus == 20  # 2x Xeon Silver 4114 (10 cores each)
    assert node.ram_bytes == 48 * (1 << 30)
    assert set(node.local_tiers) == {"nvme", "ssd", "hdd"}
    assert set(cluster.shared_devices) == {"/nfs"}


def test_table3_gpu_cluster(run_once):
    cluster = run_once(lambda: gpu_cluster(SimClock(), n_nodes=2))
    node = cluster.node("n0")
    assert node.ram_bytes == 384 * (1 << 30)
    assert set(node.local_tiers) == {"ssd"}
    assert set(cluster.shared_devices) == {"/nfs", "/beegfs"}
