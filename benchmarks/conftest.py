"""Shared benchmark plumbing.

Every benchmark wraps one experiment harness from :mod:`repro.experiments`.
The experiments are deterministic simulations, so each runs once per
benchmark (``rounds=1``) — the interesting output is the *result table*
(attached to ``benchmark.extra_info``) and the paper-shape assertions, not
run-to-run variance.
"""

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer and return its
    result; the result table (when present) is attached as extra info."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        if hasattr(result, "to_markdown"):
            benchmark.extra_info["table"] = result.to_markdown()
        return result

    return runner
