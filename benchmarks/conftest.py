"""Shared benchmark plumbing.

Every benchmark wraps one experiment harness from :mod:`repro.experiments`.
The experiments are deterministic simulations, so each runs once per
benchmark (``rounds=1``) — the interesting output is the *result table*
(attached to ``benchmark.extra_info``) and the paper-shape assertions, not
run-to-run variance.
"""

import json

import pytest

from repro.ioutil import atomic_write_text


def _write_bench_json(path, payload) -> None:
    """Write a ``BENCH_*.json`` result file as strict JSON, file-only.

    The bench numbers go to the *file*, never stdout/stderr — shell
    wrappers (e.g. conda's ``auto_activate_base`` banner) pollute streams,
    and downstream gates parse these files mechanically.  The write is
    atomic (tmp + ``os.replace``) so an interrupted bench never leaves a
    truncated gate file, and verified by re-reading and parsing: a
    mangled file fails the benchmark here, not the consumer later.
    """
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True)
                      + "\n")
    reread = json.loads(path.read_text(encoding="utf-8"))
    assert reread == json.loads(json.dumps(payload)), (
        f"{path} did not round-trip as strict JSON")


@pytest.fixture()
def write_bench_json():
    """The strict ``BENCH_*.json`` writer, as a fixture."""
    return _write_bench_json


@pytest.fixture()
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer and return its
    result; the result table (when present) is attached as extra info."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        if hasattr(result, "to_markdown"):
            benchmark.extra_info["table"] = result.to_markdown()
        return result

    return runner
