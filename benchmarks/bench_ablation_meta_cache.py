"""Ablation: the format's metadata cache.

DaYu's subject workloads re-touch the same headers, B-tree nodes, and heap
directories constantly; the metadata cache is what keeps that traffic off
the device.  Disabling it must strictly increase POSIX reads and modeled
I/O time on a metadata-heavy access pattern.
"""

import numpy as np

from repro.hdf5 import H5File
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


def _metadata_heavy_run(cache_enabled: bool):
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("beegfs"))])
    with H5File(fs, "/m.h5", "w", cache_enabled=cache_enabled) as f:
        for i in range(24):
            f.create_dataset(f"d{i:02d}", shape=(64,), dtype="f4",
                             layout="chunked", chunks=(16,),
                             data=np.zeros(64, np.float32))
    fs.clear_log()
    with H5File(fs, "/m.h5", "r", cache_enabled=cache_enabled) as f:
        for _ in range(5):
            for i in range(24):
                f[f"d{i:02d}"].read()
    return fs.op_count(op="read"), fs.io_time()


def test_ablation_metadata_cache(run_once):
    (ops_on, time_on), (ops_off, time_off) = run_once(
        lambda: (_metadata_heavy_run(True), _metadata_heavy_run(False)))
    assert ops_off > ops_on      # cache absorbs repeat metadata reads
    assert time_off > time_on
    # The B-tree lookups dominate repeats: expect a sizeable gap.
    assert ops_off >= ops_on * 1.5
