"""Columnar trace analytics: run-file scan vs. the row trace paths.

Gates the tentpole claim and records it in ``BENCH_columnar.json`` at
the repo root: opening one compacted ``.dayuc`` run and building the
FTG + SDG from its stats columns is at least **10x** faster than the
seed pipeline (serial JSON parse with per-op records, serial build) —
with byte-identical serialized graphs across JSON, row-binary and
columnar inputs.

``DAYU_SMOKE=1`` switches to the reduced CI shape, where the gate drops
to 5x (fixed per-call overhead looms larger on tiny inputs).
"""

import os
from pathlib import Path

from repro.experiments.analyzer_scale import SyntheticScale
from repro.experiments.columnar_analytics import (
    SMOKE_SCALE,
    run_columnar_scaleout,
)

BENCH_OUT = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"

_SMOKE = os.environ.get("DAYU_SMOKE") == "1"


def test_columnar_scaleout(run_once, write_bench_json):
    scale = SMOKE_SCALE if _SMOKE else SyntheticScale()
    min_speedup = 5.0 if _SMOKE else 10.0
    result = run_once(run_columnar_scaleout, scale)
    result["smoke"] = _SMOKE
    result["min_speedup"] = min_speedup
    write_bench_json(BENCH_OUT, result)
    # A pure optimization or nothing: same graphs, byte for byte, from
    # one mmap'd run file instead of a directory of row traces.
    assert result["identical_graphs"]
    if not _SMOKE:
        assert result["ftg_nodes"] >= 1000
    assert result["size_ratio"] >= 5.0
    assert result["speedup"] >= min_speedup
