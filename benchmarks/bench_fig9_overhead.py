"""Figure 9: Data Semantic Mapper overhead (four panels).

Paper claims reproduced: execution overhead under 0.25% for data-heavy
runs (9a-b, decreasing with scale), rising with per-file operation count
but bounded by ~4% in the corner case (9c); storage overhead with a flat
VOL component and a linear VFD component (9d).
"""

from repro.experiments.fig9_overhead import (
    run_fig9a_filesize,
    run_fig9b_processes,
    run_fig9c_read_scaling,
    run_fig9d_storage,
)

MIB = 1 << 20


def test_fig9a_filesize_scaling(run_once):
    table = run_once(run_fig9a_filesize, [10, 20, 40, 80])
    vfd = table.column("vfd_percent")
    vol = table.column("vol_percent")
    assert all(v < 0.25 for v in vfd + vol)
    assert vfd == sorted(vfd, reverse=True)  # monotonically decreasing


def test_fig9b_process_scaling(run_once):
    table = run_once(run_fig9b_processes, [8, 16, 32, 64])
    vfd = table.column("vfd_percent")
    assert vfd[-1] < vfd[0]
    assert all(v < 0.25 for v in vfd)


def test_fig9c_read_count_scaling(run_once):
    table = run_once(run_fig9c_read_scaling, [0, 10, 20, 30, 40], 50 * MIB)
    vfd = table.column("vfd_percent")
    vol = table.column("vol_percent")
    assert vfd == sorted(vfd)  # increasing with op count
    assert vfd[-1] > 1.0       # the corner case is expensive...
    assert all(v < 4.0 for v in vfd)  # ...but bounded by the paper's 4%
    assert all(v < vf for v, vf in zip(vol[1:], vfd[1:]))  # VFD > VOL


def test_fig9d_storage_scaling(run_once):
    table = run_once(run_fig9d_storage, [0, 10, 20, 30, 40], 200 * MIB)
    vfd = table.column("vfd_storage_percent")
    vol = table.column("vol_storage_percent")
    assert vfd == sorted(vfd)  # linear growth
    assert vfd[-1] < 0.5       # paper: ~0.35% at 8000 ops
    assert max(vol) - min(vol) < 0.01  # VOL flat
    assert max(vol) < 0.25     # paper: ~0.2%
