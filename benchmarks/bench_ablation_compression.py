"""Ablation: the chunk compression filter.

On bandwidth-limited shared storage, compressing compressible chunks cuts
the bytes on the wire and therefore the I/O time; on random
(incompressible) data it buys nothing.  This bench verifies both regimes
plus the stored-size accounting.
"""

import numpy as np

from repro.hdf5 import H5File
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


def _run(compression, data):
    clock = SimClock()
    fs = SimFS(clock, mounts=[Mount("/", make_device("nfs"))])
    with H5File(fs, "/c.h5", "w") as f:
        f.create_dataset("z", shape=data.shape, dtype="i8",
                         layout="chunked", chunks=(len(data) // 8,),
                         compression=compression, data=data)
    fs.clear_log()
    with H5File(fs, "/c.h5", "r") as f:
        f["z"].read()
    read_time = fs.io_time()
    return fs.stat("/c.h5").size, read_time


def test_ablation_compression_compressible(run_once):
    data = np.zeros(200_000, dtype=np.int64)
    (size_z, time_z), (size_p, time_p) = run_once(
        lambda: (_run("zlib", data), _run(None, data)))
    assert size_z < size_p / 10     # zeros compress dramatically
    assert time_z < time_p / 2      # and the read moves far fewer bytes


def test_ablation_compression_incompressible(run_once):
    rng = np.random.default_rng(0)
    data = rng.integers(-2**62, 2**62, 50_000).astype(np.int64)
    (size_z, time_z), (size_p, time_p) = run_once(
        lambda: (_run("zlib", data), _run(None, data)))
    # Random data: compression buys (almost) nothing either way.
    assert size_z > size_p * 0.9
    assert time_z > time_p * 0.8
