"""Ablation: the storage-device calibration behind Table III.

Every experiment's timing shape rests on the device model, so this bench
validates its two load-bearing properties: the tier ordering (the same
workload must get monotonically slower moving down the hierarchy) and the
contention model (shared filesystems degrade with concurrency; node-local
flash barely does).
"""

import numpy as np

from repro.hdf5 import H5File
from repro.posix import SimFS
from repro.simclock import SimClock
from repro.storage import Mount, make_device


def _workload_time(device: str, concurrency: int = 1) -> float:
    clock = SimClock()
    dev = make_device(device)
    dev.set_concurrency(concurrency)
    fs = SimFS(clock, mounts=[Mount("/", dev)])
    with H5File(fs, "/w.h5", "w") as f:
        f.create_dataset("d", shape=(250_000,), dtype="f8",
                         data=np.zeros(250_000))
    with H5File(fs, "/w.h5", "r") as f:
        f["d"].read()
    return clock.now


def test_ablation_tier_ordering(run_once):
    times = run_once(lambda: {
        name: _workload_time(name)
        for name in ("ram", "nvme", "sata_ssd", "hdd", "nfs", "beegfs")
    })
    assert times["ram"] < times["nvme"] < times["sata_ssd"]
    assert times["sata_ssd"] < times["nfs"]
    assert times["nvme"] < times["beegfs"] < times["nfs"]


def test_ablation_contention_model(run_once):
    result = run_once(lambda: {
        "beegfs_1": _workload_time("beegfs", 1),
        "beegfs_16": _workload_time("beegfs", 16),
        "nvme_1": _workload_time("nvme", 1),
        "nvme_16": _workload_time("nvme", 16),
    })
    shared_slowdown = result["beegfs_16"] / result["beegfs_1"]
    local_slowdown = result["nvme_16"] / result["nvme_1"]
    # Shared PFS serializes a large fraction under concurrency...
    assert shared_slowdown > 3.0
    # ...node-local NVMe barely notices.
    assert local_slowdown < 2.0
    assert shared_slowdown > local_slowdown
