"""Figure 13b: DDMD datasets — chunked (baseline) vs. contiguous layout.

Paper: dataset sizes 100-800 KB, process sweep; contiguous consistently
wins, up to 1.9x under high concurrency.
"""

from repro.experiments.fig13b_layout import Fig13bParams, run_fig13b


def test_fig13b_layout_sweep(run_once):
    table = run_once(
        run_fig13b,
        Fig13bParams(dataset_kib=(100, 200, 400, 800),
                     process_counts=(1, 2, 4, 8)),
    )
    for row in table.rows:
        assert row["speedup"] > 1.0  # contiguous always wins here
        assert row["speedup"] <= 2.6  # same regime as the paper's <=1.9x
    best = max(table.column("speedup"))
    assert best >= 1.5
