"""Service-plane load benchmark: gates ``repro.service`` and records
``BENCH_service.json`` at the repo root.

A real ``DayuService`` on an ephemeral port is hammered by the async
load generator with a sweep of concurrent clients uploading real ddmd
traces and querying FTG/SDG/findings after every upload.  Gates:

- **identity** — every sweep's served graphs and findings byte-match
  the offline ``dayu-compact`` + ``dayu-analyze`` pipeline, and still
  do after a no-compaction stop (the ``kill -9`` shape) + restart;
- **throughput** — peak sustained ingest stays above the floor;
- **latency** — worst-case query p99 stays under the ceiling.

Wall-clock numbers on a dev box run ~100+ uploads/s with query p99
under 50 ms; the gates carry wide margin for noisy CI runners.
``DAYU_SMOKE=1`` shrinks the sweep and relaxes the numeric gates
(identity gates never relax).
"""

import os
from pathlib import Path

from repro.experiments.service_load import run_service_load

BENCH_OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

_SMOKE = os.environ.get("DAYU_SMOKE") == "1"


def test_service_load(run_once, write_bench_json):
    sweep = (1, 2, 4) if _SMOKE else (1, 2, 4, 8)
    runs_per_sweep = 2 if _SMOKE else 4
    min_uploads_per_s = 8.0 if _SMOKE else 20.0
    max_query_p99_ms = 1500.0 if _SMOKE else 750.0

    result = run_once(run_service_load, clients_sweep=sweep,
                      runs_per_sweep=runs_per_sweep)
    result["smoke"] = _SMOKE
    result["min_uploads_per_s"] = min_uploads_per_s
    result["max_query_p99_ms"] = max_query_p99_ms
    write_bench_json(BENCH_OUT, result)

    # Correctness first: concurrency and crash-restart may cost time,
    # never bytes.
    assert result["identical"]
    assert result["recovery_identical"]
    assert result["peak_uploads_per_s"] >= min_uploads_per_s
    assert result["worst_query_p99_ms"] <= max_query_p99_ms
