"""Small helpers shared by every ``dayu-*`` command-line entry point.

argparse ``type=`` callables centralize validation that used to be
copy-pasted (or missing) per CLI: rejecting ``--jobs 0`` or a negative
``--nodes`` is a usage error everywhere, so it exits 2 with the same
message everywhere.  :func:`diagnose_traces_dir` does the same for the
other shared usage error — pointing a tool at a missing, non-directory,
or trace-less path — so ``dayu-analyze``, ``dayu-lint`` and
``dayu-compact`` all exit 2 with the same one-line diagnosis instead of
a traceback or an ambiguous "no profiles" report.
"""

from __future__ import annotations

import argparse
import os

__all__ = ["positive_int", "diagnose_traces_dir"]


def positive_int(value: str) -> int:
    """argparse ``type=`` for counts that must be >= 1 (``--jobs``,
    ``--nodes``).  Raising :class:`argparse.ArgumentTypeError` routes
    through ``parser.error`` — exit status 2, message naming the flag.
    """
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}") from None
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def diagnose_traces_dir(directory: str, trace_format: str = "auto") -> str:
    """One-line diagnosis for a traces directory that yielded no profiles.

    Distinguishes the ways a trace source can be empty — the path does
    not exist, is not a directory, holds no recognizable trace files, or
    holds traces but none of the requested format — so every CLI can
    print ``prog: <diagnosis>`` and exit 2 (the documented usage-error
    status) instead of surfacing a traceback or a misleading generic
    message.
    """
    from repro.mapper.persist import TRACE_SUFFIXES, trace_paths

    if not os.path.exists(directory):
        return f"traces directory {directory!r} does not exist"
    if not os.path.isdir(directory):
        return f"{directory!r} is not a directory"
    if not trace_paths(directory):
        suffixes = "/".join(f"*{s}" for s in TRACE_SUFFIXES)
        return (f"no saved profiles ({suffixes}) found in {directory!r}")
    return (f"no {trace_format} profiles found in {directory!r} "
            "(other trace formats are present; try --trace-format auto)")
