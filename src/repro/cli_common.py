"""Small helpers shared by every ``dayu-*`` command-line entry point.

argparse ``type=`` callables centralize validation that used to be
copy-pasted (or missing) per CLI: rejecting ``--jobs 0`` or a negative
``--nodes`` is a usage error everywhere, so it exits 2 with the same
message everywhere.
"""

from __future__ import annotations

import argparse

__all__ = ["positive_int"]


def positive_int(value: str) -> int:
    """argparse ``type=`` for counts that must be >= 1 (``--jobs``,
    ``--nodes``).  Raising :class:`argparse.ArgumentTypeError` routes
    through ``parser.error`` — exit status 2, message naming the flag.
    """
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}") from None
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n
