"""Greedy locality solver: derive a fig11-style placement pre-run.

The paper's fig11 optimization was built by hand: read the SDG, notice
which stages exchange data through the shared filesystem, pin them to
the producing node, and stage the hot files onto node-local flash.
:func:`solve_placement` derives the same move from the *predicted* SDG
and the static cost model, before anything runs:

1. Rank shared-storage files by predicted traffic (bytes moved through
   them, heaviest first).
2. For each file, gather its toucher set — every task whose contract
   mentions it (localized files are node-local, so *all* touchers must
   co-locate, not just the heavy ones).
3. Trial-place the touchers on each candidate node with the file on the
   fastest local tier, re-price the whole workflow with
   :func:`~repro.lint.cost.build_cost_report` (plus the stage-in price
   for pre-existing external inputs), and commit the move only when the
   predicted makespan strictly improves.

The output is a versioned, executable
:class:`~repro.workflow.plan.PlacementPlan`; greedy with full re-pricing
per trial keeps the solver honest — every committed move is backed by
an end-to-end prediction, not a local heuristic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.configs import ClusterSpec
from repro.lint.cost import build_cost_report
from repro.lint.predict import (
    StaticContext,
    access_bytes,
    build_static_context,
)
from repro.storage.devices import DEVICE_CATALOG, predicted_cost
from repro.workflow.model import Workflow
from repro.workflow.plan import FilePlacement, PlacementPlan, local_path

__all__ = ["solve_placement"]


def _file_traffic(ctx: StaticContext, spec: ClusterSpec
                  ) -> List[Tuple[str, int]]:
    """Shared-storage files ranked by predicted traffic, heaviest first
    (ties by name).  Traffic counts every declared data movement."""
    traffic: Dict[str, int] = {}
    for contract in ctx.effective.values():
        for a in contract.accesses:
            if not a.moves_data:
                continue
            dev, _ = spec.device_for_path(a.file)
            if not dev.shared:
                continue
            ops = max(a.count, 1)
            traffic[a.file] = (traffic.get(a.file, 0)
                               + access_bytes(a) * ops)
    ranked = [(f, b) for f, b in traffic.items() if b > 0]
    ranked.sort(key=lambda fb: (-fb[1], fb[0]))
    return ranked


def _touchers(ctx: StaticContext, file: str) -> List[str]:
    """Every task whose contract mentions ``file`` at all — any access
    to a node-local file requires living on its node."""
    out: List[str] = []
    for task in (t.name for t in ctx.workflow.all_tasks()):
        contract = ctx.effective.get(task)
        if contract is None:
            continue
        if any(a.file == file for a in contract.accesses):
            out.append(task)
    return out


def _copy_volume(ctx: StaticContext, file: str) -> int:
    """Predicted bytes of one copy of a file: the created extents of its
    datasets when declared, else the largest declared single access."""
    per_key: Dict[Tuple[str, str], int] = {}
    for contract in ctx.effective.values():
        for a in contract.accesses:
            if a.file != file:
                continue
            best = per_key.get(a.key, 0)
            per_key[a.key] = max(best, access_bytes(a))
    return sum(per_key.values())


def _stage_in_seconds(ctx: StaticContext, spec: ClusterSpec,
                      file_map: Dict[str, str]) -> float:
    """Predicted cost of staging pre-existing (externally produced)
    localized files: read the shared source, write the local copy."""
    tier = spec.fastest_local_tier()
    if tier is None:
        return 0.0
    local_dev = DEVICE_CATALOG[tier[1]]
    total = 0.0
    for src in file_map:
        if ctx.file_producers.get(src):
            continue  # produced inside the workflow: born local
        volume = _copy_volume(ctx, src)
        src_dev, _ = spec.device_for_path(src)
        total += predicted_cost(src_dev, read_ops=1, read_bytes=volume)
        total += predicted_cost(local_dev, write_ops=1, write_bytes=volume)
    return total


def solve_placement(
    workflow: Workflow,
    spec: ClusterSpec,
    contracts=None,
    workload: str = "",
    scale: float = 1.0,
) -> PlacementPlan:
    """Solve a locality placement for ``workflow`` on ``spec``.

    Returns a plan (possibly empty: no move predicted to pay off) whose
    ``predicted`` block records the baseline makespan, the planned
    makespan, and the stage-in price the plan will pay.
    """
    ctx = build_static_context(workflow, contracts)
    baseline = build_cost_report(ctx, spec)
    plan = PlacementPlan(workload=workload, scale=scale, cluster=spec.name,
                         n_nodes=spec.n_nodes)
    tier = spec.fastest_local_tier()
    if tier is None:
        plan.predicted = {
            "baseline_makespan_seconds": baseline.makespan_seconds,
            "planned_makespan_seconds": baseline.makespan_seconds,
            "stage_in_seconds": 0.0,
        }
        return plan

    placement = dict(baseline.placement)
    file_map: Dict[str, str] = {}
    pinned: Set[str] = set()
    best_cost = baseline.makespan_seconds

    for file, _bytes in _file_traffic(ctx, spec):
        touchers = _touchers(ctx, file)
        if not touchers:
            continue
        agreed = {placement[t] for t in touchers if t in pinned}
        if len(agreed) > 1:
            continue  # earlier commits split this file's touchers
        candidates = sorted(agreed) if agreed else list(spec.node_names)
        best_trial: Optional[Tuple[float, str]] = None
        for node in candidates:
            trial_placement = dict(placement)
            for t in touchers:
                trial_placement[t] = node
            trial_map = dict(file_map)
            trial_map[file] = local_path(file, node, tier[0])
            report = build_cost_report(ctx, spec,
                                       placement=trial_placement,
                                       file_placement=trial_map)
            cost = (report.makespan_seconds
                    + _stage_in_seconds(ctx, spec, trial_map))
            if best_trial is None or cost < best_trial[0]:
                best_trial = (cost, node)
        if best_trial is None or best_trial[0] >= best_cost - 1e-9:
            continue
        cost, node = best_trial
        for t in touchers:
            placement[t] = node
            pinned.add(t)
        file_map[file] = local_path(file, node, tier[0])
        best_cost = cost
        plan.files.append(FilePlacement(
            path=file, node=node, tier=tier[0],
            volume=_copy_volume(ctx, file),
            datasets=tuple(sorted({a.dataset
                                   for c in ctx.effective.values()
                                   for a in c.accesses
                                   if a.file == file}))))

    plan.tasks = {t: placement[t] for t in sorted(pinned)}
    final = build_cost_report(ctx, spec, placement=placement,
                              file_placement=file_map)
    plan.predicted = {
        "baseline_makespan_seconds": baseline.makespan_seconds,
        "planned_makespan_seconds": final.makespan_seconds,
        "stage_in_seconds": _stage_in_seconds(ctx, spec, file_map),
    }
    return plan
