"""Transparent runtime caching — the paper's Hermes-integration vision.

"Integration with I/O middleware like Hermes could enable transparent and
immediate runtime optimization" (paper §IX).  :class:`TransparentCache`
implements that integration point for the simulated stack: installed as a
workflow runner's *path resolver*, it intercepts every read-mode open and
redirects it to a node-local replica — creating the replica on first
access — without any change to task code.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.cluster import Cluster
from repro.middleware.cache import BufferTier, TieredCache

__all__ = ["TransparentCache"]


class TransparentCache:
    """A per-node read cache usable as a ``WorkflowRunner`` path resolver.

    Args:
        cluster: The cluster whose node-local tiers back the cache.
        tier: Node-local tier name to buffer into.
        capacity_bytes: Per-node buffer capacity.
        min_bytes: Files smaller than this are not worth replicating.
        place_on_read: Create a replica on first read-mode miss (True) or
            only serve replicas placed explicitly (False).
    """

    def __init__(
        self,
        cluster: Cluster,
        tier: str = "ssd",
        capacity_bytes: int = 1 << 30,
        min_bytes: int = 4096,
        place_on_read: bool = True,
    ) -> None:
        self.cluster = cluster
        self.tier = tier
        self.min_bytes = min_bytes
        self.place_on_read = place_on_read
        self._caches: Dict[str, TieredCache] = {}
        for node in cluster.node_names():
            cluster.local_device(node, tier)  # validates the tier exists
            prefix = Cluster.local_prefix(node, tier)
            self._caches[node] = TieredCache(
                cluster.fs,
                [BufferTier(f"{node}:{tier}", f"{prefix}/xcache", capacity_bytes)],
            )
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # The WorkflowRunner path-resolver protocol
    # ------------------------------------------------------------------
    def __call__(self, path: str, mode: str, node: str) -> str:
        """Resolve an open: reads may be served from the node's replica."""
        if mode != "r":
            # A write invalidates any replica everywhere (coherence).
            self.invalidate(path)
            return path
        if self.cluster.owning_node(path) is not None:
            return path  # already node-local
        cache = self._caches[node]
        replica = cache.resolve(path)
        if replica != path:
            self.hits += 1
            return replica
        self.misses += 1
        if not self.place_on_read:
            return path
        if not self.cluster.fs.exists(path):
            return path
        if self.cluster.fs.stat(path).size < self.min_bytes:
            return path
        return cache.place(path)

    # ------------------------------------------------------------------
    # Management
    # ------------------------------------------------------------------
    def place(self, path: str, node: str) -> str:
        """Eagerly replicate ``path`` on ``node`` (a prefetch)."""
        return self._caches[node].place(path)

    def invalidate(self, path: str) -> None:
        """Drop every node's replica of ``path``."""
        for cache in self._caches.values():
            if cache.is_cached(path):
                cache.evict(path)

    def is_cached(self, path: str, node: str) -> bool:
        return self._caches[node].is_cached(path)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
