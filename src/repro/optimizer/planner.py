"""Optimization planning: diagnostic insights → an executable plan.

The planner consumes a :class:`~repro.diagnostics.report.DiagnosticReport`
(plus the cluster it will run on) and emits concrete, ordered steps:

- ``pin`` — co-schedule the named tasks on one node (producer/consumer
  chains found through read-after-write insights);
- ``stage_in`` — copy a reused or sequentially-scanned file to that node's
  local tier before its consumers run;
- ``stage_out`` — demote a disposable file once its last consumer ran;
- ``convert_contiguous`` / ``convert_chunked`` — rewrite a file's layout;
- ``consolidate`` — merge a scattered file's small datasets.

``apply_format_changes`` executes the rewrite steps immediately (they are
offline file transformations); the placement steps are consumed by
:meth:`OptimizationPlan.scheduler` and :meth:`OptimizationPlan.stage_in_all`
when re-running the workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cluster.cluster import Cluster
from repro.diagnostics.insights import Insight, InsightKind
from repro.diagnostics.report import DiagnosticReport
from repro.middleware.consolidate import consolidate_datasets
from repro.middleware.layout_convert import convert_layout
from repro.middleware.stager import stage_in, stage_out
from repro.posix.simfs import SimFS
from repro.workflow.scheduler import PinnedScheduler

__all__ = ["PlanStep", "OptimizationPlan", "build_plan"]


@dataclass(frozen=True)
class PlanStep:
    """One executable optimization action."""

    action: str           # pin | stage_in | stage_out | convert_* | consolidate
    target: str           # file path or task name
    detail: str = ""      # node, tier, or layout parameter
    rationale: str = ""


@dataclass
class OptimizationPlan:
    """An ordered, executable set of optimization steps."""

    steps: List[PlanStep] = field(default_factory=list)
    #: task name → node for the co-scheduling decisions.
    pins: Dict[str, str] = field(default_factory=dict)
    #: shared-FS path → node-local staged path.
    staged_paths: Dict[str, str] = field(default_factory=dict)

    def by_action(self, action: str) -> List[PlanStep]:
        return [s for s in self.steps if s.action == action]

    def scheduler(self) -> PinnedScheduler:
        """A placement policy enforcing the plan's co-scheduling pins."""
        return PinnedScheduler(dict(self.pins))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stage_in_all(self, fs: SimFS) -> Dict[str, str]:
        """Perform every ``stage_in`` step; returns original→staged paths."""
        for step in self.by_action("stage_in"):
            staged = self.staged_paths[step.target]
            stage_in(fs, step.target, staged)
        return dict(self.staged_paths)

    def stage_out_all(self, fs: SimFS, dst_dir: str) -> List[str]:
        """Perform every ``stage_out`` step into ``dst_dir``."""
        moved = []
        for step in self.by_action("stage_out"):
            if not fs.exists(step.target):
                continue
            name = step.target.rsplit("/", 1)[-1]
            moved.append(stage_out(fs, step.target,
                                   f"{dst_dir.rstrip('/')}/{name}",
                                   remove_src=False))
        return moved

    def apply_format_changes(self, fs: SimFS, suffix: str = ".opt.h5") -> Dict[str, str]:
        """Execute the layout/consolidation rewrites; returns old→new paths.

        Rewrites are written beside the originals (``<file><suffix>``) so
        callers can swap paths atomically per task.
        """
        rewritten: Dict[str, str] = {}
        for step in self.steps:
            if step.target in rewritten or not fs.exists(step.target):
                continue
            dst = step.target + suffix
            if step.action == "convert_contiguous":
                convert_layout(fs, step.target, dst, layout="contiguous")
            elif step.action == "convert_chunked":
                convert_layout(fs, step.target, dst, layout="chunked")
            elif step.action == "consolidate":
                consolidate_datasets(fs, step.target, dst)
            else:
                continue
            rewritten[step.target] = dst
        return rewritten

    def resolve(self, path: str) -> str:
        """The path a task should open: the staged replica when one exists."""
        return self.staged_paths.get(path, path)

    def summary(self) -> str:
        if not self.steps:
            return "Nothing to optimize."
        lines = [f"Optimization plan ({len(self.steps)} steps):"]
        for step in self.steps:
            detail = f" [{step.detail}]" if step.detail else ""
            lines.append(f"  {step.action:<19} {step.target}{detail}")
        return "\n".join(lines)


def build_plan(
    report: DiagnosticReport,
    cluster: Cluster,
    *,
    target_node: Optional[str] = None,
    local_tier: Optional[str] = None,
) -> OptimizationPlan:
    """Compile a diagnostic report into an executable plan.

    Args:
        report: Findings from :func:`repro.diagnostics.diagnose`.
        cluster: The cluster the optimized run will use.
        target_node: Node to co-schedule onto (default: first node).
        local_tier: Node-local tier for staging (default: the node's first
            tier).
    """
    node = target_node or cluster.node_names()[0]
    tiers = list(cluster.node(node).local_tiers)
    if not tiers:
        raise ValueError(f"node {node!r} has no local storage tier to stage to")
    tier = local_tier or tiers[0]
    local = Cluster.local_prefix(node, tier)
    plan = OptimizationPlan()
    staged: Set[str] = set()
    pinned: Set[str] = set()
    converted: Set[str] = set()

    def stage(path: str, why: str) -> None:
        if path in staged:
            return
        staged.add(path)
        name = path.strip("/").replace("/", "_")
        plan.staged_paths[path] = f"{local}/{name}"
        plan.steps.append(PlanStep("stage_in", path, detail=f"{node}:{tier}",
                                   rationale=why))

    def pin(tasks, why: str) -> None:
        for task in tasks:
            if task not in pinned:
                pinned.add(task)
                plan.pins[task] = node
                plan.steps.append(PlanStep("pin", task, detail=node,
                                           rationale=why))

    for insight in report.insights:
        if insight.kind in (InsightKind.DATA_REUSE, InsightKind.READ_AFTER_WRITE):
            if insight.subject.startswith("/"):
                file = insight.subject.split(":", 1)[0]
                stage(file, insight.description)
            pin(insight.tasks, insight.description)
        elif insight.kind in (InsightKind.TIME_DEPENDENT_INPUT,
                              InsightKind.READONLY_SEQUENTIAL):
            if insight.kind is InsightKind.TIME_DEPENDENT_INPUT:
                stage(insight.subject, insight.description)
            pin(insight.tasks, insight.description)
        elif insight.kind is InsightKind.DISPOSABLE_DATA:
            plan.steps.append(PlanStep("stage_out", insight.subject,
                                       rationale=insight.description))
        elif insight.kind is InsightKind.DATA_SCATTERING:
            if insight.subject not in converted:
                converted.add(insight.subject)
                plan.steps.append(PlanStep("consolidate", insight.subject,
                                           rationale=insight.description))
        elif insight.kind is InsightKind.METADATA_OVERHEAD:
            file = insight.subject.split(":", 1)[0]
            if file not in converted:
                converted.add(file)
                plan.steps.append(PlanStep("convert_contiguous", file,
                                           rationale=insight.description))
        elif insight.kind is InsightKind.VLEN_LAYOUT:
            file = insight.subject.split(":", 1)[0]
            if file not in converted:
                converted.add(file)
                plan.steps.append(PlanStep("convert_chunked", file,
                                           rationale=insight.description))
        # PARTIAL_FILE_ACCESS and TASK_INDEPENDENCE need application-side
        # changes (skip datasets, restructure stages); they are reported by
        # the guidelines engine but have no file-level executable step.
    return plan
