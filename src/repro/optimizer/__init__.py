"""Automated optimization — the paper's stated future work, implemented.

"We plan to expand the I/O optimization guidelines, further leveraging
DaYu's insights to automate optimization strategies" (paper §IX).  This
package closes the loop the evaluation performed by hand:

- :func:`~repro.optimizer.planner.build_plan` turns a diagnostic report
  into an executable :class:`~repro.optimizer.planner.OptimizationPlan` —
  placement pins, stage-in/out moves, and format rewrites;
- :meth:`OptimizationPlan.apply_format_changes` performs the layout
  rewrites/consolidations through the middleware;
- :meth:`OptimizationPlan.scheduler` yields a placement policy encoding
  the co-scheduling decisions;
- :class:`~repro.optimizer.transparent.TransparentCache` provides the
  "transparent and immediate runtime optimization" integration: a path
  resolver that redirects reads to node-local replicas automatically;
- :func:`~repro.optimizer.placement.solve_placement` derives a
  fig11-style locality placement *pre-run* from the static cost model,
  emitting an executable ``dayu-plan/v1`` artifact for
  ``dayu-run --plan``.
"""

from repro.optimizer.placement import solve_placement
from repro.optimizer.planner import OptimizationPlan, PlanStep, build_plan
from repro.optimizer.transparent import TransparentCache

__all__ = ["OptimizationPlan", "PlanStep", "build_plan", "TransparentCache",
           "solve_placement"]
