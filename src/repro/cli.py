"""The DaYu command-line toolset.

Three entry points mirror the open-source tool's runtime/offline split,
plus the optimization loop the paper performed by hand:

- ``dayu-run`` — execute one of the case-study workloads under DaYu
  profiling and save the per-task JSON profiles to a directory.
  ``--plan`` executes a solved ``dayu-plan/v1`` placement instead of
  the default round-robin one.
- ``dayu-analyze`` — the offline Workflow Analyzer: load saved profiles,
  build the FTG/SDG (HTML + DOT), run the diagnostics, and print the
  findings with their optimization recommendations.
- ``dayu-plan`` — solve a fig11-style locality placement for a bundled
  workload from the static cost model, entirely pre-run, and write the
  executable plan artifact.

Examples::

    dayu-run pyflextrkr --out traces/
    dayu-analyze traces/ --out graphs/ --regions
    dayu-plan pyflextrkr --out plan.json
    dayu-run pyflextrkr --plan plan.json --out traces-planned/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.analyzer import to_dot, to_html
from repro.cli_common import diagnose_traces_dir, positive_int
from repro.ioutil import atomic_write_json, atomic_write_text
from repro.diagnostics import diagnose
from repro.experiments.common import fresh_env
from repro.guidelines import recommend

from repro.workloads.registry import WORKLOADS as _WORKLOADS
from repro.workloads.registry import build_workload as _build_workload

__all__ = ["run_main", "analyze_main", "plan_main"]


def run_main(argv: List[str] | None = None) -> int:
    """Entry point of ``dayu-run``."""
    parser = argparse.ArgumentParser(
        prog="dayu-run",
        description="Run a case-study workload under DaYu profiling and "
                    "save per-task JSON trace profiles.",
    )
    parser.add_argument("workload", choices=_WORKLOADS)
    parser.add_argument("--out", default="traces",
                        help="host directory for the saved profiles")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale multiplier (default 1.0)")
    parser.add_argument("--nodes", type=positive_int, default=2,
                        help="simulated cluster nodes")
    parser.add_argument("--plan", metavar="PLAN.json",
                        help="execute a solved dayu-plan/v1 placement: "
                             "pin tasks to the plan's nodes, localize "
                             "its files, and stage pre-existing inputs "
                             "onto their planned tiers (see dayu-plan)")
    parser.add_argument("--trace-format",
                        choices=("json", "binary", "columnar"),
                        default="json",
                        help="saved profile format: JSON interchange, the "
                             "compact binary codec, or the footer-indexed "
                             "columnar analytics form (default json)")
    parser.add_argument("--monitor", action="store_true",
                        help="attach the live monitor (streaming lint "
                             "alerts print as they fire; see dayu-monitor "
                             "for the full live toolset)")
    parser.add_argument("--faults", metavar="SPEC.json",
                        help="inject faults from a FaultSpec JSON file "
                             "(seeded — the same spec replays bit-for-bit)")
    parser.add_argument("--retry", type=int, default=0, metavar="N",
                        help="retry failed tasks up to N extra times with "
                             "exponential backoff (default 0 = fail fast)")
    parser.add_argument("--backoff", type=float, default=0.25,
                        help="base retry backoff in simulated seconds "
                             "(default 0.25)")
    parser.add_argument("--result-json", metavar="FILE",
                        help="write the WorkflowResult (stage timings, "
                             "failures, retries) as JSON")
    parser.add_argument("--event", action="store_true",
                        help="use the event-driven per-task scheduler "
                             "(repro.workflow.dscheduler) instead of "
                             "stage-at-a-time dispatch")
    parser.add_argument("--placement",
                        choices=("locality", "least_loaded", "round_robin",
                                 "co_locate"),
                        default=None,
                        help="event-scheduler placement policy "
                             "(default locality; needs --event)")
    parser.add_argument("--deps", choices=("stage", "dataflow"),
                        default=None,
                        help="event-scheduler dependency edges: stage "
                             "barriers or contract-derived dataflow "
                             "(default stage; needs --event)")
    args = parser.parse_args(argv)
    if not args.event and (args.placement is not None
                           or args.deps is not None):
        parser.error("--placement/--deps require --event")
    if args.placement is None:
        args.placement = "locality"
    if args.deps is None:
        args.deps = "stage"

    plan = scheduler = None
    if args.plan:
        from repro.workflow.plan import (
            PlacementPlan,
            plan_path_resolver,
            plan_scheduler,
            stage_in_plan,
        )

        try:
            plan = PlacementPlan.load(args.plan)
        except (OSError, ValueError, KeyError) as exc:
            print(f"dayu-run: cannot load --plan: {exc}", file=sys.stderr)
            return 2
        if plan.workload and plan.workload != args.workload:
            print(f"dayu-run: plan {args.plan} was solved for "
                  f"{plan.workload!r}, not {args.workload!r}",
                  file=sys.stderr)
            return 2
        if plan.n_nodes > args.nodes:
            print(f"dayu-run: plan {args.plan} needs {plan.n_nodes} "
                  f"node(s); raise --nodes", file=sys.stderr)
            return 2
        if plan.scale != args.scale:
            print(f"dayu-run: note: plan was solved at scale "
                  f"{plan.scale:g}, running at {args.scale:g}",
                  file=sys.stderr)
        scheduler = plan_scheduler(plan)

    if args.monitor:
        from repro.monitor.cli import _print_alert

        env = fresh_env(n_nodes=args.nodes, scheduler=scheduler,
                        monitor=True, on_alert=_print_alert)
    else:
        env = fresh_env(n_nodes=args.nodes, scheduler=scheduler)
    if plan is not None:
        env.runner.path_resolver = plan_path_resolver(plan)
    workflow, prepare = _build_workload(args.workload, args.scale)
    if prepare is not None:
        prepare(env.cluster)
    if plan is not None:
        staged = stage_in_plan(env.cluster, plan)
        print(f"Plan {args.plan}: {len(plan.tasks)} task pin(s), "
              f"{len(plan.files)} localized file(s), "
              f"stage-in {staged:.3f} simulated seconds")

    injector = None
    if args.faults:
        from repro.faults import FaultInjector, FaultSpec

        spec = FaultSpec.load(args.faults)
        emit = env.monitor.publish if env.monitor is not None else None
        injector = FaultInjector(spec, env.cluster, emit=emit).arm()
        env.runner.faults = injector
        print(f"Faults armed from {args.faults} (seed {spec.seed}: "
              f"{len(spec.device_faults)} device fault(s), "
              f"{len(spec.node_faults)} node fault(s))")
    if args.retry:
        from repro.workflow.runner import RetryPolicy

        env.runner.retry_policy = RetryPolicy(
            max_attempts=args.retry + 1, backoff_base=args.backoff)
    if args.event:
        from repro.workflow.dscheduler import DataflowRunner

        env.runner = DataflowRunner(
            env.cluster, env.mapper,
            placement=args.placement,
            dependency_mode=args.deps,
            pins=plan.tasks if plan is not None else None,
            path_resolver=env.runner.path_resolver,
            retry_policy=env.runner.retry_policy,
            faults=env.runner.faults)

    print(f"Running {args.workload} "
          f"({len(workflow.all_tasks())} tasks on {args.nodes} node(s))...")
    result = env.runner.run(workflow)
    if env.monitor is not None:
        env.monitor.finish()
    print(f"  makespan: {result.wall_time:.3f} simulated seconds")
    if injector is not None:
        injected = ", ".join(
            f"{k}={v}" for k, v in sorted(injector.stats().items()) if v)
        print(f"  injected faults: {injected or 'none'}")
        if result.retries:
            print(f"  task retries: {result.retries}")
        if result.failures:
            lost = ", ".join(sorted(result.failures))
            print(f"  lost tasks (degraded): {lost}")
        injector.disarm()
    if args.result_json:
        atomic_write_json(args.result_json, result.to_json_dict(),
                          sort_keys=True)
        print(f"  wrote workflow result to {args.result_json}")
    written = env.mapper.save_to_host_dir(args.out,
                                          trace_format=args.trace_format)
    print(f"  wrote {len(written)} task profile(s) to {args.out}/")
    return 0


def analyze_main(argv: List[str] | None = None) -> int:
    """Entry point of ``dayu-analyze``."""
    parser = argparse.ArgumentParser(
        prog="dayu-analyze",
        description="Offline Workflow Analyzer: build FTG/SDG graphs and "
                    "diagnose dataflow from saved DaYu trace profiles.",
    )
    parser.add_argument("traces",
                        help="directory of saved task profiles "
                             "(*.json, *.dayu and/or *.dayuc)")
    parser.add_argument("--out", default="graphs",
                        help="output directory for HTML/DOT graphs")
    parser.add_argument("--trace-format",
                        choices=("auto", "json", "binary", "columnar"),
                        default="auto",
                        help="restrict to one trace format, detected by "
                             "magic bytes (default auto: mixed-format "
                             "directories analyze without flags)")
    parser.add_argument("--graph-json", action="store_true",
                        help="also write canonical ftg.json/sdg.json "
                             "(byte-stable across serial, sharded and "
                             "columnar builds — diffable)")
    parser.add_argument("--regions", action="store_true",
                        help="add file-address-region nodes to the SDG")
    parser.add_argument("--region-bytes", type=int, default=65536)
    parser.add_argument("--page-size", type=int, default=4096,
                        help="page size the traces were recorded at")
    parser.add_argument("--top", type=int, default=10,
                        help="recommendations to print")
    parser.add_argument("--infer-order", action="store_true",
                        help="recover task execution order from the traces' "
                             "producer/consumer relations")
    parser.add_argument("--advisor", action="store_true",
                        help="print the severity-triaged advisor report")
    parser.add_argument("--jobs", type=positive_int, default=1,
                        help="worker processes for loading and graph "
                             "construction (default 1 = serial)")
    parser.add_argument("--lint", action="store_true",
                        help="also run dayu-lint in the same sharded pass "
                             "and write lint.json next to the graphs")
    args = parser.parse_args(argv)

    from repro.analyzer import ParallelAnalyzer
    from repro.mapper.persist import UnknownTraceFormat

    analyzer = ParallelAnalyzer(max_workers=args.jobs)
    try:
        profiles = analyzer.load(args.traces, trace_format=args.trace_format)
    except UnknownTraceFormat as exc:
        print(f"dayu-analyze: {exc}", file=sys.stderr)
        return 2
    if not profiles:
        diagnosis = diagnose_traces_dir(args.traces, args.trace_format)
        print(f"dayu-analyze: {diagnosis}", file=sys.stderr)
        return 2
    print(f"Loaded {len(profiles)} task profile(s) from {args.traces}/")

    task_order = None
    if args.infer_order:
        from repro.analyzer import infer_task_order

        task_order = infer_task_order(profiles)
        print("Inferred task order: " + " → ".join(task_order))
        profiles.sort(key=lambda p: task_order.index(p.task))

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    ftg = analyzer.build_ftg(profiles)
    sdg = analyzer.build_sdg(profiles, with_regions=args.regions,
                             region_bytes=args.region_bytes,
                             page_size=args.page_size)
    for name, graph in (("ftg", ftg), ("sdg", sdg)):
        atomic_write_text(out / f"{name}.html",
                          to_html(graph, title=f"DaYu {name.upper()}"))
        atomic_write_text(out / f"{name}.dot", to_dot(graph, title=name))
    if args.graph_json:
        from repro.analyzer.serialize import graph_to_json

        for name, graph in (("ftg", ftg), ("sdg", sdg)):
            atomic_write_text(out / f"{name}.json", graph_to_json(graph) + "\n")
        print(f"Wrote {out}/ftg.json, {out}/sdg.json")
    print(f"FTG: {ftg.number_of_nodes()} nodes / {ftg.number_of_edges()} edges; "
          f"SDG: {sdg.number_of_nodes()} nodes / {sdg.number_of_edges()} edges")
    print(f"Wrote {out}/ftg.html, {out}/sdg.html (+ .dot)")

    report = diagnose(profiles)
    print()
    if args.advisor:
        from repro.diagnostics import advise

        print(advise(report.insights).render())
    else:
        print(report.summary())
    recs = recommend(report.insights)
    if recs:
        print(f"\nTop recommendations:")
        for rec in recs[: args.top]:
            print(f"  - {rec}")
    atomic_write_text(out / "insights.json", report.to_json())
    print(f"\nWrote {out}/insights.json")

    if args.lint:
        lint_report = analyzer.lint(profiles)
        print()
        for finding in lint_report.findings:
            print(f"  {finding}")
        print(lint_report.summary())
        atomic_write_text(out / "lint.json", lint_report.to_json())
        print(f"Wrote {out}/lint.json")
    return 0


def plan_main(argv: List[str] | None = None) -> int:
    """Entry point of ``dayu-plan``."""
    parser = argparse.ArgumentParser(
        prog="dayu-plan",
        description="Solve a fig11-style locality placement for a "
                    "bundled workload from the static cost model — "
                    "entirely pre-run — and write the executable "
                    "dayu-plan/v1 artifact for dayu-run --plan.",
    )
    parser.add_argument("workload", choices=_WORKLOADS)
    parser.add_argument("--out", default="plan.json",
                        help="where to write the plan JSON "
                             "(default plan.json)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale multiplier (default 1.0; "
                             "match the dayu-run scale)")
    parser.add_argument("--nodes", type=positive_int, default=2,
                        help="simulated cluster nodes to place onto "
                             "(default 2)")
    parser.add_argument("--cost-out", metavar="PATH",
                        help="also write the baseline static cost report "
                             "(dayu-cost/v1 JSON) to PATH")
    args = parser.parse_args(argv)

    from repro.cluster.configs import cluster_spec
    from repro.optimizer import solve_placement

    workflow, _prepare = _build_workload(args.workload, args.scale)
    spec = cluster_spec("gpu", args.nodes)
    plan = solve_placement(workflow, spec, workload=args.workload,
                           scale=args.scale)
    plan.save(args.out)
    pred = plan.predicted
    print(f"Solved placement for {args.workload} (scale {args.scale:g}) "
          f"on {args.nodes} node(s):")
    print(f"  predicted baseline makespan: "
          f"{pred['baseline_makespan_seconds']:.3f}s")
    print(f"  predicted planned  makespan: "
          f"{pred['planned_makespan_seconds']:.3f}s "
          f"(+ {pred['stage_in_seconds']:.3f}s stage-in)")
    print(f"  {len(plan.tasks)} task pin(s), "
          f"{len(plan.files)} file localization(s)")
    print(f"  wrote {args.out}")
    if args.cost_out:
        from repro.lint.cost import build_cost_context

        build_cost_context(workflow, spec).report.save(args.cost_out)
        print(f"  wrote cost report to {args.cost_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(run_main())
