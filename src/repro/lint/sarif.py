"""SARIF 2.1.0 emitter for dayu-lint reports.

One run, one tool (``dayu-lint``), one reportingDescriptor per
*registered* rule (not just rules that fired — SARIF viewers use the
rule table for filtering), one result per finding.  Severities map 1:1
onto SARIF levels (``error``/``warning``/``note``); the finding's stable
fingerprint is published as a ``partialFingerprints`` entry so services
like GitHub code scanning track a finding across runs the same way the
local baseline file does.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.lint.engine import LintReport
from repro.lint.findings import Finding
from repro.lint.rules import all_rules

__all__ = ["to_sarif_dict", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
_TOOL_NAME = "dayu-lint"
_TOOL_URI = "https://github.com/paper-repro/dayu"


def _artifact_uri(location: Optional[str]) -> Optional[str]:
    if not location:
        return None
    if "://" in location:
        return location
    # SARIF wants a URI; trace paths in the simulated FS are absolute.
    return "file://" + location if location.startswith("/") else location


def _result(finding: Finding, rule_index: dict) -> dict:
    result = {
        "ruleId": finding.code,
        "ruleIndex": rule_index[finding.code],
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "partialFingerprints": {
            "dayuLintFingerprint/v1": finding.fingerprint,
        },
        "properties": {
            "subject": finding.subject,
            "tasks": list(finding.tasks),
            "evidence": finding.evidence,
        },
    }
    uri = _artifact_uri(finding.location)
    if uri:
        result["locations"] = [{
            "physicalLocation": {
                "artifactLocation": {"uri": uri},
            },
        }]
    return result


def to_sarif_dict(report: LintReport,
                  tool_version: str = "0.1.0") -> dict:
    """Render a lint report as a SARIF 2.1.0 log (as a JSON-ready dict)."""
    rules = all_rules()
    rule_index = {r.code: i for i, r in enumerate(rules)}
    descriptors = [
        {
            "id": r.code,
            "name": r.name,
            "shortDescription": {"text": r.description},
            "defaultConfiguration": {
                "level": r.severity.value,
                "enabled": r.default_enabled,
            },
            "properties": {"scope": r.scope},
        }
        for r in rules
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri": _TOOL_URI,
                    "version": tool_version,
                    "rules": descriptors,
                },
            },
            "results": [_result(f, rule_index) for f in report.findings],
            "properties": {
                "tasks": list(report.tasks),
                "suppressedFingerprints": [
                    f.fingerprint for f in report.suppressed
                ],
            },
        }],
    }


def to_sarif(report: LintReport, tool_version: str = "0.1.0",
             indent: int = 2) -> str:
    return json.dumps(to_sarif_dict(report, tool_version),
                      indent=indent) + "\n"
