"""Predicted SDG: the Semantic Dataflow Graph before anything runs.

DaYu builds its SDG from VOL/VFD traces after a run; this module builds
the same graph shape from :class:`~repro.workflow.contracts.TaskContract`
alone — declared on tasks or inferred by :mod:`repro.lint.static` — so
the DY4xx pre-run rules and the contract-drift checker can reason about
a workflow that has never executed.

Two views are produced from a workflow:

- :class:`StaticContext` — the cross-task join of every task's
  effective contract, the stage schedule, and a *static* dataflow DAG
  (producer → consumer edges, only when the producer is scheduled
  before the consumer).  Reachability over this DAG is the pre-run
  analogue of :class:`~repro.lint.context.OrderingInfo`: writers with
  no read chain between them are unordered even inside a serial stage,
  matching what the trace-derived dependency DAG would conclude.
- :func:`build_predicted_sdg` — synthetic
  :class:`~repro.mapper.mapper.TaskProfile` objects fed through the
  ordinary :class:`~repro.analyzer.graphs.GraphBuilder`, yielding a
  real ``networkx`` SDG whose volumes come from contract element
  counts instead of traced bytes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.analyzer.graphs import GraphBuilder
from repro.lint.context import OrderingInfo
from repro.lint.static import WorkflowContracts, extract_workflow_contracts
from repro.mapper.mapper import TaskProfile
from repro.mapper.stats import DatasetIoStats
from repro.simclock import TimeSpan
from repro.workflow.contracts import (
    ContractAccess,
    TaskContract,
    dtype_itemsize,
)
from repro.workflow.model import Workflow

__all__ = [
    "StaticContext",
    "build_static_context",
    "access_bytes",
    "synthetic_profiles",
    "build_predicted_sdg",
]

#: Fallback element width (bytes) when a contract carries no dtype.
_DEFAULT_ITEMSIZE = 4


@dataclass
class StaticContext:
    """The cross-task contract join the DY4xx rules evaluate.

    Attributes:
        workflow: The workflow under analysis.
        contracts: Declared + inferred contracts per task.
        effective: Per task, the contract the rules use (declared when
            present, else inferred).
        schedule: ``task -> (stage_index, position)``; position orders
            tasks within a *serial* stage (parallel-stage tasks are
            concurrent regardless of position).
        parallel_stage: ``task -> stage.parallel``.
        producers: ``(file, dataset) -> tasks`` whose contracts move
            data into it (writes and data-bearing creates).
        creators: ``(file, dataset) -> tasks`` that create it (data or
            not).
        readers: ``(file, dataset) -> tasks`` that read its data.
        file_producers: ``file -> tasks`` that create or write anything
            in it — distinguishes in-workflow files from external
            inputs.
        ordering: Happens-before oracle over the static dataflow DAG.
    """

    workflow: Workflow
    contracts: WorkflowContracts
    effective: Dict[str, TaskContract]
    schedule: Dict[str, Tuple[int, int]]
    parallel_stage: Dict[str, bool]
    producers: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    creators: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    readers: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    file_producers: Dict[str, Set[str]] = field(default_factory=dict)
    ordering: Optional[OrderingInfo] = None

    def scheduled_before(self, a: str, b: str) -> bool:
        """True when the stage plan runs ``a`` strictly before ``b``."""
        sa, sb = self.schedule.get(a), self.schedule.get(b)
        if sa is None or sb is None:
            return False
        if sa[0] != sb[0]:
            return sa[0] < sb[0]
        if self.parallel_stage.get(a, True):
            return False
        return sa[1] < sb[1]

    def accesses_for(self, key: Tuple[str, str], task: str
                     ) -> List[ContractAccess]:
        contract = self.effective.get(task)
        if contract is None:
            return []
        return [a for a in contract.accesses if a.key == key]

    def create_access(self, key: Tuple[str, str]
                      ) -> Optional[ContractAccess]:
        """The first exact ``create`` declaring this dataset's extent."""
        for task in self.creators.get(key, ()):
            for a in self.accesses_for(key, task):
                if a.op == "create" and a.exact and a.extent is not None:
                    return a
        return None


def _index_contracts(ctx: StaticContext) -> None:
    producers = defaultdict(list)
    creators = defaultdict(list)
    readers = defaultdict(list)
    file_producers = defaultdict(set)
    for task in (t.name for t in ctx.workflow.all_tasks()):
        contract = ctx.effective.get(task)
        if contract is None:
            continue
        seen_prod, seen_create, seen_read = set(), set(), set()
        for a in contract.accesses:
            if a.op == "create" and a.key not in seen_create:
                seen_create.add(a.key)
                creators[a.key].append(task)
            if a.op in ("create", "write"):
                file_producers[a.file].add(task)
            if a.op == "read" and a.key not in seen_read:
                seen_read.add(a.key)
                readers[a.key].append(task)
            if a.moves_data and a.op in ("create", "write") \
                    and a.key not in seen_prod:
                seen_prod.add(a.key)
                producers[a.key].append(task)
    ctx.producers = dict(producers)
    ctx.creators = dict(creators)
    ctx.readers = dict(readers)
    ctx.file_producers = dict(file_producers)


def _static_dag(ctx: StaticContext) -> "nx.DiGraph":
    """Producer → consumer edges the stage plan can actually realize.

    An edge exists only when the producing task is scheduled strictly
    before the consuming one — a read scheduled concurrently with (or
    ahead of) its producer is *not* a dependency, it is a hazard the
    rules will report.
    """
    dag = nx.DiGraph()
    for t in ctx.workflow.all_tasks():
        dag.add_node(t.name)
    for key, consumers in ctx.readers.items():
        for producer in ctx.producers.get(key, ()):
            for consumer in consumers:
                if producer == consumer:
                    continue
                if ctx.scheduled_before(producer, consumer):
                    dag.add_edge(producer, consumer, dataset=key)
    return dag


def build_static_context(
    workflow: Workflow,
    contracts: Optional[WorkflowContracts] = None,
) -> StaticContext:
    """Join a workflow's contracts into the pre-run rule context.

    ``contracts`` defaults to running the AST extractor over every task
    (merging in declared contracts where tasks carry them).
    """
    if contracts is None:
        contracts = extract_workflow_contracts(workflow)
    schedule: Dict[str, Tuple[int, int]] = {}
    parallel_stage: Dict[str, bool] = {}
    for si, stage in enumerate(workflow.stages):
        for pi, task in enumerate(stage.tasks):
            schedule[task.name] = (si, pi)
            parallel_stage[task.name] = stage.parallel
    ctx = StaticContext(
        workflow=workflow,
        contracts=contracts,
        effective=contracts.effective(),
        schedule=schedule,
        parallel_stage=parallel_stage,
    )
    _index_contracts(ctx)
    ctx.ordering = OrderingInfo(_static_dag(ctx))
    return ctx


# ----------------------------------------------------------------------
# The predicted SDG
# ----------------------------------------------------------------------
def access_bytes(a: ContractAccess) -> int:
    """Predicted bytes one operation of this access moves."""
    itemsize = dtype_itemsize(a.dtype) or _DEFAULT_ITEMSIZE
    elements = a.elements
    if elements is None:
        elements = a.extent_elements or 0
    return elements * itemsize


def _synthetic_span(ctx: StaticContext, task: str) -> TimeSpan:
    """A schedule-shaped time span: one simulated second per stage,
    serial-stage tasks sub-ordered within it."""
    si, pi = ctx.schedule.get(task, (0, 0))
    if ctx.parallel_stage.get(task, True):
        return TimeSpan(start=float(si), end=float(si + 1))
    width = max(len(ctx.workflow.stages[si].tasks), 1)
    return TimeSpan(start=si + pi / width, end=si + (pi + 1) / width)


def synthetic_profiles(ctx: StaticContext) -> List[TaskProfile]:
    """Contract-shaped :class:`TaskProfile` stand-ins (no I/O records).

    Each task's contract becomes one :class:`DatasetIoStats` row per
    ``(file, dataset)``, with operation counts and byte volumes computed
    from element counts and dtypes.  The rows are exactly what
    :class:`~repro.analyzer.graphs.GraphBuilder` consumes, so the
    predicted SDG is built by the same code path as the traced one.
    """
    profiles: List[TaskProfile] = []
    for t in ctx.workflow.all_tasks():
        contract = ctx.effective.get(t.name)
        span = _synthetic_span(ctx, t.name)
        rows: Dict[Tuple[str, str], DatasetIoStats] = {}
        for a in (contract.accesses if contract is not None else ()):
            stats = rows.get(a.key)
            if stats is None:
                stats = DatasetIoStats(task=t.name, file=a.file,
                                       data_object=a.dataset)
                stats.first_start = span.start
                stats.last_end = span.end
                rows[a.key] = stats
            ops = max(a.count, 1)
            volume = access_bytes(a) * ops
            if a.op == "read":
                stats.reads += ops
                stats.bytes_read += volume
                stats.data_ops += ops
                stats.data_bytes += volume
            elif a.op == "write" or (a.op == "create" and a.moves_data):
                stats.writes += ops
                stats.bytes_written += volume
                stats.data_ops += ops
                stats.data_bytes += volume
            elif a.op in ("create", "resize"):
                stats.writes += ops  # shape/definition: metadata write
                stats.metadata_ops += ops
            else:  # "open" — metadata-only touch
                stats.metadata_ops += ops
        profiles.append(TaskProfile(
            task=t.name, span=span,
            files=sorted({key[0] for key in rows}),
            object_profiles=[], file_sessions=[], io_records=[],
            dataset_stats=[rows[key] for key in sorted(rows)],
        ))
    return profiles


def build_predicted_sdg(
    workflow: Workflow,
    contracts: Optional[WorkflowContracts] = None,
) -> "nx.DiGraph":
    """Build the SDG a run of this workflow is predicted to produce.

    Same node/edge schema as :func:`repro.analyzer.graphs.build_sdg`
    (task/file/dataset nodes, read/write edges with count and volume),
    with ``predicted=True`` set on the graph for consumers that care.
    """
    ctx = build_static_context(workflow, contracts)
    builder = GraphBuilder("sdg")
    for profile in synthetic_profiles(ctx):
        builder.add_profile(profile)
    graph = builder.build(copy=False)
    graph.graph["predicted"] = True
    return graph
