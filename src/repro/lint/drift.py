"""DY45x — contract drift: the predicted vs. observed differential.

After a run, each task's access contract (declared or AST-inferred) is
joined against the trace-derived
:class:`~repro.lint.context.ProfileSummary` of the same task.  Drift in
either direction is a finding:

- the code touched data its contract never mentioned (DY451) — the
  contract is stale, or the task does I/O its author doesn't know about;
- the contract promised I/O the run never performed (DY452) — dead
  declarations, or a silently skipped code path.

Matching is deliberately asymmetric where the contract is weaker than
the trace: ``open`` accesses (metadata-only touches) are never required
to materialize; ``conditional`` and inexact accesses are exempt from
DY452 (the extractor already said they may not happen); dataless
``create`` accesses are matched through the file-level write marker,
since defining a dataset moves metadata but no data.

Every rule here has ``scope="drift"`` and the signature
``check(summary, contract, config) -> findings`` — per-task, so
:class:`~repro.analyzer.parallel.ParallelAnalyzer` shards the join the
same way it shards profile rules.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set, Tuple

from repro.lint.context import ProfileSummary
from repro.lint.findings import Finding, Severity
from repro.lint.rules import LintConfig, rule
from repro.workflow.contracts import TaskContract

__all__ = []  # rules register themselves; nothing to import by name


def _covered_ops(contract: TaskContract,
                 key: Tuple[str, str]) -> Set[str]:
    """Operation kinds the contract claims for one ``(file, dataset)``.

    Any mention of the dataset (including ``open``) counts as coverage
    for metadata; ``read``/``write`` coverage requires a data access —
    with a data-bearing ``create`` implying ``write``.
    """
    ops: Set[str] = set()
    for a in contract.accesses:
        if a.key != key:
            continue
        ops.add("touch")
        if a.op == "read":
            ops.add("read")
        elif a.op == "write":
            ops.add("write")
        elif a.op == "create":
            ops.add("create")
            if a.moves_data:
                ops.add("write")
    return ops


@rule("DY451", "undeclared-access", Severity.ERROR, "drift",
      "The run moved data through a dataset the task's contract never "
      "mentions — the contract is stale or the code performs I/O its "
      "author doesn't know about.")
def _undeclared_access(summary: ProfileSummary,
                       contract: Optional[TaskContract],
                       config: LintConfig) -> Iterator[Finding]:
    if contract is None:
        return  # uncontracted tasks are DY453's
    for key in sorted(summary.objects):
        acc = summary.objects[key]
        observed = set()
        if acc.raw_reads or acc.vol_reads:
            observed.add("read")
        if acc.raw_writes or acc.vol_writes:
            observed.add("write")
        if not observed:
            continue
        missing = observed - _covered_ops(contract, key)
        if not missing:
            continue
        file, dataset = key
        kinds = " and ".join(sorted(missing))
        yield Finding(
            code="DY451", rule="undeclared-access",
            severity=Severity.ERROR,
            subject=f"{file}:{dataset}",
            tasks=(summary.task,),
            message=(
                f"{summary.task} performed a {kinds} of {dataset} in "
                f"{file} that its contract never declares"),
            evidence={
                "undeclared": sorted(missing),
                "raw_reads": acc.raw_reads,
                "raw_writes": acc.raw_writes,
                "vol_reads": acc.vol_reads,
                "vol_writes": acc.vol_writes,
            },
        )


def _performed(summary: ProfileSummary, key: Tuple[str, str],
               op: str) -> bool:
    acc = summary.objects.get(key)
    if op == "read":
        return acc is not None and bool(acc.raw_reads or acc.vol_reads)
    if op == "write":
        return acc is not None and bool(acc.raw_writes or acc.vol_writes)
    # "create": a dataless definition moves only file metadata, so any
    # write into the file satisfies it.
    if acc is not None and (acc.raw_writes or acc.vol_writes):
        return True
    return key[0] in summary.files_written


@rule("DY452", "unperformed-contract", Severity.WARNING, "drift",
      "The task's contract promises I/O the run never performed — a dead "
      "declaration, or a silently skipped code path.  Conditional and "
      "inexact contract entries are exempt.")
def _unperformed_contract(summary: ProfileSummary,
                          contract: Optional[TaskContract],
                          config: LintConfig) -> Iterator[Finding]:
    if contract is None:
        return
    reported: Set[Tuple[str, str, str]] = set()
    for a in contract.accesses:
        # "open" and "resize" are metadata-only — never required to
        # materialize as data movement in the trace.
        if a.op in ("open", "resize") or a.conditional or not a.exact:
            continue
        if a.op == "create" and not a.moves_data:
            op = "create"
        elif a.op == "create":
            op = "write"
        else:
            op = a.op
        if (a.file, a.dataset, op) in reported:
            continue
        if _performed(summary, a.key, op):
            continue
        reported.add((a.file, a.dataset, op))
        verb = {"read": "a read of", "write": "a write to",
                "create": "the creation of"}[op]
        yield Finding(
            code="DY452", rule="unperformed-contract",
            severity=Severity.WARNING,
            subject=f"{a.file}:{a.dataset}",
            tasks=(summary.task,),
            message=(
                f"contract of {summary.task} ({contract.source}) "
                f"promises {verb} {a.dataset} in {a.file}, but the run "
                "never performed it"),
            evidence={"op": op, "source": contract.source},
        )


@rule("DY453", "uncontracted-task", Severity.NOTE, "drift",
      "A traced task has no contract at all — neither declared nor "
      "recoverable by the AST extractor — so drift checking cannot "
      "cover it.")
def _uncontracted_task(summary: ProfileSummary,
                       contract: Optional[TaskContract],
                       config: LintConfig) -> Iterator[Finding]:
    if contract is not None:
        return
    yield Finding(
        code="DY453", rule="uncontracted-task",
        severity=Severity.NOTE,
        subject=summary.task,
        tasks=(summary.task,),
        message=(
            f"task {summary.task} appears in the traces but has no "
            "access contract — declare one or check extractor notes"),
        evidence={},
    )
