"""DY40x — pre-run contract rules: hazards visible before execution.

The trace rules (DY1xx/DY2xx) need a finished run; these fire from the
workflow *definition* alone, evaluated over the
:class:`~repro.lint.predict.StaticContext` join of declared and
AST-inferred access contracts.  Ordering is the static dataflow DAG:
a producer happens-before a consumer only when the stage plan schedules
it strictly earlier — two writers with no read chain between them are
unordered even inside a serial stage, exactly what the trace-derived
dependency DAG would conclude after the fact.

Every rule here has ``scope="contract"`` and the signature
``check(ctx: StaticContext, config: LintConfig) -> findings``.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.predict import StaticContext
from repro.lint.rules import LintConfig, rule
from repro.workflow.contracts import (
    ContractAccess,
    dtype_itemsize,
    reconcile,
)

__all__ = []  # rules register themselves; nothing to import by name


def _select_ranges(accesses: List[ContractAccess]
                   ) -> Optional[List[Tuple[int, int]]]:
    """Merged element ranges of a task's data writes, or None when any
    write carries no selection (whole-dataset write assumed)."""
    out: List[Tuple[int, int]] = []
    for a in accesses:
        if not (a.moves_data and a.op in ("create", "write")):
            continue
        rng = a.select_range
        if rng is None or not a.exact:
            return None
        out.append(rng)
    return out


def _ranges_overlap(a: List[Tuple[int, int]],
                    b: List[Tuple[int, int]]) -> bool:
    return any(max(x[0], y[0]) < min(x[1], y[1]) for x in a for y in b)


@rule("DY401", "unordered-contract-writers", Severity.ERROR, "contract",
      "Two tasks' contracts both write a dataset and no read chain in "
      "the schedule orders them — the surviving content depends on "
      "scheduling.  Downgraded to a warning when the declared element "
      "selections are provably disjoint (collective-write pattern).")
def _unordered_writers(ctx: StaticContext,
                       config: LintConfig) -> Iterator[Finding]:
    for key in sorted(ctx.producers):
        writers = ctx.producers[key]
        if len(writers) < 2:
            continue
        file, dataset = key
        seen = set()
        for a, b in itertools.combinations(writers, 2):
            pair = tuple(sorted((a, b)))
            if pair in seen or ctx.ordering.ordered(a, b):
                continue
            seen.add(pair)
            ra = _select_ranges(ctx.accesses_for(key, a))
            rb = _select_ranges(ctx.accesses_for(key, b))
            disjoint = (ra is not None and rb is not None
                        and not _ranges_overlap(ra, rb))
            if disjoint:
                severity = Severity.WARNING
                detail = ("their element selections are disjoint "
                          "(collective partial-write pattern), but "
                          "metadata updates still race")
            else:
                severity = Severity.ERROR
                detail = "the last scheduled writer wins"
            yield Finding(
                code="DY401", rule="unordered-contract-writers",
                severity=severity,
                subject=f"{file}:{dataset}",
                tasks=pair,
                message=(
                    f"contracts of {pair[0]} and {pair[1]} both write "
                    f"{dataset} in {file} and no dataflow path orders "
                    f"them; {detail}"),
                evidence={"writers": list(pair),
                          "disjoint_selections": disjoint},
            )


@rule("DY402", "consumer-before-producer", Severity.ERROR, "contract",
      "A task's contract reads a dataset whose only producers are "
      "scheduled concurrently with or after the reader — the read can "
      "observe missing or partial data.")
def _consumer_before_producer(ctx: StaticContext,
                              config: LintConfig) -> Iterator[Finding]:
    for key in sorted(ctx.readers):
        producers = ctx.producers.get(key, [])
        if not producers:
            continue  # producer-less reads are DY403's
        file, dataset = key
        for reader in ctx.readers[key]:
            if reader in producers:
                continue  # self-produced: ordered by program order
            if any(ctx.scheduled_before(p, reader) for p in producers):
                continue
            yield Finding(
                code="DY402", rule="consumer-before-producer",
                severity=Severity.ERROR,
                subject=f"{file}:{dataset}",
                tasks=(reader,),
                message=(
                    f"{reader} reads {dataset} in {file}, but its "
                    f"producer(s) ({', '.join(sorted(producers))}) are "
                    "not scheduled before it — the read can observe "
                    "missing or partial data"),
                evidence={"producers": sorted(producers)},
            )


@rule("DY403", "producer-less-read", Severity.ERROR, "contract",
      "A task's contract reads a dataset no task's contract ever writes "
      "data into, in a file the workflow itself produces — a phantom "
      "read baked into the definition.")
def _producerless_read(ctx: StaticContext,
                       config: LintConfig) -> Iterator[Finding]:
    for key in sorted(ctx.readers):
        if ctx.producers.get(key):
            continue
        file, dataset = key
        if file not in ctx.file_producers:
            continue  # external input file: produced outside the workflow
        for reader in ctx.readers[key]:
            creators = ctx.creators.get(key, [])
            created = (f" ({', '.join(sorted(creators))} creates it "
                       "without data)") if creators else ""
            yield Finding(
                code="DY403", rule="producer-less-read",
                severity=Severity.ERROR,
                subject=f"{file}:{dataset}",
                tasks=(reader,),
                message=(
                    f"{reader} reads {dataset} in {file}, but no task's "
                    f"contract ever writes data into it{created} — the "
                    "read returns nothing meaningful"),
                evidence={"creators": sorted(creators)},
            )


@rule("DY404", "dead-output", Severity.NOTE, "contract",
      "A dataset some task's contract writes is never read by any other "
      "task's contract.  Final workflow products legitimately match this "
      "shape, so the rule is opt-in.",
      default_enabled=False)
def _dead_output(ctx: StaticContext,
                 config: LintConfig) -> Iterator[Finding]:
    for key in sorted(ctx.producers):
        readers = [r for r in ctx.readers.get(key, [])
                   if r not in ctx.producers[key]]
        if readers:
            continue
        file, dataset = key
        writers = tuple(sorted(ctx.producers[key]))
        yield Finding(
            code="DY404", rule="dead-output",
            severity=Severity.NOTE,
            subject=f"{file}:{dataset}",
            tasks=writers,
            message=(
                f"{dataset} in {file} is written by "
                f"{', '.join(writers)} but no task's contract reads it "
                "— dead output unless it is a final product"),
            evidence={"writers": list(writers)},
        )


@rule("DY405", "contract-extent-overflow", Severity.ERROR, "contract",
      "A contract access moves more elements into a dataset than its "
      "declared creation extent holds — an out-of-bounds write/read "
      "promised in the definition itself.")
def _extent_overflow(ctx: StaticContext,
                     config: LintConfig) -> Iterator[Finding]:
    keys = set(ctx.readers) | set(ctx.producers)
    for key in sorted(keys):
        create = ctx.create_access(key)
        if create is None:
            continue
        cap = create.extent_elements
        if cap is None:
            continue
        file, dataset = key
        for task in sorted(set(ctx.readers.get(key, []))
                           | set(ctx.producers.get(key, []))):
            for a in ctx.accesses_for(key, task):
                if a.op not in ("read", "write") or not a.exact:
                    continue
                over = None
                if a.elements is not None and a.elements > cap:
                    over = a.elements
                rng = a.select_range
                if rng is not None and rng[1] > cap:
                    over = max(over or 0, rng[1])
                if over is None:
                    continue
                yield Finding(
                    code="DY405", rule="contract-extent-overflow",
                    severity=Severity.ERROR,
                    subject=f"{file}:{dataset}",
                    tasks=(task,),
                    message=(
                        f"{task} {a.op}s {over} element(s) of {dataset} "
                        f"in {file}, but its declared extent holds only "
                        f"{cap}"),
                    evidence={"elements": over, "capacity": cap,
                              "op": a.op},
                )
                break  # one finding per (dataset, task) is enough


@rule("DY406", "vlen-in-contiguous", Severity.NOTE, "contract",
      "A contract creates a variable-length dataset with contiguous "
      "layout — every element lands in the global heap, turning one "
      "logical access into scattered small I/O (the paper's ARLDM "
      "finding).  Opt-in: it overlaps the optimization advisor.",
      default_enabled=False)
def _vlen_contiguous(ctx: StaticContext,
                     config: LintConfig) -> Iterator[Finding]:
    for key in sorted(ctx.creators):
        file, dataset = key
        for task in ctx.creators[key]:
            for a in ctx.accesses_for(key, task):
                if a.op != "create":
                    continue
                if not a.dtype.startswith("vlen"):
                    continue
                if a.layout and a.layout != "contiguous":
                    continue
                yield Finding(
                    code="DY406", rule="vlen-in-contiguous",
                    severity=Severity.NOTE,
                    subject=f"{file}:{dataset}",
                    tasks=(task,),
                    message=(
                        f"{task} creates variable-length {dataset} in "
                        f"{file} with contiguous layout — element data "
                        "goes through the global heap as scattered "
                        "small I/O; chunked layout batches it"),
                    evidence={"dtype": a.dtype,
                              "layout": a.layout or "contiguous"},
                )
                break


@rule("DY407", "open-in-loop", Severity.WARNING, "contract",
      "A task's code re-opens the same file many times (open inside a "
      "loop) — each open replays superblock and metadata reads that one "
      "open outside the loop would amortize.")
def _open_in_loop(ctx: StaticContext,
                  config: LintConfig) -> Iterator[Finding]:
    for task in sorted(ctx.effective):
        contract = ctx.effective[task]
        for path in sorted(contract.file_opens):
            count = contract.file_opens[path]
            if count < config.open_loop_min_opens:
                continue
            yield Finding(
                code="DY407", rule="open-in-loop",
                severity=Severity.WARNING,
                subject=path,
                tasks=(task,),
                message=(
                    f"{task} opens {path} {count} times — hoist the "
                    "open out of the loop to amortize per-open metadata "
                    "I/O"),
                evidence={"opens": count,
                          "threshold": config.open_loop_min_opens},
            )


@rule("DY408", "loop-small-write-amplification", Severity.WARNING,
      "contract",
      "A contract predicts many loop-carried writes of tiny payloads to "
      "one dataset — the small-I/O amplification DY103 detects in "
      "traces, visible before the run.")
def _small_write_amplification(ctx: StaticContext,
                               config: LintConfig) -> Iterator[Finding]:
    for task in sorted(ctx.effective):
        contract = ctx.effective[task]
        seen = set()
        for a in contract.accesses:
            if not (a.moves_data and a.op in ("create", "write")):
                continue
            if a.count < config.small_io_min_ops or a.elements is None:
                continue
            itemsize = dtype_itemsize(a.dtype) or 4
            nbytes = a.elements * itemsize
            if nbytes > config.small_io_max_avg_bytes or a.key in seen:
                continue
            seen.add(a.key)
            file, dataset = a.key
            yield Finding(
                code="DY408", rule="loop-small-write-amplification",
                severity=Severity.WARNING,
                subject=f"{file}:{dataset}",
                tasks=(task,),
                message=(
                    f"{task} is predicted to issue {a.count} writes of "
                    f"~{nbytes} byte(s) each to {dataset} in {file} — "
                    "batch them into fewer, larger operations"),
                evidence={"count": a.count, "bytes_per_op": nbytes},
            )


@rule("DY409", "contract-mismatch", Severity.WARNING, "contract",
      "A task's declared contract disagrees with what the AST extractor "
      "infers from its code — the declaration is stale or the code "
      "does undeclared I/O.")
def _contract_mismatch(ctx: StaticContext,
                       config: LintConfig) -> Iterator[Finding]:
    for task in sorted(ctx.contracts.declared):
        declared = ctx.contracts.declared[task]
        inferred = ctx.contracts.inferred.get(task)
        if inferred is None:
            continue
        discrepancies = reconcile(declared, inferred)
        if not discrepancies:
            continue
        yield Finding(
            code="DY409", rule="contract-mismatch",
            severity=Severity.WARNING,
            subject=task,
            tasks=(task,),
            message=(
                f"declared contract of {task} disagrees with its code: "
                + "; ".join(discrepancies)),
            evidence={"discrepancies": discrepancies},
        )
