"""``repro.lint`` — dayu-lint: static dataflow hazard detection and
trace sanitizing over saved DaYu task profiles.

Three rule families over the same joined VOL/VFD trace data the
FTG/SDG are built from:

- **DY1xx** semantic anti-patterns (dead writes, phantom reads,
  small-I/O amplification, layout disagreements);
- **DY2xx** dataflow hazards (RAW/WAR/WAW conflicts between tasks with
  no happens-before path in the trace-derived dependency DAG);
- **DY3xx** trace-integrity violations (the sanitizer: cross-layer byte
  accounting, malformed extents, escaped timestamps);
- **DY40x** pre-run contract rules — fire from the workflow definition
  alone, over declared + AST-inferred access contracts (no traces);
- **DY45x** contract drift — the differential join of contracts against
  observed traces;
- **DY5xx** happens-before races (opt-in: ``--races`` / ``--select
  DY5*``) — vector-clock analysis under dependency-only vs as-executed
  orderings, schedule-sensitivity reports, and concrete reorder
  witnesses for every conviction.

Typical use::

    from repro.lint import LintConfig, lint_profiles
    report = lint_profiles(profiles, LintConfig(disable=("DY103",)))
    if report.errors:
        print(report.to_json())

pre-run, with no traces on disk::

    from repro.lint import lint_workflow
    report = lint_workflow(workflow)   # DY40x over contracts

or from the shell: ``dayu-lint traces/ --format sarif --out lint.sarif``,
``dayu-lint --static corner-hazards``, ``dayu-lint traces/ --diff ddmd``.
"""

from repro.lint.findings import Finding, Severity
from repro.lint.rules import LintConfig, LintRule, all_rules, get_rule
from repro.lint.context import (
    ObjectAccess,
    OrderingInfo,
    ProfileSummary,
    WorkflowIndex,
    build_index,
    compute_ordering,
    summarize_profile,
)

# Importing the engine pulls in the rule modules, populating the registry.
from repro.lint.engine import (
    LintReport,
    baseline_text,
    diff_profiles,
    lint_profiles,
    lint_workflow,
    load_baseline,
    parse_baseline,
    run_contract_rules,
    run_drift_rules,
    run_profile_rules,
    run_race_rules,
    run_workflow_rules,
    save_baseline,
)
from repro.lint.hb import HbOrder, IntervalSet, reorder_witness
from repro.lint.race import (
    RaceContext,
    build_static_race_context,
    build_trace_race_context,
    replay_witness,
    sensitivity_report_from_findings,
)
from repro.lint.predict import (
    StaticContext,
    build_predicted_sdg,
    build_static_context,
    synthetic_profiles,
)
from repro.lint.sarif import to_sarif, to_sarif_dict
from repro.lint.static import (
    WorkflowContracts,
    extract_workflow_contracts,
    infer_contract,
)

__all__ = [
    "Finding",
    "Severity",
    "LintRule",
    "LintConfig",
    "LintReport",
    "all_rules",
    "get_rule",
    "ObjectAccess",
    "ProfileSummary",
    "WorkflowIndex",
    "OrderingInfo",
    "build_index",
    "compute_ordering",
    "summarize_profile",
    "lint_profiles",
    "lint_workflow",
    "diff_profiles",
    "run_profile_rules",
    "run_workflow_rules",
    "run_contract_rules",
    "run_drift_rules",
    "run_race_rules",
    "HbOrder",
    "IntervalSet",
    "reorder_witness",
    "RaceContext",
    "build_trace_race_context",
    "build_static_race_context",
    "replay_witness",
    "sensitivity_report_from_findings",
    "StaticContext",
    "build_static_context",
    "build_predicted_sdg",
    "synthetic_profiles",
    "WorkflowContracts",
    "extract_workflow_contracts",
    "infer_contract",
    "load_baseline",
    "save_baseline",
    "parse_baseline",
    "baseline_text",
    "to_sarif",
    "to_sarif_dict",
]
