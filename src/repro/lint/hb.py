"""The happens-before engine: interval vector clocks over two orderings.

DaYu's traces show *one* interleaving of a workflow; the DY2xx hazard
rules convict only conflicts that interleaving happened to leave
unordered.  Before ROADMAP item 1's out-of-order scheduler is allowed to
reorder tasks, the race pass (:mod:`repro.lint.race`) must know which
orderings are guaranteed by true dataflow and which are accidents of the
stage plan.  This module provides the machinery:

- :class:`IntervalSet` — a sorted union of half-open integer intervals.
  A task's *vector clock* is the set of topological indices of every
  task that happens-before it (its downset, itself included).  Under an
  as-executed total order task ``k``'s clock is the single interval
  ``[0, k+1)``; under a dependency-only order clocks stay highly
  clustered because topological indexing packs ancestors together — so
  clock joins (set unions) over ~100k tasks stay near-linear instead of
  the O(n²) bitmap cost of dense vectors.
- :class:`HbOrder` — one partial order with per-task interval clocks.
  Built three ways: :meth:`HbOrder.from_graph` (a dependency DAG — SCCs
  are condensed first, so cyclic traces degrade exactly like
  :class:`~repro.lint.context.OrderingInfo`), :meth:`HbOrder.total`
  (an observed execution sequence), and :meth:`HbOrder.ranked`
  (a stage plan: tasks compare by rank tuples, equal ranks are
  concurrent — the pre-run *as-scheduled* order).
- :func:`reorder_witness` — a concrete legal topological reordering of
  the dependency-only order under which a racing pair flips.  Every
  DY5xx conviction ships one, so "this could reorder" is never abstract:
  replaying the witness order is a legal schedule and produces a
  different outcome.

``a happens-before b`` is written ``order.ordered_before(a, b)``;
``order.concurrent(a, b)`` means no direction holds — the race
condition's precondition.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["IntervalSet", "HbOrder", "reorder_witness"]


class IntervalSet:
    """An immutable sorted union of half-open ``[lo, hi)`` int intervals.

    The vector-clock lattice: *join* is :meth:`union`, the partial order
    is :meth:`issuperset`.  Construction normalizes (sorts, merges
    touching/overlapping intervals), so equal sets compare equal
    structurally.
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Tuple[int, int]] = ()) -> None:
        merged: List[Tuple[int, int]] = []
        for lo, hi in sorted((int(a), int(b)) for a, b in intervals):
            if hi <= lo:
                continue
            if merged and lo <= merged[-1][1]:
                if hi > merged[-1][1]:
                    merged[-1] = (merged[-1][0], hi)
            else:
                merged.append((lo, hi))
        self.intervals: Tuple[Tuple[int, int], ...] = tuple(merged)

    @classmethod
    def from_indices(cls, indices: Iterable[int]) -> "IntervalSet":
        return cls((i, i + 1) for i in indices)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, index: int) -> bool:
        pos = bisect_right(self.intervals, (index, float("inf"))) - 1
        if pos < 0:
            return False
        lo, hi = self.intervals[pos]
        return lo <= index < hi

    def __len__(self) -> int:
        """Total indices covered (the dense-vector cardinality)."""
        return sum(hi - lo for lo, hi in self.intervals)

    def __iter__(self) -> Iterator[int]:
        for lo, hi in self.intervals:
            yield from range(lo, hi)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, IntervalSet)
                and self.intervals == other.intervals)

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"[{lo},{hi})" for lo, hi in self.intervals)
        return f"IntervalSet({body})"

    def issuperset(self, other: "IntervalSet") -> bool:
        """Lattice order: every index of ``other`` is in ``self``."""
        i = 0
        for lo, hi in other.intervals:
            while i < len(self.intervals) and self.intervals[i][1] < hi:
                if self.intervals[i][0] <= lo < self.intervals[i][1]:
                    return False  # starts inside but ends beyond
                i += 1
            if i >= len(self.intervals):
                return False
            slo, shi = self.intervals[i]
            if not (slo <= lo and hi <= shi):
                return False
        return True

    # ------------------------------------------------------------------
    # Join
    # ------------------------------------------------------------------
    def union(self, *others: "IntervalSet") -> "IntervalSet":
        """The lattice join — linear in the total interval count."""
        if not others:
            return self
        merged: List[Tuple[int, int]] = []
        for s in (self, *others):
            merged.extend(s.intervals)
        return IntervalSet(merged)

    @staticmethod
    def union_all(sets: Sequence["IntervalSet"]) -> "IntervalSet":
        if not sets:
            return IntervalSet()
        return sets[0].union(*sets[1:])


class HbOrder:
    """One happens-before partial order with interval vector clocks.

    Attributes:
        order: The canonical linear extension — task names in topological
            index order (ties broken by the construction's priority).
            For :meth:`total` this *is* the observed sequence.
        position: ``task -> index`` into ``order``.
        graph: The underlying DAG for :meth:`from_graph` orders (None
            for total/ranked orders); :func:`reorder_witness` needs it.
        cyclic: True when the source graph had a cycle (its SCCs were
            condensed; members of one SCC are mutually ordered, matching
            :class:`~repro.lint.context.OrderingInfo`).
    """

    def __init__(self) -> None:
        self.order: List[str] = []
        self.position: Dict[str, int] = {}
        self.graph = None
        self.cyclic: bool = False
        #: task -> clock index of its component (SCC for graphs).
        self._comp: Dict[str, int] = {}
        #: component clock index -> IntervalSet downset (lazy for the
        #: total/ranked fast paths, eager for graphs).
        self._clocks: Dict[int, IntervalSet] = {}
        self._kind: str = "graph"
        self._ranks: Dict[str, Tuple] = {}
        self._rank_start: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def total(cls, tasks: Sequence[str]) -> "HbOrder":
        """The as-executed order of a trace: a total order.

        Clock of the ``k``-th task is the single interval ``[0, k+1)`` —
        the representation's best case, built in O(n).
        """
        hb = cls()
        hb._kind = "total"
        hb.order = list(tasks)
        hb.position = {t: i for i, t in enumerate(hb.order)}
        if len(hb.position) != len(hb.order):
            raise ValueError("total order contains duplicate tasks")
        hb._comp = hb.position
        return hb

    @classmethod
    def ranked(cls, ranks: Dict[str, Tuple]) -> "HbOrder":
        """A stage-plan order: ``a`` happens-before ``b`` iff
        ``ranks[a] < ranks[b]``; equal ranks are concurrent (one parallel
        stage).  Rank tuples must be mutually comparable."""
        hb = cls()
        hb._kind = "ranked"
        hb._ranks = dict(ranks)
        hb.order = sorted(ranks, key=lambda t: (ranks[t], t))
        hb.position = {t: i for i, t in enumerate(hb.order)}
        hb._comp = hb.position
        # Index of the first task sharing each task's rank: everything
        # before it is a strict predecessor (a prefix — interval clocks).
        hb._rank_start = {}
        start = 0
        for i, t in enumerate(hb.order):
            if hb._ranks[t] != hb._ranks[hb.order[start]]:
                start = i
            hb._rank_start[t] = start
        return hb

    @classmethod
    def from_graph(cls, graph, priority: Optional[Dict[str, Tuple]] = None
                   ) -> "HbOrder":
        """Clocks over a dependency DAG (cycles condensed first).

        ``priority`` breaks topological ties deterministically (e.g. the
        observed start times); it defaults to task name.
        """
        import networkx as nx

        hb = cls()
        hb.graph = graph
        cond = nx.condensation(graph)
        hb.cyclic = cond.number_of_nodes() != graph.number_of_nodes()
        members: Dict[int, List[str]] = {
            c: sorted(cond.nodes[c]["members"]) for c in cond.nodes
        }

        def comp_key(c: int) -> Tuple:
            if priority is None:
                return (min(members[c]),)
            return min(priority.get(t, ()) for t in members[c])

        # Deterministic Kahn over the condensation, min-priority first.
        indeg = {c: d for c, d in cond.in_degree()}
        ready = [(comp_key(c), c) for c, d in indeg.items() if d == 0]
        heapq.heapify(ready)
        comp_index: Dict[int, int] = {}
        index = 0
        while ready:
            _, c = heapq.heappop(ready)
            comp_index[c] = index
            preds = [hb._clocks[comp_index[p]] for p in cond.predecessors(c)]
            own = IntervalSet([(index, index + 1)])
            hb._clocks[index] = own.union(*preds) if preds else own
            for t in members[c]:
                hb._comp[t] = index
                hb.position[t] = len(hb.order)
                hb.order.append(t)
            index += 1
            for succ in cond.successors(c):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    heapq.heappush(ready, (comp_key(succ), succ))
        return hb

    # ------------------------------------------------------------------
    # Clocks and ordering
    # ------------------------------------------------------------------
    def clock(self, task: str) -> IntervalSet:
        """The task's vector clock: indices of every task (component)
        ordered at-or-before it, itself included."""
        if self._kind == "total":
            i = self.position[task]
            return IntervalSet([(0, i + 1)])
        if self._kind == "ranked":
            # Strict predecessors are exactly the strictly-lower ranks —
            # a prefix of the rank-sorted canonical order.
            i = self.position[task]
            return IntervalSet([(0, self._rank_start[task]), (i, i + 1)])
        return self._clocks[self._comp[task]]

    def __contains__(self, task: str) -> bool:
        return task in self.position

    def ordered_before(self, a: str, b: str) -> bool:
        """True when ``a`` happens-before ``b`` (or they share an SCC)."""
        if a not in self.position or b not in self.position:
            return False
        if self._kind == "total":
            return self.position[a] < self.position[b]
        if self._kind == "ranked":
            return self._ranks[a] < self._ranks[b]
        ca, cb = self._comp[a], self._comp[b]
        if ca == cb:
            return a != b  # same SCC: mutually reachable
        return ca in self._clocks[cb]

    def concurrent(self, a: str, b: str) -> bool:
        """Neither direction holds — the race precondition."""
        if a == b:
            return False
        return not self.ordered_before(a, b) and \
            not self.ordered_before(b, a)


def reorder_witness(dep: HbOrder, first: str, second: str,
                    max_tasks: int = 200) -> Optional[dict]:
    """A legal linear extension of ``dep`` running ``second`` before
    ``first`` (the reverse of the observed order).

    ``first`` and ``second`` must be concurrent under ``dep``; the
    witness is produced by a deterministic Kahn walk (canonical-position
    priority) that simply *holds back* ``first`` until ``second`` has
    been placed.  That is always legal: if any released task depended on
    ``first`` there would be a ``first → ... → second`` path,
    contradicting concurrency.  Returns None when ``dep`` carries no
    graph (total orders), has a cycle, or the pair is actually ordered.

    The returned dict is the ``witness`` evidence the DY5xx findings
    serialize::

        {"schema": "dayu-witness/v1",
         "reordered": [second, first],     # second now runs first
         "order": [...],                   # the legal schedule (window)
         "window": [lo, hi],               # order[] covers these indices
         "total_tasks": N}

    When the workflow exceeds ``max_tasks`` only a window around the
    reordered pair is serialized (``window`` says which slice).
    """
    graph = dep.graph
    if graph is None or dep.cyclic:
        return None
    if first not in dep.position or second not in dep.position:
        return None
    if not dep.concurrent(first, second):
        return None
    indeg = {n: d for n, d in graph.in_degree()}
    ready = [(dep.position[n], n) for n, d in indeg.items() if d == 0]
    heapq.heapify(ready)
    order: List[str] = []
    held = False
    placed_second = False
    while ready or held:
        if not ready:
            # Only ``first`` is runnable but still held — impossible for
            # a concurrent pair (see soundness note above).
            return None
        _, node = heapq.heappop(ready)
        if node == first and not placed_second:
            held = True
            continue
        order.append(node)
        if node == second:
            placed_second = True
            if held:
                heapq.heappush(ready, (dep.position[first], first))
                held = False
        for succ in graph.successors(node):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                heapq.heappush(ready, (dep.position[succ], succ))
    if len(order) != graph.number_of_nodes():
        return None
    total = len(order)
    lo, hi = 0, total
    if total > max_tasks:
        pivot_lo = order.index(second)
        pivot_hi = order.index(first) + 1
        margin = max((max_tasks - (pivot_hi - pivot_lo)) // 2, 0)
        lo = max(pivot_lo - margin, 0)
        hi = min(pivot_hi + margin, total)
    return {
        "schema": "dayu-witness/v1",
        "reordered": [second, first],
        "order": order[lo:hi],
        "window": [lo, hi],
        "total_tasks": total,
    }
