"""DY5xx — happens-before races with reorder witnesses.

The DY2xx hazards convict conflicts the *observed* dependency DAG left
unordered.  This family goes further, in the spirit of DaYu's semantic
decoding: it compares two happens-before relations over the same run —

- **dependency-only** (:attr:`RaceContext.dep`) — what a dataflow
  scheduler would guarantee: just the workflow DAG / SDG
  producer→consumer edges, nothing else;
- **as-executed** (:attr:`RaceContext.exe`) — what actually ordered the
  run: stage barriers plus the observed completion sequence (post-hoc
  mode) or the stage plan's ranks (pre-run static mode)

— and convicts conflicting accesses that only the *second* relation
orders.  Those orderings are accidents: an out-of-order scheduler
(ROADMAP item 1), a retry after a node death, or a genuinely concurrent
deployment can legally run them the other way.  Every conviction ships a
*witness*: a concrete legal topological reordering of the
dependency-only DAG under which the accesses collide
(:func:`repro.lint.hb.reorder_witness`), so "this could reorder" is
never abstract.

Rules (all ``scope="race"``, opt-in — enable with ``--races`` or
``--select DY5*``):

- **DY501** write-write: two writers of one dataset, unordered under
  dependency-only HB.  Byte-precise overlap via the digests' merged
  extents; provably disjoint selections downgrade to a warning.
- **DY502** read-write: a reader and a writer of one dataset, unordered
  under dependency-only HB; same overlap discrimination.
- **DY503** metadata race: a pure metadata mutator (resize / delete /
  rename — object-scoped metadata writes, zero raw writes) unordered
  against any other toucher of the object.
- **DY504** schedule-sensitivity: conflicting accesses that *are*
  ordered as-executed but not by dependencies — the ordering is
  barrier-carried, not dependency-carried.  Emitted as one per-workflow
  NOTE aggregating the must-preserve edges a future scheduler can
  consume (``dayu-sensitivity/v1``).
- **DY505** retry-exposed race: a task that performed a non-idempotent
  read-modify-write was retried (``repro.faults`` attempt history);
  replaying it after a downstream toucher re-races the access even
  though the dependency DAG orders the pair.

Post-hoc contexts are built by :func:`build_trace_race_context` (row or
columnar traces — identical digests), pre-run ones by
:func:`build_static_race_context` from declared/inferred contracts
(extents in *elements* instead of bytes).  The same rule bodies run over
both, which is what lets CI assert that static and post-hoc modes agree
on the seeded ``racy-pipeline`` overlaps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analyzer.ordering import dependency_dag
from repro.lint.context import (
    ObjectAccess,
    ProfileSummary,
    WorkflowIndex,
    build_index,
    extents_overlap,
    merge_extents,
    summarize_profile,
)
from repro.lint.findings import Finding, Severity
from repro.lint.hb import HbOrder, reorder_witness
from repro.lint.rules import LintConfig, rule
from repro.mapper.stats import FILE_METADATA_OBJECT

__all__ = [
    "RaceContext",
    "build_trace_race_context",
    "build_static_race_context",
    "replay_witness",
    "sensitivity_report_from_findings",
]

#: Extent sentinel when a static access's position is entirely unknown.
_UNKNOWN_EXTENT = 1 << 60


@dataclass
class RaceContext:
    """Everything the DY5xx rules see: digests plus the two orderings.

    Attributes:
        mode: ``"trace"`` (post-hoc) or ``"static"`` (pre-run).
        index: The cross-task access join — traced digests post-hoc,
            contract-synthesized ones pre-run.
        dep: Dependency-only happens-before (graph-backed; witnesses
            are linear extensions of it).
        exe: As-executed (total order of the trace) or as-scheduled
            (stage ranks) happens-before.
        attempts: ``task -> attempt count`` from the runner's retry
            bookkeeping (``WorkflowResult``); empty disables DY505.
        units: ``"bytes"`` for traced extents, ``"elements"`` for
            contract selections.
        label: Workflow name when known (static mode); informational.
    """

    mode: str
    index: WorkflowIndex
    dep: HbOrder
    exe: HbOrder
    attempts: Dict[str, int] = field(default_factory=dict)
    units: str = "bytes"
    label: str = ""


# ----------------------------------------------------------------------
# Context builders
# ----------------------------------------------------------------------
def build_trace_race_context(
    profiles: Sequence,
    config: LintConfig,
    summaries: Optional[Sequence[ProfileSummary]] = None,
    attempts: Optional[Dict[str, int]] = None,
) -> RaceContext:
    """The post-hoc context: traced digests under both orderings.

    ``dep`` is the trace-derived dependency DAG (the same oracle the
    DY2xx hazards use), with observed start times as deterministic
    topological tie-breaks; ``exe`` is the observed execution sequence —
    a total order, since the traces record one interleaving.
    """
    if summaries is None:
        summaries = [summarize_profile(p, config.page_size)
                     for p in profiles]
    index = build_index(summaries)
    priority = {s.task: (s.start, s.end, s.task) for s in summaries}
    dep = HbOrder.from_graph(dependency_dag(profiles), priority=priority)
    observed = sorted(priority, key=priority.__getitem__)
    return RaceContext(mode="trace", index=index, dep=dep,
                       exe=HbOrder.total(observed),
                       attempts=dict(attempts or {}), units="bytes")


def _static_access_extents(ctx, a) -> Tuple[List[Tuple[int, int]], bool]:
    """Element-space extents one contract access may touch.

    A hyperslab ``select`` is taken verbatim; otherwise the access is
    widened to the dataset's declared extent (overlap verdicts stay
    conservative; a disjointness proof against a widened range is still
    a proof).  Returns ``(extents, known)`` — ``known=False`` when even
    the dataset extent is undeclared and the range is a sentinel.
    """
    if a.select:
        return [(int(s), int(s + c)) for s, c in a.select], True
    if a.elements == 0 and a.op == "create":
        return [], True  # dataless definition: no data extent at all
    cap = a.extent_elements if a.op == "create" else None
    if cap is None:
        created = ctx.create_access(a.key)
        if created is not None:
            cap = created.extent_elements
    if cap is not None:
        return [(0, int(cap))], True
    return [(0, _UNKNOWN_EXTENT)], False


def build_static_race_context(
    ctx,
    config: LintConfig,
    attempts: Optional[Dict[str, int]] = None,
) -> RaceContext:
    """The pre-run context: contract-synthesized digests, schedule ranks.

    ``ctx`` is a :class:`~repro.lint.predict.StaticContext`.  Each task's
    effective contract becomes an :class:`ObjectAccess` digest with
    extents in *elements*; ``dep`` is the static dataflow DAG (the DY40x
    oracle), ``exe`` the stage plan — parallel-stage tasks share a rank
    (concurrent), serial-stage tasks are ranked by position.
    """
    from repro.lint.predict import _synthetic_span

    summaries: List[ProfileSummary] = []
    for t in ctx.workflow.all_tasks():
        contract = ctx.effective.get(t.name)
        span = _synthetic_span(ctx, t.name)
        summary = ProfileSummary(task=t.name, start=span.start,
                                 end=span.end)
        for a in (contract.accesses if contract is not None else ()):
            acc = summary.objects.get(a.key)
            if acc is None:
                acc = ObjectAccess(task=t.name, file=a.file,
                                   data_object=a.dataset)
                summary.objects[a.key] = acc
            count = max(a.count, 1)
            extents, known = _static_access_extents(ctx, a)
            if a.conditional or not a.exact or not known:
                acc.exact = False
            if a.op == "read":
                acc.raw_reads += count
                acc.read_extents.extend(extents)
                if acc.first_raw_read is None:
                    acc.first_raw_read = span.start
            elif a.op == "write" or (a.op == "create" and a.moves_data):
                acc.raw_writes += count
                acc.write_extents.extend(extents)
                if acc.first_raw_write is None:
                    acc.first_raw_write = span.start
                if a.op == "create":
                    acc.meta_creates += 1
            elif a.op == "create":  # dataless definition
                acc.meta_creates += count
            elif a.op == "resize":
                acc.meta_writes += count
                if acc.first_meta_write is None:
                    acc.first_meta_write = span.start
            else:  # "open"
                acc.meta_reads += count
            if a.op in ("create", "write"):
                summary.files_written.add(a.file)
        for acc in summary.objects.values():
            acc.read_extents = merge_extents(acc.read_extents)
            acc.write_extents = merge_extents(acc.write_extents)
        summaries.append(summary)
    priority = {t: (*ctx.schedule.get(t, (0, 0)), t)
                for t in (x.name for x in ctx.workflow.all_tasks())}
    dep = HbOrder.from_graph(ctx.ordering.dag, priority=priority)
    ranks = {
        t: (si, 0) if ctx.parallel_stage.get(t, True) else (si, pi)
        for t, (si, pi) in ctx.schedule.items()
    }
    return RaceContext(mode="static", index=build_index(summaries),
                       dep=dep, exe=HbOrder.ranked(ranks),
                       attempts=dict(attempts or {}), units="elements",
                       label=ctx.workflow.name)


# ----------------------------------------------------------------------
# Witness helpers
# ----------------------------------------------------------------------
def _observed_pair(ctx: RaceContext, a: str, b: str) -> Tuple[str, str]:
    """The pair in the order the run (or plan) executed it; ties —
    truly concurrent even as-executed — fall back to canonical dep
    position so output stays deterministic."""
    if ctx.exe.ordered_before(a, b):
        return a, b
    if ctx.exe.ordered_before(b, a):
        return b, a
    if ctx.dep.position.get(a, 0) <= ctx.dep.position.get(b, 0):
        return a, b
    return b, a


def _pair_witness(ctx: RaceContext, config: LintConfig,
                  a: str, b: str) -> Optional[dict]:
    first, second = _observed_pair(ctx, a, b)
    return reorder_witness(ctx.dep, first, second,
                           max_tasks=config.witness_max_tasks)


def replay_witness(dep: HbOrder, task: str, after: str,
                   max_tasks: int = 200) -> Optional[dict]:
    """A retry schedule: the canonical dependency order with ``task``
    *replayed* (run a second time, as a node-death retry would) right
    after ``after``.  Same ``dayu-witness/v1`` schema as
    :func:`~repro.lint.hb.reorder_witness`, plus a ``replayed`` key —
    the duplicated entry is the re-executed attempt."""
    if dep.graph is None or dep.cyclic:
        return None
    if task not in dep.position or after not in dep.position:
        return None
    order = list(dep.order)
    anchor = order.index(after)
    order.insert(anchor + 1, task)
    total = len(order)
    lo, hi = 0, total
    if total > max_tasks:
        pivot_lo = order.index(task)  # first (original) attempt
        pivot_hi = anchor + 2
        margin = max((max_tasks - (pivot_hi - pivot_lo)) // 2, 0)
        lo = max(pivot_lo - margin, 0)
        hi = min(pivot_hi + margin, total)
    return {
        "schema": "dayu-witness/v1",
        "reordered": [after, task],
        "replayed": task,
        "order": order[lo:hi],
        "window": [lo, hi],
        "total_tasks": total,
    }


# ----------------------------------------------------------------------
# Shared access predicates
# ----------------------------------------------------------------------
def _writes_anything(acc: ObjectAccess) -> bool:
    return bool(acc.raw_writes or acc.meta_writes or acc.meta_creates)


def _touches(acc: ObjectAccess) -> bool:
    return bool(acc.raw_reads or acc.raw_writes or acc.meta_reads
                or acc.meta_writes or acc.meta_creates)


def _overlap_verdict(ctx: RaceContext, first: ObjectAccess,
                     second: ObjectAccess, first_kind: str,
                     second_kind: str):
    """(severity, detail, overlap) for an extent comparison, mirroring
    DY203's downgrade: provably disjoint selections warn instead of
    erroring, and only *exact* digests can prove disjointness."""
    a = first.write_extents if first_kind == "write" else first.read_extents
    b = (second.write_extents if second_kind == "write"
         else second.read_extents)
    overlap = extents_overlap(a, b)
    exact = first.exact and second.exact
    unit = ctx.units
    if overlap is None and exact:
        return (Severity.WARNING,
                f"their {unit} extents are provably disjoint "
                "(collective partial-access pattern), but metadata "
                "updates still race", None)
    if overlap is None:
        gran = ("page-granular" if unit == "bytes"
                else "declared-extent")
        return (Severity.WARNING,
                f"their {gran} extents are disjoint (exact extents "
                "unavailable)", None)
    lo, hi = overlap
    gran = unit if exact else f"{unit} (approximate)"
    return (Severity.ERROR,
            f"their accesses overlap at {gran} [{lo}, {hi})", overlap)


def _race_pairs(accs: List[ObjectAccess], ctx: RaceContext,
                first_kind: str, second_kind: str):
    """Dep-concurrent task pairs with the given raw access kinds,
    deduplicated per unordered pair, deterministic order."""
    firsts = [a for a in sorted(accs, key=lambda x: x.task)
              if (a.raw_reads if first_kind == "read" else a.raw_writes)]
    seconds = [a for a in sorted(accs, key=lambda x: x.task)
               if (a.raw_reads if second_kind == "read" else a.raw_writes)]
    seen = set()
    for x in firsts:
        for y in seconds:
            if x.task == y.task:
                continue
            pair = tuple(sorted((x.task, y.task)))
            if pair in seen or not ctx.dep.concurrent(x.task, y.task):
                continue
            seen.add(pair)
            yield x, y


# ----------------------------------------------------------------------
# Columnar page-stats pushdown (race scope sees the whole-run view)
# ----------------------------------------------------------------------
def _group_objects(g):
    objs = g.distinct("stats", "data_object")
    if objs is None:
        return None
    return objs - {FILE_METADATA_OBJECT}


def _double_writer_object_pushdown(run, config: LintConfig) -> bool:
    """Two distinct groups write rows naming a shared data object."""
    prior: set = set()
    for g in run.groups:
        objs = _group_objects(g)
        writes = g.int_sum("stats", "writes")
        if objs is None or writes is None:
            return True
        if writes:
            if objs & prior:
                return True
            prior |= objs
    return False


def _shared_object_pushdown(run, config: LintConfig) -> bool:
    """A writing group and any other group touch a shared data object.

    Conservative: page stats count metadata operations as writes too,
    so every DY5xx precondition (data or metadata conflict) is covered;
    any unknown statistic yields True.
    """
    prior_touch: set = set()
    prior_write: set = set()
    for g in run.groups:
        objs = _group_objects(g)
        writes = g.int_sum("stats", "writes")
        if objs is None or writes is None:
            return True
        if objs & prior_write:
            return True
        if writes and (objs & prior_touch):
            return True
        prior_touch |= objs
        if writes:
            prior_write |= objs
    return False


# ----------------------------------------------------------------------
# The rules
# ----------------------------------------------------------------------
def _conviction_evidence(ctx: RaceContext, config: LintConfig,
                         x: ObjectAccess, y: ObjectAccess,
                         overlap) -> dict:
    return {
        "overlap": list(overlap) if overlap else None,
        "units": ctx.units,
        "extent_precision": ("exact" if x.exact and y.exact
                             else "approximate"),
        "mode": ctx.mode,
        "witness": _pair_witness(ctx, config, x.task, y.task),
    }


@rule("DY501", "hb-write-write-race", Severity.ERROR, "race",
      "Two tasks write the same dataset with no dependency-only "
      "happens-before path between them — a dataflow scheduler may run "
      "them in either order (WAW).  Provably disjoint selections "
      "downgrade to a warning.  Ships a reorder witness.",
      default_enabled=False, pushdown=_double_writer_object_pushdown)
def _dy501(ctx: RaceContext, config: LintConfig) -> Iterator[Finding]:
    for (file, obj), accs in sorted(ctx.index.by_object.items()):
        for x, y in _race_pairs(accs, ctx, "write", "write"):
            severity, detail, overlap = _overlap_verdict(
                ctx, x, y, "write", "write")
            first, second = _observed_pair(ctx, x.task, y.task)
            yield Finding(
                code="DY501", rule="hb-write-write-race",
                severity=severity,
                subject=f"{file}:{obj}",
                tasks=tuple(sorted((x.task, y.task))),
                message=(
                    f"{x.task} and {y.task} both write {obj} in {file} "
                    "with no dependency-only happens-before path; "
                    f"{detail} — replaying the witness runs {second} "
                    f"before {first} and flips the surviving content"),
                evidence=_conviction_evidence(ctx, config, x, y, overlap),
            )


@rule("DY502", "hb-read-write-race", Severity.ERROR, "race",
      "A task reads a dataset another task writes, with no "
      "dependency-only happens-before path between them — a dataflow "
      "scheduler may run the write first (or last) and change what the "
      "read observes.  Provably disjoint selections downgrade to a "
      "warning.  Ships a reorder witness.",
      default_enabled=False, pushdown=_shared_object_pushdown)
def _dy502(ctx: RaceContext, config: LintConfig) -> Iterator[Finding]:
    for (file, obj), accs in sorted(ctx.index.by_object.items()):
        for writer, reader in _race_pairs(accs, ctx, "write", "read"):
            severity, detail, overlap = _overlap_verdict(
                ctx, writer, reader, "write", "read")
            first, second = _observed_pair(ctx, writer.task, reader.task)
            yield Finding(
                code="DY502", rule="hb-read-write-race",
                severity=severity,
                subject=f"{file}:{obj}",
                tasks=tuple(sorted((writer.task, reader.task))),
                message=(
                    f"{reader.task} reads {obj} in {file} while "
                    f"{writer.task} writes it, with no dependency-only "
                    f"happens-before path; {detail} — replaying the "
                    f"witness runs {second} before {first} and changes "
                    "what the read observes"),
                evidence=_conviction_evidence(
                    ctx, config, writer, reader, overlap),
            )


@rule("DY503", "hb-metadata-race", Severity.ERROR, "race",
      "A pure metadata mutator (resize/delete/rename: object-scoped "
      "metadata writes, zero raw writes) is unordered against another "
      "task touching the same dataset — shape or existence changes "
      "under the toucher's feet.  Ships a reorder witness.",
      default_enabled=False, pushdown=_shared_object_pushdown)
def _dy503(ctx: RaceContext, config: LintConfig) -> Iterator[Finding]:
    for (file, obj), accs in sorted(ctx.index.by_object.items()):
        ordered = sorted(accs, key=lambda x: x.task)
        mutators = [a for a in ordered
                    if a.meta_writes and not a.raw_writes]
        seen = set()
        for m in mutators:
            for t in ordered:
                if t.task == m.task or not _touches(t):
                    continue
                pair = tuple(sorted((m.task, t.task)))
                if pair in seen or not ctx.dep.concurrent(m.task, t.task):
                    continue
                seen.add(pair)
                first, second = _observed_pair(ctx, m.task, t.task)
                how = ("reads" if t.raw_reads or t.meta_reads
                       else "writes")
                yield Finding(
                    code="DY503", rule="hb-metadata-race",
                    severity=Severity.ERROR,
                    subject=f"{file}:{obj}",
                    tasks=pair,
                    message=(
                        f"{m.task} mutates the metadata of {obj} in "
                        f"{file} (resize/delete/rename) while {t.task} "
                        f"{how} it, with no dependency-only "
                        "happens-before path — the shape or existence "
                        f"changes under {t.task}'s feet; replaying the "
                        f"witness runs {second} before {first}"),
                    evidence={
                        "mutator": m.task,
                        "toucher": t.task,
                        "meta_writes": m.meta_writes,
                        "mode": ctx.mode,
                        "witness": _pair_witness(ctx, config,
                                                 m.task, t.task),
                    },
                )


def _carrier(ctx: RaceContext, before: str, after: str) -> str:
    """What actually ordered an exec-ordered, dep-concurrent pair."""
    if ctx.mode == "trace":
        return "observed-timing"
    # Static mode: ranks encode (stage, position).
    rb = ctx.exe._ranks.get(before)
    ra = ctx.exe._ranks.get(after)
    if rb is not None and ra is not None and rb[0] != ra[0]:
        return "stage-barrier"
    return "serial-stage"


@rule("DY504", "schedule-sensitivity", Severity.NOTE, "race",
      "Conflicting accesses ordered only by stage barriers or observed "
      "timing, not by dataflow dependencies.  One NOTE per workflow "
      "aggregating the must-preserve edges (dayu-sensitivity/v1) an "
      "out-of-order scheduler has to keep.",
      default_enabled=False, pushdown=_shared_object_pushdown)
def _dy504(ctx: RaceContext, config: LintConfig) -> Iterator[Finding]:
    edges: Dict[Tuple[str, str], dict] = {}
    for (file, obj), accs in sorted(ctx.index.by_object.items()):
        touchers = [a for a in sorted(accs, key=lambda x: x.task)
                    if _touches(a)]
        for x, y in itertools.combinations(touchers, 2):
            if x.task == y.task:
                continue
            if not (_writes_anything(x) or _writes_anything(y)):
                continue  # two readers never conflict
            if not ctx.dep.concurrent(x.task, y.task):
                continue
            if ctx.exe.ordered_before(x.task, y.task):
                before, after = x.task, y.task
            elif ctx.exe.ordered_before(y.task, x.task):
                before, after = y.task, x.task
            else:
                continue  # unordered even as-executed: a true race
            entry = edges.setdefault((before, after), {
                "before": before,
                "after": after,
                "carrier": _carrier(ctx, before, after),
                "objects": set(),
            })
            entry["objects"].add(f"{file}:{obj}")
    if not edges:
        return
    serialized = [
        {"before": e["before"], "after": e["after"],
         "carrier": e["carrier"], "objects": sorted(e["objects"])}
        for _, e in sorted(edges.items())
    ]
    total = len(serialized)
    kept = serialized[:config.sensitivity_max_edges]
    tasks = sorted({e["before"] for e in serialized}
                   | {e["after"] for e in serialized})
    yield Finding(
        code="DY504", rule="schedule-sensitivity",
        severity=Severity.NOTE,
        subject="schedule-sensitivity",
        tasks=(),
        message=(
            f"{total} ordering(s) between conflicting accesses are "
            "carried by the schedule (stage barriers / observed timing) "
            "rather than by dataflow dependencies — an out-of-order "
            "scheduler must preserve these edges or the outcome changes"),
        evidence={
            "schema": "dayu-sensitivity/v1",
            "mode": ctx.mode,
            "workflow": ctx.label,
            "total_edges": total,
            "truncated": total > len(kept),
            "tasks": tasks,
            "edges": kept,
        },
    )


@rule("DY505", "retry-exposed-race", Severity.ERROR, "race",
      "A retried task performed a non-idempotent read-modify-write; "
      "replaying the lost attempt after a downstream toucher re-races "
      "the access even though the dependency DAG orders the pair.  "
      "Needs attempt history (dayu-lint --attempts).",
      default_enabled=False, pushdown=_shared_object_pushdown)
def _dy505(ctx: RaceContext, config: LintConfig) -> Iterator[Finding]:
    if not ctx.attempts:
        return
    for (file, obj), accs in sorted(ctx.index.by_object.items()):
        ordered = sorted(accs, key=lambda x: x.task)
        retried = [a for a in ordered
                   if a.raw_reads and a.raw_writes
                   and ctx.attempts.get(a.task, 1) > 1]
        seen = set()
        for t_acc in retried:
            for u in ordered:
                if u.task == t_acc.task:
                    continue
                if not (u.raw_reads or u.raw_writes):
                    continue
                if not ctx.exe.ordered_before(t_acc.task, u.task):
                    continue
                pair = (t_acc.task, u.task)
                if pair in seen:
                    continue
                seen.add(pair)
                yield Finding(
                    code="DY505", rule="retry-exposed-race",
                    severity=Severity.ERROR,
                    subject=f"{file}:{obj}",
                    tasks=tuple(sorted(pair)),
                    message=(
                        f"{t_acc.task} read-modify-writes {obj} in "
                        f"{file} and was retried "
                        f"({ctx.attempts.get(t_acc.task)} attempts) — "
                        "a replay of the lost attempt landing after "
                        f"{u.task} touches the dataset re-races the "
                        "non-idempotent update (lost or doubled "
                        "increment)"),
                    evidence={
                        "retried": t_acc.task,
                        "attempts": ctx.attempts.get(t_acc.task),
                        "downstream": u.task,
                        "mode": ctx.mode,
                        "witness": replay_witness(
                            ctx.dep, t_acc.task, u.task,
                            max_tasks=config.witness_max_tasks),
                    },
                )


# ----------------------------------------------------------------------
# The sensitivity report (CLI --sensitivity-out)
# ----------------------------------------------------------------------
def sensitivity_report_from_findings(findings: Sequence[Finding],
                                     label: str = "") -> dict:
    """Extract the per-workflow schedule-sensitivity report from a
    finding list (the DY504 evidence, or an empty report when the
    workflow has no barrier-carried orderings)."""
    for f in findings:
        if f.code == "DY504":
            return dict(f.evidence)
    return {
        "schema": "dayu-sensitivity/v1",
        "mode": "",
        "workflow": label,
        "total_edges": 0,
        "truncated": False,
        "tasks": [],
        "edges": [],
    }
