"""AST-based contract extraction: dataflow semantics *before* the run.

A :class:`~repro.workflow.model.Task` body is an opaque callable; this
module recovers its access contract by abstract interpretation of the
function's source.  The interpreter walks the AST with a small
environment seeded from the function's closure cells and globals, so
parameter objects (the frozen ``*Params`` dataclasses every bundled
workload closes over) resolve to their real values and loops like
``for i in range(p.n_files)`` unroll with concrete trip counts.

What executes and what doesn't:

- Pure *descriptive* expressions are evaluated for real: constants,
  f-strings, arithmetic, comprehensions, parameter attributes, methods
  of frozen dataclasses, ``Selection`` constructors, and module-level
  helpers defined next to the task function (``_shard``, ``_sizes`` …
  — assumed pure by convention).
- I/O calls are never executed.  ``rt.open``/``rt.open_netcdf`` produce
  abstract file handles; dataset operations on those handles
  (``create_dataset``, ``__getitem__``, ``read``, ``write``,
  ``create_variable``, ``write_record`` …) are *recorded* as
  :class:`~repro.workflow.contracts.ContractAccess` entries.
- Everything else (numpy math, unresolvable names) evaluates to an
  ``UNKNOWN`` sentinel that propagates; accesses whose file or dataset
  name stays unknown are dropped and the contract is marked inexact.

Branches with unevaluable conditions and loops with unknown trip counts
are walked symbolically: their accesses are recorded but flagged
``conditional``, so the drift checker never demands them.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field, is_dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.hdf5 import Selection
from repro.workflow.contracts import (
    ContractAccess,
    TaskContract,
    normalize_dataset,
)
from repro.workflow.model import Task, Workflow

__all__ = [
    "UNKNOWN",
    "infer_contract",
    "WorkflowContracts",
    "extract_workflow_contracts",
]


class _Unknown:
    """Singleton for statically unresolvable values."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<unknown>"

    def __bool__(self) -> bool:  # pragma: no cover - guarded at use sites
        raise TypeError("truth value of an unresolved static value")


UNKNOWN = _Unknown()


def _is_concrete(value) -> bool:
    """Deep check: no UNKNOWN / abstract handle anywhere inside."""
    if value is UNKNOWN or isinstance(value, (_Handle, _BoundOp, _UserFn)):
        return False
    if isinstance(value, (tuple, list, set, frozenset)):
        return all(_is_concrete(v) for v in value)
    if isinstance(value, dict):
        return all(_is_concrete(k) and _is_concrete(v)
                   for k, v in value.items())
    return True


# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------
class _Handle:
    """Base class for abstract I/O values."""


class _RuntimeVal(_Handle):
    """The task's ``TaskRuntime`` parameter."""


@dataclass
class _FileVal(_Handle):
    """An abstract instrumented file handle."""

    path: Any  # str or UNKNOWN
    mode: Any = "r"
    kind: str = "hdf5"  # or "netcdf"
    #: netCDF dimension table: name -> length (None = unlimited/record).
    dims: Dict[str, Optional[int]] = field(default_factory=dict)


@dataclass
class _ObjectVal(_Handle):
    """An abstract dataset / group / netCDF-variable handle."""

    file: _FileVal
    name: Any  # root-anchored str or UNKNOWN
    role: str = "dataset"  # "dataset" | "group" | "variable"
    extent: Optional[Tuple[int, ...]] = None
    record_elems: Optional[int] = None  # netCDF: elements per record


@dataclass
class _BoundOp:
    """An attribute of an abstract handle, awaiting a call."""

    target: Any
    attr: str


@dataclass
class _UserFn:
    """A Python function the interpreter may inline."""

    fn: Any


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Budget(Exception):
    """Interpreter step budget exhausted."""


_SAFE_BUILTINS = {
    "range": range, "len": len, "max": max, "min": min, "abs": abs,
    "int": int, "float": float, "str": str, "bool": bool, "bytes": bytes,
    "enumerate": enumerate, "zip": zip, "sorted": sorted, "sum": sum,
    "tuple": tuple, "list": list, "dict": dict, "set": set,
    "round": round, "divmod": divmod, "reversed": reversed,
    "isinstance": isinstance, "repr": repr, "format": format,
}
_SAFE_BUILTIN_FUNCS = set(_SAFE_BUILTINS.values())

#: Methods of plain containers we may call with unresolved arguments
#: (mutators whose effect on our concrete environment is still sound).
_CONTAINER_MUTATORS = ("append", "extend", "add", "update", "setdefault")

#: File-handle method names that carry no dataflow information.
_FILE_NOOPS = ("close", "set_att", "get_att", "enddef", "flush", "keys")


def _frozen_params(obj) -> bool:
    return (is_dataclass(obj) and not isinstance(obj, type)
            and type(obj).__dataclass_params__.frozen)


def _selection_elements(sel) -> Optional[int]:
    if isinstance(sel, Selection) and sel.slabs is not None:
        n = 1
        for _, count in sel.slabs:
            n *= count
        return n
    return None


def _selection_slabs(sel) -> Optional[Tuple[Tuple[int, int], ...]]:
    if isinstance(sel, Selection) and sel.slabs is not None:
        return sel.slabs
    return None


def _shape_tuple(value) -> Optional[Tuple[int, ...]]:
    """A concrete shape tuple, or None when any dim is unresolved."""
    if isinstance(value, int):
        value = (value,)
    if not isinstance(value, (tuple, list)):
        return None
    out = []
    for dim in value:
        if not isinstance(dim, int):
            return None
        out.append(dim)
    return tuple(out)


def _elements_of(shape: Optional[Tuple[int, ...]]) -> Optional[int]:
    if shape is None:
        return None
    n = 1
    for dim in shape:
        n *= dim
    return n


# ----------------------------------------------------------------------
# The recorder: raw access events -> aggregated contract
# ----------------------------------------------------------------------
@dataclass
class _Recorder:
    events: Dict[tuple, int] = field(default_factory=dict)
    order: List[tuple] = field(default_factory=list)
    file_opens: Dict[str, int] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    exact: bool = True

    def note(self, text: str) -> None:
        self.exact = False
        if text not in self.notes:
            self.notes.append(text)

    def open_file(self, path, conditional: bool) -> None:
        if isinstance(path, str):
            self.file_opens[path] = self.file_opens.get(path, 0) + 1
        else:
            self.note("a file open's path could not be resolved")

    def access(self, op: str, file, dataset, *, elements=None, extent=None,
               dtype="", layout="", select=None, conditional=False,
               known_count=True) -> None:
        if not isinstance(file, str) or not isinstance(dataset, str):
            self.note(f"a dataset {op} could not be resolved to a "
                      "(file, dataset) pair")
            return
        if not isinstance(elements, int):
            elements = None
        key = (op, file, normalize_dataset(dataset), elements, extent,
               dtype, layout, select, conditional, known_count)
        if key not in self.events:
            self.events[key] = 0
            self.order.append(key)
        self.events[key] += 1

    def contract(self, task_name: str) -> TaskContract:
        accesses = []
        for key in self.order:
            (op, file, dataset, elements, extent, dtype, layout, select,
             conditional, known_count) = key
            accesses.append(ContractAccess(
                op=op, file=file, dataset=dataset,
                count=self.events[key] if known_count else 0,
                elements=elements, extent=extent, dtype=dtype,
                layout=layout, select=select,
                conditional=conditional,
                exact=self.exact and known_count,
            ))
        return TaskContract(task=task_name, accesses=accesses,
                            source="inferred", exact=self.exact,
                            notes=list(self.notes),
                            file_opens=dict(self.file_opens))


# ----------------------------------------------------------------------
# The interpreter
# ----------------------------------------------------------------------
class _Interp:
    def __init__(self, recorder: _Recorder, max_ops: int = 500_000):
        self.rec = recorder
        self.max_ops = max_ops
        self.ops = 0
        self.conditional_depth = 0
        #: (file_path, dataset) -> extent tuple created in this task.
        self.created: Dict[Tuple[str, str], Tuple[int, ...]] = {}
        self.depth = 0

    # -- bookkeeping ---------------------------------------------------
    def _tick(self) -> None:
        self.ops += 1
        if self.ops > self.max_ops:
            raise _Budget()

    @property
    def conditional(self) -> bool:
        return self.conditional_depth > 0

    # -- function entry ------------------------------------------------
    def run_function(self, fn, args: Sequence[Any]) -> Any:
        """Interpret ``fn``'s body with ``args`` bound to its params."""
        if self.depth > 8:
            self.rec.note("helper call nesting too deep to follow")
            return UNKNOWN
        try:
            source = textwrap.dedent(inspect.getsource(fn))
            tree = ast.parse(source)
        except (OSError, TypeError, SyntaxError, IndentationError):
            self.rec.note(f"source of {getattr(fn, '__name__', fn)!r} "
                          "is unavailable")
            return UNKNOWN
        node = tree.body[0]
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.rec.note("task body is not a plain function")
            return UNKNOWN
        env: Dict[str, Any] = {}
        code = fn.__code__
        if fn.__closure__:
            for name, cell in zip(code.co_freevars, fn.__closure__):
                try:
                    env[name] = cell.cell_contents
                except ValueError:
                    env[name] = UNKNOWN
        params = [a.arg for a in node.args.args]
        defaults = node.args.defaults
        for i, name in enumerate(params):
            if i < len(args):
                env[name] = args[i]
            else:
                # Fill from defaults where possible.
                j = i - (len(params) - len(defaults))
                env[name] = (self.eval(defaults[j], env, fn.__globals__)
                             if 0 <= j < len(defaults) else UNKNOWN)
        self.depth += 1
        try:
            self.exec_body(node.body, env, fn.__globals__)
        except _Return as ret:
            return ret.value
        finally:
            self.depth -= 1
        return None

    # -- statements ----------------------------------------------------
    def exec_body(self, body, env, globs) -> None:
        for stmt in body:
            self.exec_stmt(stmt, env, globs)

    def exec_stmt(self, stmt, env, globs) -> None:
        self._tick()
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env, globs)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env, globs)
            for target in stmt.targets:
                self.bind(target, value, env, globs)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target,
                          self.eval(stmt.value, env, globs), env, globs)
        elif isinstance(stmt, ast.AugAssign):
            cur = self.eval(stmt.target, env, globs)
            delta = self.eval(stmt.value, env, globs)
            result = self._binop(stmt.op, cur, delta)
            self.bind(stmt.target, result, env, globs)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env, globs)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, env, globs)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, env, globs)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                ctx = self.eval(item.context_expr, env, globs)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, ctx, env, globs)
            self.exec_body(stmt.body, env, globs)
        elif isinstance(stmt, ast.Return):
            raise _Return(self.eval(stmt.value, env, globs)
                          if stmt.value is not None else None)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env[stmt.name] = UNKNOWN  # nested defs: not followed
            self.rec.note(f"nested function {stmt.name!r} is not followed")
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body, env, globs)
            self.conditional_depth += 1
            try:
                for handler in stmt.handlers:
                    self.exec_body(handler.body, env, globs)
            finally:
                self.conditional_depth -= 1
            self.exec_body(stmt.finalbody, env, globs)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env, globs)
        elif isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom,
                               ast.Global, ast.Nonlocal, ast.Delete,
                               ast.Raise)):
            pass
        else:
            self.rec.note(f"unhandled statement {type(stmt).__name__}")

    def _exec_for(self, stmt: ast.For, env, globs) -> None:
        iterable = self.eval(stmt.iter, env, globs)
        items = None
        if _is_concrete(iterable):
            try:
                items = list(iterable)
            except TypeError:
                items = None
        elif isinstance(iterable, (list, tuple)):
            # Concrete container with unresolved elements: iterate anyway.
            items = list(iterable)
        if items is None:
            self.rec.note("a loop's trip count could not be resolved")
            self.conditional_depth += 1
            try:
                self.bind(stmt.target, UNKNOWN, env, globs)
                self.exec_body(stmt.body, env, globs)
            except (_Break, _Continue):
                pass
            finally:
                self.conditional_depth -= 1
            self.exec_body(stmt.orelse, env, globs)
            return
        for item in items:
            self._tick()
            self.bind(stmt.target, item, env, globs)
            try:
                self.exec_body(stmt.body, env, globs)
            except _Break:
                break
            except _Continue:
                continue
        else:
            self.exec_body(stmt.orelse, env, globs)

    def _exec_while(self, stmt: ast.While, env, globs) -> None:
        # A while loop's trip count is data-dependent: one symbolic pass.
        self.eval(stmt.test, env, globs)
        self.rec.note("a while loop was walked symbolically")
        self.conditional_depth += 1
        try:
            self.exec_body(stmt.body, env, globs)
        except (_Break, _Continue):
            pass
        finally:
            self.conditional_depth -= 1
        self.exec_body(stmt.orelse, env, globs)

    def _exec_if(self, stmt: ast.If, env, globs) -> None:
        test = self.eval(stmt.test, env, globs)
        if _is_concrete(test):
            try:
                branch = stmt.body if test else stmt.orelse
            except Exception:
                branch = None
            if branch is not None:
                self.exec_body(branch, env, globs)
                return
        self.conditional_depth += 1
        try:
            self.exec_body(stmt.body, env, globs)
            self.exec_body(stmt.orelse, env, globs)
        finally:
            self.conditional_depth -= 1

    def bind(self, target, value, env, globs) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            values = None
            if isinstance(value, (tuple, list)) and len(value) == len(elts):
                values = list(value)
            for i, sub in enumerate(elts):
                self.bind(sub, values[i] if values is not None else UNKNOWN,
                          env, globs)
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value, env, globs)
            idx = self.eval(target.slice, env, globs)
            if isinstance(base, _ObjectVal):
                self._record_object_io(base, "write", selection=None)
            elif isinstance(base, (dict, list)) and _is_concrete(idx):
                try:
                    base[idx] = value
                except (KeyError, IndexError, TypeError):
                    pass
        elif isinstance(target, ast.Attribute):
            self.eval(target.value, env, globs)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, UNKNOWN, env, globs)

    # -- expressions ---------------------------------------------------
    def eval(self, node, env, globs) -> Any:
        self._tick()
        method = getattr(self, "_eval_" + type(node).__name__, None)
        if method is None:
            return UNKNOWN
        return method(node, env, globs)

    def _eval_Constant(self, node, env, globs):
        return node.value

    def _eval_Name(self, node, env, globs):
        if node.id in env:
            return env[node.id]
        if node.id in globs:
            return globs[node.id]
        if node.id in _SAFE_BUILTINS:
            return _SAFE_BUILTINS[node.id]
        return UNKNOWN

    def _eval_Tuple(self, node, env, globs):
        return tuple(self.eval(e, env, globs) for e in node.elts)

    def _eval_List(self, node, env, globs):
        return [self.eval(e, env, globs) for e in node.elts]

    def _eval_Set(self, node, env, globs):
        values = [self.eval(e, env, globs) for e in node.elts]
        try:
            return set(values)
        except TypeError:
            return UNKNOWN

    def _eval_Dict(self, node, env, globs):
        out = {}
        for k, v in zip(node.keys, node.values):
            value = self.eval(v, env, globs)
            if k is None:  # ** spread
                if isinstance(value, dict):
                    out.update(value)
                else:
                    return UNKNOWN
                continue
            key = self.eval(k, env, globs)
            if not _is_concrete(key):
                return UNKNOWN
            out[key] = value
        return out

    def _eval_JoinedStr(self, node, env, globs):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
                continue
            value = self.eval(piece.value, env, globs)
            if not _is_concrete(value):
                return UNKNOWN
            spec = ""
            if piece.format_spec is not None:
                spec = self.eval(piece.format_spec, env, globs)
                if not isinstance(spec, str):
                    return UNKNOWN
            if piece.conversion == 114:
                value = repr(value)
            elif piece.conversion == 115:
                value = str(value)
            try:
                parts.append(format(value, spec))
            except (ValueError, TypeError):
                return UNKNOWN
        return "".join(parts)

    def _eval_FormattedValue(self, node, env, globs):  # bare f-string part
        return self._eval_JoinedStr(
            ast.JoinedStr(values=[node]), env, globs)

    def _eval_Attribute(self, node, env, globs):
        base = self.eval(node.value, env, globs)
        attr = node.attr
        if isinstance(base, _RuntimeVal):
            if attr in ("open", "open_netcdf", "compute", "local_path"):
                return _BoundOp(base, attr)
            self.rec.note(f"direct runtime attribute access rt.{attr}")
            return UNKNOWN
        if isinstance(base, _FileVal):
            return _BoundOp(base, attr)
        if isinstance(base, _ObjectVal):
            if attr == "shape":
                self._record_object_io(base, "open")
                return base.extent if base.extent is not None else UNKNOWN
            if attr in ("size", "nbytes", "dtype", "name", "chunks",
                        "layout_name", "attrs"):
                self._record_object_io(base, "open")
                return UNKNOWN
            return _BoundOp(base, attr)
        if isinstance(base, _BoundOp) or base is UNKNOWN:
            return UNKNOWN
        try:
            return getattr(base, attr)
        except Exception:
            return UNKNOWN

    def _eval_Subscript(self, node, env, globs):
        base = self.eval(node.value, env, globs)
        idx = self.eval(node.slice, env, globs)
        if isinstance(base, _FileVal):
            return self._object_lookup(base, idx)
        if isinstance(base, _ObjectVal):
            if base.role == "group":
                return self._object_lookup(base.file, idx, parent=base)
            self._record_object_io(base, "read", selection=None)
            return UNKNOWN
        if base is UNKNOWN or not _is_concrete(idx):
            return UNKNOWN
        try:
            return base[idx]
        except Exception:
            return UNKNOWN

    def _eval_Slice(self, node, env, globs):
        lo = self.eval(node.lower, env, globs) if node.lower else None
        hi = self.eval(node.upper, env, globs) if node.upper else None
        step = self.eval(node.step, env, globs) if node.step else None
        if all(v is None or isinstance(v, int) for v in (lo, hi, step)):
            return slice(lo, hi, step)
        return UNKNOWN

    def _eval_Index(self, node, env, globs):  # pragma: no cover - py<3.9
        return self.eval(node.value, env, globs)

    def _eval_Starred(self, node, env, globs):
        return self.eval(node.value, env, globs)

    def _eval_UnaryOp(self, node, env, globs):
        operand = self.eval(node.operand, env, globs)
        if not _is_concrete(operand):
            return UNKNOWN
        try:
            if isinstance(node.op, ast.USub):
                return -operand
            if isinstance(node.op, ast.UAdd):
                return +operand
            if isinstance(node.op, ast.Not):
                return not operand
            if isinstance(node.op, ast.Invert):
                return ~operand
        except Exception:
            return UNKNOWN
        return UNKNOWN

    def _binop(self, op, left, right):
        if not (_is_concrete(left) and _is_concrete(right)):
            return UNKNOWN
        import operator as _op

        table = {
            ast.Add: _op.add, ast.Sub: _op.sub, ast.Mult: _op.mul,
            ast.Div: _op.truediv, ast.FloorDiv: _op.floordiv,
            ast.Mod: _op.mod, ast.Pow: _op.pow, ast.LShift: _op.lshift,
            ast.RShift: _op.rshift, ast.BitOr: _op.or_,
            ast.BitAnd: _op.and_, ast.BitXor: _op.xor,
        }
        fn = table.get(type(op))
        if fn is None:
            return UNKNOWN
        try:
            return fn(left, right)
        except Exception:
            return UNKNOWN

    def _eval_BinOp(self, node, env, globs):
        return self._binop(node.op,
                           self.eval(node.left, env, globs),
                           self.eval(node.right, env, globs))

    def _eval_BoolOp(self, node, env, globs):
        result = None
        for value_node in node.values:
            value = self.eval(value_node, env, globs)
            if not _is_concrete(value):
                return UNKNOWN
            result = value
            if isinstance(node.op, ast.And) and not value:
                return value
            if isinstance(node.op, ast.Or) and value:
                return value
        return result

    def _eval_Compare(self, node, env, globs):
        import operator as _op

        table = {
            ast.Eq: _op.eq, ast.NotEq: _op.ne, ast.Lt: _op.lt,
            ast.LtE: _op.le, ast.Gt: _op.gt, ast.GtE: _op.ge,
            ast.In: lambda a, b: a in b,
            ast.NotIn: lambda a, b: a not in b,
            ast.Is: _op.is_, ast.IsNot: _op.is_not,
        }
        left = self.eval(node.left, env, globs)
        for op, comparator in zip(node.ops, node.comparators):
            right = self.eval(comparator, env, globs)
            if not (_is_concrete(left) and _is_concrete(right)):
                return UNKNOWN
            fn = table.get(type(op))
            if fn is None:
                return UNKNOWN
            try:
                if not fn(left, right):
                    return False
            except Exception:
                return UNKNOWN
            left = right
        return True

    def _eval_IfExp(self, node, env, globs):
        test = self.eval(node.test, env, globs)
        if _is_concrete(test):
            try:
                chosen = node.body if test else node.orelse
            except Exception:
                chosen = None
            if chosen is not None:
                return self.eval(chosen, env, globs)
        self.conditional_depth += 1
        try:
            self.eval(node.body, env, globs)
            self.eval(node.orelse, env, globs)
        finally:
            self.conditional_depth -= 1
        return UNKNOWN

    def _eval_Lambda(self, node, env, globs):
        return UNKNOWN

    def _comp_frames(self, generators, env, globs):
        """Yield environments for (single- or multi-) generator comps."""
        def expand(frames, gen):
            out = []
            for frame in frames:
                iterable = self.eval(gen.iter, frame, globs)
                if isinstance(iterable, (list, tuple, range, set, dict)):
                    items = list(iterable)
                elif _is_concrete(iterable):
                    try:
                        items = list(iterable)
                    except TypeError:
                        return None
                else:
                    return None
                for item in items:
                    self._tick()
                    sub = dict(frame)
                    self.bind(gen.target, item, sub, globs)
                    keep = True
                    for cond in gen.ifs:
                        test = self.eval(cond, sub, globs)
                        if not _is_concrete(test):
                            return None
                        if not test:
                            keep = False
                            break
                    if keep:
                        out.append(sub)
            return out

        frames = [dict(env)]
        for gen in generators:
            frames = expand(frames, gen)
            if frames is None:
                return None
        return frames

    def _eval_ListComp(self, node, env, globs):
        frames = self._comp_frames(node.generators, env, globs)
        if frames is None:
            return UNKNOWN
        return [self.eval(node.elt, frame, globs) for frame in frames]

    def _eval_SetComp(self, node, env, globs):
        result = self._eval_ListComp(
            ast.ListComp(elt=node.elt, generators=node.generators),
            env, globs)
        if result is UNKNOWN:
            return UNKNOWN
        try:
            return set(result)
        except TypeError:
            return UNKNOWN

    def _eval_GeneratorExp(self, node, env, globs):
        return self._eval_ListComp(
            ast.ListComp(elt=node.elt, generators=node.generators),
            env, globs)

    def _eval_DictComp(self, node, env, globs):
        frames = self._comp_frames(node.generators, env, globs)
        if frames is None:
            return UNKNOWN
        out = {}
        for frame in frames:
            key = self.eval(node.key, frame, globs)
            if not _is_concrete(key):
                return UNKNOWN
            out[key] = self.eval(node.value, frame, globs)
        return out

    # -- calls ---------------------------------------------------------
    def _eval_Call(self, node, env, globs):
        func = self.eval(node.func, env, globs)

        # Dataset/file operations must not evaluate their data payloads;
        # everything else evaluates every argument (recording the I/O
        # side effects of nested reads).
        skip_positional = set()
        skip_keywords = set()
        if isinstance(func, _BoundOp):
            if func.attr in ("write", "write_record"):
                skip_positional = ({0} if func.attr == "write" else {1})
            if func.attr == "create_dataset":
                skip_keywords = {"data"}

        args = []
        for i, arg_node in enumerate(node.args):
            if isinstance(arg_node, ast.Starred):
                spread = self.eval(arg_node.value, env, globs)
                if isinstance(spread, (list, tuple)):
                    args.extend(spread)
                else:
                    args.append(UNKNOWN)
                continue
            if i in skip_positional:
                args.append(_DataArg(arg_node))
            else:
                args.append(self.eval(arg_node, env, globs))
        kwargs = {}
        for kw in node.keywords:
            if kw.arg is None:  # ** spread
                spread = self.eval(kw.value, env, globs)
                if isinstance(spread, dict):
                    for k, v in spread.items():
                        if isinstance(k, str):
                            kwargs[k] = v
                else:
                    self.rec.note("a ** call spread could not be resolved")
                continue
            if kw.arg in skip_keywords:
                kwargs[kw.arg] = _DataArg(kw.value)
            else:
                kwargs[kw.arg] = self.eval(kw.value, env, globs)

        if isinstance(func, _BoundOp):
            return self._dispatch_handle_call(func, args, kwargs)
        return self._call_concrete(func, args, kwargs)

    def _call_concrete(self, func, args, kwargs):
        if func is UNKNOWN or isinstance(func, (_Handle, _DataArg)):
            return UNKNOWN
        deep_ok = (all(_is_concrete(a) for a in args)
                   and all(_is_concrete(v) for v in kwargs.values()))

        # Selection constructors are descriptive, not I/O.
        hyperslab = getattr(Selection, "hyperslab", None)
        sel_all = getattr(Selection, "all", None)
        if func in (hyperslab, sel_all):
            if deep_ok:
                try:
                    return func(*args, **kwargs)
                except Exception:
                    return UNKNOWN
            return UNKNOWN

        if func in _SAFE_BUILTIN_FUNCS:
            if deep_ok:
                try:
                    return func(*args, **kwargs)
                except Exception:
                    return UNKNOWN
            return UNKNOWN

        # Bound methods of parameter dataclasses (pure by convention)
        # and of plain containers.
        self_obj = getattr(func, "__self__", None)
        if self_obj is not None:
            if _frozen_params(self_obj) and deep_ok:
                try:
                    return func(*args, **kwargs)
                except Exception:
                    return UNKNOWN
            if isinstance(self_obj, (list, set, dict)) and \
                    getattr(func, "__name__", "") in _CONTAINER_MUTATORS:
                try:
                    return func(*args, **kwargs)
                except Exception:
                    return UNKNOWN
            if isinstance(self_obj, (str, bytes, tuple, list, dict, set,
                                     int, float, range)) and deep_ok:
                try:
                    return func(*args, **kwargs)
                except Exception:
                    return UNKNOWN
            return UNKNOWN

        if inspect.isfunction(func):
            module = getattr(func, "__module__", "") or ""
            if deep_ok and (module == self._task_module
                            or module.startswith("repro.workloads")):
                try:
                    return func(*args, **kwargs)
                except Exception:
                    return UNKNOWN
            # Inline helpers that receive abstract handles (or whose
            # arguments didn't fully resolve).
            if any(isinstance(a, _Handle) for a in args) or not deep_ok:
                if module == self._task_module or \
                        module.startswith("repro.workloads"):
                    return self.run_function(func, args)
            return UNKNOWN
        return UNKNOWN

    _task_module = ""  # set by infer_contract

    # -- handle-call dispatch: where accesses are recorded -------------
    def _object_lookup(self, file: _FileVal, name,
                       parent: Optional[_ObjectVal] = None) -> _ObjectVal:
        prefix = ""
        if parent is not None and isinstance(parent.name, str):
            prefix = parent.name
        if isinstance(name, str):
            full = normalize_dataset(prefix + "/" + name.strip("/"))
        else:
            full = UNKNOWN
        obj = _ObjectVal(file=file, name=full)
        if isinstance(full, str) and isinstance(file.path, str):
            obj.extent = self.created.get((file.path, full))
            self.rec.access("open", file.path, full,
                            conditional=self.conditional,
                            known_count=not self.conditional)
        elif full is UNKNOWN:
            self.rec.note("a dataset lookup name could not be resolved")
        return obj

    def _record_object_io(self, obj: _ObjectVal, op: str,
                          selection=None) -> None:
        file_path = obj.file.path if isinstance(obj.file, _FileVal) else UNKNOWN
        elements = _selection_elements(selection)
        select = _selection_slabs(selection)
        if elements is None:
            if obj.role == "variable" and op in ("read", "write"):
                elements = _elements_of(obj.extent)
            elif obj.extent is not None:
                elements = _elements_of(obj.extent)
        self.rec.access(op, file_path, obj.name, elements=elements,
                        select=select, conditional=self.conditional,
                        known_count=not self.conditional)

    def _dispatch_handle_call(self, bound: _BoundOp, args, kwargs):
        target, attr = bound.target, bound.attr

        # ---- TaskRuntime ----
        if isinstance(target, _RuntimeVal):
            if attr in ("open", "open_netcdf"):
                path = args[0] if args else kwargs.get("path", UNKNOWN)
                mode = args[1] if len(args) > 1 else kwargs.get("mode", "r")
                handle = _FileVal(
                    path=path if isinstance(path, str) else UNKNOWN,
                    mode=mode if isinstance(mode, str) else UNKNOWN,
                    kind="hdf5" if attr == "open" else "netcdf",
                )
                self.rec.open_file(handle.path, self.conditional)
                return handle
            if attr == "compute":
                return None
            if attr == "local_path":
                self.rec.note("rt.local_path resolves per node at runtime")
                return UNKNOWN
            return UNKNOWN

        # ---- file / group handles ----
        if isinstance(target, _FileVal):
            return self._dispatch_file_call(target, attr, args, kwargs)
        if isinstance(target, _ObjectVal):
            if target.role == "group" and attr in ("create_dataset",
                                                   "create_group",
                                                   "require_group"):
                return self._dispatch_file_call(
                    target.file, attr, args, kwargs, parent=target)
            return self._dispatch_object_call(target, attr, args, kwargs)
        return UNKNOWN

    def _dispatch_file_call(self, file: _FileVal, attr, args, kwargs,
                            parent: Optional[_ObjectVal] = None):
        if attr in _FILE_NOOPS:
            return None
        if attr == "create_dataset":
            name = args[0] if args else kwargs.get("path", UNKNOWN)
            shape = args[1] if len(args) > 1 else kwargs.get("shape")
            dtype = args[2] if len(args) > 2 else kwargs.get("dtype", "")
            data = kwargs.get("data")
            layout = kwargs.get("layout", "")
            extent = _shape_tuple(shape)
            prefix = ""
            if parent is not None and isinstance(parent.name, str):
                prefix = parent.name
            if isinstance(name, str):
                full = normalize_dataset(prefix + "/" + name.strip("/"))
            else:
                full = UNKNOWN
            has_data = data is not None and not (
                isinstance(data, ast.Constant) and data.value is None)
            elements = _elements_of(extent) if has_data else 0
            if isinstance(full, str) and isinstance(file.path, str) \
                    and extent is not None:
                self.created[(file.path, full)] = extent
            self.rec.access(
                "create", file.path, full, elements=elements,
                extent=extent,
                dtype=dtype if isinstance(dtype, str) else "",
                layout=layout if isinstance(layout, str) else "",
                conditional=self.conditional,
                known_count=not self.conditional)
            return _ObjectVal(file=file, name=full, extent=extent)
        if attr in ("create_group", "require_group"):
            name = args[0] if args else UNKNOWN
            prefix = ""
            if parent is not None and isinstance(parent.name, str):
                prefix = parent.name
            full = (normalize_dataset(prefix + "/" + name.strip("/"))
                    if isinstance(name, str) else UNKNOWN)
            return _ObjectVal(file=file, name=full, role="group")
        if attr == "create_dimension":
            name = args[0] if args else UNKNOWN
            length = args[1] if len(args) > 1 else kwargs.get("length")
            if isinstance(name, str):
                file.dims[name] = length if isinstance(length, int) else None
            return None
        if attr == "create_variable":
            name = args[0] if args else UNKNOWN
            dims = args[2] if len(args) > 2 else kwargs.get("dims")
            full = normalize_dataset(name) if isinstance(name, str) else UNKNOWN
            extent = None
            record_elems = None
            if isinstance(dims, (list, tuple)):
                sizes = [file.dims.get(d) if isinstance(d, str) else None
                         for d in dims]
                if all(isinstance(s, int) for s in sizes):
                    extent = tuple(sizes)
                fixed = [s for s in sizes[1:]]
                if fixed and all(isinstance(s, int) for s in fixed):
                    record_elems = 1
                    for s in fixed:
                        record_elems *= s
            dtype = args[1] if len(args) > 1 else kwargs.get("dtype", "")
            self.rec.access(
                "create", file.path, full, elements=0, extent=extent,
                dtype=dtype if isinstance(dtype, str) else "",
                conditional=self.conditional,
                known_count=not self.conditional)
            return _ObjectVal(file=file, name=full, role="variable",
                              extent=extent, record_elems=record_elems)
        if attr == "variable":
            name = args[0] if args else UNKNOWN
            full = normalize_dataset(name) if isinstance(name, str) else UNKNOWN
            if isinstance(full, str) and isinstance(file.path, str):
                self.rec.access("open", file.path, full,
                                conditional=self.conditional,
                                known_count=not self.conditional)
            return _ObjectVal(file=file, name=full, role="variable")
        if attr == "delete":
            return None
        self.rec.note(f"unrecognized file operation .{attr}()")
        return UNKNOWN

    def _dispatch_object_call(self, obj: _ObjectVal, attr, args, kwargs):
        if attr == "read":
            sel = args[0] if args else kwargs.get("selection")
            self._record_object_io(obj, "read", selection=sel)
            return UNKNOWN
        if attr == "write":
            sel = args[1] if len(args) > 1 else kwargs.get("selection")
            self._record_object_io(obj, "write", selection=sel)
            return None
        if attr == "write_record":
            file_path = (obj.file.path if isinstance(obj.file, _FileVal)
                         else UNKNOWN)
            self.rec.access("write", file_path, obj.name,
                            elements=obj.record_elems,
                            conditional=self.conditional,
                            known_count=not self.conditional)
            return None
        if attr == "read_record":
            file_path = (obj.file.path if isinstance(obj.file, _FileVal)
                         else UNKNOWN)
            self.rec.access("read", file_path, obj.name,
                            elements=obj.record_elems,
                            conditional=self.conditional,
                            known_count=not self.conditional)
            return UNKNOWN
        if attr == "resize":
            self._record_object_io(obj, "open")
            return None
        if attr in ("close", "set_att", "get_att", "keys"):
            return None
        self.rec.note(f"unrecognized dataset operation .{attr}()")
        return UNKNOWN


@dataclass
class _DataArg:
    """Placeholder for a skipped data-payload argument."""

    node: Any


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def infer_contract(task: Task, max_ops: int = 500_000) -> TaskContract:
    """Infer a task's access contract from its function source.

    Best-effort: whatever cannot be resolved statically degrades to an
    ``exact=False`` contract with explanatory ``notes`` rather than an
    error, and accesses on unevaluable branches are ``conditional``.
    """
    recorder = _Recorder()
    interp = _Interp(recorder, max_ops=max_ops)
    fn = task.fn
    interp._task_module = getattr(fn, "__module__", "") or ""
    if not inspect.isfunction(fn):
        recorder.note("task body is not a plain Python function")
        return recorder.contract(task.name)
    try:
        interp.run_function(fn, [_RuntimeVal()])
    except _Budget:
        recorder.note("extraction step budget exhausted; contract is "
                      "truncated")
    except RecursionError:  # pragma: no cover - defensive
        recorder.note("extraction recursion limit hit")
    return recorder.contract(task.name)


@dataclass
class WorkflowContracts:
    """Declared and inferred contracts for every task of a workflow."""

    workflow: Workflow
    declared: Dict[str, TaskContract] = field(default_factory=dict)
    inferred: Dict[str, TaskContract] = field(default_factory=dict)

    def effective(self) -> Dict[str, TaskContract]:
        """Per task: the declared contract when present, else inferred."""
        out = dict(self.inferred)
        out.update(self.declared)
        return out

    def tasks(self) -> List[str]:
        return [t.name for t in self.workflow.all_tasks()]


def extract_workflow_contracts(workflow: Workflow,
                               max_ops: int = 500_000) -> WorkflowContracts:
    """Extract contracts for every task: AST inference for all, plus the
    declared contracts where tasks carry them."""
    out = WorkflowContracts(workflow=workflow)
    for t in workflow.all_tasks():
        out.inferred[t.name] = infer_contract(t, max_ops=max_ops)
        if t.contract is not None:
            declared = t.contract
            if not declared.task:
                declared = replace(declared, task=t.name)
            out.declared[t.name] = declared
    return out
