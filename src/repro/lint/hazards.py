"""DY2xx — dataflow hazard rules.

Classic data-race taxonomy lifted to workflow granularity: two tasks
touch the same data object and the trace-derived dependency DAG contains
no happens-before path between them, so a scheduler reorder or a truly
concurrent run can legally produce either outcome.  RAW (a reader races
its producer), WAR (a writer races an earlier reader), WAW (two
producers race each other), byte-extent overlap between unordered
writers within one file, and the degenerate case — the "DAG" has a
cycle, so no consistent order exists at all.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List

from repro.lint.context import (
    ObjectAccess,
    OrderingInfo,
    WorkflowIndex,
    extents_overlap,
)
from repro.lint.findings import Finding, Severity
from repro.lint.rules import LintConfig, rule

__all__ = []  # rules register themselves; nothing to import by name


# ----------------------------------------------------------------------
# Columnar page-stats predicates (``LintRule.pushdown``)
#
# All hazards need at least two groups touching a shared file with the
# right read/write mix; the distinct-file page stats answer that from
# footers alone.  Conservative by construction: page stats count metadata
# operations too, so "this group wrote" over-approximates "raw-wrote",
# and any unknown statistic yields True.
# ----------------------------------------------------------------------
def _reader_writer_pushdown(run, config: LintConfig) -> bool:
    """A reading group and a writing group share a file (RAW/WAR races,
    and the producer→consumer edges a dependency cycle is made of)."""
    prior_read: set = set()
    prior_write: set = set()
    for g in run.groups:
        reads = g.int_sum("stats", "reads")
        writes = g.int_sum("stats", "writes")
        files = g.distinct("stats", "file")
        if reads is None or writes is None or files is None:
            return True
        if writes and (files & prior_read):
            return True
        if reads and (files & prior_write):
            return True
        if reads:
            prior_read |= files
        if writes:
            prior_write |= files
    return False


def _double_writer_pushdown(run, config: LintConfig) -> bool:
    """Two distinct groups write into a shared file (WAW / aliasing)."""
    prior_write: set = set()
    for g in run.groups:
        writes = g.int_sum("stats", "writes")
        files = g.distinct("stats", "file")
        if writes is None or files is None:
            return True
        if writes:
            if files & prior_write:
                return True
            prior_write |= files
    return False


def _racing_pairs(accs: List[ObjectAccess], ordering: OrderingInfo,
                  first_kind: str, second_kind: str):
    """Unordered task pairs where one side did ``first_kind`` raw access
    and the other ``second_kind`` (read/write), deduplicated per pair."""
    firsts = [a for a in accs if (a.raw_read if first_kind == "read"
                                  else a.raw_written)]
    seconds = [a for a in accs if (a.raw_read if second_kind == "read"
                                   else a.raw_written)]
    seen = set()
    for x in firsts:
        for y in seconds:
            if x.task == y.task:
                continue
            pair = tuple(sorted((x.task, y.task)))
            if pair in seen or ordering.ordered(x.task, y.task):
                continue
            seen.add(pair)
            yield x, y


def _classified_read_write_races(index: WorkflowIndex,
                                 ordering: OrderingInfo):
    """Unordered reader/writer pairs, split RAW vs WAR by the order the
    trace happened to observe (either order is legal at runtime)."""
    for (file, obj), accs in sorted(index.by_object.items()):
        for writer, reader in _racing_pairs(accs, ordering, "write", "read"):
            w, r = writer.first_raw_write, reader.first_raw_read
            raw = w is None or r is None or w <= r
            yield ("raw" if raw else "war"), file, obj, writer, reader


@rule("DY201", "read-after-write-race", Severity.ERROR, "workflow",
      "A task reads a dataset another task wrote, with no happens-before "
      "path between them — under reordering the read can observe a "
      "partial or missing write (RAW race).",
      pushdown=_reader_writer_pushdown)
def _raw_race(index: WorkflowIndex, ordering: OrderingInfo,
              config: LintConfig) -> Iterator[Finding]:
    for kind, file, obj, writer, reader in _classified_read_write_races(
            index, ordering):
        if kind != "raw":
            continue
        yield Finding(
            code="DY201", rule="read-after-write-race",
            severity=Severity.ERROR,
            subject=f"{file}:{obj}",
            tasks=tuple(sorted((writer.task, reader.task))),
            message=(
                f"{reader.task} reads {obj} in {file} after {writer.task} "
                "wrote it in this trace, but no dependency path orders "
                "them — a reorder can starve the read of its input"),
            evidence={"writer": writer.task, "reader": reader.task},
        )


@rule("DY202", "write-after-read-race", Severity.ERROR, "workflow",
      "A task overwrites a dataset another task read, with no "
      "happens-before path between them — under reordering the write can "
      "clobber the data before it is consumed (WAR race).",
      pushdown=_reader_writer_pushdown)
def _war_race(index: WorkflowIndex, ordering: OrderingInfo,
              config: LintConfig) -> Iterator[Finding]:
    for kind, file, obj, writer, reader in _classified_read_write_races(
            index, ordering):
        if kind != "war":
            continue
        yield Finding(
            code="DY202", rule="write-after-read-race",
            severity=Severity.ERROR,
            subject=f"{file}:{obj}",
            tasks=tuple(sorted((writer.task, reader.task))),
            message=(
                f"{writer.task} overwrites {obj} in {file} after "
                f"{reader.task} read it in this trace, but no dependency "
                "path orders them — a reorder can clobber the data before "
                "it is consumed"),
            evidence={"writer": writer.task, "reader": reader.task},
        )


@rule("DY203", "unordered-double-write", Severity.ERROR, "workflow",
      "Two tasks write the same dataset with no happens-before path "
      "between them — the surviving content depends on scheduling (WAW "
      "race).  Downgraded to a warning when their byte extents are "
      "provably disjoint (collective partial-write pattern).",
      pushdown=_double_writer_pushdown)
def _double_write(index: WorkflowIndex, ordering: OrderingInfo,
                  config: LintConfig) -> Iterator[Finding]:
    for (file, obj), accs in sorted(index.by_object.items()):
        for a, b in _racing_pairs(accs, ordering, "write", "write"):
            overlap = extents_overlap(a.write_extents, b.write_extents)
            exact = a.exact and b.exact
            if overlap is None and exact:
                severity = Severity.WARNING
                detail = ("their byte extents are disjoint (collective "
                          "partial-write pattern), but metadata updates "
                          "still race")
            elif overlap is None:
                severity = Severity.WARNING
                detail = ("their page-granular extents are disjoint "
                          "(per-operation records unavailable for an "
                          "exact check)")
            else:
                severity = Severity.ERROR
                lo, hi = overlap
                gran = "bytes" if exact else "pages (approximate)"
                detail = (f"their writes overlap at {gran} "
                          f"[{lo}, {hi}) — last scheduled writer wins")
            yield Finding(
                code="DY203", rule="unordered-double-write",
                severity=severity,
                subject=f"{file}:{obj}",
                tasks=tuple(sorted((a.task, b.task))),
                message=(
                    f"{a.task} and {b.task} both write {obj} in {file} "
                    f"with no dependency path between them; {detail}"),
                evidence={
                    "overlap": list(overlap) if overlap else None,
                    "extent_precision": "byte" if exact else "page",
                },
            )


@rule("DY204", "cross-object-write-overlap", Severity.ERROR, "workflow",
      "Unordered tasks write byte ranges that alias across *different* "
      "objects in the same file (e.g. reallocated space or a shared "
      "chunk) — silent corruption under reordering.",
      pushdown=_double_writer_pushdown)
def _cross_object_overlap(index: WorkflowIndex, ordering: OrderingInfo,
                          config: LintConfig) -> Iterator[Finding]:
    by_file = {}
    for (file, obj), accs in index.by_object.items():
        for a in accs:
            if a.raw_written and a.exact and a.write_extents:
                by_file.setdefault(file, []).append(a)
    for file in sorted(by_file):
        writers = by_file[file]
        seen = set()
        for a, b in itertools.combinations(writers, 2):
            if a.data_object == b.data_object or a.task == b.task:
                continue  # same-object races are DY203's
            key = (tuple(sorted((a.task, b.task))),
                   tuple(sorted((a.data_object, b.data_object))))
            if key in seen or ordering.ordered(a.task, b.task):
                continue
            overlap = extents_overlap(a.write_extents, b.write_extents)
            if overlap is None:
                continue
            seen.add(key)
            lo, hi = overlap
            yield Finding(
                code="DY204", rule="cross-object-write-overlap",
                severity=Severity.ERROR,
                subject=f"{file}:{a.data_object}|{b.data_object}",
                tasks=tuple(sorted((a.task, b.task))),
                message=(
                    f"unordered tasks {a.task} and {b.task} write "
                    f"overlapping bytes [{lo}, {hi}) of {file} through "
                    f"different objects ({a.data_object} vs "
                    f"{b.data_object}) — the allocations alias"),
                evidence={"overlap": [lo, hi],
                          "objects": sorted((a.data_object, b.data_object))},
            )


@rule("DY205", "dependency-cycle", Severity.ERROR, "workflow",
      "The producer→consumer relations recovered from the traces form a "
      "cycle; no execution order is consistent with the dataflow.",
      pushdown=_reader_writer_pushdown)
def _dependency_cycle(index: WorkflowIndex, ordering: OrderingInfo,
                      config: LintConfig) -> Iterator[Finding]:
    if ordering.cycle:
        path = " -> ".join([*ordering.cycle, ordering.cycle[0]])
        yield Finding(
            code="DY205", rule="dependency-cycle",
            severity=Severity.ERROR,
            subject=path,
            tasks=tuple(sorted(ordering.cycle)),
            message=(
                f"tasks form a dependency cycle: {path}; ordering-based "
                "hazard checks treat these tasks as mutually reachable "
                "and may under-report races among them"),
            evidence={"cycle": list(ordering.cycle)},
        )
