"""DY6xx — predicted performance rules, and DY65x prediction drift.

The DY60x rules (scope ``perf``) evaluate once over the pre-run
:class:`~repro.lint.cost.CostContext` — no traces anywhere.  They are
opt-in (``dayu-lint --cost``): like DY5xx they overlap what an
optimization advisor would recommend, and several bundled fixtures are
intentionally naive.

The DY65x rules (scope ``costdrift``) close the loop: once a run *has*
been traced, the prediction itself goes on trial.  A task whose traced
duration or byte volume disagrees with its predicted cost by a large
factor is a finding — the performance mirror of DY45x contract drift.
DY651/DY653 carry columnar pushdown predicates: group footers record
exact spans and exact byte sums, so whole runs whose traces provably
match their predictions are cleared without decoding a single column.

Thresholds live on :class:`~repro.lint.rules.LintConfig` (the
``cost_*``, ``imbalance_factor``, ``locality_min_fraction``, and
``edge_dominance_fraction`` fields); every DY60x rule additionally
ignores anything predicted under ``cost_min_seconds`` — sub-50 ms
hazards are noise at workflow scale.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.lint.cost import CostContext, CostDriftContext, CostReport
from repro.lint.findings import Finding, Severity
from repro.lint.rules import LintConfig, rule
from repro.storage.devices import DEVICE_CATALOG, predicted_cost

__all__ = []  # rules register themselves; nothing to import by name


# ----------------------------------------------------------------------
# DY60x — pre-run performance hazards
# ----------------------------------------------------------------------
@rule("DY601", "small-io-on-critical-path", Severity.ERROR, "perf",
      "A dataset on the predicted critical path is accessed in many "
      "tiny operations whose per-op latency dominates its cost — "
      "batching them shortens the whole workflow.",
      default_enabled=False)
def _small_io_on_critical_path(cctx: CostContext,
                               config: LintConfig) -> Iterator[Finding]:
    on_path = set(cctx.report.critical_path)
    for task in cctx.report.critical_path:
        tc = cctx.report.tasks.get(task)
        if tc is None:
            continue
        for d in tc.datasets:
            if d.ops < config.small_io_min_ops:
                continue
            if d.volume > d.ops * config.small_io_max_avg_bytes:
                continue
            if d.io_seconds < config.cost_min_seconds:
                continue
            if d.latency_seconds < 0.5 * d.io_seconds:
                continue
            yield Finding(
                code="DY601", rule="small-io-on-critical-path",
                severity=Severity.ERROR,
                subject=f"{d.file}:{d.dataset}",
                tasks=(task,),
                message=(
                    f"{task} (on the predicted critical path) issues "
                    f"{d.ops} operations averaging "
                    f"{d.volume // d.ops} bytes against {d.dataset} in "
                    f"{d.file}; latency is "
                    f"{d.latency_seconds / d.io_seconds:.0%} of its "
                    f"{d.io_seconds:.3f}s predicted cost — batch the "
                    "accesses"),
                evidence={
                    "ops": d.ops,
                    "volume": d.volume,
                    "avg_bytes": d.volume // d.ops,
                    "io_seconds": round(d.io_seconds, 6),
                    "latency_seconds": round(d.latency_seconds, 6),
                    "critical_path": sorted(on_path),
                },
            )


@rule("DY602", "predicted-stage-straggler", Severity.WARNING, "perf",
      "One task of a parallel stage is predicted far slower than the "
      "stage mean — the whole stage waits on it at the barrier.",
      default_enabled=False)
def _predicted_stage_straggler(cctx: CostContext,
                               config: LintConfig) -> Iterator[Finding]:
    for stage in cctx.report.stages:
        if not stage.parallel or len(stage.tasks) < 2:
            continue
        totals = {t: cctx.report.tasks[t].total_seconds
                  for t in stage.tasks if t in cctx.report.tasks}
        if len(totals) < 2:
            continue
        mean = sum(totals.values()) / len(totals)
        straggler = max(sorted(totals), key=lambda t: (totals[t], t))
        worst = totals[straggler]
        if mean <= 0 or worst < config.imbalance_factor * mean:
            continue
        if worst - mean < config.cost_min_seconds:
            continue
        yield Finding(
            code="DY602", rule="predicted-stage-straggler",
            severity=Severity.WARNING,
            subject=stage.name,
            tasks=(straggler,),
            message=(
                f"stage {stage.name} is predicted to wait on "
                f"{straggler}: {worst:.3f}s against a stage mean of "
                f"{mean:.3f}s ({worst / mean:.1f}x) — rebalance the "
                "stage's I/O"),
            evidence={
                "straggler_seconds": round(worst, 6),
                "stage_mean_seconds": round(mean, 6),
                "factor": round(worst / mean, 3),
                "tasks": {t: round(s, 6)
                          for t, s in sorted(totals.items())},
            },
        )


def _local_read_cost(cctx: CostContext, read_ops: int,
                     read_bytes: int) -> Optional[float]:
    tier = cctx.spec.fastest_local_tier()
    if tier is None:
        return None
    dev = DEVICE_CATALOG[tier[1]]
    return predicted_cost(dev, read_ops=read_ops, read_bytes=read_bytes)


def _locality_floor(cctx: CostContext, config: LintConfig) -> float:
    return max(config.locality_min_fraction
               * cctx.report.makespan_seconds,
               config.cost_min_seconds)


@rule("DY603", "cross-node-transfer", Severity.WARNING, "perf",
      "A producer→consumer hand-off crosses nodes through shared "
      "storage; co-placing the tasks and localizing the file would "
      "eliminate the transfer (the paper's fig11 placement).",
      default_enabled=False)
def _cross_node_transfer(cctx: CostContext,
                         config: LintConfig) -> Iterator[Finding]:
    floor = _locality_floor(cctx, config)
    for e in cctx.report.edges:
        if not e.cross_node or e.seconds < config.cost_min_seconds:
            continue
        dev, _ = cctx.spec.device_for_path(
            cctx.report.file_placement.get(e.file, e.file))
        if not dev.shared:
            continue
        ops = sum(max(a.count, 1)
                  for a in cctx.static.accesses_for((e.file, e.dataset),
                                                    e.consumer)
                  if a.op == "read")
        local = _local_read_cost(cctx, ops, e.volume)
        if local is None:
            continue
        saving = e.seconds - local
        if saving < floor:
            continue
        yield Finding(
            code="DY603", rule="cross-node-transfer",
            severity=Severity.WARNING,
            subject=f"{e.producer}->{e.consumer}",
            tasks=(e.producer, e.consumer),
            message=(
                f"{e.producer} hands {e.volume} bytes of {e.dataset} in "
                f"{e.file} to {e.consumer} across nodes via shared "
                f"storage; a locality placement is predicted to save "
                f"{saving:.3f}s — run dayu-plan"),
            evidence={
                "volume": e.volume,
                "shared_seconds": round(e.seconds, 6),
                "local_seconds": round(local, 6),
                "predicted_saving_seconds": round(saving, 6),
                "producer_node": cctx.report.placement.get(e.producer),
                "consumer_node": cctx.report.placement.get(e.consumer),
            },
        )


@rule("DY604", "hot-dataset-tier-misplacement", Severity.WARNING, "perf",
      "A heavily-read dataset lives on a shared tier although a faster "
      "node-local tier exists — staging it local is predicted to pay "
      "for itself.",
      default_enabled=False)
def _hot_dataset_tier(cctx: CostContext,
                      config: LintConfig) -> Iterator[Finding]:
    floor = _locality_floor(cctx, config)
    tier = cctx.spec.fastest_local_tier()
    if tier is None:
        return
    for key in sorted(cctx.report.dataset_traffic):
        t = cctx.report.dataset_traffic[key]
        if not t.shared or not t.read_ops:
            continue
        shared_dev = DEVICE_CATALOG[t.device]
        current = predicted_cost(shared_dev, read_ops=t.read_ops,
                                 read_bytes=t.bytes_read)
        local = _local_read_cost(cctx, t.read_ops, t.bytes_read)
        if local is None:
            continue
        saving = current - local
        if saving < floor:
            continue
        yield Finding(
            code="DY604", rule="hot-dataset-tier-misplacement",
            severity=Severity.WARNING,
            subject=f"{t.file}:{t.dataset}",
            tasks=tuple(sorted(t.readers)),
            message=(
                f"{t.dataset} in {t.file} serves {t.bytes_read} read "
                f"bytes from shared {t.device}; staging it on the "
                f"{tier[0]} tier ({tier[1]}) is predicted to save "
                f"{saving:.3f}s"),
            evidence={
                "device": t.device,
                "read_ops": t.read_ops,
                "bytes_read": t.bytes_read,
                "shared_seconds": round(current, 6),
                "local_seconds": round(local, 6),
                "predicted_saving_seconds": round(saving, 6),
                "suggested_tier": tier[0],
            },
        )


@rule("DY605", "dominant-transfer", Severity.NOTE, "perf",
      "A single producer→consumer transfer is predicted to cost a large "
      "fraction of the whole makespan — the first target for "
      "consolidation or layout work.",
      default_enabled=False)
def _dominant_transfer(cctx: CostContext,
                       config: LintConfig) -> Iterator[Finding]:
    makespan = cctx.report.makespan_seconds
    if makespan <= 0:
        return
    for e in cctx.report.edges:
        if e.seconds < config.cost_min_seconds:
            continue
        if e.seconds < config.edge_dominance_fraction * makespan:
            continue
        yield Finding(
            code="DY605", rule="dominant-transfer",
            severity=Severity.NOTE,
            subject=f"{e.file}:{e.dataset}",
            tasks=(e.producer, e.consumer),
            message=(
                f"the {e.producer}→{e.consumer} transfer of "
                f"{e.dataset} in {e.file} is predicted at "
                f"{e.seconds:.3f}s — "
                f"{e.seconds / makespan:.0%} of the "
                f"{makespan:.3f}s makespan"),
            evidence={
                "volume": e.volume,
                "seconds": round(e.seconds, 6),
                "makespan_seconds": round(makespan, 6),
                "fraction": round(e.seconds / makespan, 3),
            },
        )


# ----------------------------------------------------------------------
# DY65x — prediction drift (needs one traced run)
# ----------------------------------------------------------------------
def _drifted(predicted: float, actual: float, factor: float,
             floor: float) -> bool:
    hi, lo = max(predicted, actual), min(predicted, actual)
    if hi < floor:
        return False
    return lo <= 0 or hi >= factor * lo


def _duration_drift_possible(task: Optional[str], duration: float,
                             report: CostReport,
                             config: LintConfig) -> bool:
    if task is None:
        return True  # unknown task: must evaluate
    tc = report.tasks.get(task)
    if tc is None:
        return False  # unpredicted tasks never fire DY651
    return _drifted(tc.total_seconds, duration, config.cost_drift_factor,
                    config.cost_drift_min_seconds)


def _pushdown_task_cost_drift(view, config: LintConfig,
                              report: CostReport) -> bool:
    """Footer spans are exact, so this predicate is too: a run is
    cleared iff no group's span can satisfy DY651's test."""
    return any(
        _duration_drift_possible(g.task, max(g.end - g.start, 0.0),
                                 report, config)
        for g in view.groups)


@rule("DY651", "task-cost-drift", Severity.WARNING, "costdrift",
      "A task's traced duration disagrees with its predicted cost by a "
      "large factor — the contract, the device model, or the code is "
      "wrong about this task.",
      default_enabled=False, pushdown=_pushdown_task_cost_drift)
def _task_cost_drift(dctx: CostDriftContext,
                     config: LintConfig) -> Iterator[Finding]:
    for task in sorted(dctx.actual_durations):
        tc = dctx.report.tasks.get(task)
        if tc is None:
            continue
        actual = dctx.actual_durations[task]
        predicted = tc.total_seconds
        if not _drifted(predicted, actual, config.cost_drift_factor,
                        config.cost_drift_min_seconds):
            continue
        direction = ("slower" if actual > predicted else "faster")
        yield Finding(
            code="DY651", rule="task-cost-drift",
            severity=Severity.WARNING,
            subject=task,
            tasks=(task,),
            message=(
                f"{task} ran {actual:.3f}s against a predicted "
                f"{predicted:.3f}s — "
                f"{max(actual, predicted) / max(min(actual, predicted), 1e-9):.1f}x "
                f"{direction} than the cost model expected"),
            evidence={
                "predicted_seconds": round(predicted, 6),
                "actual_seconds": round(actual, 6),
            },
        )


@rule("DY652", "makespan-drift", Severity.NOTE, "costdrift",
      "The run's traced makespan disagrees with the predicted one by a "
      "large factor — the prediction as a whole missed this workflow.",
      default_enabled=False)
def _makespan_drift(dctx: CostDriftContext,
                    config: LintConfig) -> Iterator[Finding]:
    predicted = dctx.report.makespan_seconds
    actual = dctx.actual_makespan
    if not _drifted(predicted, actual, config.cost_drift_factor,
                    config.cost_drift_min_seconds):
        return
    yield Finding(
        code="DY652", rule="makespan-drift",
        severity=Severity.NOTE,
        subject=dctx.report.workflow,
        tasks=(),
        message=(
            f"workflow {dctx.report.workflow} ran {actual:.3f}s against "
            f"a predicted makespan of {predicted:.3f}s"),
        evidence={
            "predicted_makespan_seconds": round(predicted, 6),
            "actual_makespan_seconds": round(actual, 6),
            "predicted_critical_path": list(dctx.report.critical_path),
        },
    )


def _volume_drift_possible(task: Optional[str],
                           traced: Optional[Tuple[int, int]],
                           report: CostReport,
                           config: LintConfig) -> bool:
    if task is None or traced is None:
        return True  # unknown stats: must evaluate
    tc = report.tasks.get(task)
    if tc is None:
        return False
    predicted = tc.read_bytes + tc.write_bytes
    actual = traced[0] + traced[1]
    hi, lo = max(predicted, actual), min(predicted, actual)
    if hi - lo < config.cost_drift_min_bytes:
        return False
    return lo <= 0 or hi >= config.cost_drift_factor * lo


def _pushdown_volume_drift(view, config: LintConfig,
                           report: CostReport) -> bool:
    """Exact when footers carry byte sums; conservative otherwise."""
    def traced(g) -> Optional[Tuple[int, int]]:
        br = g.int_sum("stats", "bytes_read")
        bw = g.int_sum("stats", "bytes_written")
        if br is None or bw is None:
            return None
        return br, bw

    return any(
        _volume_drift_possible(g.task, traced(g), report, config)
        for g in view.groups)


@rule("DY653", "traced-volume-drift", Severity.WARNING, "costdrift",
      "A task moved a very different byte volume than its contract "
      "predicted — element counts or dtypes in the contract are stale.",
      default_enabled=False, pushdown=_pushdown_volume_drift)
def _traced_volume_drift(dctx: CostDriftContext,
                         config: LintConfig) -> Iterator[Finding]:
    for task in sorted(dctx.actual_bytes):
        if not _volume_drift_possible(task, dctx.actual_bytes[task],
                                      dctx.report, config):
            continue
        tc = dctx.report.tasks[task]
        predicted = tc.read_bytes + tc.write_bytes
        br, bw = dctx.actual_bytes[task]
        actual = br + bw
        yield Finding(
            code="DY653", rule="traced-volume-drift",
            severity=Severity.WARNING,
            subject=task,
            tasks=(task,),
            message=(
                f"{task} moved {actual} traced bytes against a "
                f"predicted {predicted} — contract volumes are stale"),
            evidence={
                "predicted_bytes": predicted,
                "actual_bytes": actual,
                "actual_bytes_read": br,
                "actual_bytes_written": bw,
            },
        )
