"""The lint rule registry: stable codes, severities, enablement.

Five rule families, one code block each (codes are stable API — never
reused for a different meaning once shipped):

- **DY1xx — semantic anti-patterns**: dataflow shapes that are legal but
  almost always wrong or wasteful (dead writes, phantom reads, small-I/O
  amplification, layout disagreements).
- **DY2xx — dataflow hazards**: WAW/RAW/WAR conflicts between tasks with
  no happens-before path in the trace-derived dependency DAG — the races
  a scheduler reorder or a real concurrent run would expose.
- **DY3xx — trace integrity**: the trace sanitizer; violations mean the
  profile data itself is inconsistent (VOL and VFD byte accounting
  disagree, extents are malformed, timestamps escape their task window)
  and downstream analysis cannot be trusted.
- **DY40x — pre-run contract rules**: evaluated over the workflow
  *definition* alone (declared + AST-inferred access contracts), before
  any trace exists.
- **DY45x — contract drift**: the differential join of contracts
  against observed traces (undeclared accesses, declared-but-never-
  performed I/O).
- **DY5xx — happens-before races** (opt-in, ``--races`` / ``--select
  DY5*``): vector-clock analysis under the *dependency-only* ordering —
  conflicting accesses ordered only by stage barriers or observed timing
  are convicted with a concrete reorder witness.
- **DY60x — predicted performance** (opt-in, ``--cost``): the static
  cost prophet — contracts joined with the device cost models and a
  cluster topology convict performance hazards (small-I/O on the
  predicted critical path, stage stragglers, cross-node traffic a
  locality plan would eliminate) before anything runs.
- **DY65x — prediction drift**: predicted cost/critical path vs. one
  traced run — mispredictions are themselves findings (the performance
  mirror of DY45x contract drift).

Rules register themselves via :func:`rule`; importing
:mod:`repro.lint.semantic`, :mod:`repro.lint.hazards`,
:mod:`repro.lint.integrity`, :mod:`repro.lint.prerun`,
:mod:`repro.lint.drift` and :mod:`repro.lint.race` populates the
registry (package ``__init__`` does this).  Each rule is
``profile``-scoped (evaluated per task profile, shardable across worker
processes), ``workflow``-scoped (evaluated once over the cross-task
:class:`~repro.lint.context.WorkflowIndex`), ``contract``-scoped
(evaluated once over the pre-run
:class:`~repro.lint.predict.StaticContext`), ``drift``-scoped (evaluated
per task against its contract + traced summary, shardable),
``race``-scoped (evaluated once over the dual happens-before
:class:`~repro.lint.race.RaceContext`), ``perf``-scoped (evaluated once
over the pre-run :class:`~repro.lint.cost.CostContext`), or
``costdrift``-scoped (evaluated once over the prediction-vs-trace
:class:`~repro.lint.cost.CostDriftContext`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Severity

__all__ = ["LintRule", "LintConfig", "rule", "all_rules", "get_rule"]


@dataclass(frozen=True)
class LintRule:
    """One registered rule.

    Attributes:
        code: Stable ``DYnnn`` identifier.
        name: Short kebab-case name (shown next to the code).
        severity: Default severity of its findings.
        scope: ``"profile"`` (per-task, shardable), ``"workflow"``
            (cross-task, needs the full index), ``"contract"`` (pre-run,
            over the static context), or ``"drift"`` (per-task contract
            vs. trace join, shardable).
        description: One-line summary for ``--list-rules`` and SARIF.
        default_enabled: Whether the rule runs without explicit
            ``--enable``.  Opt-in rules overlap the optimization advisor's
            recommendations and fire on intentionally-inefficient bundled
            fixtures, so they are registered but off by default.
        check: The rule body.  Profile scope:
            ``check(profile, config) -> findings``; workflow scope:
            ``check(index, ordering, config) -> findings``.
        pushdown: Optional columnar page-stats predicate.  Answers "could
            this rule possibly fire here?" from chunk footer statistics
            alone — profile scope receives a
            :class:`~repro.mapper.columnar.GroupStatsView`, workflow scope
            a :class:`~repro.mapper.columnar.RunStatsView` (plus the
            config).  ``True`` means "maybe" (evaluate the rule), ``False``
            means "provably cannot fire" (skip it without decoding).
            Predicates must be conservative: any unknown statistic —
            absent column, overflowed distinct set — must yield ``True``.
            ``None`` means the rule is always evaluated.
    """

    code: str
    name: str
    severity: Severity
    scope: str
    description: str
    default_enabled: bool = True
    check: Optional[Callable] = None
    pushdown: Optional[Callable] = None


_REGISTRY: Dict[str, LintRule] = {}


def rule(code: str, name: str, severity: Severity, scope: str,
         description: str, default_enabled: bool = True,
         pushdown: Optional[Callable] = None):
    """Class-less registration decorator for rule check functions."""
    if scope not in ("profile", "workflow", "contract", "drift", "race",
                     "perf", "costdrift"):
        raise ValueError(f"bad rule scope {scope!r}")
    if pushdown is not None and scope not in ("profile", "workflow", "race",
                                              "costdrift"):
        raise ValueError(f"pushdown predicates only apply to traced "
                         f"scopes, not {scope!r}")

    def register(fn: Callable) -> Callable:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code}")
        _REGISTRY[code] = LintRule(
            code=code, name=name, severity=severity, scope=scope,
            description=description, default_enabled=default_enabled,
            check=fn, pushdown=pushdown,
        )
        return fn

    return register


def all_rules() -> List[LintRule]:
    """Every registered rule, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> LintRule:
    return _REGISTRY[code]


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule selection and thresholds (picklable: plain fields).

    ``enable``/``disable`` entries are codes, code prefixes, or shell-style
    globs — ``"DY2"`` and ``"DY2*"`` both select the whole hazard family,
    ``"DY105"`` one rule, ``"DY?05"`` every family's 05 rule.  Precedence
    when selectors conflict: ``disable`` wins over ``enable`` (a rule
    matched by both is off), and any explicit match wins over the rule's
    ``default_enabled``.  Prefix and glob matches carry equal weight —
    only which list matched decides.
    """

    enable: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()
    #: Page size the traces' region histograms were recorded at; only used
    #: for extent bounds when per-operation records are unavailable.
    page_size: int = 4096
    #: DY103 thresholds: an object is a small-I/O amplifier when one task
    #: issues at least ``small_io_min_ops`` raw operations against it at
    #: an average size of at most ``small_io_max_avg_bytes``.  DY408
    #: (loop-carried small writes in a *contract*) reuses the same
    #: thresholds against predicted operation counts and sizes.
    small_io_min_ops: int = 128
    small_io_max_avg_bytes: int = 512
    #: DY407 threshold: a task re-opening the same file at least this many
    #: times is flagged as an open-in-loop anti-pattern.
    open_loop_min_opens: int = 8
    #: DY5xx reorder witnesses longer than this many tasks are windowed
    #: down to the racing region (full order elided, ``window`` recorded).
    witness_max_tasks: int = 200
    #: DY504 schedule-sensitivity reports keep at most this many
    #: must-preserve edges in finding evidence (the count is always exact).
    sensitivity_max_edges: int = 64
    #: DY6xx noise floor: predicted costs below this many seconds are
    #: never worth a finding, whatever their shape.
    cost_min_seconds: float = 0.05
    #: DY602: a parallel stage is imbalanced when its slowest task is
    #: predicted at least this factor above the stage mean.
    imbalance_factor: float = 3.0
    #: DY603/DY604: a locality rewrite must be predicted to save at least
    #: this fraction of the makespan (and clear ``cost_min_seconds``).
    locality_min_fraction: float = 0.2
    #: DY605: one producer→consumer edge dominates when its predicted
    #: transfer costs at least this fraction of the makespan.
    edge_dominance_fraction: float = 0.25
    #: DY651/DY652 fire when actual and predicted seconds disagree by at
    #: least this factor (either direction) and the larger side clears
    #: ``cost_drift_min_seconds``.
    cost_drift_factor: float = 3.0
    cost_drift_min_seconds: float = 0.05
    #: DY653 fires when traced and predicted byte volumes disagree by
    #: ``cost_drift_factor`` and at least this many bytes.
    cost_drift_min_bytes: int = 1 << 16

    def __post_init__(self) -> None:
        for sel in (*self.enable, *self.disable):
            if not sel.startswith("DY"):
                raise ValueError(f"bad rule selector {sel!r}: "
                                 "use a DYnnn code, DYn prefix, or DYn* glob")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.small_io_min_ops < 1 or self.small_io_max_avg_bytes < 1:
            raise ValueError("small-I/O thresholds must be positive")
        if self.open_loop_min_opens < 2:
            raise ValueError("open_loop_min_opens must be >= 2")
        if self.cost_min_seconds < 0 or self.cost_drift_min_seconds < 0:
            raise ValueError("cost floors must be non-negative")
        if self.imbalance_factor < 1 or self.cost_drift_factor < 1:
            raise ValueError("cost factors must be >= 1")
        if not (0 < self.locality_min_fraction <= 1
                and 0 < self.edge_dominance_fraction <= 1):
            raise ValueError("cost fractions must be in (0, 1]")
        if self.cost_drift_min_bytes < 0:
            raise ValueError("cost_drift_min_bytes must be non-negative")

    @staticmethod
    def _matches(code: str, selector: str) -> bool:
        if any(ch in selector for ch in "*?["):
            return fnmatchcase(code, selector)
        return code.startswith(selector)

    def is_enabled(self, r: LintRule) -> bool:
        if any(self._matches(r.code, sel) for sel in self.disable):
            return False
        if any(self._matches(r.code, sel) for sel in self.enable):
            return True
        return r.default_enabled

    def enabled_rules(self, scope: Optional[str] = None) -> List[LintRule]:
        return [r for r in all_rules()
                if self.is_enabled(r) and (scope is None or r.scope == scope)]
