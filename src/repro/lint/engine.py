"""The lint engine: run rules over profiles, collect a report, baseline.

:func:`lint_profiles` is the single entry point both the CLI and
:class:`~repro.analyzer.parallel.ParallelAnalyzer` reduce to.  It splits
the enabled rules by scope — profile-scoped rules see each
:class:`~repro.mapper.mapper.TaskProfile` in isolation (and are exactly
the part the parallel analyzer ships to worker processes), workflow-scoped
rules see the cross-task :class:`~repro.lint.context.WorkflowIndex` plus
the happens-before oracle — and folds everything into a deterministic,
severity-ordered :class:`LintReport`.

Two trace-less entry points sit beside it: :func:`lint_workflow` runs
the pre-run ``contract``-scoped DY40x rules over a workflow definition
(no traces needed), and :func:`diff_profiles` joins saved traces against
the same contracts through the ``drift``-scoped DY45x rules.

Baselines are flat text files of finding fingerprints (one per line,
``#`` comments allowed).  A fingerprint covers a finding's stable
identity only, so re-running the same workflow keeps suppressing the
same accepted findings while anything new still fails the run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.context import (
    OrderingInfo,
    build_index,
    compute_ordering,
    summarize_profile,
)
from repro.lint.findings import Finding, Severity
from repro.lint.rules import LintConfig, LintRule
from repro.mapper.mapper import TaskProfile

# Importing the rule modules populates the registry.
from repro.lint import drift as _drift  # noqa: F401
from repro.lint import hazards as _hazards  # noqa: F401
from repro.lint import integrity as _integrity  # noqa: F401
from repro.lint import perf as _perf  # noqa: F401
from repro.lint import prerun as _prerun  # noqa: F401
from repro.lint import race as _race  # noqa: F401
from repro.lint import semantic as _semantic  # noqa: F401

__all__ = [
    "LintReport",
    "lint_profiles",
    "lint_workflow",
    "diff_profiles",
    "run_profile_rules",
    "run_workflow_rules",
    "run_contract_rules",
    "run_drift_rules",
    "run_race_rules",
    "run_perf_rules",
    "run_costdrift_rules",
    "cost_findings",
    "load_baseline",
    "save_baseline",
    "parse_baseline",
    "baseline_text",
]

_REPORT_VERSION = 1


@dataclass
class LintReport:
    """Deterministically ordered findings plus suppression bookkeeping."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings that matched the baseline and were suppressed.
    suppressed: List[Finding] = field(default_factory=list)
    #: Tasks that were linted (recorded even when everything is clean).
    tasks: List[str] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        out = {sev.value: 0 for sev in Severity}
        for f in self.findings:
            out[f.severity.value] += 1
        return out

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def clean(self) -> bool:
        return not self.findings

    def apply_baseline(self, fingerprints: Set[str]) -> "LintReport":
        """Split findings into kept vs baseline-suppressed."""
        kept = [f for f in self.findings if f.fingerprint not in fingerprints]
        gone = [f for f in self.findings if f.fingerprint in fingerprints]
        return LintReport(findings=kept,
                          suppressed=[*self.suppressed, *gone],
                          tasks=list(self.tasks))

    def summary(self) -> str:
        c = self.counts
        parts = [f"{c['error']} error(s)", f"{c['warning']} warning(s)",
                 f"{c['note']} note(s)"]
        if self.suppressed:
            parts.append(f"{len(self.suppressed)} baseline-suppressed")
        return (f"dayu-lint: {', '.join(parts)} "
                f"across {len(self.tasks)} task(s)")

    def to_json_dict(self) -> dict:
        return {
            "version": _REPORT_VERSION,
            "tool": "dayu-lint",
            "tasks": list(self.tasks),
            "counts": self.counts,
            "findings": [f.to_json_dict() for f in self.findings],
            "suppressed": [f.fingerprint for f in self.suppressed],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent) + "\n"


def run_profile_rules(profile: TaskProfile,
                      config: LintConfig) -> List[Finding]:
    """Evaluate every enabled profile-scoped rule against one profile.

    This is the unit :class:`~repro.analyzer.parallel.ParallelAnalyzer`
    ships to worker processes — it closes over nothing but the picklable
    config.
    """
    findings: List[Finding] = []
    for r in config.enabled_rules(scope="profile"):
        findings.extend(r.check(profile, config))
    return findings


def run_workflow_rules(profiles: Sequence[TaskProfile],
                       config: LintConfig,
                       summaries=None) -> List[Finding]:
    """Evaluate every enabled workflow-scoped rule over the cross-task
    index.  ``summaries`` may carry pre-computed per-profile digests (from
    parallel workers); missing ones are computed here."""
    rules = config.enabled_rules(scope="workflow")
    if not rules:
        return []
    if summaries is None:
        summaries = [summarize_profile(p, config.page_size)
                     for p in profiles]
    index = build_index(summaries)
    ordering = compute_ordering(profiles)
    findings: List[Finding] = []
    for r in rules:
        findings.extend(r.check(index, ordering, config))
    return findings


def run_race_rules(ctx, config: LintConfig) -> List[Finding]:
    """Evaluate every enabled ``race``-scoped (DY5xx) rule over a
    :class:`~repro.lint.race.RaceContext` — post-hoc or static."""
    findings: List[Finding] = []
    for r in config.enabled_rules(scope="race"):
        findings.extend(r.check(ctx, config))
    return findings


def lint_profiles(profiles: Sequence[TaskProfile],
                  config: Optional[LintConfig] = None,
                  attempts: Optional[Dict[str, int]] = None) -> LintReport:
    """Run all enabled rules over a workflow's task profiles (serially).

    ``attempts`` carries the runner's per-task retry counts (from
    ``WorkflowResult``); only the DY505 retry-race rule consumes it.
    """
    config = config or LintConfig()
    findings: List[Finding] = []
    for p in profiles:
        findings.extend(run_profile_rules(p, config))
    findings.extend(run_workflow_rules(profiles, config))
    if config.enabled_rules(scope="race"):
        from repro.lint.race import build_trace_race_context

        ctx = build_trace_race_context(profiles, config, attempts=attempts)
        findings.extend(run_race_rules(ctx, config))
    findings.sort(key=Finding.sort_key)
    return LintReport(findings=findings,
                      tasks=sorted(p.task for p in profiles))


# ----------------------------------------------------------------------
# Pre-run (contract) and drift linting
# ----------------------------------------------------------------------
def run_contract_rules(ctx, config: LintConfig) -> List[Finding]:
    """Evaluate every enabled ``contract``-scoped (DY40x) rule over a
    pre-run :class:`~repro.lint.predict.StaticContext`."""
    findings: List[Finding] = []
    for r in config.enabled_rules(scope="contract"):
        findings.extend(r.check(ctx, config))
    return findings


def run_perf_rules(ctx, config: LintConfig) -> List[Finding]:
    """Evaluate every enabled ``perf``-scoped (DY60x) rule over a
    pre-run :class:`~repro.lint.cost.CostContext`."""
    findings: List[Finding] = []
    for r in config.enabled_rules(scope="perf"):
        findings.extend(r.check(ctx, config))
    return findings


def run_costdrift_rules(ctx, config: LintConfig) -> List[Finding]:
    """Evaluate every enabled ``costdrift``-scoped (DY65x) rule over a
    :class:`~repro.lint.cost.CostDriftContext`."""
    findings: List[Finding] = []
    for r in config.enabled_rules(scope="costdrift"):
        findings.extend(r.check(ctx, config))
    return findings


def cost_findings(cctx, config: LintConfig,
                  profiles: Optional[Sequence[TaskProfile]] = None
                  ) -> List[Finding]:
    """All cost-prophet findings for one prediction (unsorted).

    Runs the pre-run DY60x rules over ``cctx`` and — when a traced run's
    ``profiles`` are supplied — the DY65x drift rules against it.  One
    call site for CLI, analyzer, and experiments, so every delivery mode
    produces identical findings for identical inputs.
    """
    findings = run_perf_rules(cctx, config)
    if profiles is not None:
        from repro.lint.cost import build_cost_drift_context

        dctx = build_cost_drift_context(cctx.report, profiles)
        findings.extend(run_costdrift_rules(dctx, config))
    return findings


def lint_workflow(workflow, config: Optional[LintConfig] = None,
                  contracts=None, spec=None) -> LintReport:
    """Lint a workflow *definition* — no traces required.

    Extracts (or accepts) access contracts for every task, joins them
    into the static context, and runs the DY40x pre-run rules.  When a
    :class:`~repro.cluster.configs.ClusterSpec` is supplied (``spec``)
    and any ``perf``-scoped rule is enabled, the static cost report is
    built and the DY60x rules run too.
    """
    from repro.lint.predict import build_static_context

    config = config or LintConfig()
    ctx = build_static_context(workflow, contracts)
    findings = run_contract_rules(ctx, config)
    if config.enabled_rules(scope="race"):
        from repro.lint.race import build_static_race_context

        race_ctx = build_static_race_context(ctx, config)
        findings.extend(run_race_rules(race_ctx, config))
    if spec is not None and config.enabled_rules(scope="perf"):
        from repro.lint.cost import CostContext, build_cost_report

        report = build_cost_report(ctx, spec)
        findings.extend(run_perf_rules(
            CostContext(static=ctx, spec=spec, report=report), config))
    findings.sort(key=Finding.sort_key)
    return LintReport(findings=findings,
                      tasks=sorted(t.name for t in workflow.all_tasks()))


def run_drift_rules(summary, contract, config: LintConfig) -> List[Finding]:
    """Evaluate every enabled ``drift``-scoped (DY45x) rule for one task.

    ``summary`` is the task's traced
    :class:`~repro.lint.context.ProfileSummary`; ``contract`` its
    effective :class:`~repro.workflow.contracts.TaskContract` (or None).
    Per-task and picklable — the unit the parallel analyzer shards.
    """
    findings: List[Finding] = []
    for r in config.enabled_rules(scope="drift"):
        findings.extend(r.check(summary, contract, config))
    return findings


def diff_profiles(profiles: Sequence[TaskProfile], contracts,
                  config: Optional[LintConfig] = None,
                  summaries=None) -> LintReport:
    """Join traced profiles against contracts: the drift check (serial).

    ``contracts`` maps task name to its effective contract (see
    :meth:`~repro.lint.static.WorkflowContracts.effective`).
    ``summaries`` may carry pre-computed digests from parallel workers.
    """
    config = config or LintConfig()
    if summaries is None:
        summaries = [summarize_profile(p, config.page_size)
                     for p in profiles]
    findings: List[Finding] = []
    for summary in summaries:
        findings.extend(
            run_drift_rules(summary, contracts.get(summary.task), config))
    findings.sort(key=Finding.sort_key)
    return LintReport(findings=findings,
                      tasks=sorted(s.task for s in summaries))


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------
def parse_baseline(text: str) -> Set[str]:
    """Fingerprints from baseline text (one per line; ``#`` comments)."""
    out: Set[str] = set()
    for line in text.splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            out.add(line)
    return out


def load_baseline(path: str) -> Set[str]:
    with open(path, "r", encoding="utf-8") as fh:
        return parse_baseline(fh.read())


def baseline_text(findings: Iterable[Finding]) -> str:
    """Render findings as a baseline file (sorted, annotated)."""
    lines = ["# dayu-lint baseline: accepted finding fingerprints.",
             "# Regenerate with: dayu-lint <traces> --write-baseline <path>"]
    seen = set()
    for f in sorted(findings, key=Finding.sort_key):
        if f.fingerprint in seen:
            continue
        seen.add(f.fingerprint)
        lines.append(f"{f.fingerprint}  # {f.code} {f.subject}")
    return "\n".join(lines) + "\n"


def save_baseline(path: str, findings: Iterable[Finding]) -> None:
    from repro.ioutil import atomic_write_text

    atomic_write_text(path, baseline_text(findings))
