"""Access summaries the cross-task lint rules are evaluated against.

Hazard (DY2xx) and cross-task semantic (DY1xx) rules never walk raw
profiles directly; they consume one :class:`ObjectAccess` per
``(task, file, data_object)`` triple — a compact, picklable digest of who
touched which bytes of which object, at which layer, when.  Digests are
built per profile (:func:`summarize_profile`), so
:class:`~repro.analyzer.parallel.ParallelAnalyzer` can compute them in the
same worker processes that shard graph construction, and only the small
summaries travel back for the cross-task join.

Two precision tiers, decided per profile:

- **exact** — the profile still carries its per-operation
  :class:`~repro.vfd.tracing.VfdIoRecord` list; raw-data byte extents and
  operation times come straight from the records.
- **approximate** — records were dropped (``with_io_records=False`` loads
  or ``trace_io=False`` captures); the digest falls back to the joined
  :class:`~repro.mapper.stats.DatasetIoStats` rows, whose page-granular
  region runs bound the extents and whose read/write raw split is inferred
  conservatively (a mixed read+write row counts as both).  Byte-precise
  rules (DY204 overlap discrimination, DY303/DY305 record reconciliation)
  degrade or skip on approximate digests rather than guess.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.analyzer.ordering import dependency_dag, find_dependency_cycle
from repro.mapper.mapper import TaskProfile
from repro.mapper.stats import FILE_METADATA_OBJECT
from repro.vfd.base import IoClass

__all__ = [
    "ObjectAccess",
    "ProfileSummary",
    "WorkflowIndex",
    "OrderingInfo",
    "merge_extents",
    "extents_overlap",
    "summarize_profile",
    "build_index",
    "compute_ordering",
]


def merge_extents(extents: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sorted, disjoint union of half-open byte intervals ``[lo, hi)``."""
    out: List[Tuple[int, int]] = []
    for lo, hi in sorted(e for e in extents if e[1] > e[0]):
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def extents_overlap(
    a: Sequence[Tuple[int, int]], b: Sequence[Tuple[int, int]]
) -> Optional[Tuple[int, int]]:
    """First overlapping byte range between two merged extent lists."""
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            return (lo, hi)
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return None


@dataclass
class ObjectAccess:
    """One task's raw-data interaction with one data object.

    ``vol_*`` fields carry the VOL (semantic) layer's accounting for the
    same object, so rules can cross-check the two layers.  Extents are
    merged half-open byte intervals; on approximate digests they are page
    bounds, not exact bytes (``exact`` is False then).
    """

    task: str
    file: str
    data_object: str
    raw_reads: int = 0
    raw_writes: int = 0
    raw_read_bytes: int = 0
    raw_write_bytes: int = 0
    first_raw_read: Optional[float] = None
    first_raw_write: Optional[float] = None
    last_raw_read: Optional[float] = None
    last_raw_write: Optional[float] = None
    read_extents: List[Tuple[int, int]] = field(default_factory=list)
    write_extents: List[Tuple[int, int]] = field(default_factory=list)
    #: Object-scoped metadata traffic (resize/attribute/shape queries) —
    #: a task with ``meta_writes`` but no raw writes is a pure metadata
    #: mutator (the DY503 subject).  Approximate digests infer these from
    #: pure-metadata stats rows.
    meta_reads: int = 0
    meta_writes: int = 0
    #: Dataset *definitions* (dataless creates) — metadata production,
    #: not mutation; kept apart so creators never read as DY503
    #: mutators.  Only the static (contract-synthesized) digests can
    #: distinguish these; traced metadata records fold them into
    #: ``meta_writes``, where the creator's file-metadata writes order
    #: it against readers in the dependency DAG instead.
    meta_creates: int = 0
    first_meta_write: Optional[float] = None
    vol_reads: int = 0
    vol_writes: int = 0
    vol_elements_read: int = 0
    vol_elements_written: int = 0
    #: Storage layout the VOL layer recorded for the object ("" if the
    #: task's trace never captured it).
    layout: str = ""
    exact: bool = True

    @property
    def raw_read(self) -> bool:
        return self.raw_reads > 0

    @property
    def raw_written(self) -> bool:
        return self.raw_writes > 0


@dataclass
class ProfileSummary:
    """Digest of one task profile for the cross-task rules."""

    task: str
    start: float
    end: float
    #: (file, data_object) -> ObjectAccess, File-Metadata excluded.
    objects: Dict[Tuple[str, str], ObjectAccess] = field(default_factory=dict)
    #: Files this task wrote at all (any class — marks in-workflow files).
    files_written: Set[str] = field(default_factory=set)
    exact: bool = True


def _summary_from_records(profile: TaskProfile,
                          summary: ProfileSummary) -> None:
    for rec in profile.io_records:
        if rec.op == "write":
            summary.files_written.add(rec.file)
        obj = rec.data_object
        if obj is None or obj == FILE_METADATA_OBJECT:
            continue
        key = (rec.file, obj)
        acc = summary.objects.get(key)
        if acc is None:
            acc = ObjectAccess(task=profile.task, file=rec.file,
                               data_object=obj)
            summary.objects[key] = acc
        if rec.access_type is not IoClass.RAW:
            # Object-scoped metadata traffic (resize updates the shape
            # message, shape queries read it) — tracked for DY503.
            if rec.op == "write":
                acc.meta_writes += 1
                if acc.first_meta_write is None or \
                        rec.start < acc.first_meta_write:
                    acc.first_meta_write = rec.start
            else:
                acc.meta_reads += 1
            continue
        extent = (rec.offset, rec.offset + rec.nbytes)
        if rec.op == "read":
            acc.raw_reads += 1
            acc.raw_read_bytes += rec.nbytes
            acc.read_extents.append(extent)
            if acc.first_raw_read is None or rec.start < acc.first_raw_read:
                acc.first_raw_read = rec.start
            if acc.last_raw_read is None or rec.start > acc.last_raw_read:
                acc.last_raw_read = rec.start
        else:
            acc.raw_writes += 1
            acc.raw_write_bytes += rec.nbytes
            acc.write_extents.append(extent)
            if acc.first_raw_write is None or rec.start < acc.first_raw_write:
                acc.first_raw_write = rec.start
            if acc.last_raw_write is None or rec.start > acc.last_raw_write:
                acc.last_raw_write = rec.start


def _summary_from_stats(profile: TaskProfile, summary: ProfileSummary,
                        page_size: int) -> None:
    """Conservative fallback when per-operation records are unavailable.

    The joined stats don't split raw operations by direction, so a mixed
    read+write row is assumed to have done both kinds of raw access, and
    byte extents are widened to the page runs of the region histogram.
    """
    summary.exact = False
    for s in profile.dataset_stats:
        if s.writes:
            summary.files_written.add(s.file)
        if s.data_object == FILE_METADATA_OBJECT:
            continue
        if s.data_ops == 0:
            # Pure-metadata row: no raw traffic, but resize/lookup
            # activity against the object is still DY503-relevant.
            if s.metadata_ops and (s.reads or s.writes):
                acc = ObjectAccess(task=profile.task, file=s.file,
                                   data_object=s.data_object, exact=False)
                acc.meta_reads = s.reads
                acc.meta_writes = s.writes
                if s.writes:
                    acc.first_meta_write = s.first_start
                summary.objects[(s.file, s.data_object)] = acc
            continue
        acc = ObjectAccess(task=profile.task, file=s.file,
                           data_object=s.data_object, exact=False)
        page_extents = [
            (first * page_size, (last + 1) * page_size)
            for first, last, _ in s.region_runs()
        ]
        reads_raw = s.reads > 0
        writes_raw = s.writes > 0
        if reads_raw and writes_raw and s.data_ops == 1:
            # A single raw op can't be both; trust the recorded first kind.
            reads_raw = s.first_raw_op == "read"
            writes_raw = s.first_raw_op == "write"
        if reads_raw:
            acc.raw_reads = max(s.data_ops - (1 if writes_raw else 0), 1)
            acc.raw_read_bytes = s.bytes_read
            acc.first_raw_read = s.first_start
            acc.last_raw_read = s.last_end
            acc.read_extents = list(page_extents)
        if writes_raw:
            acc.raw_writes = max(s.data_ops - (1 if reads_raw else 0), 1)
            acc.raw_write_bytes = s.bytes_written
            acc.first_raw_write = s.first_start
            acc.last_raw_write = s.last_end
            acc.write_extents = list(page_extents)
        if acc.raw_reads or acc.raw_writes:
            summary.objects[(s.file, s.data_object)] = acc


def summarize_profile(profile: TaskProfile,
                      page_size: int = 4096) -> ProfileSummary:
    """Build the cross-task digest of one profile (see module docstring)."""
    summary = ProfileSummary(
        task=profile.task, start=profile.span.start, end=profile.span.end)
    if profile.io_records:
        _summary_from_records(profile, summary)
        # Metadata-only writers (e.g. a task that created datasets without
        # writing data) still mark the file as produced in-workflow.
        for s in profile.dataset_stats:
            if s.writes:
                summary.files_written.add(s.file)
    else:
        _summary_from_stats(profile, summary, page_size)
    for op in profile.object_profiles:
        key = (op.file, op.object_name)
        acc = summary.objects.get(key)
        if acc is None and (op.reads or op.writes):
            acc = ObjectAccess(task=profile.task, file=op.file,
                               data_object=op.object_name,
                               exact=summary.exact)
            summary.objects[key] = acc
        if acc is not None:
            acc.vol_reads += op.reads
            acc.vol_writes += op.writes
            acc.vol_elements_read += op.elements_read
            acc.vol_elements_written += op.elements_written
            if op.layout:
                acc.layout = op.layout
    for acc in summary.objects.values():
        acc.read_extents = merge_extents(acc.read_extents)
        acc.write_extents = merge_extents(acc.write_extents)
    return summary


@dataclass
class WorkflowIndex:
    """The cross-task join: every task's digest, grouped per object."""

    summaries: List[ProfileSummary]
    #: (file, data_object) -> accesses by task, in task-digest order.
    by_object: Dict[Tuple[str, str], List[ObjectAccess]]
    #: file -> tasks that wrote it at all (any I/O class).
    file_writers: Dict[str, Set[str]]
    exact: bool

    def tasks(self) -> List[str]:
        return [s.task for s in self.summaries]


class OrderingInfo:
    """Happens-before oracle over the trace-derived dependency DAG.

    Reachability (computed lazily per source task and memoised) is the
    hazard rules' definition of ordering: two tasks with no directed path
    between them in either direction are concurrent as far as the traces
    can prove, and conflicting accesses between them are races.
    """

    def __init__(self, dag: "nx.DiGraph", cycle: Sequence[str] = ()):
        self.dag = dag
        #: Tasks forming a dependency cycle, empty when the graph is a DAG.
        self.cycle: List[str] = list(cycle)
        self._desc: Dict[str, Set[str]] = {}

    def descendants(self, task: str) -> Set[str]:
        if task not in self._desc:
            if task in self.dag:
                self._desc[task] = set(nx.descendants(self.dag, task))
            else:
                self._desc[task] = set()
        return self._desc[task]

    def ordered(self, a: str, b: str) -> bool:
        """True when a happens-before path exists in either direction."""
        return b in self.descendants(a) or a in self.descendants(b)


def compute_ordering(profiles: Sequence[TaskProfile]) -> OrderingInfo:
    """Build the happens-before oracle (and note any dependency cycle)."""
    dag = dependency_dag(profiles)
    return OrderingInfo(dag, find_dependency_cycle(dag))


def build_index(summaries: Sequence[ProfileSummary]) -> WorkflowIndex:
    by_object: Dict[Tuple[str, str], List[ObjectAccess]] = defaultdict(list)
    file_writers: Dict[str, Set[str]] = defaultdict(set)
    for summary in summaries:
        for key, acc in summary.objects.items():
            by_object[key].append(acc)
        for file in summary.files_written:
            file_writers[file].add(summary.task)
    return WorkflowIndex(
        summaries=list(summaries),
        by_object=dict(by_object),
        file_writers=dict(file_writers),
        exact=all(s.exact for s in summaries),
    )
