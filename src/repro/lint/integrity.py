"""DY3xx — trace-integrity rules (the trace sanitizer).

Unlike DY1xx/DY2xx, a DY3xx finding does not indict the *workflow*; it
indicts the *trace*.  The two capture layers record the same execution
independently — the VOL tracer counts elements through the object API,
the VFD tracer counts bytes through the file driver, the session tracker
brackets both — so a healthy profile satisfies a web of cross-layer
invariants.  A violation means the profile is internally inconsistent
(truncated, hand-edited, or produced by a buggy tracer build) and every
downstream analysis over it is suspect.

All DY3xx rules are profile-scoped: each profile is checked in
isolation, so the sanitizer shards perfectly across
:class:`~repro.analyzer.parallel.ParallelAnalyzer` workers.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.rules import LintConfig, rule
from repro.mapper.mapper import TaskProfile
from repro.mapper.stats import FILE_METADATA_OBJECT, _coalesce_runs
from repro.vfd.base import IoClass

__all__ = []  # rules register themselves; nothing to import by name

#: Slack for floating-point clock comparisons.
_EPS = 1e-9


def _vol_totals(profile: TaskProfile) -> Dict[Tuple[str, str], dict]:
    """Aggregate VOL object profiles per (file, object)."""
    out: Dict[Tuple[str, str], dict] = {}
    for op in profile.object_profiles:
        agg = out.setdefault((op.file, op.object_name), {
            "elements_read": 0, "elements_written": 0,
            "reads": 0, "writes": 0,
            "nbytes": 0, "shape": None, "dtype": "", "layout": "",
        })
        agg["elements_read"] += op.elements_read
        agg["elements_written"] += op.elements_written
        agg["reads"] += op.reads
        agg["writes"] += op.writes
        agg["nbytes"] = max(agg["nbytes"], op.nbytes or 0)
        if op.shape:
            agg["shape"] = tuple(op.shape)
        if op.dtype:
            agg["dtype"] = op.dtype
        if op.layout:
            agg["layout"] = op.layout
    return out


def _stats_by_object(profile: TaskProfile):
    return {(s.file, s.data_object): s for s in profile.dataset_stats}


@rule("DY301", "vol-vfd-mismatch", Severity.ERROR, "profile",
      "The VOL (semantic) and VFD (byte) layers disagree about a dataset: "
      "one layer recorded traffic the other never saw, or a full logical "
      "write moved fewer bytes than the dataset holds.")
def _vol_vfd_mismatch(profile: TaskProfile,
                      config: LintConfig) -> Iterator[Finding]:
    stats = _stats_by_object(profile)
    vol = _vol_totals(profile)
    raw_write_bytes: Dict[Tuple[str, str], int] = defaultdict(int)
    for rec in profile.io_records:
        if (rec.op == "write" and rec.access_type is IoClass.RAW
                and rec.data_object):
            raw_write_bytes[(rec.file, rec.data_object)] += rec.nbytes

    for (file, obj), agg in sorted(vol.items()):
        row = stats.get((file, obj))
        if agg["elements_written"] > 0 and (row is None or row.writes == 0):
            yield Finding(
                code="DY301", rule="vol-vfd-mismatch",
                severity=Severity.ERROR,
                subject=f"{file}:{obj}",
                tasks=(profile.task,),
                message=(
                    f"VOL layer recorded {agg['elements_written']} elements "
                    f"written to {obj} in {file}, but the VFD layer saw no "
                    "write operations for the object"),
                evidence={"vol_elements_written": agg["elements_written"],
                          "vfd_writes": 0 if row is None else row.writes},
            )
        if agg["elements_read"] > 0 and (row is None or row.reads == 0):
            yield Finding(
                code="DY301", rule="vol-vfd-mismatch",
                severity=Severity.ERROR,
                subject=f"{file}:{obj}",
                tasks=(profile.task,),
                message=(
                    f"VOL layer recorded {agg['elements_read']} elements "
                    f"read from {obj} in {file}, but the VFD layer saw no "
                    "read operations for the object"),
                evidence={"vol_elements_read": agg["elements_read"],
                          "vfd_reads": 0 if row is None else row.reads},
            )
        # Byte-magnitude reconciliation where it is airtight: a contiguous
        # layout has no filter pipeline (no compression), so a full logical
        # write must move at least the dataset's size through the VFD.
        if (profile.io_records and agg["layout"] == "contiguous"
                and agg["shape"] and agg["nbytes"]
                and not agg["dtype"].startswith("vlen")):
            n_elements = math.prod(agg["shape"])
            if (n_elements > 0
                    and agg["elements_written"] >= n_elements
                    and raw_write_bytes[(file, obj)] < agg["nbytes"]):
                yield Finding(
                    code="DY301", rule="vol-vfd-mismatch",
                    severity=Severity.ERROR,
                    subject=f"{file}:{obj}",
                    tasks=(profile.task,),
                    message=(
                        f"VOL layer recorded a full write of {obj} in "
                        f"{file} ({agg['elements_written']} elements, "
                        f"{agg['nbytes']} B dataset), but raw VFD writes "
                        f"moved only {raw_write_bytes[(file, obj)]} B"),
                    evidence={
                        "dataset_bytes": agg["nbytes"],
                        "raw_write_bytes": raw_write_bytes[(file, obj)],
                        "vol_elements_written": agg["elements_written"],
                    },
                )

    for (file, obj), row in sorted(stats.items()):
        if obj == FILE_METADATA_OBJECT:
            continue
        if row.data_ops > 0 and (file, obj) not in vol:
            yield Finding(
                code="DY301", rule="vol-vfd-mismatch",
                severity=Severity.ERROR,
                subject=f"{file}:{obj}",
                tasks=(profile.task,),
                message=(
                    f"VFD layer moved {row.data_bytes} B of raw data for "
                    f"{obj} in {file}, but the VOL layer has no record of "
                    "the object being accessed"),
                evidence={"vfd_data_ops": row.data_ops,
                          "vfd_data_bytes": row.data_bytes},
            )


@rule("DY302", "invalid-extent", Severity.ERROR, "profile",
      "An operation record or region histogram is malformed: negative "
      "sizes or offsets, inverted or overlapping page runs, negative "
      "counters.")
def _invalid_extent(profile: TaskProfile,
                    config: LintConfig) -> Iterator[Finding]:
    for i, rec in enumerate(profile.io_records):
        problems = []
        if rec.nbytes < 0:
            problems.append(f"nbytes={rec.nbytes}")
        if rec.offset < 0:
            problems.append(f"offset={rec.offset}")
        if rec.duration < 0:
            problems.append(f"duration={rec.duration}")
        if problems:
            yield Finding(
                code="DY302", rule="invalid-extent",
                severity=Severity.ERROR,
                subject=f"{rec.file}:{rec.data_object or FILE_METADATA_OBJECT}",
                tasks=(profile.task,),
                message=(
                    f"I/O record #{i} ({rec.op} of {rec.file}) carries "
                    f"invalid fields: {', '.join(problems)}"),
                evidence={"record_index": i, "problems": problems},
            )
    for s in profile.dataset_stats:
        subject = f"{s.file}:{s.data_object}"
        negatives = {
            name: value
            for name, value in (
                ("reads", s.reads), ("writes", s.writes),
                ("bytes_read", s.bytes_read),
                ("bytes_written", s.bytes_written),
                ("data_ops", s.data_ops), ("data_bytes", s.data_bytes),
                ("metadata_ops", s.metadata_ops),
                ("metadata_bytes", s.metadata_bytes),
            ) if value < 0
        }
        if negatives:
            yield Finding(
                code="DY302", rule="invalid-extent",
                severity=Severity.ERROR,
                subject=subject, tasks=(profile.task,),
                message=(f"joined statistics for {s.data_object} in "
                         f"{s.file} carry negative counters: "
                         f"{sorted(negatives)}"),
                evidence={"negative_counters": negatives},
            )
        prev_last: Optional[int] = None
        for first, last, count in s.region_runs():
            if first < 0 or last < first or count <= 0 or (
                    prev_last is not None and first <= prev_last):
                yield Finding(
                    code="DY302", rule="invalid-extent",
                    severity=Severity.ERROR,
                    subject=subject, tasks=(profile.task,),
                    message=(
                        f"region histogram of {s.data_object} in {s.file} "
                        f"contains a malformed run (pages {first}..{last}, "
                        f"count {count})"),
                    evidence={"run": [first, last, count]},
                )
                break
            prev_last = last


@rule("DY303", "orphan-region", Severity.ERROR, "profile",
      "The page-region histogram and the operation stream disagree: "
      "operations without regions, regions without operations, or (when "
      "per-operation records are available) runs that don't re-derive "
      "from the records.")
def _orphan_region(profile: TaskProfile,
                   config: LintConfig) -> Iterator[Finding]:
    per_object_runs: Dict[Tuple[str, str], List[Tuple[int, int, int]]] = (
        defaultdict(list))
    if profile.io_records:
        for rec in profile.io_records:
            obj = rec.data_object or FILE_METADATA_OBJECT
            first, last = rec.region(config.page_size)
            per_object_runs[(rec.file, obj)].append((first, last, 1))

    for s in profile.dataset_stats:
        subject = f"{s.file}:{s.data_object}"
        runs = s.region_runs()
        touches = sum((last - first + 1) * count for first, last, count in runs)
        if s.access_count > 0 and not runs:
            yield Finding(
                code="DY303", rule="orphan-region",
                severity=Severity.ERROR,
                subject=subject, tasks=(profile.task,),
                message=(
                    f"{s.access_count} operations were recorded against "
                    f"{s.data_object} in {s.file}, but its region "
                    "histogram is empty"),
                evidence={"access_count": s.access_count},
            )
            continue
        if s.access_count == 0 and runs:
            yield Finding(
                code="DY303", rule="orphan-region",
                severity=Severity.ERROR,
                subject=subject, tasks=(profile.task,),
                message=(
                    f"region histogram of {s.data_object} in {s.file} "
                    f"covers {touches} page touches, but no operations "
                    "were recorded against the object"),
                evidence={"page_touches": touches},
            )
            continue
        if runs and touches < s.access_count:
            # Every operation touches at least one page.
            yield Finding(
                code="DY303", rule="orphan-region",
                severity=Severity.ERROR,
                subject=subject, tasks=(profile.task,),
                message=(
                    f"region histogram of {s.data_object} in {s.file} "
                    f"accounts for {touches} page touches but "
                    f"{s.access_count} operations were recorded"),
                evidence={"page_touches": touches,
                          "access_count": s.access_count},
            )
            continue
        if profile.io_records:
            expected = _coalesce_runs(
                per_object_runs.get((s.file, s.data_object), []))
            if expected != runs:
                yield Finding(
                    code="DY303", rule="orphan-region",
                    severity=Severity.ERROR,
                    subject=subject, tasks=(profile.task,),
                    message=(
                        f"region histogram of {s.data_object} in {s.file} "
                        "does not re-derive from its operation records at "
                        f"page size {config.page_size} (use --page-size to "
                        "match the recording granularity)"),
                    evidence={"stored_runs": [list(r) for r in runs[:8]],
                              "derived_runs": [list(r)
                                               for r in expected[:8]]},
                )


@rule("DY304", "time-travel", Severity.ERROR, "profile",
      "A timestamp escapes its enclosing interval: operations outside "
      "their task's span, sessions that close before they open, "
      "statistics whose active window is inverted.")
def _time_travel(profile: TaskProfile,
                 config: LintConfig) -> Iterator[Finding]:
    span = profile.span
    for i, rec in enumerate(profile.io_records):
        if rec.start < span.start - _EPS or rec.end > span.end + _EPS:
            yield Finding(
                code="DY304", rule="time-travel",
                severity=Severity.ERROR,
                subject=f"{rec.file}:{rec.data_object or FILE_METADATA_OBJECT}",
                tasks=(profile.task,),
                message=(
                    f"I/O record #{i} ({rec.op} of {rec.file}) runs "
                    f"[{rec.start:.6f}, {rec.end:.6f}] outside the task "
                    f"window [{span.start:.6f}, {span.end:.6f}]"),
                evidence={"record_index": i,
                          "record": [rec.start, rec.end],
                          "task_span": [span.start, span.end]},
            )
    for sess in profile.file_sessions:
        bad = (sess.open_time < span.start - _EPS
               or (sess.close_time is not None
                   and (sess.close_time > span.end + _EPS
                        or sess.close_time < sess.open_time - _EPS)))
        if bad:
            yield Finding(
                code="DY304", rule="time-travel",
                severity=Severity.ERROR,
                subject=sess.file, tasks=(profile.task,),
                message=(
                    f"file session of {sess.file} "
                    f"[{sess.open_time:.6f}, {sess.close_time}] escapes "
                    f"the task window [{span.start:.6f}, {span.end:.6f}] "
                    "or closes before it opens"),
                evidence={"open_time": sess.open_time,
                          "close_time": sess.close_time,
                          "task_span": [span.start, span.end]},
            )
    for s in profile.dataset_stats:
        if s.first_start is None or s.last_end is None:
            continue
        if (s.first_start > s.last_end + _EPS
                or s.first_start < span.start - _EPS
                or s.last_end > span.end + _EPS):
            yield Finding(
                code="DY304", rule="time-travel",
                severity=Severity.ERROR,
                subject=f"{s.file}:{s.data_object}", tasks=(profile.task,),
                message=(
                    f"active window of {s.data_object} in {s.file} "
                    f"[{s.first_start:.6f}, {s.last_end:.6f}] is inverted "
                    f"or escapes the task window "
                    f"[{span.start:.6f}, {span.end:.6f}]"),
                evidence={"window": [s.first_start, s.last_end],
                          "task_span": [span.start, span.end]},
            )


@rule("DY305", "session-accounting", Severity.ERROR, "profile",
      "Per-operation records exceed what the session tracker accounted "
      "for a file, or occur in a file with no recorded session at all.")
def _session_accounting(profile: TaskProfile,
                        config: LintConfig) -> Iterator[Finding]:
    if not profile.io_records:
        return
    session_ops: Dict[str, Dict[str, int]] = defaultdict(
        lambda: {"read_ops": 0, "write_ops": 0,
                 "read_bytes": 0, "write_bytes": 0, "sessions": 0})
    for sess in profile.file_sessions:
        agg = session_ops[sess.file]
        agg["read_ops"] += sess.read_ops
        agg["write_ops"] += sess.write_ops
        agg["read_bytes"] += sess.read_bytes
        agg["write_bytes"] += sess.write_bytes
        agg["sessions"] += 1
    record_ops: Dict[str, Dict[str, int]] = defaultdict(
        lambda: {"read_ops": 0, "write_ops": 0,
                 "read_bytes": 0, "write_bytes": 0})
    for rec in profile.io_records:
        agg = record_ops[rec.file]
        if rec.op == "read":
            agg["read_ops"] += 1
            agg["read_bytes"] += rec.nbytes
        else:
            agg["write_ops"] += 1
            agg["write_bytes"] += rec.nbytes
    for file in sorted(record_ops):
        recs = record_ops[file]
        sess = session_ops.get(file)
        if sess is None or sess["sessions"] == 0:
            yield Finding(
                code="DY305", rule="session-accounting",
                severity=Severity.ERROR,
                subject=file, tasks=(profile.task,),
                message=(
                    f"{recs['read_ops'] + recs['write_ops']} I/O records "
                    f"target {file}, but no file session was ever "
                    "recorded for it"),
                evidence={"records": recs},
            )
            continue
        over = {
            key: (recs[key], sess[key])
            for key in ("read_ops", "write_ops", "read_bytes", "write_bytes")
            if recs[key] > sess[key]
        }
        if over:
            # Sessions count every operation; records may be subsampled
            # (skip_ops) but can never exceed the session totals.
            yield Finding(
                code="DY305", rule="session-accounting",
                severity=Severity.ERROR,
                subject=file, tasks=(profile.task,),
                message=(
                    f"I/O records for {file} exceed the session tracker's "
                    f"accounting ({', '.join(f'{k}: {r} > {s}' for k, (r, s) in sorted(over.items()))})"),
                evidence={"exceeded": {k: list(v)
                                       for k, v in over.items()}},
            )
