"""Typed lint findings with stable codes and fingerprints.

A :class:`Finding` is the unit of ``repro.lint`` output: one rule
violation, carrying the rule's stable code (``DY1xx`` semantic
anti-pattern, ``DY2xx`` dataflow hazard, ``DY3xx`` trace-integrity
violation), a severity, the subject (file path, ``file:dataset`` pair, or
task pair), the tasks involved, and machine-readable evidence.

Findings are plain data — picklable (so profile-scoped rules can run in
:class:`~repro.analyzer.parallel.ParallelAnalyzer` worker processes) and
deterministic: :meth:`Finding.fingerprint` hashes only the stable identity
(code, subject, tasks), never timestamps or volumes, so a baseline file
keeps suppressing the same finding across re-runs of the same workflow.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Severity", "Finding"]


class Severity(str, enum.Enum):
    """Lint severity levels (mapped 1:1 onto SARIF result levels)."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        """Orderable weight: errors outrank warnings outrank notes."""
        return {"error": 2, "warning": 1, "note": 0}[self.value]


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        code: Stable rule code (``"DY203"``); never reused for a different
            meaning once shipped.
        rule: Short rule name (``"unordered-double-write"``).
        severity: :class:`Severity`.
        message: Human-readable explanation with the concrete names/numbers.
        subject: What the finding is about — a file, ``file:dataset``, or
            task pair.  Part of the stable fingerprint.
        tasks: Tasks involved, in a rule-defined (deterministic) order.
        evidence: Machine-readable supporting values (JSON-compatible).
        location: Optional artifact URI (the offending trace file) for
            SARIF consumers; not part of the fingerprint.
    """

    code: str
    rule: str
    severity: Severity
    message: str
    subject: str
    tasks: Tuple[str, ...] = ()
    evidence: Dict[str, object] = field(default_factory=dict)
    location: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        """Stable identity hash for baseline suppression.

        Covers code, subject, and the sorted task set — not message text,
        evidence numbers, or locations, which may legitimately drift
        between otherwise-identical runs.
        """
        key = "|".join([self.code, self.subject, *sorted(self.tasks)])
        return hashlib.sha256(key.encode()).hexdigest()[:16]

    def sort_key(self) -> Tuple:
        """Deterministic report order: severity first, then code/subject."""
        return (-self.severity.rank, self.code, self.subject, self.tasks)

    def to_json_dict(self) -> dict:
        return {
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "subject": self.subject,
            "tasks": list(self.tasks),
            "evidence": self.evidence,
            "location": self.location,
            "fingerprint": self.fingerprint,
        }

    def __str__(self) -> str:
        tasks = ", ".join(self.tasks) if self.tasks else "-"
        return (f"{self.code} [{self.severity.value}] {self.subject} "
                f"(tasks: {tasks}) — {self.message}")
