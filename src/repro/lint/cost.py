"""Static cost prophet: price a workflow's I/O before it runs.

DaYu's thesis is that decoded dataflow semantics should *drive*
optimization, not just explain a finished run.  This module joins the
three static artifacts the repo already has —

- the predicted SDG (:mod:`repro.lint.predict`): which task moves how
  many bytes into which dataset, from contracts alone;
- the calibrated device models (:mod:`repro.storage.devices`): what a
  byte costs on NVMe vs. NFS vs. BeeGFS, with contention;
- a cluster topology (:class:`repro.cluster.configs.ClusterSpec`):
  which device a path lands on and whether it is node-local —

into a :class:`CostReport`: per-task I/O seconds, per-edge transfer
volumes, per-stage walls, and the predicted critical path, entirely
pre-run.  The DY6xx rules (:mod:`repro.lint.perf`) read the report to
convict performance hazards; the greedy locality solver
(:mod:`repro.optimizer.placement`) re-invokes :func:`build_cost_report`
under trial placements to search for a better one; and the DY65x drift
rules compare the prediction against a traced run, so mispredictions
are themselves findings (mirroring DY45x contract drift).

The model is deliberately linear — latency per op plus bytes over
bandwidth, scaled by the same contention factor the simulated devices
charge — which makes its laws testable: cost is monotone in bytes,
additive over serial batches, and the critical path is a lower bound on
any legal schedule's makespan (see ``tests/test_cost_lint.py``).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.cluster.configs import ClusterSpec
from repro.lint.predict import StaticContext, access_bytes, build_static_context
from repro.mapper.mapper import TaskProfile
from repro.storage.devices import DEVICE_CATALOG, predicted_cost
from repro.workflow.contracts import ContractAccess
from repro.workflow.model import Workflow

__all__ = [
    "COST_SCHEMA",
    "TaskCost",
    "EdgeCost",
    "StageCost",
    "DatasetTraffic",
    "CostReport",
    "CostContext",
    "CostDriftContext",
    "build_cost_report",
    "build_cost_context",
    "build_cost_drift_context",
    "critical_path",
    "schedule_makespan",
    "round_robin_placement",
]

#: Versioned schema tag for serialized cost reports.
COST_SCHEMA = "dayu-cost/v1"


@dataclass(frozen=True)
class DatasetKeyCost:
    """One task's predicted cost against one ``(file, dataset)``."""

    file: str
    dataset: str
    ops: int
    volume: int
    io_seconds: float
    latency_seconds: float


@dataclass
class TaskCost:
    """Predicted cost breakdown for one task.

    ``latency_seconds`` is the per-operation latency share of
    ``io_seconds`` (contention included) — when it dominates, the task
    is paying for operation *count*, not volume: the small-I/O
    amplification signature DY601 looks for.
    """

    task: str
    stage: str
    stage_index: int
    node: str
    compute_seconds: float = 0.0
    read_ops: int = 0
    read_bytes: int = 0
    write_ops: int = 0
    write_bytes: int = 0
    io_seconds: float = 0.0
    latency_seconds: float = 0.0
    datasets: List[DatasetKeyCost] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.io_seconds


@dataclass(frozen=True)
class EdgeCost:
    """A producer → consumer dataset hand-off and its predicted price.

    ``seconds`` is what the *consumer* is predicted to pay reading the
    dataset at its placed concurrency; ``cross_node`` marks hand-offs
    where producer and consumer land on different nodes (the traffic a
    locality placement could eliminate — the paper's fig11 insight).
    """

    producer: str
    consumer: str
    file: str
    dataset: str
    volume: int
    seconds: float
    cross_node: bool


@dataclass(frozen=True)
class StageCost:
    """Predicted wall seconds for one stage under the stage barrier."""

    name: str
    index: int
    parallel: bool
    wall_seconds: float
    tasks: Tuple[str, ...]


@dataclass
class DatasetTraffic:
    """Aggregate read traffic against one dataset, as placed."""

    file: str
    dataset: str
    path: str
    device: str
    shared: bool
    read_ops: int = 0
    bytes_read: int = 0
    readers: Tuple[str, ...] = ()


@dataclass
class CostReport:
    """The full pre-run cost picture of one workflow on one cluster."""

    workflow: str
    cluster: str
    n_nodes: int
    tasks: Dict[str, TaskCost]
    stages: List[StageCost]
    edges: List[EdgeCost]
    dataset_traffic: Dict[Tuple[str, str], DatasetTraffic]
    critical_path: List[str]
    critical_path_seconds: float
    makespan_seconds: float
    placement: Dict[str, str]
    file_placement: Dict[str, str]

    def to_json_dict(self) -> dict:
        """Deterministic, diff-stable JSON form (sorted, rounded)."""
        r = lambda x: round(x, 9)  # noqa: E731 - local shorthand
        return {
            "schema": COST_SCHEMA,
            "workflow": self.workflow,
            "cluster": self.cluster,
            "n_nodes": self.n_nodes,
            "makespan_seconds": r(self.makespan_seconds),
            "critical_path": list(self.critical_path),
            "critical_path_seconds": r(self.critical_path_seconds),
            "placement": dict(sorted(self.placement.items())),
            "file_placement": dict(sorted(self.file_placement.items())),
            "tasks": {
                name: {
                    "stage": t.stage,
                    "stage_index": t.stage_index,
                    "node": t.node,
                    "compute_seconds": r(t.compute_seconds),
                    "read_ops": t.read_ops,
                    "read_bytes": t.read_bytes,
                    "write_ops": t.write_ops,
                    "write_bytes": t.write_bytes,
                    "io_seconds": r(t.io_seconds),
                    "latency_seconds": r(t.latency_seconds),
                    "total_seconds": r(t.total_seconds),
                    "datasets": [
                        {
                            "file": d.file,
                            "dataset": d.dataset,
                            "ops": d.ops,
                            "volume": d.volume,
                            "io_seconds": r(d.io_seconds),
                            "latency_seconds": r(d.latency_seconds),
                        }
                        for d in sorted(t.datasets,
                                        key=lambda d: (d.file, d.dataset))
                    ],
                }
                for name, t in sorted(self.tasks.items())
            },
            "stages": [
                {
                    "name": s.name,
                    "index": s.index,
                    "parallel": s.parallel,
                    "wall_seconds": r(s.wall_seconds),
                    "tasks": list(s.tasks),
                }
                for s in self.stages
            ],
            "edges": [
                {
                    "producer": e.producer,
                    "consumer": e.consumer,
                    "file": e.file,
                    "dataset": e.dataset,
                    "volume": e.volume,
                    "seconds": r(e.seconds),
                    "cross_node": e.cross_node,
                }
                for e in sorted(
                    self.edges,
                    key=lambda e: (e.producer, e.consumer, e.file, e.dataset))
            ],
            "dataset_traffic": [
                {
                    "file": t.file,
                    "dataset": t.dataset,
                    "path": t.path,
                    "device": t.device,
                    "shared": t.shared,
                    "read_ops": t.read_ops,
                    "bytes_read": t.bytes_read,
                    "readers": list(t.readers),
                }
                for _, t in sorted(self.dataset_traffic.items())
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=False)

    def save(self, path: str) -> None:
        from repro.ioutil import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")


@dataclass
class CostContext:
    """What the DY6xx ``perf`` rules evaluate."""

    static: StaticContext
    spec: ClusterSpec
    report: CostReport


@dataclass
class CostDriftContext:
    """Prediction vs. one traced run — what the DY65x rules evaluate."""

    report: CostReport
    actual_durations: Dict[str, float]
    #: ``task -> (bytes_read, bytes_written)`` summed over its datasets.
    actual_bytes: Dict[str, Tuple[int, int]]
    actual_makespan: float


# ----------------------------------------------------------------------
# Building the report
# ----------------------------------------------------------------------
def round_robin_placement(workflow: Workflow,
                          nodes: Sequence[str]) -> Dict[str, str]:
    """The default placement: what
    :class:`~repro.workflow.scheduler.RoundRobinScheduler` would do —
    per stage, task *i* lands on ``nodes[i % len(nodes)]``."""
    placement: Dict[str, str] = {}
    for stage in workflow.stages:
        for i, task in enumerate(stage.tasks):
            placement[task.name] = nodes[i % len(nodes)]
    return placement


def _charge(spec_dev, a: ContractAccess, concurrency: int
            ) -> Tuple[int, int, int, int, float, float]:
    """``(read_ops, read_bytes, write_ops, write_bytes, io, latency)``
    one contract access is predicted to cost on a device.

    Data-free creates/resizes and opens are metadata touches: one
    latency-priced operation each, zero bytes (mirroring how the
    simulated :class:`~repro.storage.devices.StorageDevice` charges
    them).
    """
    ops = max(a.count, 1)
    volume = access_bytes(a) * ops
    if a.op == "read":
        ro, rb, wo, wb = ops, volume, 0, 0
    elif a.op == "write" or (a.op == "create" and a.moves_data):
        ro, rb, wo, wb = 0, 0, ops, volume
    elif a.op in ("create", "resize"):
        ro, rb, wo, wb = 0, 0, ops, 0
    else:  # "open"
        ro, rb, wo, wb = ops, 0, 0, 0
    io = predicted_cost(spec_dev, read_ops=ro, read_bytes=rb,
                        write_ops=wo, write_bytes=wb,
                        concurrency=concurrency)
    latency = predicted_cost(spec_dev, read_ops=ro, write_ops=wo,
                             concurrency=concurrency)
    return ro, rb, wo, wb, io, latency


def build_cost_report(
    ctx: StaticContext,
    spec: ClusterSpec,
    placement: Optional[Mapping[str, str]] = None,
    file_placement: Optional[Mapping[str, str]] = None,
) -> CostReport:
    """Price every declared access of ``ctx``'s workflow on ``spec``.

    Args:
        ctx: Static contract join (:func:`build_static_context`).
        spec: Cluster topology to price against.
        placement: ``task -> node``; defaults to the runner's
            round-robin placement.
        file_placement: ``original path -> placed path`` rewrites (a
            plan's localizations); unlisted paths stay where the
            contract puts them.

    Concurrency mirrors the runner's stage declaration: in a parallel
    stage a shared device sees the whole stage's task count, a
    node-local device sees only the tasks placed on its node; serial
    stages run one request stream at a time.
    """
    nodes = spec.node_names
    if placement is None:
        placement = round_robin_placement(ctx.workflow, nodes)
    file_placement = dict(file_placement or {})

    def resolve(path: str) -> str:
        return file_placement.get(path, path)

    tasks: Dict[str, TaskCost] = {}
    traffic: Dict[Tuple[str, str], DatasetTraffic] = {}
    stage_costs: List[StageCost] = []

    for si, stage in enumerate(ctx.workflow.stages):
        per_node = Counter(placement.get(t.name, nodes[0])
                           for t in stage.tasks)
        for t in stage.tasks:
            node = placement.get(t.name, nodes[0])
            tc = TaskCost(task=t.name, stage=stage.name, stage_index=si,
                          node=node, compute_seconds=t.compute_seconds)
            contract = ctx.effective.get(t.name)
            per_key: Dict[Tuple[str, str], List[float]] = {}
            for a in (contract.accesses if contract is not None else ()):
                path = resolve(a.file)
                dev, _owner = spec.device_for_path(path)
                if not stage.parallel:
                    concurrency = 1
                elif dev.shared:
                    concurrency = len(stage.tasks)
                else:
                    concurrency = per_node[node]
                ro, rb, wo, wb, io, lat = _charge(dev, a, concurrency)
                tc.read_ops += ro
                tc.read_bytes += rb
                tc.write_ops += wo
                tc.write_bytes += wb
                tc.io_seconds += io
                tc.latency_seconds += lat
                acc = per_key.setdefault(a.key, [0, 0, 0.0, 0.0])
                acc[0] += ro + wo
                acc[1] += rb + wb
                acc[2] += io
                acc[3] += lat
                if ro:
                    kt = traffic.get(a.key)
                    if kt is None:
                        kt = DatasetTraffic(
                            file=a.file, dataset=a.dataset, path=path,
                            device=_device_name(spec, path),
                            shared=dev.shared)
                        traffic[a.key] = kt
                    kt.read_ops += ro
                    kt.bytes_read += rb
                    if t.name not in kt.readers:
                        kt.readers = kt.readers + (t.name,)
            tc.datasets = [
                DatasetKeyCost(file=k[0], dataset=k[1], ops=v[0],
                               volume=v[1], io_seconds=v[2],
                               latency_seconds=v[3])
                for k, v in sorted(per_key.items())
            ]
            tasks[t.name] = tc
        if stage.parallel:
            wall = max((tasks[t.name].total_seconds for t in stage.tasks),
                       default=0.0)
        else:
            wall = sum(tasks[t.name].total_seconds for t in stage.tasks)
        stage_costs.append(StageCost(
            name=stage.name, index=si, parallel=stage.parallel,
            wall_seconds=wall,
            tasks=tuple(t.name for t in stage.tasks)))

    edges = _edge_costs(ctx, spec, dict(placement), resolve, tasks)
    dag = ctx.ordering.dag if ctx.ordering is not None else nx.DiGraph()
    weights = {name: tc.total_seconds for name, tc in tasks.items()}
    cp_tasks, cp_seconds = critical_path(dag, weights)
    return CostReport(
        workflow=ctx.workflow.name,
        cluster=spec.name,
        n_nodes=spec.n_nodes,
        tasks=tasks,
        stages=stage_costs,
        edges=edges,
        dataset_traffic=traffic,
        critical_path=cp_tasks,
        critical_path_seconds=cp_seconds,
        makespan_seconds=sum(s.wall_seconds for s in stage_costs),
        placement=dict(placement),
        file_placement=file_placement,
    )


def _device_name(spec: ClusterSpec, path: str) -> str:
    dev, _ = spec.device_for_path(path)
    for name, cat in DEVICE_CATALOG.items():
        if cat is dev:
            return name
    return dev.name


def _edge_costs(
    ctx: StaticContext,
    spec: ClusterSpec,
    placement: Dict[str, str],
    resolve,
    tasks: Dict[str, TaskCost],
) -> List[EdgeCost]:
    """One :class:`EdgeCost` per realized producer → consumer hand-off,
    priced as the consumer's read of the dataset."""
    edges: List[EdgeCost] = []
    dag = ctx.ordering.dag if ctx.ordering is not None else nx.DiGraph()
    for producer, consumer, data in dag.edges(data=True):
        key = data.get("dataset")
        if key is None:
            continue
        file, dataset = key
        path = resolve(file)
        dev, owner = spec.device_for_path(path)
        volume = 0
        seconds = 0.0
        for a in ctx.accesses_for(key, consumer):
            if a.op != "read":
                continue
            ops = max(a.count, 1)
            volume += access_bytes(a) * ops
            si = tasks[consumer].stage_index
            stage = ctx.workflow.stages[si]
            if not stage.parallel:
                concurrency = 1
            elif dev.shared:
                concurrency = len(stage.tasks)
            else:
                concurrency = sum(
                    1 for t in stage.tasks
                    if placement.get(t.name) == tasks[consumer].node)
            seconds += predicted_cost(dev, read_ops=ops,
                                      read_bytes=access_bytes(a) * ops,
                                      concurrency=concurrency)
        if dev.shared:
            cross = placement.get(producer) != placement.get(consumer)
        else:
            cross = owner is not None and placement.get(consumer) != owner
        edges.append(EdgeCost(producer=producer, consumer=consumer,
                              file=file, dataset=dataset, volume=volume,
                              seconds=seconds, cross_node=cross))
    return edges


# ----------------------------------------------------------------------
# Critical path and schedule bounds
# ----------------------------------------------------------------------
def critical_path(dag: "nx.DiGraph", weights: Mapping[str, float]
                  ) -> Tuple[List[str], float]:
    """Longest node-weighted path through the static dataflow DAG.

    Returns ``(tasks, seconds)`` — deterministic under ties (largest
    task name wins at each join).  An empty or cyclic DAG yields the
    single heaviest task, which is still a valid lower bound.
    """
    if dag.number_of_nodes() == 0 or not nx.is_directed_acyclic_graph(dag):
        if not weights:
            return [], 0.0
        best = max(sorted(weights), key=lambda n: (weights[n], n))
        return [best], weights[best]
    dist: Dict[str, float] = {}
    prev: Dict[str, Optional[str]] = {}
    for node in nx.lexicographical_topological_sort(dag):
        w = weights.get(node, 0.0)
        preds = list(dag.predecessors(node))
        if preds:
            p = max(preds, key=lambda n: (dist[n], n))
            dist[node] = dist[p] + w
            prev[node] = p
        else:
            dist[node] = w
            prev[node] = None
    end = max(dist, key=lambda n: (dist[n], n))
    path: List[str] = []
    cur: Optional[str] = end
    while cur is not None:
        path.append(cur)
        cur = prev[cur]
    path.reverse()
    return path, dist[end]


def schedule_makespan(
    dag: "nx.DiGraph",
    weights: Mapping[str, float],
    order: Iterable[str],
    slots: Optional[int] = None,
) -> float:
    """Predicted makespan of list-scheduling ``order`` on ``slots``
    workers, respecting DAG dependencies.

    This is the schedule sampler for the critical-path law: for *any*
    legal order and *any* worker count, the result can never undercut
    :func:`critical_path`'s length.  Raises ``ValueError`` when the
    order schedules a task before one of its DAG predecessors.
    """
    order = list(order)
    workers = [0.0] * max(1, slots if slots is not None else len(order))
    finish: Dict[str, float] = {}
    for task in order:
        ready = 0.0
        for p in dag.predecessors(task) if dag.has_node(task) else ():
            if p not in finish:
                raise ValueError(
                    f"illegal schedule: {task!r} ordered before its "
                    f"dependency {p!r}")
            ready = max(ready, finish[p])
        wi = min(range(len(workers)), key=lambda i: workers[i])
        start = max(ready, workers[wi])
        workers[wi] = finish[task] = start + weights.get(task, 0.0)
    return max(finish.values(), default=0.0)


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def build_cost_context(
    workflow: Workflow,
    spec: ClusterSpec,
    contracts=None,
    placement: Optional[Mapping[str, str]] = None,
    file_placement: Optional[Mapping[str, str]] = None,
) -> CostContext:
    """Static context + cost report in one call (what ``--cost`` runs)."""
    static = build_static_context(workflow, contracts)
    report = build_cost_report(static, spec, placement=placement,
                               file_placement=file_placement)
    return CostContext(static=static, spec=spec, report=report)


def build_cost_drift_context(
    report: CostReport,
    profiles: Sequence[TaskProfile],
) -> CostDriftContext:
    """Join a prediction with the task profiles of one traced run."""
    durations: Dict[str, float] = {}
    actual_bytes: Dict[str, Tuple[int, int]] = {}
    starts: List[float] = []
    ends: List[float] = []
    for p in profiles:
        durations[p.task] = max(p.span.end - p.span.start, 0.0)
        starts.append(p.span.start)
        ends.append(p.span.end)
        br = sum(s.bytes_read for s in p.dataset_stats)
        bw = sum(s.bytes_written for s in p.dataset_stats)
        actual_bytes[p.task] = (br, bw)
    makespan = (max(ends) - min(starts)) if starts else 0.0
    return CostDriftContext(report=report, actual_durations=durations,
                            actual_bytes=actual_bytes,
                            actual_makespan=makespan)
