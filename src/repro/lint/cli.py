"""The ``dayu-lint`` command-line entry point.

Examples::

    dayu-lint traces/                         # human-readable findings
    dayu-lint traces/ --format sarif --out lint.sarif
    dayu-lint traces/ --disable DY1 --jobs 8  # hazards+sanitizer only
    dayu-lint traces/ --select 'DY5*' --ignore 'DY2*'   # family globs
    dayu-lint traces/ --write-baseline .dayu-lint-baseline
    dayu-lint traces/ --baseline .dayu-lint-baseline   # fail on NEW errors
    dayu-lint --static corner-hazards         # pre-run DY40x, no traces
    dayu-lint traces/ --diff ddmd             # DY45x contract drift
    dayu-lint traces/ --races --attempts run.json      # DY5xx + DY505
    dayu-lint --static racy-pipeline --races --sensitivity-out sens.json
    dayu-lint --static perf-hazards --cost          # DY6xx, zero traces
    dayu-lint traces/ --diff perf-hazards --cost --cost-out cost.json

``--static WORKLOAD`` lints the named bundled workflow *definition*
through the DY40x contract rules — nothing is executed and no traces
are read.  ``--diff WORKLOAD`` joins an existing trace directory
against the same workflow's access contracts through the DY45x drift
rules.  Both resolve workload names (and ``--scale``) through
:mod:`repro.workloads.registry`, so the contracts describe exactly the
workflow ``dayu-run`` would execute.  ``--races`` opts in the DY5xx
happens-before race family (equivalent to ``--select 'DY5*'``) in every
mode — post-hoc over row or columnar traces, or pre-run with
``--static``.  ``--cost`` opts in the cost prophet (``--select
'DY6*'``): with ``--static`` the DY60x predicted-performance rules run
purely from contracts and the device/cluster cost models; with
``--diff`` the DY65x prediction-drift rules additionally put the
prediction itself on trial against the traced run.  ``--pushdown``
composes with ``--diff``: over columnar traces the DY651/DY653
predicates clear provably-matching runs from footer statistics alone.

Exit status (same table in every mode — plain, ``--static``, ``--diff``,
``--races``, ``--pushdown``):

====  ===========================================================
code  meaning
====  ===========================================================
0     clean: no (non-suppressed) error-severity findings
1     new error-severity findings remain after the baseline
2     usage error, unknown workload, or missing/unreadable traces
====  ===========================================================
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

from repro.cli_common import positive_int

__all__ = ["lint_main"]


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="dayu-lint",
        description="Static dataflow hazard detector and trace sanitizer "
                    "over saved DaYu task profiles.",
    )
    parser.add_argument("traces", nargs="?",
                        help="directory of saved task profiles "
                             "(*.json and/or *.dayu)")
    parser.add_argument("--static", metavar="WORKLOAD", dest="static",
                        help="lint a bundled workflow definition pre-run "
                             "(DY40x contract rules; no traces read)")
    parser.add_argument("--diff", metavar="WORKLOAD", dest="diff",
                        help="check the traces for drift against the named "
                             "bundled workflow's access contracts (DY45x)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale multiplier for --static/--diff "
                             "(default 1.0; match the dayu-run scale)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format (default text)")
    parser.add_argument("--out",
                        help="write the report to a file instead of stdout")
    parser.add_argument("--enable", "--select", action="append", default=[],
                        metavar="CODE", dest="enable",
                        help="enable rules by code, prefix, or glob "
                             "(e.g. DY105, DY1, 'DY5*'); repeatable; "
                             "--select is an alias")
    parser.add_argument("--disable", "--ignore", action="append", default=[],
                        metavar="CODE", dest="disable",
                        help="disable rules by code, prefix, or glob; "
                             "repeatable, wins over --enable/--select; "
                             "--ignore is an alias")
    parser.add_argument("--races", action="store_true",
                        help="opt in the DY5xx happens-before race rules "
                             "(same as --select 'DY5*'); works post-hoc "
                             "and with --static")
    parser.add_argument("--cost", action="store_true",
                        help="opt in the DY6xx cost-prophet rules (same as "
                             "--select 'DY6*'): predicted performance "
                             "hazards with --static, prediction drift "
                             "(DY65x) with --diff")
    parser.add_argument("--cost-out", metavar="PATH",
                        help="write the static cost report (dayu-cost/v1 "
                             "JSON) to PATH; requires --cost")
    parser.add_argument("--nodes", type=positive_int, default=2,
                        help="simulated cluster nodes the cost model "
                             "prices against (default 2; match the "
                             "dayu-run node count)")
    parser.add_argument("--attempts", metavar="PATH",
                        help="run-result JSON with per-task attempt counts "
                             "(dayu-run output or a flat {task: n} map); "
                             "feeds the DY505 retry-race rule")
    parser.add_argument("--sensitivity-out", metavar="PATH",
                        help="write the DY504 schedule-sensitivity report "
                             "(dayu-sensitivity/v1 JSON) to PATH")
    parser.add_argument("--baseline",
                        help="baseline file of accepted finding "
                             "fingerprints to suppress")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write the current findings' fingerprints to "
                             "PATH and exit 0")
    parser.add_argument("--jobs", type=positive_int, default=1,
                        help="worker processes for loading and per-profile "
                             "rules (default 1 = serial)")
    parser.add_argument("--page-size", type=int, default=4096,
                        help="page size the traces were recorded at")
    parser.add_argument("--with-io-records", action="store_true",
                        help="load per-operation records for byte-exact "
                             "extents and the full DY3xx sanitizer "
                             "(slower on large traces)")
    parser.add_argument("--pushdown", action="store_true",
                        help="columnar traces only: skip rules whose page "
                             "statistics prove they cannot fire, without "
                             "decoding the chunks (same findings, same "
                             "fingerprints)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every registered rule and exit")
    args = parser.parse_args(argv)
    if args.static and args.diff:
        parser.error("--static and --diff are mutually exclusive")
    if args.pushdown and args.static:
        parser.error("--pushdown applies to trace linting only")
    if args.cost and not (args.static or args.diff):
        parser.error("--cost needs a workflow's contracts: "
                     "use --static or --diff")
    if args.cost_out and not args.cost:
        parser.error("--cost-out requires --cost")
    if args.static and args.traces:
        parser.error("--static lints a workflow definition; "
                     "it takes no traces directory")
    if args.diff and not args.traces:
        parser.error("--diff joins saved traces against contracts; "
                     "a traces directory is required")
    if not args.list_rules and not args.static and not args.traces:
        parser.error("a traces directory is required "
                     "(or use --static/--list-rules)")
    return args


def _emit(text: str, out_path) -> None:
    if out_path:
        from repro.ioutil import atomic_write_text

        atomic_write_text(out_path, text)
    else:
        sys.stdout.write(text)


def _load_attempts(path: str) -> dict:
    """Per-task attempt counts from a run-result JSON.

    Accepts the ``dayu-run`` result document (``stages[].attempts``) or
    a flat ``{task: attempts}`` object.
    """
    import json

    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if isinstance(doc, dict) and "stages" in doc:
        out: dict = {}
        for stage in doc["stages"]:
            out.update(stage.get("attempts", {}))
        return {t: int(n) for t, n in out.items()}
    if isinstance(doc, dict):
        return {t: int(n) for t, n in doc.items()}
    raise ValueError(f"{path}: not a run result or attempts map")


def lint_main(argv: List[str] | None = None) -> int:
    """Entry point of ``dayu-lint``."""
    args = _parse_args(argv)

    from repro.lint import (
        LintConfig,
        all_rules,
        load_baseline,
        save_baseline,
        to_sarif,
    )

    if args.list_rules:
        config = LintConfig(enable=tuple(args.enable),
                            disable=tuple(args.disable))
        for r in all_rules():
            state = "on " if config.is_enabled(r) else "off"
            default = "on " if r.default_enabled else "off"
            print(f"{r.code}  [{state}] {r.severity.value:<7} "
                  f"{r.scope:<9} default={default} "
                  f"{r.name}: {r.description}")
        return 0

    enable = (tuple(args.enable)
              + (("DY5*",) if args.races else ())
              + (("DY6*",) if args.cost else ()))
    try:
        config = LintConfig(
            enable=enable,
            disable=tuple(args.disable),
            page_size=args.page_size,
        )
    except ValueError as exc:
        print(f"dayu-lint: {exc}", file=sys.stderr)
        return 2

    attempts = None
    if args.attempts:
        try:
            attempts = _load_attempts(args.attempts)
        except (OSError, ValueError) as exc:
            print(f"dayu-lint: cannot read --attempts: {exc}",
                  file=sys.stderr)
            return 2

    from repro.mapper.persist import UnknownTraceFormat

    def _workload(name: str):
        from repro.workloads.registry import build_workload

        try:
            return build_workload(name, args.scale)
        except SystemExit as exc:
            # The registry raises SystemExit with a message for unknown
            # names; map it onto the usage exit code.
            print(f"dayu-lint: {exc}", file=sys.stderr)
            return None

    cost_ctx = None

    def _cost_context(workflow, wc):
        from repro.cluster.configs import cluster_spec
        from repro.lint.cost import build_cost_context

        return build_cost_context(workflow,
                                  cluster_spec("gpu", args.nodes),
                                  contracts=wc)

    if args.static:
        from repro.lint import lint_workflow

        built = _workload(args.static)
        if built is None:
            return 2
        if args.cost:
            from repro.lint import extract_workflow_contracts
            from repro.lint.engine import cost_findings
            from repro.lint.findings import Finding

            wc = extract_workflow_contracts(built[0])
            cost_ctx = _cost_context(built[0], wc)
            report = lint_workflow(built[0], config, contracts=wc)
            report.findings = sorted(
                report.findings + cost_findings(cost_ctx, config),
                key=Finding.sort_key)
        else:
            report = lint_workflow(built[0], config)
    elif args.pushdown:
        from repro.analyzer import ParallelAnalyzer

        analyzer = ParallelAnalyzer(max_workers=args.jobs,
                                    with_io_records=args.with_io_records)
        pd_stats: dict = {}
        try:
            if args.diff:
                from repro.lint import extract_workflow_contracts

                built = _workload(args.diff)
                if built is None:
                    return 2
                wc = extract_workflow_contracts(built[0])
                if args.cost:
                    cost_ctx = _cost_context(built[0], wc)
                report = analyzer.diff_run(args.traces, wc.effective(),
                                           config, stats_out=pd_stats,
                                           cost=cost_ctx)
            else:
                report = analyzer.lint_run(args.traces, config,
                                           stats_out=pd_stats,
                                           attempts=attempts)
        except UnknownTraceFormat as exc:
            print(f"dayu-lint: {exc}", file=sys.stderr)
            return 2
        if not pd_stats.get("n_groups"):
            from repro.cli_common import diagnose_traces_dir

            if os.path.isdir(args.traces) or os.path.isfile(args.traces):
                print(f"dayu-lint: no columnar profiles found in "
                      f"{args.traces!r} (--pushdown reads *.dayuc traces)",
                      file=sys.stderr)
            else:
                print(f"dayu-lint: {diagnose_traces_dir(args.traces)}",
                      file=sys.stderr)
            return 2
        print(f"pushdown: {pd_stats['rules_skipped']} rule evaluation(s) "
              f"skipped, {pd_stats['rules_evaluated']} run across "
              f"{pd_stats['n_groups']} profile(s)", file=sys.stderr)
    else:
        from repro.analyzer import ParallelAnalyzer

        analyzer = ParallelAnalyzer(max_workers=args.jobs,
                                    with_io_records=args.with_io_records)
        try:
            profiles = analyzer.load(args.traces)
        except UnknownTraceFormat as exc:
            print(f"dayu-lint: {exc}", file=sys.stderr)
            return 2
        if not profiles:
            from repro.cli_common import diagnose_traces_dir

            print(f"dayu-lint: {diagnose_traces_dir(args.traces)}",
                  file=sys.stderr)
            return 2
        if args.diff:
            from repro.lint import diff_profiles, extract_workflow_contracts

            built = _workload(args.diff)
            if built is None:
                return 2
            wc = extract_workflow_contracts(built[0])
            contracts = wc.effective()
            if args.jobs > 1:
                report = analyzer.diff(profiles, contracts, config)
            else:
                report = diff_profiles(profiles, contracts, config)
            if args.cost:
                from repro.lint.engine import cost_findings
                from repro.lint.findings import Finding

                cost_ctx = _cost_context(built[0], wc)
                report.findings = sorted(
                    report.findings
                    + cost_findings(cost_ctx, config, profiles),
                    key=Finding.sort_key)
        else:
            report = analyzer.lint(profiles, config, attempts=attempts)

    if args.cost_out and cost_ctx is not None:
        cost_ctx.report.save(args.cost_out)
        print(f"wrote cost report to {args.cost_out}", file=sys.stderr)

    if args.write_baseline:
        save_baseline(args.write_baseline, report.findings)
        print(f"wrote {len({f.fingerprint for f in report.findings})} "
              f"fingerprint(s) to {args.write_baseline}")
        return 0
    if args.baseline:
        report = report.apply_baseline(load_baseline(args.baseline))

    if args.sensitivity_out:
        from repro.ioutil import atomic_write_json
        from repro.lint import sensitivity_report_from_findings

        label = args.static or args.diff or ""
        sens = sensitivity_report_from_findings(report.findings, label)
        atomic_write_json(args.sensitivity_out, sens)

    if args.format == "json":
        _emit(report.to_json(), args.out)
    elif args.format == "sarif":
        _emit(to_sarif(report), args.out)
    else:
        lines = [str(f) for f in report.findings]
        lines.append(report.summary())
        _emit("\n".join(lines) + "\n", args.out)
        if args.out:
            print(report.summary())

    return 1 if report.errors else 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(lint_main())
