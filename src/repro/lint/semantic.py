"""DY1xx — semantic anti-pattern rules.

Dataflow shapes that are legal but almost always wrong or wasteful,
visible only when the VOL layer's object semantics and the VFD layer's
byte movements are joined: a write whose value is replaced before anyone
reads it, a read of data nothing ever produced, an access stream ground
into tiny operations, one dataset described with two different layouts.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.lint.context import (
    ObjectAccess,
    OrderingInfo,
    WorkflowIndex,
    extents_overlap,
)
from repro.lint.findings import Finding, Severity
from repro.lint.rules import LintConfig, rule
from repro.mapper.mapper import TaskProfile
from repro.mapper.stats import FILE_METADATA_OBJECT

__all__ = []  # rules register themselves; nothing to import by name


# ----------------------------------------------------------------------
# Columnar page-stats predicates (``LintRule.pushdown``)
#
# Each answers "could this rule fire?" from chunk footer statistics
# alone; ``None`` from any view accessor means "unknown" and must yield
# True.  Over-approximation is always safe — a surviving rule is simply
# evaluated — while returning False skips the rule without decoding a
# single column chunk.
# ----------------------------------------------------------------------
def _writes_pushdown(run, config: LintConfig) -> bool:
    """Two distinct groups write into a shared file (DY101 needs an
    ordered overwriter; any double-writer run might contain one)."""
    prior_writers = set()
    for g in run.groups:
        writes = g.int_sum("stats", "writes")
        files = g.distinct("stats", "file")
        if writes is None or files is None:
            return True
        if writes:
            if files & prior_writers:
                return True
            prior_writers |= files
    return False


def _reads_pushdown(run, config: LintConfig) -> bool:
    """Some group read data at all — VFD raw reads or VOL element reads.
    A run with zero reads anywhere cannot contain a phantom read."""
    for g in run.groups:
        reads = g.int_sum("stats", "reads")
        elements = g.int_sum("objprofs", "elements_read")
        if reads is None or elements is None or reads or elements:
            return True
    return False


def _small_io_pushdown(view, config: LintConfig) -> bool:
    """No object in the group reaches the DY103 operation-count floor."""
    data_ops = view.int_max("stats", "data_ops")
    return data_ops is None or data_ops >= config.small_io_min_ops


def _layout_set_pushdown(run, config: LintConfig) -> bool:
    """Fewer than two distinct layouts appear across the whole run."""
    layouts: set = set()
    for g in run.groups:
        seen = g.distinct("objprofs", "layout")
        if seen is None:
            return True
        layouts |= seen
        if len(layouts) > 1:
            return True
    return False


def _vlen_contiguous_pushdown(view, config: LintConfig) -> bool:
    """The group mentions both a vlen dtype and a contiguous layout."""
    dtypes = view.distinct("objprofs", "dtype")
    layouts = view.distinct("objprofs", "layout")
    if dtypes is None or layouts is None:
        return True
    return ("contiguous" in layouts
            and any(d.startswith("vlen") for d in dtypes))


def _read_windows(accs: List[ObjectAccess]) -> List[Tuple[float, float]]:
    """Each task's raw-read time window over the object."""
    out = []
    for acc in accs:
        if acc.raw_read and acc.first_raw_read is not None:
            last = acc.last_raw_read
            out.append((acc.first_raw_read,
                        last if last is not None else acc.first_raw_read))
    return out


@rule("DY101", "dead-write", Severity.WARNING, "workflow",
      "A task's write is overwritten by an ordered later task before any "
      "task reads the value — the first write is dead.  Needs byte-exact "
      "extents (traces loaded with per-operation records).",
      pushdown=_writes_pushdown)
def _dead_write(index: WorkflowIndex, ordering: OrderingInfo,
                config: LintConfig) -> Iterator[Finding]:
    for (file, obj), accs in sorted(index.by_object.items()):
        writers = [a for a in accs
                   if a.raw_written and a.first_raw_write is not None]
        if len(writers) < 2:
            continue
        reads = _read_windows(accs)
        writers.sort(key=lambda a: a.first_raw_write)
        for first, second in zip(writers, writers[1:]):
            if first.task == second.task:
                continue
            if second.task not in ordering.descendants(first.task):
                continue  # unordered pair: that's a DY203 hazard, not a
                          # dead write — don't double-report
            # Ordered partial writers (e.g. collective slab writes into a
            # shared dataset) replace nothing: the write is only dead when
            # the successor provably rewrites the same bytes.
            if not (first.exact and second.exact):
                continue
            if extents_overlap(first.write_extents,
                               second.write_extents) is None:
                continue
            lo = first.first_raw_write
            hi = second.first_raw_write
            observed = any(r_lo <= hi and r_hi >= lo for r_lo, r_hi in reads)
            if not observed:
                yield Finding(
                    code="DY101", rule="dead-write",
                    severity=Severity.WARNING,
                    subject=f"{file}:{obj}",
                    tasks=(first.task, second.task),
                    message=(
                        f"{second.task} overwrites {obj} in {file} after "
                        f"{first.task} wrote it, and no task read the value "
                        "in between — the first write is dead"),
                    evidence={
                        "first_writer": first.task,
                        "overwriter": second.task,
                        "first_write_bytes": first.raw_write_bytes,
                    },
                )


@rule("DY102", "phantom-read", Severity.ERROR, "workflow",
      "A task reads a dataset whose data no task ever produced, in a file "
      "created inside the workflow.",
      pushdown=_reads_pushdown)
def _phantom_read(index: WorkflowIndex, ordering: OrderingInfo,
                  config: LintConfig) -> Iterator[Finding]:
    for (file, obj), accs in sorted(index.by_object.items()):
        if file not in index.file_writers:
            continue  # external input: produced before the workflow ran
        produced = any(a.raw_written or a.vol_elements_written > 0
                       for a in accs)
        if produced:
            continue
        readers = sorted({a.task for a in accs
                          if a.raw_read or a.vol_elements_read > 0})
        if not readers:
            continue
        vol_elements = sum(a.vol_elements_read for a in accs)
        yield Finding(
            code="DY102", rule="phantom-read", severity=Severity.ERROR,
            subject=f"{file}:{obj}",
            tasks=tuple(readers),
            message=(
                f"{', '.join(readers)} read{'s' if len(readers) == 1 else ''} "
                f"{obj} in {file}, but no task ever wrote its data — the "
                "reads return unproduced (zero-filled) content"),
            evidence={"readers": readers,
                      "vol_elements_read": vol_elements},
        )


@rule("DY103", "small-io-amplification", Severity.WARNING, "profile",
      "One task grinds a dataset through a storm of tiny raw operations.",
      pushdown=_small_io_pushdown)
def _small_io(profile: TaskProfile,
              config: LintConfig) -> Iterator[Finding]:
    for s in profile.dataset_stats:
        if s.data_object == FILE_METADATA_OBJECT or s.data_ops == 0:
            continue
        if s.data_ops < config.small_io_min_ops:
            continue
        avg = s.data_bytes / s.data_ops
        if avg <= config.small_io_max_avg_bytes:
            yield Finding(
                code="DY103", rule="small-io-amplification",
                severity=Severity.WARNING,
                subject=f"{s.file}:{s.data_object}",
                tasks=(profile.task,),
                message=(
                    f"task {profile.task} issued {s.data_ops} raw operations "
                    f"against {s.data_object} averaging {avg:.0f} B each; "
                    "batch the accesses or consolidate the dataset"),
                evidence={"data_ops": s.data_ops,
                          "avg_bytes": round(avg, 1)},
            )


@rule("DY104", "layout-mismatch", Severity.WARNING, "workflow",
      "The same dataset is described with different storage layouts by "
      "different tasks' traces.",
      pushdown=_layout_set_pushdown)
def _layout_mismatch(index: WorkflowIndex, ordering: OrderingInfo,
                     config: LintConfig) -> Iterator[Finding]:
    for (file, obj), accs in sorted(index.by_object.items()):
        layouts = {}
        for a in accs:
            if a.layout:
                layouts.setdefault(a.layout, []).append(a.task)
        if len(layouts) > 1:
            described = "; ".join(
                f"{layout} by {', '.join(sorted(tasks))}"
                for layout, tasks in sorted(layouts.items()))
            yield Finding(
                code="DY104", rule="layout-mismatch",
                severity=Severity.WARNING,
                subject=f"{file}:{obj}",
                tasks=tuple(sorted({a.task for a in accs if a.layout})),
                message=(
                    f"{obj} in {file} is described with conflicting layouts "
                    f"({described}) — producer and consumer disagree about "
                    "the dataset's storage"),
                evidence={"layouts": {k: sorted(v)
                                      for k, v in layouts.items()}},
            )


@rule("DY105", "vlen-contiguous", Severity.NOTE, "profile",
      "A variable-length dataset uses a contiguous layout (no index; every "
      "access walks the heap).  Off by default: overlaps the optimization "
      "advisor and fires on the bundled ARLDM fixture by design.",
      default_enabled=False, pushdown=_vlen_contiguous_pushdown)
def _vlen_contiguous(profile: TaskProfile,
                     config: LintConfig) -> Iterator[Finding]:
    seen = set()
    for op in profile.object_profiles:
        key = (op.file, op.object_name)
        if key in seen:
            continue
        if op.dtype.startswith("vlen") and op.layout == "contiguous":
            seen.add(key)
            yield Finding(
                code="DY105", rule="vlen-contiguous",
                severity=Severity.NOTE,
                subject=f"{op.file}:{op.object_name}",
                tasks=(profile.task,) if profile.task else (),
                message=(
                    f"variable-length dataset {op.object_name} in {op.file} "
                    "is stored contiguously; a chunked layout would index "
                    "its elements"),
                evidence={"dtype": op.dtype, "layout": op.layout},
            )
