"""Witness replay: execute a workflow's tasks in an explicit order.

A DY5xx finding ships a *witness* — a legal topological order of the
dependency-only DAG in which the racing pair runs the other way around
(:func:`repro.lint.hb.reorder_witness`).  This module makes the witness
executable: :func:`replay_in_order` runs the workflow's task bodies
serially in exactly the witness sequence on a fresh simulated cluster,
so a test (or a skeptical user) can compare the surviving file contents
against the original schedule and watch the outcome flip.  That closes
the loop the race detector promises: a conviction is not "these could
reorder" but "here is the reordering, and here is what it does".

Duplicate names in the order model a *retry replay* (the DY505
witness): the repeated entry re-executes the same task body a second
time, profiled under a ``<name>@replay<i>`` alias so the mapper keeps
both attempts' profiles apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.workflow.model import Workflow
from repro.workflow.runner import TaskRuntime

__all__ = ["ReplayOutcome", "replay_in_order", "read_dataset"]


@dataclass
class ReplayOutcome:
    """A finished replay: the cluster (with its files) and the profiles."""

    cluster: object
    mapper: object
    #: Replay-order task labels, aliases included.
    executed: Sequence[str] = ()

    def read(self, path: str, dataset: str):
        """Read back a dataset's final content from the replayed files."""
        return read_dataset(self.cluster, path, dataset)


def read_dataset(cluster, path: str, dataset: str):
    """The post-run content of one dataset, via an uninstrumented open."""
    from repro.hdf5 import H5File

    f = H5File(cluster.fs, path, "r")
    try:
        return f[dataset].read()
    finally:
        f.close()


def replay_in_order(workflow: Workflow, order: Sequence[str],
                    n_nodes: int = 2) -> ReplayOutcome:
    """Run ``workflow``'s task bodies serially in ``order``.

    Stage boundaries are deliberately ignored — the order IS the
    schedule, which is exactly what a witness asserts is legal under
    dependency-only happens-before.  Every name must belong to the
    workflow; a name may repeat (retry replay).  Returns the outcome
    holding the cluster for content read-back.
    """
    from repro.cluster.configs import gpu_cluster
    from repro.mapper.config import DaYuConfig
    from repro.mapper.mapper import DataSemanticMapper
    from repro.simclock import SimClock

    tasks = {t.name: t for t in workflow.all_tasks()}
    unknown = sorted(set(order) - set(tasks))
    if unknown:
        raise ValueError(
            f"replay order names tasks not in {workflow.name!r}: {unknown}")
    clock = SimClock()
    cluster = gpu_cluster(clock, n_nodes=n_nodes)
    mapper = DataSemanticMapper(clock, DaYuConfig())
    node = cluster.alive_node_names()[0]
    counts: Dict[str, int] = {}
    executed = []
    for name in order:
        task = tasks[name]
        counts[name] = counts.get(name, 0) + 1
        label = (name if counts[name] == 1
                 else f"{name}@replay{counts[name] - 1}")
        executed.append(label)
        with mapper.task(label) as ctx:
            runtime = TaskRuntime(cluster, ctx, task, node)
            if task.compute_seconds:
                runtime.compute(task.compute_seconds)
            task.fn(runtime)
    return ReplayOutcome(cluster=cluster, mapper=mapper, executed=executed)
