"""``dayu-plan/v1``: a versioned, executable placement plan.

The paper's fig11 experiment hand-placed PyFLEXTRKR's stages onto the
node that produced their data and staged the hot files onto node-local
flash.  A :class:`PlacementPlan` is that optimization as a derived
artifact: task → node pins plus file → (node, tier) localizations,
emitted by the greedy solver (:mod:`repro.optimizer.placement`) from the
static cost report, serialized as JSON so schedulers — today's
``dayu-run --plan``, tomorrow's dataflow-aware one — can consume it.

Executing a plan means three things, all provided here:

- :func:`plan_file_map` / :func:`plan_path_resolver` — rewrite every
  localized file's path to its ``/local/<node>/<tier>/…`` home.  The
  rewrite is strict: an unpinned task touching a localized file from the
  wrong node fails loudly with a locality error rather than silently
  reading stale shared data.
- :func:`plan_scheduler` — a
  :class:`~repro.workflow.scheduler.PinnedScheduler` over the plan's
  pins (unpinned tasks keep the round-robin default).
- :func:`stage_in_plan` — copy localized files that already exist on
  shared storage (external inputs) to their planned homes, paying
  honest device costs on the simulated clock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.cluster.cluster import Cluster
from repro.middleware.stager import stage_in
from repro.workflow.scheduler import PinnedScheduler

__all__ = [
    "PLAN_SCHEMA",
    "FilePlacement",
    "PlacementPlan",
    "local_path",
    "plan_file_map",
    "plan_path_resolver",
    "plan_scheduler",
    "stage_in_plan",
]

#: Versioned schema tag for serialized plans.
PLAN_SCHEMA = "dayu-plan/v1"


def local_path(path: str, node: str, tier: str) -> str:
    """The node-local home of a localized file.

    The original path is flattened into one component (``/`` → ``__``)
    so distinct shared paths can never collide under one tier mount.
    """
    return (f"{Cluster.local_prefix(node, tier)}/"
            f"{path.lstrip('/').replace('/', '__')}")


@dataclass(frozen=True)
class FilePlacement:
    """One localized file: where it goes and why.

    ``volume`` is the predicted bytes of one copy of the file (the
    stage-in price when it pre-exists); ``datasets`` the dataset names
    whose traffic motivated the move.
    """

    path: str
    node: str
    tier: str
    volume: int = 0
    datasets: Tuple[str, ...] = ()

    @property
    def placed_path(self) -> str:
        return local_path(self.path, self.node, self.tier)


@dataclass
class PlacementPlan:
    """The ``dayu-plan/v1`` artifact.

    Attributes:
        workload: Registry name the plan was solved for (``dayu-run
            --plan`` refuses a mismatched workload).
        scale: Workload scale the plan was solved at.
        cluster: Cluster spec name the plan prices against.
        n_nodes: Node count of that cluster.
        tasks: Explicit task → node pins (unlisted tasks round-robin).
        files: Localized files, in solver commit order.
        predicted: Solver-side forecast — ``baseline_makespan_seconds``,
            ``planned_makespan_seconds``, ``stage_in_seconds``.
    """

    workload: str
    scale: float
    cluster: str
    n_nodes: int
    tasks: Dict[str, str] = field(default_factory=dict)
    files: List[FilePlacement] = field(default_factory=list)
    predicted: Dict[str, float] = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "workload": self.workload,
            "scale": self.scale,
            "cluster": self.cluster,
            "n_nodes": self.n_nodes,
            "tasks": dict(sorted(self.tasks.items())),
            "files": [
                {
                    "path": f.path,
                    "node": f.node,
                    "tier": f.tier,
                    "placed_path": f.placed_path,
                    "volume": f.volume,
                    "datasets": list(f.datasets),
                }
                for f in self.files
            ],
            "predicted": {k: round(v, 9)
                          for k, v in sorted(self.predicted.items())},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2) + "\n"

    def save(self, path: str) -> None:
        from repro.ioutil import atomic_write_text

        atomic_write_text(path, self.to_json())

    @classmethod
    def from_json_dict(cls, data: dict) -> "PlacementPlan":
        schema = data.get("schema")
        if schema != PLAN_SCHEMA:
            raise ValueError(f"not a {PLAN_SCHEMA} document "
                             f"(schema={schema!r})")
        return cls(
            workload=data["workload"],
            scale=float(data.get("scale", 1.0)),
            cluster=data.get("cluster", ""),
            n_nodes=int(data.get("n_nodes", 0)),
            tasks=dict(data.get("tasks", {})),
            files=[
                FilePlacement(path=f["path"], node=f["node"],
                              tier=f["tier"],
                              volume=int(f.get("volume", 0)),
                              datasets=tuple(f.get("datasets", ())))
                for f in data.get("files", ())
            ],
            predicted={k: float(v)
                       for k, v in data.get("predicted", {}).items()},
        )

    @classmethod
    def load(cls, path: str) -> "PlacementPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json_dict(json.load(fh))


def plan_file_map(plan: PlacementPlan) -> Dict[str, str]:
    """``original path -> placed path`` for every localized file."""
    return {f.path: f.placed_path for f in plan.files}


def plan_path_resolver(plan: PlacementPlan
                       ) -> Callable[[str, str, str], str]:
    """A :class:`~repro.workflow.runner.WorkflowRunner` path resolver
    applying the plan's localizations to every task open."""
    fmap = plan_file_map(plan)

    def resolver(path: str, mode: str, node: str) -> str:
        return fmap.get(path, path)

    return resolver


def plan_scheduler(plan: PlacementPlan) -> PinnedScheduler:
    return PinnedScheduler(plan.tasks)


def stage_in_plan(cluster: Cluster, plan: PlacementPlan) -> float:
    """Copy pre-existing localized files to their planned homes.

    Files the workflow itself produces don't exist yet and are simply
    created at their placed paths by the resolver; external inputs that
    prepare steps already materialized on shared storage are copied
    here, paying read costs on the source device and write costs on the
    destination.  Returns the simulated seconds the staging took.
    """
    t0 = cluster.clock.now
    for f in plan.files:
        if cluster.fs.exists(f.path) and not cluster.fs.exists(f.placed_path):
            stage_in(cluster.fs, f.path, f.placed_path)
    return cluster.clock.now - t0
