"""The workflow execution engine.

Distributed scientific workflows are stages of tasks with data dependencies
carried through shared files.  This package provides:

- :class:`~repro.workflow.model.Task` / ``Stage`` / ``Workflow`` — the
  workflow description;
- :mod:`~repro.workflow.scheduler` — placement policies, including the
  co-scheduling moves DaYu's analysis recommends;
- :class:`~repro.workflow.runner.WorkflowRunner` — executes the workflow
  on a simulated cluster under DaYu profiling, modelling parallel-stage
  wall-clock as the max of task durations with device contention applied.
"""

from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import StageResult, TaskRuntime, WorkflowResult, WorkflowRunner
from repro.workflow.scheduler import CoLocateScheduler, PinnedScheduler, RoundRobinScheduler

__all__ = [
    "Task",
    "Stage",
    "Workflow",
    "WorkflowRunner",
    "WorkflowResult",
    "StageResult",
    "TaskRuntime",
    "RoundRobinScheduler",
    "PinnedScheduler",
    "CoLocateScheduler",
]
