"""The workflow execution engine.

Distributed scientific workflows are stages of tasks with data dependencies
carried through shared files.  This package provides:

- :class:`~repro.workflow.model.Task` / ``Stage`` / ``Workflow`` — the
  workflow description;
- :mod:`~repro.workflow.scheduler` — placement policies, including the
  co-scheduling moves DaYu's analysis recommends;
- :class:`~repro.workflow.runner.WorkflowRunner` — executes the workflow
  on a simulated cluster under DaYu profiling, modelling parallel-stage
  wall-clock as the max of task durations with device contention applied;
- :mod:`~repro.workflow.dscheduler` — the event-driven per-task
  scheduler: ready-heap dispatch by cost-model rank, data-locality
  placement from SDG edge volumes, work stealing and speculative
  re-execution, with retry/re-placement folded into a per-task state
  machine;
- :mod:`~repro.workflow.contracts` — ahead-of-time access contracts:
  the datasets a task commits to reading/writing, declared at
  construction or inferred from source by :mod:`repro.lint.static`.
"""

from repro.workflow.contracts import (
    ContractAccess,
    ContractError,
    TaskContract,
    creates,
    opens,
    reads,
    reconcile,
    validate_contract,
    writes,
)
from repro.workflow.dscheduler import (
    DataflowRunner,
    DataflowScheduler,
    SpeculationPolicy,
    TaskGraph,
    TaskState,
    upward_ranks,
)
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import (
    RetryPolicy,
    StageResult,
    TaskFailure,
    TaskRuntime,
    WorkflowResult,
    WorkflowRunner,
)
from repro.workflow.scheduler import (
    CoLocateScheduler,
    NoAliveNodesError,
    PinnedScheduler,
    RoundRobinScheduler,
)

__all__ = [
    "Task",
    "Stage",
    "Workflow",
    "WorkflowRunner",
    "WorkflowResult",
    "StageResult",
    "TaskRuntime",
    "RetryPolicy",
    "TaskFailure",
    "RoundRobinScheduler",
    "PinnedScheduler",
    "CoLocateScheduler",
    "NoAliveNodesError",
    "DataflowRunner",
    "DataflowScheduler",
    "SpeculationPolicy",
    "TaskGraph",
    "TaskState",
    "upward_ranks",
    "TaskContract",
    "ContractAccess",
    "ContractError",
    "creates",
    "reads",
    "writes",
    "opens",
    "validate_contract",
    "reconcile",
]
