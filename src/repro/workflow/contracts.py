"""Ahead-of-time dataflow contracts for workflow tasks.

DaYu decodes a workflow's dataflow semantics *after* a run by joining
VOL/VFD traces.  A :class:`TaskContract` states the same facts *before*
the run: which datasets a task reads and writes, in which files, with
which extents, element counts, and layouts.  Contracts come from two
sources that the static lint front end reconciles:

- **declared** — attached to a :class:`~repro.workflow.model.Task` at
  construction time (``Task(..., contract=...)``) and validated by
  :meth:`Workflow.validate`;
- **inferred** — recovered from the task function's source by the AST
  extractor in :mod:`repro.lint.static`.

Both feed the pre-run DY4xx rules (:mod:`repro.lint.prerun`), the
contract-only predicted SDG (:mod:`repro.lint.predict`), and the
post-run contract-drift checker (:mod:`repro.lint.drift`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ContractAccess",
    "TaskContract",
    "ContractError",
    "normalize_dataset",
    "dtype_itemsize",
    "creates",
    "reads",
    "writes",
    "opens",
    "resizes",
    "validate_contract",
    "reconcile",
]

#: Access operation kinds, in canonical report order.
ACCESS_OPS = ("create", "read", "write", "open", "resize")

#: Inline bytes per element for the simulated HDF5 dtypes (vlen elements
#: store a fixed-size heap reference inline; matches
#: ``repro.hdf5.datatype.Datatype.itemsize``).
_VLEN_REF_SIZE = 14


class ContractError(ValueError):
    """A declared contract violates its structural invariants."""


def normalize_dataset(name: str) -> str:
    """Canonical object path: the root-anchored form traces record."""
    return "/" + name.strip("/")


def dtype_itemsize(dtype: str) -> Optional[int]:
    """Inline bytes per element for a dtype code (None when unknown)."""
    if not dtype:
        return None
    if dtype.startswith("vlen"):
        return _VLEN_REF_SIZE
    if dtype[0] in "iufS" and dtype[1:].isdigit():
        return int(dtype[1:])
    return None


@dataclass(frozen=True)
class ContractAccess:
    """One declared or inferred dataset interaction of one task.

    Attributes:
        op: ``"create"`` (dataset definition; with ``elements`` > 0 the
            creation also writes the initial data), ``"read"`` /
            ``"write"`` (raw data movement), ``"open"`` (metadata-only
            touch, e.g. a shape query), or ``"resize"`` (metadata
            mutation of an existing dataset's extent).
        file: File path the dataset lives in.
        dataset: Root-anchored object path (``"/contact_map"``).
        count: How many operations of this kind the task performs
            (loop-multiplied by the extractor; ``0`` means "at least
            once, trip count unknown").
        elements: Elements moved per operation (``None`` = unknown).
        extent: Declared dataset shape for ``create`` accesses.
        dtype: Element type code (``"f4"``, ``"vlen-bytes"``, ...).
        layout: Storage layout (``"contiguous"`` / ``"chunked"`` / ...).
        select: Optional element-range selection ``(start, count)`` pairs
            per operation (collective hyperslab writes declare these).
        conditional: The access sits on a branch or an
            unknown-trip-count loop — it may legally never happen.
        exact: Every component resolved statically; inexact accesses are
            exempt from count/extent checks.
    """

    op: str
    file: str
    dataset: str
    count: int = 1
    elements: Optional[int] = None
    extent: Optional[Tuple[int, ...]] = None
    dtype: str = ""
    layout: str = ""
    select: Optional[Tuple[Tuple[int, int], ...]] = None
    conditional: bool = False
    exact: bool = True

    def __post_init__(self) -> None:
        if self.op not in ACCESS_OPS:
            raise ContractError(f"bad contract access op {self.op!r}")
        if self.count < 0:
            raise ContractError("contract access count must be >= 0")
        if self.elements is not None and self.elements < 0:
            raise ContractError("contract access elements must be >= 0")

    @property
    def key(self) -> Tuple[str, str]:
        return (self.file, self.dataset)

    @property
    def moves_data(self) -> bool:
        """Whether this access implies raw data movement.

        For ``create``: ``elements=0`` is an explicitly dataless
        definition; ``None`` (unknown) is conservatively treated as
        data-bearing (``create_dataset(data=...)`` with an unresolved
        extent still writes *something*).
        """
        if self.op in ("read", "write"):
            return True
        if self.op != "create":
            return False
        return self.elements is None or self.elements > 0

    @property
    def extent_elements(self) -> Optional[int]:
        """Total elements of a ``create`` extent (None when unknown)."""
        if self.extent is None:
            return None
        total = 1
        for dim in self.extent:
            if dim is None:
                return None
            total *= int(dim)
        return total

    @property
    def select_range(self) -> Optional[Tuple[int, int]]:
        """Merged ``[lo, hi)`` element bounds of the selection."""
        if not self.select:
            return None
        lo = min(start for start, _ in self.select)
        hi = max(start + count for start, count in self.select)
        return (lo, hi)

    def to_json_dict(self) -> dict:
        return {
            "op": self.op,
            "file": self.file,
            "dataset": self.dataset,
            "count": self.count,
            "elements": self.elements,
            "extent": list(self.extent) if self.extent is not None else None,
            "dtype": self.dtype,
            "layout": self.layout,
            "select": [list(s) for s in self.select] if self.select else None,
            "conditional": self.conditional,
            "exact": self.exact,
        }


def _access(op: str, file: str, dataset: str, **kwargs) -> ContractAccess:
    extent = kwargs.pop("shape", None)
    if extent is not None:
        extent = tuple(int(d) for d in extent)
    return ContractAccess(op=op, file=file,
                          dataset=normalize_dataset(dataset),
                          extent=extent, **kwargs)


def creates(file: str, dataset: str, shape=None, dtype: str = "",
            layout: str = "", elements: Optional[int] = None,
            **kwargs) -> ContractAccess:
    """Declare a dataset creation.  ``elements`` > 0 means the creation
    also writes that much initial data (``create_dataset(data=...)``);
    ``0`` declares an explicitly dataless definition; ``None`` leaves
    the data volume unknown (treated as data-bearing)."""
    return _access("create", file, dataset, shape=shape, dtype=dtype,
                   layout=layout, elements=elements, **kwargs)


def reads(file: str, dataset: str, elements: Optional[int] = None,
          count: int = 1, **kwargs) -> ContractAccess:
    """Declare a data read of a dataset."""
    return _access("read", file, dataset, elements=elements, count=count,
                   **kwargs)


def writes(file: str, dataset: str, elements: Optional[int] = None,
           count: int = 1, **kwargs) -> ContractAccess:
    """Declare a data write to an existing dataset."""
    return _access("write", file, dataset, elements=elements, count=count,
                   **kwargs)


def opens(file: str, dataset: str, **kwargs) -> ContractAccess:
    """Declare a metadata-only touch (open / shape query)."""
    return _access("open", file, dataset, **kwargs)


def resizes(file: str, dataset: str, shape=None, **kwargs) -> ContractAccess:
    """Declare a dataset resize — a metadata *mutation* (the shape
    message changes under any concurrent reader's feet; DY503 subject).
    ``shape`` is the new extent when statically known."""
    return _access("resize", file, dataset, shape=shape, **kwargs)


@dataclass
class TaskContract:
    """The full set of dataset interactions one task commits to.

    Attributes:
        task: Task name (filled in by :meth:`Workflow.validate` when
            declared with an empty name).
        accesses: The access list, in program order.
        source: ``"declared"`` or ``"inferred"``.
        exact: False when the extractor could not resolve every access
            (the unresolved parts are listed in ``notes``).
        notes: Human-readable extraction caveats.
        file_opens: Per-path file-open counts (filled by the extractor;
            feeds the open-in-loop anti-pattern rule).  Declared
            contracts leave this empty.
    """

    task: str = ""
    accesses: List[ContractAccess] = field(default_factory=list)
    source: str = "declared"
    exact: bool = True
    notes: List[str] = field(default_factory=list)
    file_opens: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def declare(cls, *accesses: ContractAccess, task: str = "") -> "TaskContract":
        """Build a declared contract from access constructors."""
        return cls(task=task, accesses=list(accesses), source="declared")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def datasets(self) -> List[Tuple[str, str]]:
        """Distinct ``(file, dataset)`` pairs, first-touch order."""
        seen = []
        for a in self.accesses:
            if a.key not in seen:
                seen.append(a.key)
        return seen

    def by_dataset(self) -> Dict[Tuple[str, str], List[ContractAccess]]:
        out: Dict[Tuple[str, str], List[ContractAccess]] = {}
        for a in self.accesses:
            out.setdefault(a.key, []).append(a)
        return out

    def ops_for(self, file: str, dataset: str) -> List[str]:
        key = (file, normalize_dataset(dataset))
        return [a.op for a in self.accesses if a.key == key]

    def data_reads(self) -> List[ContractAccess]:
        return [a for a in self.accesses if a.op == "read"]

    def data_writes(self) -> List[ContractAccess]:
        """Writes and data-bearing creates."""
        return [a for a in self.accesses
                if a.op == "write" or (a.op == "create" and a.moves_data)]

    def files(self) -> List[str]:
        seen = []
        for a in self.accesses:
            if a.file not in seen:
                seen.append(a.file)
        return seen

    def to_json_dict(self) -> dict:
        return {
            "task": self.task,
            "source": self.source,
            "exact": self.exact,
            "notes": list(self.notes),
            "file_opens": dict(self.file_opens),
            "accesses": [a.to_json_dict() for a in self.accesses],
        }


def validate_contract(contract: TaskContract, task_name: str = "") -> None:
    """Check a declared contract's structural invariants.

    Raises :class:`ContractError` on: a task-name mismatch, a read and a
    create of the same dataset declaring conflicting dtypes/layouts, or
    an access whose elements exceed the dataset's own declared extent.
    """
    name = contract.task or task_name
    if contract.task and task_name and contract.task != task_name:
        raise ContractError(
            f"contract task {contract.task!r} attached to task {task_name!r}")
    described: Dict[Tuple[str, str], ContractAccess] = {}
    for a in contract.accesses:
        if a.op != "create":
            continue
        prev = described.get(a.key)
        if prev is not None:
            if a.dtype and prev.dtype and a.dtype != prev.dtype:
                raise ContractError(
                    f"task {name!r} declares {a.dataset} in {a.file} with "
                    f"conflicting dtypes {prev.dtype!r} vs {a.dtype!r}")
            if a.layout and prev.layout and a.layout != prev.layout:
                raise ContractError(
                    f"task {name!r} declares {a.dataset} in {a.file} with "
                    f"conflicting layouts {prev.layout!r} vs {a.layout!r}")
        else:
            described[a.key] = a
    for a in contract.accesses:
        extent = described.get(a.key)
        if extent is None or extent.extent_elements is None:
            continue
        cap = extent.extent_elements
        if a.elements is not None and a.exact and a.elements > cap:
            raise ContractError(
                f"task {name!r} declares a {a.op} of {a.elements} element(s) "
                f"against {a.dataset} in {a.file}, which holds only {cap}")
        rng = a.select_range
        if rng is not None and a.exact and rng[1] > cap:
            raise ContractError(
                f"task {name!r} declares a {a.op} selection up to element "
                f"{rng[1]} of {a.dataset} in {a.file}, which holds only {cap}")


def reconcile(declared: TaskContract,
              inferred: TaskContract) -> List[str]:
    """Compare a declared contract against the AST-inferred one.

    Presence-level comparison — per ``(file, dataset)``, do the two
    sides agree on whether the task creates/reads/writes it?  Counts and
    element totals are not compared (loop bounds legitimately scale with
    parameters).  Inexact inferred contracts only report accesses the
    extractor *did* resolve; missing declared accesses are then skipped.
    Returns human-readable discrepancy strings (empty = agreement).
    """
    out: List[str] = []

    def kinds(contract: TaskContract, key) -> set:
        ops = set()
        for a in contract.accesses:
            if a.key != key:
                continue
            if a.op == "create":
                ops.add("create")
                if a.moves_data:
                    ops.add("write")
            elif a.op in ("read", "write"):
                ops.add(a.op)
        return ops

    all_keys = {a.key for a in declared.accesses}
    all_keys.update(a.key for a in inferred.accesses)
    for key in sorted(all_keys):
        d, i = kinds(declared, key), kinds(inferred, key)
        file, dataset = key
        for op in sorted(i - d):
            out.append(f"task performs an undeclared {op} of "
                       f"{dataset} in {file}")
        if inferred.exact:
            for op in sorted(d - i):
                out.append(f"task declares a {op} of {dataset} in {file} "
                           "its code never performs")
    return out
