"""Workflow description: tasks, stages, workflows.

A *task* is a named unit of work — a Python callable receiving a
:class:`~repro.workflow.runner.TaskRuntime` — optionally with a modeled
compute phase.  A *stage* is a logical grouping of tasks "designed to
achieve distinct milestones within a larger process" (the paper's term);
tasks within a stage may run in parallel across the cluster.  A *workflow*
is an ordered list of stages.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.workflow.contracts import TaskContract, validate_contract

__all__ = ["Task", "Stage", "Workflow"]


@dataclass
class Task:
    """One schedulable unit of work.

    Attributes:
        name: Unique name within the workflow (DaYu keys its per-task
            profiles by this).
        fn: The task body, called as ``fn(runtime)``.
        compute_seconds: Modeled compute time charged before the body's
            I/O completes (simulation of the non-I/O work).
        contract: Optional declared access contract — the datasets this
            task commits to reading/writing (see
            :mod:`repro.workflow.contracts`).  Validated by
            :meth:`Workflow.validate`; consumed by the static lint front
            end and the contract-drift checker.
        depends_on: Explicit upstream task names.  The stage-at-a-time
            runner ignores these (its stage barrier is stricter); the
            event-driven scheduler (:mod:`repro.workflow.dscheduler`)
            adds them to the dependency graph on top of whatever its
            dependency mode derives.
    """

    name: str
    fn: Callable[["TaskRuntime"], None]  # noqa: F821 - runner type
    compute_seconds: float = 0.0
    contract: Optional[TaskContract] = None
    depends_on: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.compute_seconds < 0:
            raise ValueError(f"task {self.name}: negative compute time")
        if self.contract is not None and not self.contract.task:
            self.contract.task = self.name
        self.depends_on = tuple(self.depends_on)


@dataclass
class Stage:
    """A logical grouping of tasks; parallel stages fan out across nodes.

    ``best_effort`` declares the stage's tasks droppable: when a task
    still fails after its retry budget, the runner records the loss in the
    :class:`~repro.workflow.runner.StageResult` and keeps going instead of
    aborting the workflow — the graceful-degradation mode for ensemble
    stages whose downstream consumers can cope with missing members.
    """

    name: str
    tasks: List[Task] = field(default_factory=list)
    parallel: bool = True
    best_effort: bool = False

    def add(self, task: Task) -> "Stage":
        self.tasks.append(task)
        return self


@dataclass
class Workflow:
    """An ordered pipeline of stages."""

    name: str
    stages: List[Stage] = field(default_factory=list)

    def add_stage(self, stage: Stage) -> "Workflow":
        self.stages.append(stage)
        return self

    def all_tasks(self) -> List[Task]:
        return [t for s in self.stages for t in s.tasks]

    def validate(self) -> None:
        """Check structural invariants (unique task names, non-empty,
        well-formed declared contracts)."""
        tasks = self.all_tasks()
        names = [t.name for t in tasks]
        if not names:
            raise ValueError(f"workflow {self.name!r} has no tasks")
        dupes = {n for n, c in Counter(names).items() if c > 1}
        if dupes:
            raise ValueError(
                f"workflow {self.name!r} has duplicate task names: {sorted(dupes)}"
            )
        known = set(names)
        for t in tasks:
            if t.contract is not None:
                validate_contract(t.contract, t.name)
            for dep in t.depends_on:
                if dep == t.name:
                    raise ValueError(
                        f"task {t.name!r} declares itself as a dependency")
                if dep not in known:
                    raise ValueError(
                        f"task {t.name!r} depends on unknown task {dep!r}")
