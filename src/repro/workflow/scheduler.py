"""Task placement policies.

The baseline is round-robin spreading; DaYu's analysis enables smarter
moves — the paper co-schedules PyFLEXTRKR's stages 3-5 onto the node that
produced their shared data, turning shared-filesystem traffic into
node-local access.
"""

from __future__ import annotations

from typing import Dict, List, Protocol

from repro.cluster.cluster import Cluster
from repro.workflow.model import Stage

__all__ = ["Scheduler", "RoundRobinScheduler", "PinnedScheduler", "CoLocateScheduler"]


class Scheduler(Protocol):
    """Maps each task of a stage to a node name."""

    def place(self, stage: Stage, cluster: Cluster) -> Dict[str, str]:
        """Return task name → node name for every task in ``stage``."""
        ...


class RoundRobinScheduler:
    """Spread tasks across live nodes in order — the workload-agnostic
    baseline.  Dead nodes (fault injection) are skipped, which is also what
    makes retry-with-re-placement land failed tasks on survivors."""

    def place(self, stage: Stage, cluster: Cluster) -> Dict[str, str]:
        nodes: List[str] = cluster.alive_node_names()
        return {
            task.name: nodes[i % len(nodes)]
            for i, task in enumerate(stage.tasks)
        }


class PinnedScheduler:
    """Explicit task → node pinning; unpinned tasks fall back to round-robin.

    Args:
        pins: Task name → node name.
    """

    def __init__(self, pins: Dict[str, str]) -> None:
        self.pins = dict(pins)
        self._fallback = RoundRobinScheduler()

    def place(self, stage: Stage, cluster: Cluster) -> Dict[str, str]:
        placement = self._fallback.place(stage, cluster)
        for task in stage.tasks:
            pin = self.pins.get(task.name)
            if pin is not None:
                if pin not in cluster.nodes:
                    raise KeyError(f"pinned node {pin!r} not in cluster")
                placement[task.name] = pin
        return placement

    def unpin(self, task: str) -> None:
        """Drop a pin (a retrying runner releases pins to dead nodes)."""
        self.pins.pop(task, None)


class CoLocateScheduler:
    """Place every task of the named stages on one node — DaYu's
    co-scheduling recommendation for producer/consumer stage chains.

    Args:
        stages: Stage names to co-locate.
        node: Target node (defaults to the cluster's first node).
    """

    def __init__(self, stages: List[str], node: str | None = None) -> None:
        self.stages = set(stages)
        self.node = node
        self._fallback = RoundRobinScheduler()

    def place(self, stage: Stage, cluster: Cluster) -> Dict[str, str]:
        if stage.name in self.stages:
            node = self.node or cluster.alive_node_names()[0]
            if node not in cluster.nodes:
                raise KeyError(f"co-locate node {node!r} not in cluster")
            return {task.name: node for task in stage.tasks}
        return self._fallback.place(stage, cluster)
