"""Task placement policies.

The baseline is round-robin spreading; DaYu's analysis enables smarter
moves — the paper co-schedules PyFLEXTRKR's stages 3-5 onto the node that
produced their shared data, turning shared-filesystem traffic into
node-local access.

Liveness contract
-----------------
Every policy places onto *alive* nodes only.  A cluster with zero
survivors (total node death under an aggressive fault plan) raises the
typed :class:`NoAliveNodesError`, which the runner converts into a clean
abort that preserves the partial :class:`~repro.workflow.runner
.WorkflowResult`.  Pins and co-locate targets that name a node the fault
plane has since killed fall back to a surviving node instead of pinning
work onto a corpse — an unknown node name is still a configuration error
and raises ``KeyError``.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence

from repro.cluster.cluster import Cluster
from repro.workflow.model import Stage

__all__ = [
    "Scheduler",
    "NoAliveNodesError",
    "RoundRobinScheduler",
    "PinnedScheduler",
    "CoLocateScheduler",
]


class NoAliveNodesError(RuntimeError):
    """Every node of the cluster is dead: nothing can be placed.

    Raised by placement policies (and the event scheduler) instead of
    crashing with ``ZeroDivisionError``/``IndexError``; the runner turns
    it into a clean abort with partial results preserved.
    """

    def __init__(self, dead_nodes: Sequence[str], what: str = "tasks") -> None:
        self.dead_nodes = sorted(dead_nodes)
        super().__init__(
            f"cannot place {what}: all {len(self.dead_nodes)} cluster "
            f"node(s) are dead ({', '.join(self.dead_nodes)})")


def _alive_or_raise(cluster: Cluster, what: str = "tasks") -> List[str]:
    nodes = cluster.alive_node_names()
    if not nodes:
        raise NoAliveNodesError(cluster.dead_nodes, what)
    return nodes


class Scheduler(Protocol):
    """Maps each task of a stage to a node name."""

    def place(self, stage: Stage, cluster: Cluster) -> Dict[str, str]:
        """Return task name → node name for every task in ``stage``."""
        ...


class RoundRobinScheduler:
    """Spread tasks across live nodes in order — the workload-agnostic
    baseline.  Dead nodes (fault injection) are skipped, which is also what
    makes retry-with-re-placement land failed tasks on survivors."""

    def place(self, stage: Stage, cluster: Cluster) -> Dict[str, str]:
        nodes = _alive_or_raise(cluster, f"stage {stage.name!r}")
        return {
            task.name: nodes[i % len(nodes)]
            for i, task in enumerate(stage.tasks)
        }


class PinnedScheduler:
    """Explicit task → node pinning; unpinned tasks fall back to round-robin.

    A pin onto a node that has since died is *not honored*: the task falls
    back to its round-robin assignment on a survivor, exactly as if the
    runner had released the pin.  Pinning to a node that never existed is
    still a ``KeyError`` — that is a broken plan, not a run-time state.

    Args:
        pins: Task name → node name.
    """

    def __init__(self, pins: Dict[str, str]) -> None:
        self.pins = dict(pins)
        self._fallback = RoundRobinScheduler()

    def place(self, stage: Stage, cluster: Cluster) -> Dict[str, str]:
        placement = self._fallback.place(stage, cluster)
        for task in stage.tasks:
            pin = self.pins.get(task.name)
            if pin is not None:
                if pin not in cluster.nodes:
                    raise KeyError(f"pinned node {pin!r} not in cluster")
                if not cluster.is_alive(pin):
                    continue  # dead pin: keep the survivor fallback
                placement[task.name] = pin
        return placement

    def unpin(self, task: str) -> None:
        """Drop a pin (a retrying runner releases pins to dead nodes)."""
        self.pins.pop(task, None)


class CoLocateScheduler:
    """Place every task of the named stages on one node — DaYu's
    co-scheduling recommendation for producer/consumer stage chains.

    When the explicit target node has died, co-location degrades to the
    first surviving node (the same default used when no node is given)
    rather than pinning the whole stage onto a corpse.

    Args:
        stages: Stage names to co-locate.
        node: Target node (defaults to the cluster's first alive node).
    """

    def __init__(self, stages: List[str], node: str | None = None) -> None:
        self.stages = set(stages)
        self.node = node
        self._fallback = RoundRobinScheduler()

    def place(self, stage: Stage, cluster: Cluster) -> Dict[str, str]:
        if stage.name in self.stages:
            alive = _alive_or_raise(cluster, f"stage {stage.name!r}")
            node = self.node
            if node is not None and node not in cluster.nodes:
                raise KeyError(f"co-locate node {node!r} not in cluster")
            if node is None or not cluster.is_alive(node):
                node = alive[0]
            return {task.name: node for task in stage.tasks}
        return self._fallback.place(stage, cluster)
