"""Event-driven per-task dataflow scheduler (ROADMAP item 1).

The stage-at-a-time runner dispatches one stage, waits for every task in
it, then places the next stage — placement is decided once per stage and
a single straggler holds the whole barrier.  This module replaces that
with a Dask-class event-driven core:

- **Per-task state machine** — every task moves ``waiting → ready →
  running → memory``/``failed`` (plus ``cancelled`` for tasks released
  by an abort).  A failed *attempt* transitions ``running → ready`` with
  its retry backoff folded into the ready time, so the PR 5
  retry/backoff/re-placement logic lives in the state machine instead of
  a runner-local loop.
- **Ready heap keyed by the cost model** — ready tasks are popped
  highest *upward rank* first (HEFT-style: a task's weight plus the
  heaviest downstream chain hanging off it), with weights taken from a
  PR 8 :class:`~repro.lint.cost.CostReport` when one is supplied and
  from modeled compute seconds otherwise.  Every pop is O(log n), which
  is what keeps per-decision overhead sub-millisecond at 100k tasks
  (``BENCH_scheduler.json``).
- **Data-locality placement** — a task is placed on the node holding
  the most of its input bytes, computed from predicted/observed SDG edge
  volumes (the paper's fig11 co-scheduling, generalized), falling back
  to the least-loaded alive node.  Dead nodes are never chosen; a
  cluster with zero survivors raises
  :class:`~repro.workflow.scheduler.NoAliveNodesError`.
- **Work stealing** — when the locality-preferred node's slots are all
  busy and another alive node would start the task earlier by more than
  ``steal_margin`` virtual seconds, the idle node steals it
  (:class:`~repro.monitor.events.TaskStolen`).
- **Speculative re-execution** — a completed task whose duration
  dwarfs the running median is re-executed on another node and the
  earlier virtual finish wins (:class:`~repro.monitor.events
  .TaskSpeculated`), bounding straggler damage.

Virtual time
------------
All task bodies still execute serially against the one simulated
cluster clock (that is what prices I/O honestly, contention included).
The scheduler maintains a *virtual* overlapped timeline on top: each
node owns ``cpus`` slot clocks, a dispatched task starts at
``max(ready_time, earliest slot)`` and finishes ``duration`` later, and
dependents become ready at the maximum of their producers' virtual
finishes.  Stage results carry the virtual spans, so
:attr:`~repro.workflow.runner.WorkflowResult.wall_time` is the honest
first-start/last-finish makespan even when stages overlap.
"""

from __future__ import annotations

import enum
import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.runner import (
    RETRY_BACKOFF_ACCOUNT,
    RetryPolicy,
    StageResult,
    TaskFailure,
    TaskRuntime,
    WorkflowResult,
    WorkflowRunner,
    _describe,
)
from repro.workflow.scheduler import NoAliveNodesError

__all__ = [
    "TaskState",
    "TERMINAL_STATES",
    "TaskEntry",
    "TaskGraph",
    "upward_ranks",
    "Assignment",
    "SpeculationPolicy",
    "DataflowScheduler",
    "SimulatedSchedule",
    "DataflowRunner",
]

PLACEMENT_POLICIES = ("locality", "least_loaded", "round_robin", "co_locate")


class TaskState(enum.Enum):
    """Dask-style task lifecycle states."""

    WAITING = "waiting"      # dependencies outstanding
    READY = "ready"          # in the ready heap (first run or retry)
    RUNNING = "running"      # an attempt is executing
    MEMORY = "memory"        # completed; output available to dependents
    FAILED = "failed"        # attempt budget exhausted
    CANCELLED = "cancelled"  # released unrun by an abort


#: States a task can legally end a run in.
TERMINAL_STATES = frozenset(
    {TaskState.MEMORY, TaskState.FAILED, TaskState.CANCELLED})


# ----------------------------------------------------------------------
# The task graph
# ----------------------------------------------------------------------
@dataclass
class TaskEntry:
    """One task's static scheduling facts."""

    name: str
    stage: str
    stage_index: int
    best_effort: bool = False
    #: The workflow task object (None for synthetic benchmark graphs).
    task: Optional[Task] = None
    deps: List[str] = field(default_factory=list)
    dependents: List[str] = field(default_factory=list)


class TaskGraph:
    """The dependency DAG the event scheduler executes.

    Two construction paths:

    - :meth:`from_workflow` derives edges from the stage plan
      (``mode="stage"``: every task depends on the whole previous stage —
      bit-compatible with stage-at-a-time semantics) or from contracts
      (``mode="dataflow"``: producer→consumer edges of the predicted SDG
      with read-volume weights, plus write/anti-dependency ordering
      edges; tasks with no usable contract conservatively barrier
      against their neighboring stages).  Explicit ``Task.depends_on``
      edges and serial-stage chains are added in both modes.
    - :meth:`add_task` / :meth:`add_edge` build synthetic graphs
      directly (the 100k-task scheduler benchmark).
    """

    def __init__(self) -> None:
        self.entries: Dict[str, TaskEntry] = {}
        #: Predicted/observed bytes the consumer pulls from the producer.
        self.volume: Dict[Tuple[str, str], int] = {}
        #: (file, dataset) keys behind each dataflow edge — what lets the
        #: runner refine predicted volumes with observed written bytes.
        self.edge_keys: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}

    # -- direct construction -------------------------------------------
    def add_task(self, name: str, stage: str = "", stage_index: int = 0,
                 best_effort: bool = False,
                 task: Optional[Task] = None) -> TaskEntry:
        if name in self.entries:
            raise ValueError(f"duplicate task {name!r}")
        entry = TaskEntry(name=name, stage=stage, stage_index=stage_index,
                          best_effort=best_effort, task=task)
        self.entries[name] = entry
        return entry

    def add_edge(self, producer: str, consumer: str, volume: int = 0,
                 key: Optional[Tuple[str, str]] = None) -> None:
        if producer not in self.entries or consumer not in self.entries:
            raise KeyError(f"edge {producer!r} -> {consumer!r} names an "
                           f"unknown task")
        pair = (producer, consumer)
        if pair not in self.volume:
            self.entries[producer].dependents.append(consumer)
            self.entries[consumer].deps.append(producer)
            self.volume[pair] = 0
        self.volume[pair] += volume
        if key is not None:
            self.edge_keys.setdefault(pair, []).append(key)

    @property
    def n_tasks(self) -> int:
        return len(self.entries)

    @property
    def n_edges(self) -> int:
        return len(self.volume)

    # -- workflow construction -----------------------------------------
    @classmethod
    def from_workflow(cls, workflow: Workflow, mode: str = "stage",
                      contracts=None) -> "TaskGraph":
        if mode not in ("stage", "dataflow"):
            raise ValueError(f"unknown dependency mode {mode!r}")
        graph = cls()
        stages: List[Stage] = workflow.stages
        for si, stage in enumerate(stages):
            for task in stage.tasks:
                graph.add_task(task.name, stage=stage.name, stage_index=si,
                               best_effort=stage.best_effort, task=task)
        # Serial stages execute their tasks in list order in both modes.
        for stage in stages:
            if not stage.parallel:
                for a, b in zip(stage.tasks, stage.tasks[1:]):
                    graph.add_edge(a.name, b.name)
        for task in workflow.all_tasks():
            for dep in task.depends_on:
                graph.add_edge(dep, task.name)
        if mode == "stage":
            for prev, cur in zip(stages, stages[1:]):
                for t in cur.tasks:
                    for p in prev.tasks:
                        graph.add_edge(p.name, t.name)
            return graph
        graph._add_dataflow_edges(workflow, stages, contracts)
        return graph

    def _add_dataflow_edges(self, workflow: Workflow, stages: List[Stage],
                            contracts) -> None:
        from repro.lint.predict import access_bytes, build_static_context

        ctx = build_static_context(workflow, contracts)
        touchers: Dict[Tuple[str, str], Dict[str, Tuple[bool, bool]]] = {}
        for task, contract in ctx.effective.items():
            for a in contract.accesses:
                reads, writes = touchers.setdefault(a.key, {}).get(
                    task, (False, False))
                if a.op == "read" or a.op == "open":
                    reads = True
                # A create is a write in the ordering sense even when the
                # extractor could not resolve its element count: it
                # *defines* the object a scheduled-later reader opens.
                if a.op in ("write", "resize", "create"):
                    writes = True
                touchers[a.key][task] = (reads, writes)
        for key, per_task in touchers.items():
            names = list(per_task)
            for i, a in enumerate(names):
                ar, aw = per_task[a]
                for b in names[i + 1:]:
                    br, bw = per_task[b]
                    if not (aw or bw):
                        continue  # two readers never need ordering
                    first, second = (a, b) if ctx.scheduled_before(a, b) \
                        else (b, a) if ctx.scheduled_before(b, a) \
                        else (None, None)
                    if first is None:
                        continue  # concurrent — a hazard, not an edge
                    vol = 0
                    if per_task[first][1] and per_task[second][0]:
                        # True flow edge: weight it with the consumer's
                        # predicted read volume for this dataset, falling
                        # back to the producer's predicted write volume
                        # when the reads' element counts are unresolved.
                        vol = sum(
                            access_bytes(acc) * max(acc.count, 1)
                            for acc in ctx.accesses_for(key, second)
                            if acc.op == "read")
                        if vol == 0:
                            vol = sum(
                                access_bytes(acc) * max(acc.count, 1)
                                for acc in ctx.accesses_for(key, first)
                                if acc.op in ("write", "create"))
                    self.add_edge(first, second, volume=vol, key=key)
        # A task whose contract tells us nothing is an opaque barrier:
        # order it against both neighboring stages.
        for si, stage in enumerate(stages):
            for task in stage.tasks:
                contract = ctx.effective.get(task.name)
                if contract is not None and contract.accesses:
                    continue
                if si > 0:
                    for p in stages[si - 1].tasks:
                        self.add_edge(p.name, task.name)
                if si + 1 < len(stages):
                    for d in stages[si + 1].tasks:
                        self.add_edge(task.name, d.name)

    # -- analysis -------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Kahn order (insertion-order deterministic); raises on cycles."""
        indeg = {n: len(e.deps) for n, e in self.entries.items()}
        frontier = [n for n, d in indeg.items() if d == 0]
        out: List[str] = []
        head = 0
        while head < len(frontier):
            name = frontier[head]
            head += 1
            out.append(name)
            for d in self.entries[name].dependents:
                indeg[d] -= 1
                if indeg[d] == 0:
                    frontier.append(d)
        if len(out) != len(self.entries):
            stuck = sorted(n for n, d in indeg.items() if d > 0)
            raise ValueError(
                f"task graph has a dependency cycle through {stuck[:6]}")
        return out


def upward_ranks(graph: TaskGraph,
                 weights: Optional[Mapping[str, float]] = None,
                 default_weight: float = 1.0) -> Dict[str, float]:
    """HEFT-style priority: a task's weight plus its heaviest downstream
    chain.  Scheduling high ranks first keeps the critical path moving."""
    weights = weights or {}
    ranks: Dict[str, float] = {}
    for name in reversed(graph.topological_order()):
        entry = graph.entries[name]
        downstream = max((ranks[d] for d in entry.dependents), default=0.0)
        ranks[name] = weights.get(name, default_weight) + downstream
    return ranks


# ----------------------------------------------------------------------
# The decision engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Assignment:
    """One placement decision."""

    task: str
    node: str
    vstart: float
    #: The locality-preferred node work stealing took the task from.
    stolen_from: Optional[str] = None
    #: Virtual seconds of queue wait the steal avoided.
    saved: float = 0.0


@dataclass(frozen=True)
class SpeculationPolicy:
    """When to launch a backup copy of a straggler.

    A completed task is a straggler when its duration exceeds
    ``factor`` × the running median over at least ``min_samples``
    completed tasks and is at least ``min_seconds`` long.
    """

    factor: float = 2.0
    min_samples: int = 3
    min_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ValueError("speculation factor must be > 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


@dataclass
class SimulatedSchedule:
    """Outcome of a pure (no-execution) scheduling simulation."""

    makespan: float
    decisions: int
    steals: int
    placement: Dict[str, str]
    vstart: Dict[str, float]
    vfinish: Dict[str, float]


class DataflowScheduler:
    """The pure decision core: state machine + ready heap + virtual slots.

    Knows nothing about task bodies, the simulated filesystem, or the
    monitor — :class:`DataflowRunner` drives it against a real cluster,
    and :meth:`simulate` drives it against a duration table (the 100k-task
    benchmark path).

    Args:
        graph: The dependency DAG.
        slots: Node name → parallel task slots (``Node.cpus``).
        policy: ``"locality"`` (SDG edge volumes, least-loaded fallback),
            ``"least_loaded"``, ``"round_robin"`` or ``"co_locate"``.
        priorities: Ready-heap key per task (higher pops first); default
            :func:`upward_ranks` over unit weights.
        alive: Node liveness oracle (``cluster.is_alive``); default all.
        pins: Task → node pins (a ``dayu-plan`` overlay).  A pin onto a
            dead node is released, exactly like
            :class:`~repro.workflow.scheduler.PinnedScheduler`.
        steal: Enable work stealing.
        steal_margin: Minimum virtual seconds an idle node must save
            before it may steal a task from its preferred node.
    """

    def __init__(
        self,
        graph: TaskGraph,
        slots: Mapping[str, int],
        policy: str = "locality",
        priorities: Optional[Mapping[str, float]] = None,
        alive: Optional[Callable[[str], bool]] = None,
        pins: Optional[Mapping[str, str]] = None,
        steal: bool = True,
        steal_margin: float = 1e-9,
    ) -> None:
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(f"unknown placement policy {policy!r}; "
                             f"expected one of {PLACEMENT_POLICIES}")
        if not slots:
            raise ValueError("scheduler needs at least one node")
        self.graph = graph
        self.policy = policy
        self.steal = steal
        self.steal_margin = steal_margin
        self.pins = dict(pins or {})
        self._alive = alive or (lambda node: True)
        self._node_order = list(slots)
        self._slots: Dict[str, List[float]] = {
            node: [0.0] * max(int(n), 1) for node, n in slots.items()}
        if priorities is None:
            priorities = upward_ranks(graph)
        else:
            graph.topological_order()  # still validates acyclicity
        self.priority = dict(priorities)
        #: Called with ``(task, virtual_ready_time, priority)`` whenever a
        #: task enters the ready heap (the TaskReady hook).
        self.on_ready: Optional[Callable[[str, float, float], None]] = None

        self.state: Dict[str, TaskState] = {
            name: TaskState.WAITING for name in graph.entries}
        self.ready_at: Dict[str, float] = {name: 0.0 for name in graph.entries}
        self.vstart: Dict[str, float] = {}
        self.vfinish: Dict[str, float] = {}
        self.placement: Dict[str, str] = {}
        self._indeg: Dict[str, int] = {
            name: len(e.deps) for name, e in graph.entries.items()}
        self._heap: List[Tuple[float, int, str]] = []
        self._seq = 0
        self._pending_slot: Dict[str, float] = {}
        self._rr = 0
        self.decisions = 0
        self.steals = 0
        self.makespan = 0.0
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Seed the ready heap with every dependency-free task."""
        if self._started:
            raise RuntimeError("scheduler already started")
        self._started = True
        for name, entry in self.graph.entries.items():
            if not entry.deps:
                self._make_ready(name, 0.0)

    def _make_ready(self, name: str, at: float) -> None:
        self.state[name] = TaskState.READY
        self.ready_at[name] = max(self.ready_at[name], at)
        self._seq += 1
        heapq.heappush(self._heap, (-self.priority.get(name, 0.0),
                                    self._seq, name))
        if self.on_ready is not None:
            self.on_ready(name, self.ready_at[name],
                          self.priority.get(name, 0.0))

    def pop_ready(self) -> Optional[str]:
        """Highest-priority ready task, or None when the heap drains."""
        while self._heap:
            _, _, name = heapq.heappop(self._heap)
            if self.state[name] is TaskState.READY:
                return name
        return None

    # -- placement ------------------------------------------------------
    def _alive_nodes(self, what: str) -> List[str]:
        alive = [n for n in self._node_order if self._alive(n)]
        if not alive:
            dead = [n for n in self._node_order if not self._alive(n)]
            raise NoAliveNodesError(dead, what)
        return alive

    def _slot_head(self, node: str) -> float:
        """Earliest slot free time; +inf when every slot of the node is
        occupied by an in-flight (not yet completed) task."""
        slot_heap = self._slots[node]
        return slot_heap[0] if slot_heap else math.inf

    def _least_loaded(self, alive: List[str],
                      exclude: Optional[str] = None) -> Optional[str]:
        """Alive node with the earliest free slot, or None when every
        candidate is fully in flight."""
        best = None
        best_t = math.inf
        for node in alive:
            if node == exclude:
                continue
            t = self._slot_head(node)
            if t < best_t:
                best, best_t = node, t
        return best

    def _preferred_node(self, name: str, alive: List[str]) -> Tuple[str, bool]:
        """(node, hard) — hard placements (live pins) are never stolen."""
        pin = self.pins.get(name)
        if pin is not None and pin in self._slots and self._alive(pin):
            return pin, True
        if self.policy == "co_locate":
            return alive[0], False
        if self.policy == "round_robin":
            node = alive[self._rr % len(alive)]
            self._rr += 1
            return node, False
        if self.policy == "locality":
            # Input bytes per producing node; arg-max is deterministic
            # because ties resolve in node definition order.
            tally: Dict[str, int] = {}
            for dep in self.graph.entries[name].deps:
                node = self.placement.get(dep)
                if node is None or not self._alive(node):
                    continue
                nbytes = self.graph.volume.get((dep, name), 0)
                if nbytes > 0:
                    tally[node] = tally.get(node, 0) + nbytes
            best, best_bytes = None, 0
            for node in alive:
                nbytes = tally.get(node, 0)
                if nbytes > best_bytes:
                    best, best_bytes = node, nbytes
            if best is not None:
                return best, False
        return self._least_loaded(alive) or alive[0], False

    def assign(self, name: str) -> Assignment:
        """Place one popped ready task and occupy its slot."""
        if self.state[name] is not TaskState.READY:
            raise RuntimeError(f"cannot assign {name!r} in state "
                               f"{self.state[name].value}")
        alive = self._alive_nodes(f"task {name!r}")
        ready = self.ready_at[name]
        node, hard = self._preferred_node(name, alive)
        stolen_from: Optional[str] = None
        saved = 0.0
        if self.steal and not hard and len(alive) > 1:
            t_pref = max(ready, self._slot_head(node))
            thief = self._least_loaded(alive, exclude=node)
            if thief is not None:
                t_thief = max(ready, self._slot_head(thief))
                if t_thief + self.steal_margin < t_pref:
                    stolen_from, node = node, thief
                    saved = t_pref - t_thief
                    self.steals += 1
        if not self._slots[node]:
            # Every slot of the chosen node holds an in-flight task
            # whose finish is still unknown — reroute to a node with a
            # free slot rather than inventing a start time.
            alt = self._least_loaded(alive, exclude=node)
            if alt is None or not self._slots[alt]:
                raise RuntimeError(
                    f"cannot assign {name!r}: every slot of every alive "
                    f"node holds an in-flight task (complete or fail one "
                    f"first)")
            if not hard and stolen_from is None:
                stolen_from, saved = node, 0.0
                self.steals += 1
            node = alt
        slot_free = heapq.heappop(self._slots[node])
        vstart = max(ready, slot_free)
        self._pending_slot[name] = vstart
        self.state[name] = TaskState.RUNNING
        self.placement[name] = node
        self.vstart[name] = vstart
        self.decisions += 1
        return Assignment(task=name, node=node, vstart=vstart,
                          stolen_from=stolen_from, saved=saved)

    def peek_extra_slot(self, exclude: str) -> Optional[Tuple[str, float]]:
        """Earliest free slot on an alive node other than ``exclude`` —
        where a speculative backup copy would run."""
        alive = [n for n in self._node_order
                 if self._alive(n) and n != exclude]
        node = self._least_loaded(alive) if alive else None
        if node is None or not self._slots[node]:
            return None
        return node, self._slot_head(node)

    def occupy_slot(self, node: str) -> float:
        """Claim ``node``'s earliest slot (speculative copies)."""
        return heapq.heappop(self._slots[node])

    def release_slot(self, node: str, until: float) -> None:
        heapq.heappush(self._slots[node], until)

    # -- transitions ----------------------------------------------------
    def complete(self, name: str, duration: float,
                 extra_finish: Optional[float] = None) -> float:
        """``running → memory``; returns the virtual finish time.

        ``extra_finish`` is a speculative backup copy's virtual finish;
        the earlier of the two wins.
        """
        vstart = self._require_running(name)
        vfinish = vstart + max(duration, 0.0)
        if extra_finish is not None:
            vfinish = min(vfinish, extra_finish)
        node = self.placement[name]
        heapq.heappush(self._slots[node], vfinish)
        self.state[name] = TaskState.MEMORY
        self.vfinish[name] = vfinish
        self.makespan = max(self.makespan, vfinish)
        self._release_dependents(name, vfinish)
        return vfinish

    def fail(self, name: str, elapsed: float = 0.0, backoff: float = 0.0,
             terminal: bool = False, release: bool = False) -> float:
        """A failed attempt: ``running → ready`` (retry after ``backoff``)
        or ``running → failed`` (terminal).

        Terminal failures on best-effort stages set ``release=True`` so
        dependents still become ready (degraded-input semantics — the
        chaos merge recomputes lost partitions).
        """
        vstart = self._require_running(name)
        vfail = vstart + max(elapsed, 0.0)
        node = self.placement[name]
        heapq.heappush(self._slots[node], vfail)
        if terminal:
            self.state[name] = TaskState.FAILED
            self.vfinish[name] = vfail
            self.makespan = max(self.makespan, vfail)
            if release:
                self._release_dependents(name, vfail)
        else:
            self.state[name] = TaskState.WAITING  # re-enters via _make_ready
            self._make_ready(name, vfail + max(backoff, 0.0))
        return vfail

    def cancel_pending(self) -> List[str]:
        """Abort: every non-terminal, non-running task → ``cancelled``."""
        cancelled = []
        for name, state in self.state.items():
            if state in (TaskState.WAITING, TaskState.READY):
                self.state[name] = TaskState.CANCELLED
                cancelled.append(name)
        self._heap.clear()
        return cancelled

    def _require_running(self, name: str) -> float:
        if self.state[name] is not TaskState.RUNNING:
            raise RuntimeError(f"task {name!r} is not running "
                               f"({self.state[name].value})")
        return self._pending_slot.pop(name)

    def _release_dependents(self, name: str, at: float) -> None:
        for dep in self.graph.entries[name].dependents:
            self._indeg[dep] -= 1
            self.ready_at[dep] = max(self.ready_at[dep], at)
            if self._indeg[dep] == 0 and self.state[dep] is TaskState.WAITING:
                self._make_ready(dep, at)

    # -- introspection --------------------------------------------------
    def busy_counts(self, at: float) -> Dict[str, int]:
        """Slots per node still occupied at virtual time ``at``."""
        return {
            node: sum(1 for t in slot_heap if t > at)
            for node, slot_heap in self._slots.items()
        }

    def terminal_states(self) -> Dict[str, str]:
        return {name: state.value for name, state in self.state.items()}

    # -- pure simulation (the benchmark path) ---------------------------
    def simulate(
        self,
        durations: Optional[Mapping[str, float]] = None,
        default_duration: float = 1.0,
    ) -> SimulatedSchedule:
        """Schedule the whole graph without executing anything.

        Every decision the real runner would make — ready promotion,
        heap pops, locality/stealing placement, slot accounting — runs
        for real; only the task bodies are replaced by a duration table.
        """
        durations = durations or {}
        self.start()
        while True:
            name = self.pop_ready()
            if name is None:
                break
            self.assign(name)
            self.complete(name, durations.get(name, default_duration))
        leftovers = [n for n, s in self.state.items()
                     if s is not TaskState.MEMORY]
        if leftovers:
            raise RuntimeError(
                f"simulation left {len(leftovers)} task(s) unfinished "
                f"(cycle?): {sorted(leftovers)[:6]}")
        return SimulatedSchedule(
            makespan=self.makespan,
            decisions=self.decisions,
            steals=self.steals,
            placement=dict(self.placement),
            vstart=dict(self.vstart),
            vfinish=dict(self.vfinish),
        )


# ----------------------------------------------------------------------
# The event-driven runner
# ----------------------------------------------------------------------
class DataflowRunner(WorkflowRunner):
    """Executes workflows through the event-driven scheduler.

    Drop-in alternative to :class:`~repro.workflow.runner.WorkflowRunner`
    (same mapper/monitor/faults/retry plumbing, same
    :class:`~repro.workflow.runner.WorkflowResult` shape — stage results
    carry virtual spans, so ``wall_time`` is the overlapped makespan).

    Args:
        cluster, mapper, path_resolver, retry_policy, faults: As the
            stage-at-a-time runner.
        placement: Placement policy (``PLACEMENT_POLICIES``).
        dependency_mode: ``"stage"`` (barrier edges; semantics identical
            to stage-at-a-time) or ``"dataflow"`` (contract-derived
            edges; independent stages overlap).
        contracts: Optional pre-extracted workflow contracts for
            ``dataflow`` mode (defaults to running the AST extractor).
        cost_report: Optional PR 8 cost report; its per-task predicted
            seconds weight the ready-heap priorities.
        pins: Task → node pins layered over the policy (``dayu-plan``).
        steal: Enable work stealing.
        speculation: Optional :class:`SpeculationPolicy` enabling
            speculative re-execution of stragglers.
    """

    def __init__(
        self,
        cluster,
        mapper,
        placement: str = "locality",
        dependency_mode: str = "stage",
        contracts=None,
        cost_report=None,
        pins: Optional[Mapping[str, str]] = None,
        steal: bool = True,
        speculation: Optional[SpeculationPolicy] = None,
        path_resolver=None,
        retry_policy: Optional[RetryPolicy] = None,
        faults=None,
    ) -> None:
        super().__init__(cluster, mapper, scheduler=None,
                         path_resolver=path_resolver,
                         retry_policy=retry_policy, faults=faults)
        if placement not in PLACEMENT_POLICIES:
            raise ValueError(f"unknown placement policy {placement!r}")
        self.placement = placement
        self.dependency_mode = dependency_mode
        self.contracts = contracts
        self.cost_report = cost_report
        self.pins = dict(pins or {})
        self.steal = steal
        self.speculation = speculation
        #: The decision engine of the most recent :meth:`run`.
        self.last_engine: Optional[DataflowScheduler] = None

    # -- construction helpers ------------------------------------------
    def _task_weights(self, graph: TaskGraph) -> Dict[str, float]:
        if self.cost_report is not None:
            return {name: t.total_seconds
                    for name, t in self.cost_report.tasks.items()}
        return {
            name: entry.task.compute_seconds
            for name, entry in graph.entries.items()
            if entry.task is not None and entry.task.compute_seconds > 0
        }

    def _build_engine(self, workflow: Workflow) -> DataflowScheduler:
        graph = TaskGraph.from_workflow(
            workflow, mode=self.dependency_mode, contracts=self.contracts)
        ranks = upward_ranks(graph, self._task_weights(graph))
        return DataflowScheduler(
            graph,
            slots={n.name: n.cpus for n in self.cluster.nodes.values()},
            policy=self.placement,
            priorities=ranks,
            alive=self.cluster.is_alive,
            pins=self.pins,
            steal=self.steal,
        )

    def _refine_edge_volumes(self, engine: DataflowScheduler,
                             name: str) -> None:
        """Replace a finished producer's predicted out-edge volumes with
        the bytes it actually wrote (observed SDG edge volumes)."""
        profile = self.mapper.profiles.get(name)
        if profile is None:
            return
        written: Dict[Tuple[str, str], int] = {}
        for s in profile.dataset_stats:
            if s.bytes_written:
                key = (s.file, s.data_object)
                written[key] = written.get(key, 0) + s.bytes_written
        if not written:
            return
        graph = engine.graph
        for consumer in graph.entries[name].dependents:
            keys = graph.edge_keys.get((name, consumer))
            if not keys:
                continue
            observed = sum(written.get(k, 0) for k in keys)
            if observed:
                graph.volume[(name, consumer)] = observed

    # -- execution ------------------------------------------------------
    def run(self, workflow: Workflow) -> WorkflowResult:
        workflow.validate()
        result = WorkflowResult(workflow=workflow.name)
        self.last_result = result
        engine = self._build_engine(workflow)
        self.last_engine = engine
        monitor = self._monitor
        clock = self.cluster.clock
        policy = self.retry_policy or RetryPolicy(max_attempts=1)

        stage_results: Dict[str, StageResult] = {}
        stage_remaining: Dict[str, int] = {}
        stage_started: Dict[str, bool] = {}
        stage_span: Dict[str, Tuple[float, float]] = {}
        for stage in workflow.stages:
            sr = StageResult(name=stage.name, wall_time=0.0)
            stage_results[stage.name] = sr
            result.stage_results.append(sr)
            stage_remaining[stage.name] = len(stage.tasks)
            stage_started[stage.name] = False

        def publish(event) -> None:
            if monitor is not None:
                monitor.publish(event)

        def stage_begin(stage_name: str) -> None:
            if not stage_started[stage_name]:
                stage_started[stage_name] = True
                from repro.monitor.events import StageStarted

                publish(StageStarted(time=clock.now, task=None,
                                     stage=stage_name))

        def note_span(stage_name: str, vstart: float, vfinish: float) -> None:
            lo, hi = stage_span.get(stage_name, (vstart, vfinish))
            stage_span[stage_name] = (min(lo, vstart), max(hi, vfinish))

        def stage_end(stage_name: str, failed: bool) -> None:
            sr = stage_results[stage_name]
            from repro.monitor.events import StageFinished

            publish(StageFinished(time=clock.now, task=None, stage=stage_name,
                                  wall_time=sr.wall_time, failed=failed))

        if monitor is not None:
            from repro.monitor.events import TaskReady

            def on_ready(name: str, at: float, priority: float) -> None:
                entry = engine.graph.entries[name]
                publish(TaskReady(time=clock.now, task=name,
                                  stage=entry.stage, at=at,
                                  priority=priority))

            engine.on_ready = on_ready

        attempts: Dict[str, int] = {}
        last_node: Dict[str, str] = {}
        completed_durations: List[float] = []
        abort: Optional[BaseException] = None
        try:
            engine.start()
            while True:
                self._poll_faults()
                name = engine.pop_ready()
                if name is None:
                    break
                entry = engine.graph.entries[name]
                sr = stage_results[entry.stage]
                attempt = attempts.get(name, 0) + 1
                attempts[name] = attempt
                if attempt > 1:
                    delay = policy.backoff(attempt)
                    if delay > 0:
                        clock.advance(delay, account=RETRY_BACKOFF_ACCOUNT)
                    self._poll_faults()
                assignment = engine.assign(name)
                node = assignment.node
                stage_begin(entry.stage)
                if attempt > 1:
                    sr.retries += 1
                    from repro.monitor.events import TaskRetried

                    publish(TaskRetried(
                        time=clock.now, task=name, attempt=attempt,
                        backoff=policy.backoff(attempt), node=node,
                        previous_node=last_node.get(name, "")))
                if assignment.stolen_from is not None:
                    from repro.monitor.events import TaskStolen

                    publish(TaskStolen(
                        time=clock.now, task=name, node=node,
                        victim=assignment.stolen_from,
                        saved=assignment.saved))
                last_node[name] = node
                final = attempt >= policy.max_attempts

                if not self.cluster.is_alive(node):
                    exc: BaseException = _dead_node_error(name, node)
                    self._publish_failed(name, node, attempt, exc, final,
                                         started=False)
                    self._settle_failure(engine, entry, sr, name, node,
                                         attempts, exc, final, policy,
                                         elapsed=0.0)
                    if final and not entry.best_effort:
                        abort = exc
                        break
                    continue

                counts = engine.busy_counts(assignment.vstart)
                counts[node] = counts.get(node, 0) + 1
                self.cluster.set_stage_concurrency(counts)
                start = clock.now
                try:
                    with self.mapper.task(name) as ctx:
                        runtime = TaskRuntime(
                            self.cluster, ctx, entry.task, node,
                            path_resolver=self.path_resolver)
                        if entry.task.compute_seconds:
                            runtime.compute(entry.task.compute_seconds)
                        entry.task.fn(runtime)
                except Exception as exc:
                    self.cluster.reset_concurrency()
                    self._publish_failed(name, node, attempt, exc, final)
                    self._settle_failure(engine, entry, sr, name, node,
                                         attempts, exc, final, policy,
                                         elapsed=clock.now - start)
                    if final and not entry.best_effort:
                        abort = exc
                        break
                    continue
                self.cluster.reset_concurrency()
                duration = clock.now - start
                extra_finish = self._maybe_speculate(
                    engine, entry, name, node, duration, completed_durations)
                vfinish = engine.complete(name, duration,
                                          extra_finish=extra_finish)
                self._refine_edge_volumes(engine, name)
                effective = vfinish - assignment.vstart
                completed_durations.append(duration)
                sr.task_durations[name] = effective
                sr.attempts[name] = attempt
                sr.placement[name] = engine.placement[name]
                note_span(entry.stage, assignment.vstart, vfinish)
                stage_remaining[entry.stage] -= 1
                if stage_remaining[entry.stage] == 0:
                    self._close_stage(sr, stage_span)
                    stage_end(entry.stage, failed=False)
            if abort is not None:
                engine.cancel_pending()
        except NoAliveNodesError as exc:
            # Total cluster death mid-run: clean abort, partial results
            # (completed stages, profiles, placements) preserved.
            engine.cancel_pending()
            abort = exc
        finally:
            self.cluster.reset_concurrency()
            for stage in workflow.stages:
                sr = stage_results[stage.name]
                if stage_remaining[stage.name] > 0:
                    self._close_stage(sr, stage_span)
                    sr.aborted = abort is not None
                    if stage_started[stage.name]:
                        stage_end(stage.name, failed=sr.aborted)
            # Stages that never ran a task chain after their predecessor
            # so the makespan envelope stays well-defined.
            prev_finish = 0.0
            for stage in workflow.stages:
                sr = stage_results[stage.name]
                if stage.name in stage_span:
                    prev_finish = max(prev_finish, sr.finished_at)
                else:
                    sr.started_at = sr.finished_at = prev_finish
            result.profiles = dict(self.mapper.profiles)
        if abort is not None:
            raise abort
        return result

    # -- helpers --------------------------------------------------------
    def _close_stage(self, sr: StageResult,
                     stage_span: Dict[str, Tuple[float, float]]) -> None:
        span = stage_span.get(sr.name)
        if span is None:
            return
        sr.started_at, sr.finished_at = span
        sr.wall_time = span[1] - span[0]

    def _settle_failure(self, engine: DataflowScheduler, entry: TaskEntry,
                        sr: StageResult, name: str, node: str,
                        attempts: Dict[str, int], exc: BaseException,
                        final: bool, policy: RetryPolicy,
                        elapsed: float) -> None:
        if final:
            engine.fail(name, elapsed=elapsed, terminal=True,
                        release=entry.best_effort)
            sr.attempts[name] = attempts[name]
            sr.placement[name] = node
            sr.failures[name] = TaskFailure(
                task=name, node=node, attempts=attempts[name],
                error=_describe(exc), time=self.cluster.clock.now)
        else:
            engine.fail(name, elapsed=elapsed,
                        backoff=policy.backoff(attempts[name] + 1),
                        terminal=False)

    def _maybe_speculate(self, engine: DataflowScheduler, entry: TaskEntry,
                         name: str, node: str, duration: float,
                         completed: List[float]) -> Optional[float]:
        """Re-execute a straggler on another node; returns the backup
        copy's virtual finish (or None when no backup ran)."""
        spec = self.speculation
        if spec is None or len(completed) < spec.min_samples:
            return None
        if duration < spec.min_seconds:
            return None
        median = sorted(completed)[len(completed) // 2]
        if median <= 0 or duration <= spec.factor * median:
            return None
        peek = engine.peek_extra_slot(exclude=node)
        if peek is None:
            return None
        alt, slot_head = peek
        slot_free = engine.occupy_slot(alt)
        clock = self.cluster.clock
        start = clock.now
        # The probe runs under a throwaway mapper: its I/O pays real
        # device costs on the shared clock (speculation is not free),
        # but it must not pollute profiles, graphs, or live events.
        from repro.mapper.mapper import DataSemanticMapper

        probe = DataSemanticMapper(clock, self.mapper.config)
        try:
            with probe.task(name) as ctx:
                runtime = TaskRuntime(self.cluster, ctx, entry.task, alt,
                                      path_resolver=self.path_resolver)
                if entry.task.compute_seconds:
                    runtime.compute(entry.task.compute_seconds)
                entry.task.fn(runtime)
        except Exception:
            engine.release_slot(alt, slot_free)
            return None
        backup_duration = clock.now - start
        spec_start = max(engine.vstart[name], slot_free)
        spec_finish = spec_start + backup_duration
        engine.release_slot(alt, spec_finish)
        original_finish = engine.vstart[name] + duration
        if self._monitor is not None:
            from repro.monitor.events import TaskSpeculated

            self._monitor.publish(TaskSpeculated(
                time=clock.now, task=name, node=node,
                speculative_node=alt, original_seconds=duration,
                speculative_seconds=backup_duration,
                won=spec_finish < original_finish))
        return spec_finish


def _dead_node_error(task: str, node: str):
    from repro.posix.simfs import FsError

    return FsError(f"task {task!r} placed on dead node {node!r}")
