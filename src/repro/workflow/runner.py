"""Workflow execution on a simulated cluster under DaYu profiling.

Time model
----------
All I/O charges the single cluster clock, so running a parallel stage's
tasks one after another accumulates the *sum* of their durations on the
raw clock.  Real parallel execution takes the *max*, with each device
slowed by its contention model.  The runner therefore:

1. declares the stage's per-node task counts to the cluster (devices apply
   their contention factors);
2. runs the tasks sequentially, measuring each task's simulated duration;
3. reports the stage's wall-clock as ``max`` (parallel) or ``sum``
   (serial) of the task durations.

The reported workflow/stage wall-clock times — the quantities the paper's
Figures 11 and 12 compare — live in the :class:`WorkflowResult`; the raw
clock keeps its total-work semantics for profile ordering.

Failure model
-------------
Real distributed workflows fail, and the runner treats failure as a
first-class state rather than an abort:

- A task body that raises fails *that attempt*; the mapper discards the
  attempt's partial profile and the runner publishes a ``TaskFailed``
  monitor event.
- With a :class:`RetryPolicy`, failed attempts are re-run after an
  exponential backoff charged to the ``retry_backoff`` clock account
  (application wait time — deliberately *not* a DaYu overhead account).
  When the task's node died, the retry is re-placed onto a surviving
  node via the scheduler.
- A task that exhausts its attempts on a ``best_effort`` stage is
  recorded in the :class:`StageResult` and the run continues (graceful
  degradation); on an ordinary stage the original exception propagates —
  but only after the partial :class:`StageResult` is preserved on the
  :class:`WorkflowResult` and the ``StageFinished`` event is published
  with ``failed=True``, so monitor bus accounting still reconciles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.mapper.mapper import DataSemanticMapper, TaskContext, TaskProfile
from repro.posix.simfs import FsError
from repro.vol.objects import VolFile
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.scheduler import (
    NoAliveNodesError,
    RoundRobinScheduler,
    Scheduler,
)

__all__ = [
    "TaskRuntime",
    "RetryPolicy",
    "TaskFailure",
    "StageResult",
    "WorkflowResult",
    "WorkflowRunner",
]

COMPUTE_ACCOUNT = "compute"
#: Clock account for retry backoff waits.  This is *application* wait
#: time caused by faults, kept out of every DaYu overhead account so the
#: Figure 9/10 breakdowns still isolate pure tracing cost.
RETRY_BACKOFF_ACCOUNT = "retry_backoff"


class TaskRuntime:
    """What a task body sees: instrumented I/O plus cluster context."""

    def __init__(
        self,
        cluster: Cluster,
        ctx: TaskContext,
        task: Task,
        node: str,
        path_resolver: Optional[Callable[[str, str, str], str]] = None,
    ) -> None:
        self.cluster = cluster
        self.ctx = ctx
        self.task = task
        self.node = node
        self.fs = cluster.fs
        self.clock = cluster.clock
        self._path_resolver = path_resolver

    def _resolve(self, path: str, mode: str) -> str:
        """Apply the runner's path resolver (transparent caching hook) and
        enforce node locality on the resolved path."""
        if self._path_resolver is not None:
            path = self._path_resolver(path, mode, self.node)
        owner = self.cluster.owning_node(path)
        if owner is not None and owner != self.node:
            raise FsError(
                f"task {self.task.name!r} on node {self.node!r} cannot access "
                f"{path!r} (local to node {owner!r})"
            )
        return path

    def open(self, path: str, mode: str = "r", **kwargs) -> VolFile:
        """Open an instrumented HDF5-like file; node-local paths are
        checked for locality (a task cannot reach another node's disk)."""
        return self.ctx.open(self.fs, self._resolve(path, mode), mode, **kwargs)

    def open_netcdf(self, path: str, mode: str = "r"):
        """Open an instrumented netCDF-like file (same locality rules)."""
        return self.ctx.open_netcdf(self.fs, self._resolve(path, mode), mode)

    def compute(self, seconds: float) -> None:
        """Model a compute phase of the task."""
        self.clock.advance(seconds, account=COMPUTE_ACCOUNT)

    def local_path(self, tier: str, filename: str) -> str:
        """A path on this task's node-local tier."""
        self.cluster.local_device(self.node, tier)  # validates the tier
        return f"{Cluster.local_prefix(self.node, tier)}/{filename}"


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner re-attempts failed tasks.

    Attributes:
        max_attempts: Total tries per task (1 = no retries).
        backoff_base: Wait before the first retry, in simulated seconds.
        backoff_factor: Exponential growth of the wait per further retry.
        replace: Re-place a retry through the scheduler when the task's
            node died (surviving nodes only); with False the retry stays
            put and fails again immediately on a dead node.
    """

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    replace: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Wait before ``attempt`` (attempt 2 waits the base delay)."""
        if attempt <= 1:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (attempt - 2)


@dataclass
class TaskFailure:
    """One task that still failed after its full retry budget."""

    task: str
    node: str
    attempts: int
    error: str
    time: float

    def to_json_dict(self) -> dict:
        return {
            "task": self.task,
            "node": self.node,
            "attempts": self.attempts,
            "error": self.error,
            "time": self.time,
        }


@dataclass
class StageResult:
    """Timing of one executed stage."""

    name: str
    wall_time: float
    #: Stage span on the workflow's *virtual* timeline.  Stage-at-a-time
    #: execution chains stages back to back (``started_at`` of stage *k*
    #: is ``finished_at`` of stage *k-1*); the event scheduler overlaps
    #: stages, so spans may intersect and the workflow makespan is the
    #: first-start/last-finish envelope, not the sum of walls.
    started_at: float = 0.0
    finished_at: float = 0.0
    task_durations: Dict[str, float] = field(default_factory=dict)
    placement: Dict[str, str] = field(default_factory=dict)
    #: Tasks lost after retries (best-effort degradation or an abort).
    failures: Dict[str, TaskFailure] = field(default_factory=dict)
    #: Attempts each task consumed (1 = ran clean).  Fed to the DY505
    #: retry-race rule via ``dayu-lint --attempts``.
    attempts: Dict[str, int] = field(default_factory=dict)
    #: Total attempts beyond the first across the stage's tasks.
    retries: int = 0
    #: True when the stage aborted the workflow (non-best-effort failure);
    #: the remaining fields then cover the completed portion.
    aborted: bool = False

    @property
    def total_work(self) -> float:
        return sum(self.task_durations.values())

    @property
    def degraded(self) -> bool:
        """Lost at least one task (but may still have finished)."""
        return bool(self.failures)

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_time": self.wall_time,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "task_durations": dict(self.task_durations),
            "placement": dict(self.placement),
            "failures": {t: f.to_json_dict()
                         for t, f in self.failures.items()},
            "attempts": dict(self.attempts),
            "retries": self.retries,
            "aborted": self.aborted,
        }


@dataclass
class WorkflowResult:
    """Timing and profiles of one executed workflow."""

    workflow: str
    stage_results: List[StageResult] = field(default_factory=list)
    profiles: Dict[str, TaskProfile] = field(default_factory=dict)

    @property
    def wall_time(self) -> float:
        """End-to-end makespan: first stage start to last stage finish.

        Stage-at-a-time execution chains stages, so this equals the sum
        of stage wall-clocks there; the event-driven scheduler overlaps
        stages, and summing overlapping walls would double-count — the
        envelope is the honest makespan.  The old sum survives as
        :attr:`serial_time` for stage-barrier comparisons.
        """
        if not self.stage_results:
            return 0.0
        return (max(s.finished_at for s in self.stage_results)
                - min(s.started_at for s in self.stage_results))

    @property
    def serial_time(self) -> float:
        """Sum of stage wall-clocks (the pre-overlap ``wall_time``)."""
        return sum(s.wall_time for s in self.stage_results)

    def stage(self, name: str) -> StageResult:
        for s in self.stage_results:
            if s.name == name:
                return s
        raise KeyError(f"no stage named {name!r}")

    @property
    def failures(self) -> Dict[str, TaskFailure]:
        """Every lost task across all stages."""
        out: Dict[str, TaskFailure] = {}
        for s in self.stage_results:
            out.update(s.failures)
        return out

    @property
    def attempts(self) -> Dict[str, int]:
        """Attempts each task consumed across all stages (1 = clean)."""
        out: Dict[str, int] = {}
        for s in self.stage_results:
            out.update(s.attempts)
        return out

    @property
    def retries(self) -> int:
        return sum(s.retries for s in self.stage_results)

    @property
    def degraded(self) -> bool:
        return any(s.degraded for s in self.stage_results)

    def speedup_over(self, baseline: "WorkflowResult") -> float:
        """``baseline.wall_time / self.wall_time``."""
        if self.wall_time <= 0:
            raise ValueError("cannot compute speedup of a zero-time run")
        return baseline.wall_time / self.wall_time

    def to_json_dict(self) -> dict:
        """Deterministic JSON form (the fixed-seed replay gate compares
        two of these byte-for-byte)."""
        return {
            "workflow": self.workflow,
            "wall_time": self.wall_time,
            "serial_time": self.serial_time,
            "retries": self.retries,
            "degraded": self.degraded,
            "stages": [s.to_json_dict() for s in self.stage_results],
            "tasks_profiled": sorted(self.profiles),
        }


class WorkflowRunner:
    """Executes workflows on a cluster with DaYu's mapper attached.

    Args:
        cluster: The simulated cluster.
        mapper: The Data Semantic Mapper collecting per-task profiles.
        scheduler: Placement policy (default round-robin).
        retry_policy: Re-attempt failed tasks (default: fail fast).
        faults: Optional :class:`repro.faults.FaultInjector`; the runner
            polls it at stage/task/backoff boundaries so scheduled node
            deaths land at their simulated times.
    """

    def __init__(
        self,
        cluster: Cluster,
        mapper: DataSemanticMapper,
        scheduler: Optional[Scheduler] = None,
        path_resolver: Optional[Callable[[str, str, str], str]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        faults=None,
    ) -> None:
        self.cluster = cluster
        self.mapper = mapper
        self.scheduler = scheduler or RoundRobinScheduler()
        #: Optional ``(path, mode, node) -> path`` hook applied to every
        #: task open — the transparent-caching integration point.
        self.path_resolver = path_resolver
        self.retry_policy = retry_policy
        self.faults = faults
        #: The (possibly partial) result of the most recent :meth:`run` —
        #: still populated when the run aborted mid-workflow.
        self.last_result: Optional[WorkflowResult] = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def _monitor(self):
        return getattr(self.mapper, "monitor", None)

    def _poll_faults(self) -> None:
        if self.faults is not None:
            self.faults.poll()

    def _replacement_node(self, stage: Stage, task: Task) -> str:
        """A surviving node for a retry whose original node died."""
        unpin = getattr(self.scheduler, "unpin", None)
        if unpin is not None:
            pinned = getattr(self.scheduler, "pins", {}).get(task.name)
            if pinned is not None and not self.cluster.is_alive(pinned):
                unpin(task.name)
        fresh = self.scheduler.place(stage, self.cluster).get(task.name)
        if fresh is not None and self.cluster.is_alive(fresh):
            return fresh
        alive = self.cluster.alive_node_names()
        if not alive:
            raise NoAliveNodesError(self.cluster.dead_nodes,
                                    f"retry of {task.name!r}")
        return alive[0]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, workflow: Workflow) -> WorkflowResult:
        workflow.validate()
        result = WorkflowResult(workflow=workflow.name)
        self.last_result = result
        try:
            for stage in workflow.stages:
                self._run_stage(stage, result)
        finally:
            # Even an aborted run keeps the profiles of every completed
            # task — the partial result stays analyzable.
            result.profiles = dict(self.mapper.profiles)
        return result

    def _run_stage(self, stage: Stage, result: WorkflowResult) -> StageResult:
        self._poll_faults()
        started_at = (result.stage_results[-1].finished_at
                      if result.stage_results else 0.0)
        try:
            placement = self.scheduler.place(stage, self.cluster)
        except NoAliveNodesError:
            # Total cluster death before the stage could start: record the
            # stage as aborted-empty so the partial result stays honest,
            # then let the typed error propagate as a clean abort.
            result.stage_results.append(StageResult(
                name=stage.name, wall_time=0.0, started_at=started_at,
                finished_at=started_at, aborted=True))
            raise
        missing = [t.name for t in stage.tasks if t.name not in placement]
        if missing:
            raise ValueError(f"scheduler left tasks unplaced: {missing}")

        monitor = self._monitor
        if monitor is not None:
            from repro.monitor.events import StageStarted

            monitor.publish(StageStarted(
                time=self.cluster.clock.now, task=None, stage=stage.name))

        if stage.parallel:
            per_node: Dict[str, int] = {}
            for node in placement.values():
                per_node[node] = per_node.get(node, 0) + 1
            self.cluster.set_stage_concurrency(per_node)

        stage_result = StageResult(
            name=stage.name, wall_time=0.0, started_at=started_at,
            placement=placement)
        # Appended up-front: an abort below still leaves the partial
        # stage timings on the workflow result.
        result.stage_results.append(stage_result)
        abort: Optional[BaseException] = None
        try:
            for task in stage.tasks:
                try:
                    duration, failure, cause = self._run_task(
                        stage, task, placement, stage_result)
                except NoAliveNodesError as exc:
                    # Re-placement found zero survivors: clean abort —
                    # the partial stage timings below stay on the result.
                    abort = exc
                    break
                if failure is None:
                    stage_result.task_durations[task.name] = duration
                else:
                    stage_result.failures[task.name] = failure
                    if not stage.best_effort:
                        abort = cause
                        break
        finally:
            self.cluster.reset_concurrency()
            durations = stage_result.task_durations
            if stage.parallel:
                stage_result.wall_time = max(durations.values(), default=0.0)
            else:
                stage_result.wall_time = sum(durations.values())
            stage_result.finished_at = started_at + stage_result.wall_time
            stage_result.aborted = abort is not None
            if monitor is not None:
                from repro.monitor.events import StageFinished

                monitor.publish(StageFinished(
                    time=self.cluster.clock.now, task=None, stage=stage.name,
                    wall_time=stage_result.wall_time,
                    failed=stage_result.aborted))
        if abort is not None:
            raise abort
        return stage_result

    def _run_task(
        self,
        stage: Stage,
        task: Task,
        placement: Dict[str, str],
        stage_result: StageResult,
    ):
        """Run one task under the retry policy.

        Returns ``(duration, None, None)`` on success or
        ``(None, TaskFailure, original_exception)`` once the attempt
        budget is spent.
        """
        policy = self.retry_policy or RetryPolicy(max_attempts=1)
        monitor = self._monitor
        clock = self.cluster.clock
        node = placement[task.name]
        last_exc: Optional[BaseException] = None
        attempts = 0
        for attempt in range(1, policy.max_attempts + 1):
            attempts = attempt
            if attempt > 1:
                delay = policy.backoff(attempt)
                if delay > 0:
                    clock.advance(delay, account=RETRY_BACKOFF_ACCOUNT)
                self._poll_faults()
                previous = node
                if policy.replace and not self.cluster.is_alive(node):
                    node = self._replacement_node(stage, task)
                    placement[task.name] = node
                stage_result.retries += 1
                if monitor is not None:
                    from repro.monitor.events import TaskRetried

                    monitor.publish(TaskRetried(
                        time=clock.now, task=task.name, attempt=attempt,
                        backoff=delay, node=node, previous_node=previous))
            else:
                self._poll_faults()
            final = attempt == policy.max_attempts
            if not self.cluster.is_alive(node):
                last_exc = FsError(
                    f"task {task.name!r} placed on dead node {node!r}")
                self._publish_failed(task.name, node, attempt, last_exc, final,
                                     started=False)
                continue
            start = clock.now
            try:
                with self.mapper.task(task.name) as ctx:
                    runtime = TaskRuntime(self.cluster, ctx, task, node,
                                          path_resolver=self.path_resolver)
                    if task.compute_seconds:
                        runtime.compute(task.compute_seconds)
                    task.fn(runtime)
            except Exception as exc:
                last_exc = exc
                self._publish_failed(task.name, node, attempt, exc, final)
                continue
            stage_result.attempts[task.name] = attempts
            return clock.now - start, None, None
        stage_result.attempts[task.name] = attempts
        failure = TaskFailure(
            task=task.name,
            node=node,
            attempts=attempts,
            error=_describe(last_exc),
            time=clock.now,
        )
        return None, failure, last_exc

    def _publish_failed(self, task: str, node: str, attempt: int,
                        exc: BaseException, fatal: bool,
                        started: bool = True) -> None:
        monitor = self._monitor
        if monitor is None:
            return
        from repro.monitor.events import TaskFailed

        monitor.publish(TaskFailed(
            time=self.cluster.clock.now, task=task, error=_describe(exc),
            node=node, attempt=attempt, fatal=fatal, started=started))


def _describe(exc: Optional[BaseException]) -> str:
    if exc is None:
        return ""
    return f"{type(exc).__name__}: {exc}"
