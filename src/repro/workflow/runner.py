"""Workflow execution on a simulated cluster under DaYu profiling.

Time model
----------
All I/O charges the single cluster clock, so running a parallel stage's
tasks one after another accumulates the *sum* of their durations on the
raw clock.  Real parallel execution takes the *max*, with each device
slowed by its contention model.  The runner therefore:

1. declares the stage's per-node task counts to the cluster (devices apply
   their contention factors);
2. runs the tasks sequentially, measuring each task's simulated duration;
3. reports the stage's wall-clock as ``max`` (parallel) or ``sum``
   (serial) of the task durations.

The reported workflow/stage wall-clock times — the quantities the paper's
Figures 11 and 12 compare — live in the :class:`WorkflowResult`; the raw
clock keeps its total-work semantics for profile ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.mapper.mapper import DataSemanticMapper, TaskContext, TaskProfile
from repro.posix.simfs import FsError
from repro.vol.objects import VolFile
from repro.workflow.model import Stage, Task, Workflow
from repro.workflow.scheduler import RoundRobinScheduler, Scheduler

__all__ = ["TaskRuntime", "StageResult", "WorkflowResult", "WorkflowRunner"]

COMPUTE_ACCOUNT = "compute"


class TaskRuntime:
    """What a task body sees: instrumented I/O plus cluster context."""

    def __init__(
        self,
        cluster: Cluster,
        ctx: TaskContext,
        task: Task,
        node: str,
        path_resolver: Optional[Callable[[str, str, str], str]] = None,
    ) -> None:
        self.cluster = cluster
        self.ctx = ctx
        self.task = task
        self.node = node
        self.fs = cluster.fs
        self.clock = cluster.clock
        self._path_resolver = path_resolver

    def _resolve(self, path: str, mode: str) -> str:
        """Apply the runner's path resolver (transparent caching hook) and
        enforce node locality on the resolved path."""
        if self._path_resolver is not None:
            path = self._path_resolver(path, mode, self.node)
        owner = self.cluster.owning_node(path)
        if owner is not None and owner != self.node:
            raise FsError(
                f"task {self.task.name!r} on node {self.node!r} cannot access "
                f"{path!r} (local to node {owner!r})"
            )
        return path

    def open(self, path: str, mode: str = "r", **kwargs) -> VolFile:
        """Open an instrumented HDF5-like file; node-local paths are
        checked for locality (a task cannot reach another node's disk)."""
        return self.ctx.open(self.fs, self._resolve(path, mode), mode, **kwargs)

    def open_netcdf(self, path: str, mode: str = "r"):
        """Open an instrumented netCDF-like file (same locality rules)."""
        return self.ctx.open_netcdf(self.fs, self._resolve(path, mode), mode)

    def compute(self, seconds: float) -> None:
        """Model a compute phase of the task."""
        self.clock.advance(seconds, account=COMPUTE_ACCOUNT)

    def local_path(self, tier: str, filename: str) -> str:
        """A path on this task's node-local tier."""
        self.cluster.local_device(self.node, tier)  # validates the tier
        return f"{Cluster.local_prefix(self.node, tier)}/{filename}"


@dataclass
class StageResult:
    """Timing of one executed stage."""

    name: str
    wall_time: float
    task_durations: Dict[str, float] = field(default_factory=dict)
    placement: Dict[str, str] = field(default_factory=dict)

    @property
    def total_work(self) -> float:
        return sum(self.task_durations.values())


@dataclass
class WorkflowResult:
    """Timing and profiles of one executed workflow."""

    workflow: str
    stage_results: List[StageResult] = field(default_factory=list)
    profiles: Dict[str, TaskProfile] = field(default_factory=dict)

    @property
    def wall_time(self) -> float:
        """End-to-end makespan (sum of stage wall-clocks)."""
        return sum(s.wall_time for s in self.stage_results)

    def stage(self, name: str) -> StageResult:
        for s in self.stage_results:
            if s.name == name:
                return s
        raise KeyError(f"no stage named {name!r}")

    def speedup_over(self, baseline: "WorkflowResult") -> float:
        """``baseline.wall_time / self.wall_time``."""
        if self.wall_time <= 0:
            raise ValueError("cannot compute speedup of a zero-time run")
        return baseline.wall_time / self.wall_time


class WorkflowRunner:
    """Executes workflows on a cluster with DaYu's mapper attached.

    Args:
        cluster: The simulated cluster.
        mapper: The Data Semantic Mapper collecting per-task profiles.
        scheduler: Placement policy (default round-robin).
    """

    def __init__(
        self,
        cluster: Cluster,
        mapper: DataSemanticMapper,
        scheduler: Optional[Scheduler] = None,
        path_resolver: Optional[Callable[[str, str, str], str]] = None,
    ) -> None:
        self.cluster = cluster
        self.mapper = mapper
        self.scheduler = scheduler or RoundRobinScheduler()
        #: Optional ``(path, mode, node) -> path`` hook applied to every
        #: task open — the transparent-caching integration point.
        self.path_resolver = path_resolver

    def run(self, workflow: Workflow) -> WorkflowResult:
        workflow.validate()
        result = WorkflowResult(workflow=workflow.name)
        for stage in workflow.stages:
            result.stage_results.append(self._run_stage(stage))
        result.profiles = dict(self.mapper.profiles)
        return result

    def _run_stage(self, stage: Stage) -> StageResult:
        placement = self.scheduler.place(stage, self.cluster)
        missing = [t.name for t in stage.tasks if t.name not in placement]
        if missing:
            raise ValueError(f"scheduler left tasks unplaced: {missing}")

        monitor = getattr(self.mapper, "monitor", None)
        if monitor is not None:
            from repro.monitor.events import StageStarted

            monitor.publish(StageStarted(
                time=self.cluster.clock.now, task=None, stage=stage.name))

        if stage.parallel:
            per_node: Dict[str, int] = {}
            for node in placement.values():
                per_node[node] = per_node.get(node, 0) + 1
            self.cluster.set_stage_concurrency(per_node)
        durations: Dict[str, float] = {}
        try:
            for task in stage.tasks:
                node = placement[task.name]
                start = self.cluster.clock.now
                with self.mapper.task(task.name) as ctx:
                    runtime = TaskRuntime(self.cluster, ctx, task, node,
                                          path_resolver=self.path_resolver)
                    if task.compute_seconds:
                        runtime.compute(task.compute_seconds)
                    task.fn(runtime)
                durations[task.name] = self.cluster.clock.now - start
        finally:
            self.cluster.reset_concurrency()

        if stage.parallel:
            wall = max(durations.values(), default=0.0)
        else:
            wall = sum(durations.values())
        if monitor is not None:
            from repro.monitor.events import StageFinished

            monitor.publish(StageFinished(
                time=self.cluster.clock.now, task=None, stage=stage.name,
                wall_time=wall))
        return StageResult(
            name=stage.name,
            wall_time=wall,
            task_durations=durations,
            placement=placement,
        )
