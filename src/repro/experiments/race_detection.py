"""Race detection sweep: DY5xx findings per bundled workload.

Beyond the paper's figures, this experiment characterizes the
happens-before race pass (:mod:`repro.lint.race`) across every bundled
workload, in all three modes:

- **post-hoc** over the row traces of one run (`racy-pipeline` runs
  under its seeded fault spec with retries, so the DY505 attempt
  history is real);
- **columnar** — the same run compacted to one ``.dayuc`` file and
  linted through the page-stat pushdown path, asserted byte-identical
  to the row report;
- **static** — the workflow *definition* linted pre-run from its
  access contracts, no execution at all.

The expected shape, enforced by CI's ``race-smoke`` job: every workload
is DY5xx-clean except the two seeded fixtures — ``racy-pipeline``
(designed ground truth: true WAW, barrier-masked WAW, disjoint-selection
trap downgraded to a warning, metadata race, retry-exposed RMW) and
``corner-hazards`` (its DY2xx seeds are DY5xx races too) — and the
static mode convicts the same DY501–503 (code, subject, tasks) set on
``racy-pipeline`` as the post-hoc mode does.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.common import ResultTable, fresh_env
from repro.lint import LintConfig, lint_profiles, lint_workflow
from repro.workloads.registry import WORKLOADS, build_workload

__all__ = ["run_workload_races", "run_race_detection"]


def _counts(findings) -> Dict[str, int]:
    out = {"errors": 0, "warnings": 0, "notes": 0}
    for f in findings:
        if not f.code.startswith("DY5"):
            continue
        out[f.severity.value + "s"] += 1
    return out


def run_workload_races(
    name: str, scale: float = 0.5
) -> Tuple[Dict[str, int], Dict[str, int], bool, Optional[int]]:
    """One workload through all three modes.

    Returns ``(trace_counts, static_counts, row_eq_columnar, attempts)``
    where ``attempts`` is the retried-task count (racy-pipeline only).
    """
    import tempfile
    from pathlib import Path

    from repro.analyzer import ParallelAnalyzer
    from repro.mapper.columnar import encode_run

    config = LintConfig(enable=("DY5*",))
    workflow, prepare = build_workload(name, scale)
    env = fresh_env(n_nodes=2)
    attempts = None
    retried = None
    if name == "racy-pipeline":
        from repro.faults import FaultInjector
        from repro.workflow.runner import RetryPolicy, WorkflowRunner
        from repro.workloads.racy_pipeline import RacyParams, racy_fault_spec

        params = RacyParams(elems=max(int(1024 * scale), 8))
        runner = WorkflowRunner(
            env.cluster, env.mapper,
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.25))
        runner.faults = FaultInjector(
            racy_fault_spec(params), env.cluster).arm()
        result = runner.run(workflow)
        attempts = dict(result.attempts)
        retried = sum(1 for n in attempts.values() if n > 1)
    else:
        if prepare is not None:
            prepare(env.cluster)
        env.runner.run(workflow)
    profiles = sorted(env.mapper.profiles.values(),
                      key=lambda p: p.span.start)
    trace_report = lint_profiles(profiles, config, attempts=attempts)
    static_report = lint_workflow(workflow, config)
    with tempfile.TemporaryDirectory() as tmp:
        (Path(tmp) / "run.dayuc").write_bytes(encode_run(profiles))
        analyzer = ParallelAnalyzer(max_workers=1, with_io_records=True)
        col_report = analyzer.lint_run(tmp, config, attempts=attempts)
        row_report = lint_profiles(
            [p for p in analyzer.load(tmp)], config, attempts=attempts)
    identical = col_report.to_json() == row_report.to_json()
    return (_counts(trace_report.findings), _counts(static_report.findings),
            identical, retried)


def run_race_detection(scale: float = 0.5) -> ResultTable:
    """The DY5xx race table over every bundled workload."""
    table = ResultTable(
        title="Happens-before race detection — DY5xx per bundled workload",
        columns=["workload", "trace_errors", "trace_warnings",
                 "trace_notes", "static_errors", "row_vs_columnar"],
    )
    names = [n for n in WORKLOADS if n != "corner"]  # corner ⊂ corner-hazards
    for name in names:
        trace, static, identical, retried = run_workload_races(name, scale)
        table.add(
            workload=name + (f" (+{retried} retried)" if retried else ""),
            trace_errors=trace["errors"],
            trace_warnings=trace["warnings"],
            trace_notes=trace["notes"],
            static_errors=static["errors"],
            row_vs_columnar="identical" if identical else "DIFFER",
        )
    table.notes.append(
        "Opt-in DY5xx family over dependency-only happens-before; "
        "racy-pipeline and corner-hazards are the seeded fixtures, "
        "everything else must stay clean.  racy-pipeline runs under its "
        "seeded fault window with retries, so DY505 sees a real attempt "
        "history; the columnar column asserts the page-stat-pushdown "
        "report is byte-identical to the row path.")
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run_race_detection().to_markdown())
